//! Cross-substrate equivalence: the same seeded KV workload, run through
//! the *same* generic `KvDeployment` driver on the deterministic
//! simulator and on the threaded runtime, completes the same operation
//! multiset — and per-object atomicity holds on both.
//!
//! Interleavings (and therefore read results and round counts) are
//! substrate-dependent; the multiset of operations each client performs
//! is not, and neither is safety.

use rqs::core::threshold::ThresholdConfig;
use rqs::kv::{workload, KvBatch, KvDeployment, WorkloadConfig};
use rqs::sim::{Substrate, World};
use std::time::Duration;

/// One completed operation, reduced to its substrate-independent part:
/// client, kind, object, and the written pair for writes (read results
/// are timing-dependent and excluded).
fn op_multiset<S: Substrate<KvBatch>>(kv: &KvDeployment<S>) -> Vec<String> {
    let mut ops: Vec<String> = kv
        .completed()
        .iter()
        .map(|(ci, o)| match o.kind {
            rqs::storage::OpKind::Write => format!("c{ci} W {} {}", o.object, o.pair),
            rqs::storage::OpKind::Read => format!("c{ci} R {}", o.object),
        })
        .collect();
    ops.sort();
    ops
}

fn run_on<S: Substrate<KvBatch>>(seed: u64) -> Vec<String> {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut kv = KvDeployment::<S>::with_setup(
        rqs,
        12,
        3,
        rqs::sim::Scenario::default(),
        Duration::from_millis(1),
    );
    let cfg = WorkloadConfig::mixed(12, 3, 72, seed);
    let stats = kv.run_workload(&workload::generate(&cfg), 4);
    assert_eq!(stats.ops, 72, "every operation completes on {}", S::NAME);
    kv.check_atomicity()
        .unwrap_or_else(|v| panic!("atomicity violated on {}: {v}", S::NAME));
    let ops = op_multiset(&kv);
    kv.shutdown();
    ops
}

#[test]
fn same_workload_same_operation_multiset_on_both_substrates() {
    let seed = 0xE0;
    let sim_ops = run_on::<World<KvBatch>>(seed);
    let rt_ops = run_on::<rqs::runtime::Runtime<KvBatch>>(seed);
    assert_eq!(sim_ops.len(), 72);
    assert_eq!(
        sim_ops, rt_ops,
        "sim and threaded substrates must complete the same operation multiset"
    );
}

#[test]
fn equivalence_holds_under_a_byzantine_server() {
    let run = |byz: bool| {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let seed = 0xB1;
        let sim = {
            let mut kv = KvDeployment::<World<KvBatch>>::new(rqs.clone(), 8, 2);
            if byz {
                kv.make_byzantine(0, rqs::kv::ByzantineMode::Forge);
            }
            let cfg = WorkloadConfig::mixed(8, 2, 40, seed);
            kv.run_workload(&workload::generate(&cfg), 4);
            kv.check_atomicity().unwrap();
            op_multiset(&kv)
        };
        let rt = {
            let mut kv = KvDeployment::<rqs::runtime::Runtime<KvBatch>>::with_setup(
                rqs,
                8,
                2,
                rqs::sim::Scenario::default(),
                Duration::from_millis(1),
            );
            if byz {
                kv.make_byzantine(0, rqs::kv::ByzantineMode::Forge);
            }
            let cfg = WorkloadConfig::mixed(8, 2, 40, seed);
            kv.run_workload(&workload::generate(&cfg), 4);
            kv.check_atomicity().unwrap();
            let ops = op_multiset(&kv);
            kv.shutdown();
            ops
        };
        assert_eq!(sim, rt);
    };
    run(false);
    run(true);
}
