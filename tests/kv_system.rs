//! Cross-crate KV system test, driven through the facade: the ISSUE-3
//! acceptance scenario — a sim deployment with ≥ 16 objects, ≥ 4 clients
//! and one Byzantine server completes a seeded mixed workload with every
//! per-object history atomic, and batching observably reduces envelopes
//! per operation.

use rqs::core::threshold::ThresholdConfig;
use rqs::kv::{workload, ByzantineMode, KvSim, RtKv, WorkloadConfig};
use std::time::Duration;

#[test]
fn sixteen_objects_four_clients_one_byzantine_atomic() {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut kv = KvSim::new(rqs, 16, 4);
    kv.make_byzantine(2, ByzantineMode::Forge);
    let cfg = WorkloadConfig {
        objects: 16,
        clients: 4,
        ops: 192,
        read_percent: 50,
        skew: 0.3,
        seed: 1234,
    };
    let stats = kv.run_workload(&workload::generate(&cfg), 4);
    assert_eq!(stats.ops, 192, "every operation completes");
    assert!(stats.rounds.fast_path_ratio() > 0.0);
    kv.check_atomicity()
        .unwrap_or_else(|v| panic!("atomicity violated: {v}"));
    // All 16 objects were actually exercised.
    assert_eq!(kv.per_object_records().len(), 16);
}

#[test]
fn batching_reduces_messages_per_operation() {
    let cfg = WorkloadConfig::mixed(16, 4, 128, 99);
    let ops = workload::generate(&cfg);
    let run = |batch: usize| {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut kv = KvSim::new(rqs, 16, 4);
        let stats = kv.run_workload(&ops, batch);
        kv.check_atomicity().unwrap();
        stats
    };
    let b1 = run(1);
    let b8 = run(8);
    assert!(
        b8.envelopes_per_op() < b1.envelopes_per_op() / 2.0,
        "batch=8 ({:.2} env/op) must at least halve batch=1 ({:.2} env/op)",
        b8.envelopes_per_op(),
        b1.envelopes_per_op()
    );
    assert!(
        b8.batching_factor() > 1.5,
        "envelopes must actually coalesce"
    );
}

#[test]
fn threaded_substrate_runs_the_same_workload() {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut kv = RtKv::with_tick(rqs, 16, 4, Duration::from_millis(1));
    let cfg = WorkloadConfig::mixed(16, 4, 48, 7);
    let stats = kv.run_workload(&workload::generate(&cfg), 4);
    assert_eq!(stats.ops, 48);
    assert!(stats.throughput() > 0.0, "wall-clock throughput reported");
}
