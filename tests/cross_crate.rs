//! Cross-crate integration: the facade API, the threaded runtime, and a
//! combined consensus-then-storage scenario.

use rqs::consensus::ConsensusHarness;
use rqs::runtime::{RtConsensus, RtStorage};
use rqs::storage::{StorageHarness, Value};
use rqs::{Adversary, ProcessSet, QuorumClass, ThresholdConfig};
use std::time::Duration;

#[test]
fn all_six_facade_modules_resolve() {
    // One item from each re-exported workspace member, referenced through
    // its facade path — this is the workspace-wiring smoke test: if a
    // member drops out of the facade, this fails to compile.
    let _core: rqs::core::ProcessSet = rqs::core::ProcessSet::from_indices([0, 1]);
    let _sim: rqs::sim::Time = rqs::sim::Time(0);
    let crypto = rqs::crypto::KeyRegistry::new(4, 7);
    assert_eq!(crypto.len(), 4);
    let _storage: rqs::storage::Value = rqs::storage::Value::bottom();
    let _consensus = rqs::consensus::ConsensusHarness::new(
        rqs::ThresholdConfig::byzantine_fast(1).build().unwrap(),
        1,
        1,
    );
    assert!(rqs::runtime::DEFAULT_TICK > Duration::ZERO);
}

#[test]
fn byzantine_fast_roundtrips_through_storage_and_consensus() {
    // The flagship n = 3t+1 system must round-trip through both
    // protocol harnesses: a 1-round write/read pair that is atomic, and
    // a proposal every learner learns in the 2-delay fast path.
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();

    let mut storage = StorageHarness::new(rqs.clone(), 1);
    let w = storage.write(Value::from("rqs"));
    assert_eq!(w.rounds, 1);
    let r = storage.read(0);
    assert_eq!(r.returned.val, Value::from("rqs"));
    storage.check_atomicity().unwrap();

    let mut consensus = ConsensusHarness::new(rqs, 2, 2);
    consensus.propose(0, 42);
    assert!(consensus.run_until_learned(100_000));
    assert_eq!(consensus.agreed_value(), Some(42));
    assert!(consensus.learner_delays().iter().all(|d| *d == Some(2)));
}

#[test]
fn facade_reexports_are_usable() {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    assert_eq!(rqs.universe_size(), 4);
    assert_eq!(
        rqs.best_available_class(ProcessSet::empty()),
        Some(QuorumClass::Class1)
    );
    let adv = Adversary::threshold(4, 1);
    assert!(adv.is_basic(ProcessSet::from_indices([0, 1])));
}

#[test]
fn agree_on_config_then_store() {
    // A control plane agrees (via consensus) which replication factor to
    // use, then the data plane runs storage over the agreed system — the
    // "state machine replication + storage" shape of the paper's intro.
    let control = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut consensus = ConsensusHarness::new(control, 2, 2);
    consensus.propose(0, 7); // propose: use 7 servers
    assert!(consensus.run_until_learned(200_000));
    let n = consensus.agreed_value().unwrap() as usize;

    let data = ThresholdConfig::new(n, 2, 1)
        .with_class1(0)
        .with_class2(1)
        .build()
        .unwrap();
    let mut storage = StorageHarness::new(data, 1);
    storage.write(Value::from(123u64));
    let r = storage.read(0);
    assert_eq!(r.returned.val, Value::from(123u64));
    storage.check_atomicity().unwrap();
}

#[test]
fn threaded_storage_many_ops() {
    let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
    let mut st = RtStorage::with_tick(rqs, 2, Duration::from_micros(500));
    for v in 1..=5u64 {
        let (w, _) = st.write(Value::from(v));
        assert_eq!(w.rounds, 1);
        let (r0, _) = st.read(0);
        let (r1, _) = st.read(1);
        assert_eq!(r0.returned.val, Value::from(v));
        assert_eq!(r1.returned.val, Value::from(v));
    }
    st.shutdown();
}

#[test]
fn threaded_consensus_agrees() {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut cons = RtConsensus::with_tick(rqs, 2, 2, Duration::from_micros(500));
    let wall = cons.propose_and_learn(0, 42);
    assert_eq!(cons.learned(0), Some(42));
    assert_eq!(cons.learned(1), Some(42));
    assert!(wall < Duration::from_secs(10));
    cons.shutdown();
}

#[test]
fn simulator_and_runtime_agree_on_rounds() {
    // The same protocol over the same RQS must report the same round
    // counts in both execution environments.
    let mk = || ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut sim = StorageHarness::new(mk(), 1);
    let sim_w = sim.write(Value::from(9u64)).rounds;
    let sim_r = sim.read(0).rounds;

    let mut rt = RtStorage::with_tick(mk(), 1, Duration::from_micros(500));
    let (rt_w, _) = rt.write(Value::from(9u64));
    let (rt_r, _) = rt.read(0);
    rt.shutdown();

    assert_eq!((sim_w, sim_r), (rt_w.rounds, rt_r.rounds));
}
