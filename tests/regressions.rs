//! Replays the checked-in schedule corpus (`tests/regressions/*.cex`)
//! through the model checker. See `tests/regressions/README.md` for the
//! format and how to add entries.

use rqs::check::explore::replay;
use rqs::check::model::builtin_model;
use rqs::check::{Counterexample, Expectation};

#[test]
fn regression_corpus_replays() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/regressions exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cex"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let cex = Counterexample::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let model = builtin_model(&cex.model)
            .unwrap_or_else(|| panic!("{name}: unknown model {:?}", cex.model));
        let (_, out) = replay(model.as_ref(), &cex.choices, 20_000);
        match cex.expect {
            Expectation::Pass => assert!(
                out.violation.is_none(),
                "{name}: expected pass, got violation: {:?}",
                out.violation
            ),
            Expectation::Fail => assert!(
                out.violation.is_some(),
                "{name}: expected a violation, got a clean run"
            ),
        }
        seen += 1;
    }
    assert!(seen >= 2, "corpus must not silently vanish (saw {seen})");
}
