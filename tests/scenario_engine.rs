//! The acceptance gate for the scenario engine: the three canonical
//! fault scenarios — partition+heal, lossy/duplicating links, and
//! crash+restart — each complete a seeded KV workload with per-object
//! atomicity on **both** substrates, from one declarative description.

use rqs::core::threshold::ThresholdConfig;
use rqs::kv::{workload, KvBatch, KvDeployment, KvRunStats, WorkloadConfig};
use rqs::sim::{LinkEffect, LinkRule, Scenario, Substrate, World};
use std::time::Duration;

/// The three canonical scenarios, sized for the n = 4 `byzantine_fast(1)`
/// universe (t = 1: at most one server cut/lossy/crashed, so a correct
/// quorum always stays connected and no run can stall).
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::named("partition+heal").partition(vec![3], 0, 30),
        Scenario::named("lossy+duplicating")
            .lossy_towards(vec![3], 4)
            .link(LinkRule::every(LinkEffect::Duplicate { lag: 2 })),
        Scenario::named("crash+restart").crash_restart(0, 10, 60),
    ]
}

fn run_scenario_on<S: Substrate<KvBatch>>(scenario: Scenario, seed: u64) -> KvRunStats {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let name = scenario.name.clone();
    let mut kv = KvDeployment::<S>::with_setup(rqs, 8, 2, scenario, Duration::from_millis(1));
    let cfg = WorkloadConfig::mixed(8, 2, 48, seed);
    let stats = kv.run_workload(&workload::generate(&cfg), 4);
    assert_eq!(
        stats.ops,
        48,
        "scenario {name:?} must complete every op on {}",
        S::NAME
    );
    kv.check_atomicity()
        .unwrap_or_else(|v| panic!("scenario {name:?} violated atomicity on {}: {v}", S::NAME));
    kv.shutdown();
    stats
}

#[test]
fn all_scenarios_green_on_the_simulator() {
    for scenario in scenarios() {
        run_scenario_on::<World<KvBatch>>(scenario, 17);
    }
}

#[test]
fn all_scenarios_green_on_the_threaded_runtime() {
    for scenario in scenarios() {
        run_scenario_on::<rqs::runtime::Runtime<KvBatch>>(scenario, 17);
    }
}

#[test]
fn scenario_runs_are_deterministic_on_the_simulator() {
    let trace = |seed| {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut kv = KvDeployment::<World<KvBatch>>::with_scenario(
            rqs,
            8,
            2,
            scenarios().remove(1), // the lossy+duplicating one
        );
        let cfg = WorkloadConfig::mixed(8, 2, 48, seed);
        kv.run_workload(&workload::generate(&cfg), 4);
        kv.op_trace()
    };
    assert_eq!(
        trace(5),
        trace(5),
        "same seed + same scenario → byte-identical trace"
    );
    assert_ne!(trace(5), trace(6));
}
