//! Randomized cross-crate storage tests: atomicity must hold for every
//! workload, crash pattern, delay schedule, and scripted Byzantine
//! behaviour the adversary structure admits.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rqs::storage::byzantine::ForgedServer;
use rqs::storage::{StorageHarness, TsVal, Value};
use rqs::{ProcessSet, ThresholdConfig};
use rqs_sim::{Envelope, Fate, Scenario};

/// Runs a seeded random workload over a configuration with random crash
/// times, returning the atomicity verdict.
fn random_workload(
    cfg: ThresholdConfig,
    seed: u64,
    ops: usize,
    crashes: usize,
    byzantine: usize,
) -> Result<(), String> {
    let rqs = cfg.build().map_err(|e| e.to_string())?;
    let n = rqs.universe_size();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = StorageHarness::new(rqs, 2);

    // Byzantine servers (the lowest indices): fabricate high-timestamp
    // values. Must stay inside the adversary.
    for b in 0..byzantine {
        let ghost = TsVal::new(1000 + b as u64, Value::from(0xBAD_u64));
        h.make_byzantine(b, Box::new(ForgedServer::with_slot1(&ghost)));
    }

    // Random crash set among the remaining servers, obeying t.
    let mut crashed = ProcessSet::empty();
    let mut candidates: Vec<usize> = (byzantine..n).collect();
    for _ in 0..crashes {
        if candidates.is_empty() {
            break;
        }
        let i = rng.gen_range(0..candidates.len());
        crashed.insert(rqs_core::ProcessId(candidates.swap_remove(i)));
    }

    for op in 0..ops {
        // Crash one scheduled server midway through the workload.
        if op == ops / 2 && !crashed.is_empty() {
            h.crash_servers(crashed);
        }
        if rng.gen_bool(0.5) {
            h.write(Value::from(op as u64 + 1));
        } else {
            let reader = rng.gen_range(0..2);
            h.read(reader);
        }
    }
    h.check_atomicity().map_err(|e| e.to_string())
}

/// Runs a seeded workload on a durable (write-ahead-logged) deployment,
/// amnesia-crashing and recovering a random server before every
/// `interrupt_every`-th operation, and returns the per-read timestamps
/// plus the atomicity verdict. `interrupt_every == 0` never interrupts.
fn durable_run(seed: u64, ops: usize, interrupt_every: usize) -> (Vec<u64>, Result<(), String>) {
    let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
    let n = rqs.universe_size();
    let mut h = StorageHarness::durable_with_scenario(rqs, 2, Scenario::default());
    // Separate RNG streams so the interrupted and uninterrupted runs
    // draw the identical operation sequence.
    let mut op_rng = StdRng::seed_from_u64(seed);
    let mut int_rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut reads = Vec::new();
    for op in 0..ops {
        if interrupt_every > 0 && op % interrupt_every == 0 {
            let victim = int_rng.gen_range(0..n);
            let set: ProcessSet = (victim..victim + 1).collect();
            h.crash_servers_amnesia(set);
            h.restart_servers(set);
        }
        if op_rng.gen_bool(0.5) {
            h.write(Value::from(op as u64 + 1));
        } else {
            reads.push(h.read(op_rng.gen_range(0..2)).returned.ts);
        }
    }
    (reads, h.check_atomicity().map_err(|e| e.to_string()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recovery equivalence: a run interrupted by K amnesia
    /// crash-recoveries is indistinguishable from the uninterrupted run —
    /// same read results, same atomicity verdict. Write-ahead logging is
    /// exactly what makes recovery invisible to clients.
    #[test]
    fn amnesia_interrupts_are_equivalent_to_uninterrupted(
        seed in 0u64..500,
        interrupt_every in 1usize..4,
    ) {
        let ops = 8;
        let (base_reads, base_verdict) = durable_run(seed, ops, 0);
        let (reads, verdict) = durable_run(seed, ops, interrupt_every);
        prop_assert_eq!(&verdict, &base_verdict);
        prop_assert!(verdict.is_ok(), "{:?}", verdict);
        prop_assert_eq!(reads, base_reads);
    }

    #[test]
    fn crash_only_system_always_atomic(seed in 0u64..1000, crashes in 0usize..3) {
        // §1.2 system: n=5, t=2, k=0.
        let cfg = ThresholdConfig::crash_fast(5, 1);
        random_workload(cfg, seed, 8, crashes, 0).unwrap();
    }

    #[test]
    fn byzantine_system_always_atomic(seed in 0u64..1000, byz in 0usize..2) {
        // n=4, t=k=1: at most one Byzantine, no extra crashes when a
        // server is Byzantine (t=1 total).
        let cfg = ThresholdConfig::byzantine_fast(1);
        let crashes = if byz == 0 { 1 } else { 0 };
        random_workload(cfg, seed, 8, crashes, byz).unwrap();
    }

    #[test]
    fn graded_system_always_atomic(seed in 0u64..1000, crashes in 0usize..3) {
        let cfg = ThresholdConfig::new(7, 2, 1).with_class1(0).with_class2(1);
        random_workload(cfg, seed, 8, crashes, 0).unwrap();
    }

    #[test]
    fn random_delays_preserve_atomicity(seed in 0u64..500) {
        // Random per-message delays 1..=4 (asynchronous-ish), no faults:
        // rounds may degrade, atomicity may not.
        let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
        let mut h = StorageHarness::new(rqs, 2);
        let mut delay_rng = StdRng::seed_from_u64(seed);
        let mut delays = Vec::new();
        for _ in 0..4096 {
            delays.push(delay_rng.gen_range(1u64..=4));
        }
        let mut i = 0usize;
        h.world_mut().set_policy(move |_e: &Envelope<rqs::storage::StorageMsg>| {
            i = (i + 1) % delays.len();
            Fate::Deliver { delay: delays[i] }
        });
        let mut op_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for op in 0..6u64 {
            if op_rng.gen_bool(0.5) {
                h.write(Value::from(op + 1));
            } else {
                h.read(op_rng.gen_range(0..2));
            }
        }
        h.check_atomicity().unwrap();
    }
}

#[test]
fn contended_read_with_stalled_write_is_atomic() {
    // A write that stalls in round 1 plus reads from both readers: the
    // read may return old or new, but the two reads must not invert.
    let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
    let mut h = StorageHarness::new(rqs, 2);
    h.write(Value::from(1u64));
    // Stall the next write by dropping all its server deliveries except
    // two (no quorum): the write stays open.
    let writer = h.writer_id();
    let keep: Vec<_> = h.servers()[..2].to_vec();
    h.world_mut()
        .set_policy(move |e: &Envelope<rqs::storage::StorageMsg>| {
            if e.from == writer && !keep.contains(&e.to) {
                Fate::Drop
            } else {
                Fate::DEFAULT
            }
        });
    h.start_write(Value::from(2u64));
    h.world_mut().run_to_quiescence();
    let r1 = h.read(0);
    let r2 = h.read(1);
    assert!(r2.returned.ts >= r1.returned.ts, "no read inversion");
    h.check_atomicity().unwrap();
}

#[test]
fn byzantine_cannot_fabricate_unwritten_value() {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut h = StorageHarness::new(rqs, 1);
    let ghost = TsVal::new(77, Value::from(0xEEE_u64));
    h.make_byzantine(0, Box::new(ForgedServer::with_slot1(&ghost)));
    let r = h.read(0);
    assert!(r.returned.is_initial(), "fabricated value must be rejected");
    h.check_atomicity().unwrap();
}

#[test]
fn wait_freedom_under_max_crashes() {
    // t crashes at time zero: every operation still completes.
    for t in [1usize, 2] {
        let rqs = ThresholdConfig::byzantine_fast(t).build().unwrap();
        let n = rqs.universe_size();
        let mut h = StorageHarness::new(rqs, 1);
        let faulty: ProcessSet = (n - t..n).collect();
        h.crash_servers(faulty);
        for v in 1..=3u64 {
            h.write(Value::from(v));
            let r = h.read(0);
            assert_eq!(r.returned.val, Value::from(v));
        }
        h.check_atomicity().unwrap();
    }
}
