//! Randomized cross-crate consensus tests: Agreement and Validity must
//! hold under crashes, contention, random delays, and equivocating
//! Byzantine acceptors; Termination must hold whenever a correct quorum
//! exists and synchrony returns.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rqs::consensus::byzantine::ScriptedAcceptor;
use rqs::consensus::{ConsensusHarness, ConsensusMsg};
use rqs::{ProcessSet, ThresholdConfig};
use rqs_sim::{Envelope, Fate};

fn graded() -> rqs::Rqs {
    ThresholdConfig::new(7, 2, 1)
        .with_class1(0)
        .with_class2(1)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn agreement_under_random_crashes(seed in 0u64..1000, crashes in 0usize..3) {
        let rqs = graded();
        let n = rqs.universe_size();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = ConsensusHarness::new(rqs, 2, 2);
        let mut faulty = ProcessSet::empty();
        while faulty.len() < crashes {
            faulty.insert(rqs_core::ProcessId(rng.gen_range(0..n)));
        }
        h.crash_acceptors(faulty);
        h.propose(0, 7);
        prop_assert!(h.run_until_learned(600_000));
        prop_assert_eq!(h.agreed_value(), Some(7));
    }

    #[test]
    fn contention_agreement_and_validity(seed in 0u64..1000) {
        // Two proposers race with different values under a randomly
        // perturbed network; all learners must agree on one of them.
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 2, 2);
        let mut delay_rng = StdRng::seed_from_u64(seed);
        let mut delays = Vec::new();
        for _ in 0..4096 {
            delays.push(delay_rng.gen_range(1u64..=3));
        }
        let mut i = 0usize;
        h.world_mut().set_policy(move |_e: &Envelope<ConsensusMsg>| {
            i = (i + 1) % delays.len();
            Fate::Deliver { delay: delays[i] }
        });
        h.propose(0, 1);
        h.propose(1, 2);
        prop_assert!(h.run_until_learned(1_500_000), "contention must terminate");
        let v = h.agreed_value().expect("agreement");
        prop_assert!(v == 1 || v == 2, "validity: {v}");
    }
}

#[test]
fn equivocating_acceptor_cannot_split_learners() {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut h = ConsensusHarness::new(rqs, 2, 2);
    let cfg = h.config();
    let half_a: Vec<_> = cfg.acceptors[..2]
        .iter()
        .chain(&cfg.learners[..1])
        .copied()
        .collect();
    let half_b: Vec<_> = cfg.acceptors[2..]
        .iter()
        .chain(&cfg.learners[1..])
        .copied()
        .collect();
    h.make_byzantine(
        3,
        Box::new(ScriptedAcceptor::equivocating_update1(half_a, 1, half_b, 2)),
    );
    h.propose(0, 1);
    assert!(h.run_until_learned(800_000));
    assert_eq!(h.agreed_value(), Some(1), "equivocation must not split");
}

#[test]
fn silent_acceptor_degrades_but_agrees() {
    use rqs::consensus::byzantine::SilentAcceptor;
    let rqs = graded();
    let mut h = ConsensusHarness::new(rqs, 2, 2);
    h.make_byzantine(6, Box::new(SilentAcceptor));
    h.propose(0, 9);
    assert!(h.run_until_learned(600_000));
    assert_eq!(h.agreed_value(), Some(9));
    // A silent acceptor is indistinguishable from a crashed one: the
    // class-1 (full-universe) path is gone, so ≥ 3 delays.
    let d = h.learner_delays().into_iter().flatten().max().unwrap();
    assert!(d >= 3, "silent acceptor must cost the fast path, got {d}");
}

#[test]
fn late_learner_catches_up_via_decision_pull() {
    // A learner cut off during the decision catches up through the
    // decision_pull loop (Fig. 15 lines 101–103).
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut h = ConsensusHarness::new(rqs, 1, 2);
    let blocked = h.config().learners[1];
    let release_at = rqs_sim::Time(6);
    h.world_mut().set_policy(move |e: &Envelope<ConsensusMsg>| {
        // Everything to learner 1 is lost until t = 6 (after the others
        // decided); afterwards the network heals.
        if e.to == blocked && e.sent_at < release_at {
            Fate::Drop
        } else {
            Fate::DEFAULT
        }
    });
    h.propose(0, 4);
    assert!(h.run_until_learned(800_000));
    assert_eq!(h.agreed_value(), Some(4));
    let delays = h.learner_delays();
    assert_eq!(delays[0], Some(2), "unblocked learner is fast");
    assert!(delays[1].unwrap() > 2, "blocked learner catches up later");
}

#[test]
fn acceptors_converge_on_decision_broadcast() {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut h = ConsensusHarness::new(rqs, 1, 1);
    h.propose(0, 11);
    assert!(h.run_until_learned(400_000));
    h.world_mut().run_to_quiescence_bounded(2_000_000);
    for i in 0..4 {
        assert_eq!(h.acceptor_decided(i), Some(11), "acceptor {i}");
    }
}
