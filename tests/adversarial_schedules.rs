//! Adversarial-schedule integration tests: the corners of both protocols
//! that only show up under crafted Byzantine behaviour plus asynchrony.

use rqs::consensus::ConsensusHarness;
use rqs::storage::byzantine::ScriptedServer;
use rqs::storage::{History, StorageHarness, StorageMsg, TsVal, Value};
use rqs::ThresholdConfig;
use rqs_sim::{Envelope, Fate, Time};
use std::collections::BTreeSet;

/// A Byzantine server fabricates a *slot-2* entry (which `valid2` trusts
/// when the server sits in every responded quorum): the reader's first
/// round cannot form a candidate set — the ghost is unsafe but not yet
/// invalid — so phase 1 must loop into further rounds until a quorum
/// avoiding the liar responds. Exercises the repeat-until-C≠∅ loop
/// (Fig. 7 lines 22–34) that best-case executions never touch.
#[test]
fn slot2_fabrication_forces_extra_read_rounds() {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut h = StorageHarness::new(rqs, 1);
    h.write(Value::from(5u64));

    // Server 0 turns Byzantine: it presents a history whose slot 2 holds
    // a fabricated pair ⟨9, 666⟩ (and echoes acks so writes don't stall).
    let ghost = TsVal::new(9, Value::from(666u64));
    let forged_history = {
        let mut hist = History::new();
        hist.apply_write(&TsVal::new(5, Value::from(5u64)), &BTreeSet::new(), 1);
        hist.apply_write(&ghost, &BTreeSet::new(), 2);
        hist
    };
    h.make_byzantine(
        0,
        Box::new(ScriptedServer::new(move |from, msg, ctx| match msg {
            StorageMsg::Rd { read_no, rnd } => ctx.send(
                from,
                StorageMsg::RdAck {
                    read_no,
                    rnd,
                    history: forged_history.clone().into(),
                },
            ),
            StorageMsg::Wr { ts, rnd, .. } => ctx.send(from, StorageMsg::WrAck { ts, rnd }),
            _ => {}
        })),
    );

    // Round 1 of the read sees only {0, 1, 2}: server 3's replies are
    // delayed past the first round.
    let reader = h.reader_id(0);
    let s3 = h.servers()[3];
    let release = h.now() + 6;
    h.world_mut().set_policy(move |e: &Envelope<StorageMsg>| {
        if e.from == s3 && e.to == reader && e.sent_at < release {
            Fate::DeliverAt(release)
        } else {
            Fate::DEFAULT
        }
    });
    let r = h.read(0);
    assert_eq!(r.returned.val, Value::from(5u64), "the real value wins");
    assert!(
        r.rounds > 1,
        "the ghost must block round 1 (got {} rounds)",
        r.rounds
    );
    h.check_atomicity().unwrap();
}

/// Eventual synchrony: before GST messages are randomly dropped; after
/// GST the network is reliable. Consensus must still terminate and agree
/// (the paper's liveness model, §4.1).
#[test]
fn consensus_terminates_after_gst() {
    for seed in [3u64, 7, 11] {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = ConsensusHarness::new(rqs, 2, 2);
        let gst = Time(25);
        // Deterministic pseudo-random pre-GST drops (~40%).
        let mut state = seed;
        h.world_mut()
            .set_policy(move |e: &Envelope<rqs::consensus::ConsensusMsg>| {
                if e.sent_at >= gst {
                    return Fate::DEFAULT;
                }
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (state >> 33) % 10 < 4 {
                    Fate::Drop
                } else {
                    Fate::DEFAULT
                }
            });
        h.propose(0, 1);
        h.propose(1, 2);
        assert!(
            h.run_until_learned(3_000_000),
            "seed {seed}: must terminate after GST"
        );
        let v = h.agreed_value().expect("agreement");
        assert!(v == 1 || v == 2, "validity: {v}");
    }
}

/// A reader whose first-round timer fires before any quorum responds
/// (slow network) still completes once replies arrive — the "wait for
/// quorum AND timeout" conjunction, from the timeout side.
#[test]
fn slow_first_round_still_completes() {
    let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
    let mut h = StorageHarness::new(rqs, 1);
    h.write(Value::from(3u64));
    // All server→reader replies take 10 ticks (≫ the 2Δ timer).
    let reader = h.reader_id(0);
    h.world_mut().set_policy(move |e: &Envelope<StorageMsg>| {
        if e.to == reader {
            Fate::Deliver { delay: 10 }
        } else {
            Fate::DEFAULT
        }
    });
    let r = h.read(0);
    assert_eq!(r.returned.val, Value::from(3u64));
    h.check_atomicity().unwrap();
}

/// Asymmetric partition healing: the writer can only reach a class-3
/// quorum, writes in 3 rounds; the partition heals; the next write is
/// fast again (no sticky degradation).
#[test]
fn degradation_is_not_sticky() {
    let rqs = ThresholdConfig::new(7, 2, 1)
        .with_class1(0)
        .with_class2(1)
        .build()
        .unwrap();
    let mut h = StorageHarness::new(rqs, 1);
    let writer = h.writer_id();
    let cut: Vec<_> = h.servers()[5..].to_vec();
    let heal = h.now() + 40;
    h.world_mut().set_policy(move |e: &Envelope<StorageMsg>| {
        if e.sent_at < heal && e.from == writer && cut.contains(&e.to) {
            Fate::Drop
        } else {
            Fate::DEFAULT
        }
    });
    let w1 = h.write(Value::from(1u64));
    assert_eq!(w1.rounds, 3, "partitioned from 2 servers → class-3 path");
    // Heal.
    let now = h.now();
    if now.ticks() < 40 {
        h.world_mut().run_before(Time(41));
    }
    let w2 = h.write(Value::from(2u64));
    assert_eq!(w2.rounds, 1, "after healing the fast path returns");
    let r = h.read(0);
    assert_eq!(r.returned.val, Value::from(2u64));
    h.check_atomicity().unwrap();
}

/// Byzantine server alternating identities of stored pairs ("poisoned
/// writeback"): acks write-backs but swaps the value it echoes in reads.
/// Safety holds because `safe()` demands a basic reporter set.
#[test]
fn value_swapping_server_cannot_poison_reads() {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let mut h = StorageHarness::new(rqs, 2);
    h.make_byzantine(
        2,
        Box::new(ScriptedServer::new(|from, msg, ctx| match msg {
            StorageMsg::Rd { read_no, rnd } => {
                // Swap: claim ts1 stored value 999.
                let mut hist = History::new();
                hist.apply_write(&TsVal::new(1, Value::from(999u64)), &BTreeSet::new(), 2);
                ctx.send(
                    from,
                    StorageMsg::RdAck {
                        read_no,
                        rnd,
                        history: hist.into(),
                    },
                );
            }
            StorageMsg::Wr { ts, rnd, .. } => ctx.send(from, StorageMsg::WrAck { ts, rnd }),
            _ => {}
        })),
    );
    h.write(Value::from(1u64));
    let r1 = h.read(0);
    let r2 = h.read(1);
    assert_eq!(r1.returned.val, Value::from(1u64));
    assert_eq!(r2.returned.val, Value::from(1u64));
    h.check_atomicity().unwrap();
}
