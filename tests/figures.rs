//! Integration tests asserting every figure/headline reproduction holds
//! end-to-end (the experiment index of DESIGN.md / EXPERIMENTS.md).

use bench::{exp_fig1, exp_fig16, exp_fig4, exp_fig8, exp_latency, exp_sweep};

#[test]
fn e1_figure1_naive_violates_rqs_safe() {
    let naive = exp_fig1::run_naive();
    assert!(
        naive.violated,
        "Figure 1: naive fast storage must violate atomicity"
    );
    assert_eq!(naive.rd1_rounds, 1);
    let rqs = exp_fig1::run_rqs();
    assert!(!rqs.violated, "the §1.2 refined variant must stay atomic");
}

#[test]
fn e2_figure3_verifies() {
    let rqs = bench::exp_fig3::figure3();
    assert!(rqs.verify().is_ok());
}

#[test]
fn e3_figure4_property3_chain() {
    let out = exp_fig4::run_chain();
    assert_eq!(out.ex1_write_rounds, 1);
    assert_eq!(out.ex3_read.0, 2);
    assert!(out.ex4_returns_written);
    assert!(out.ex6_returns_bottom);
}

#[test]
fn e4_storage_rounds_1_2_3() {
    use rqs::QuorumClass;
    for (f, class, w) in [
        (0usize, QuorumClass::Class1, 1usize),
        (1, QuorumClass::Class2, 2),
        (2, QuorumClass::Class3, 3),
    ] {
        let row = exp_latency::measure_storage(exp_latency::graded_storage_rqs(), f);
        assert_eq!(row.class, Some(class));
        assert_eq!(row.write_rounds, w, "write rounds at {f} crashes");
    }
    // Degraded reads grade 1/2/3 too.
    for (f, r) in [(0usize, 1usize), (1, 2), (2, 3)] {
        let row = exp_latency::measure_degraded_read(exp_latency::graded_storage_rqs(), f);
        assert_eq!(row.read_rounds, r, "read rounds at {f} crashes");
    }
}

#[test]
fn e5_theorem3_counterexample() {
    let bad = exp_fig8::run_invalid();
    assert_eq!(bad.rd1.0, 1);
    assert!(bad.violated, "Theorem 3: the invalid config must violate");
    let good = exp_fig8::run_valid();
    assert!(!good.violated, "the valid config must not violate");
}

#[test]
fn e6_consensus_delays_2_3_4() {
    use rqs::ThresholdConfig;
    let graded = || {
        ThresholdConfig::new(7, 2, 1)
            .with_class1(0)
            .with_class2(1)
            .build()
            .unwrap()
    };
    for (f, d) in [(0usize, 2u64), (1, 3), (2, 4)] {
        let row = exp_latency::measure_consensus(graded(), f);
        assert_eq!(row.delays, d, "delays at {f} crashes");
    }
}

#[test]
fn e7_theorem6_counterexample() {
    let bad = exp_fig16::run_invalid();
    assert!(bad.acks_validated);
    assert_eq!(bad.chosen, Some(1));
    assert!(bad.violated);
    let good = exp_fig16::run_valid();
    assert!(!good.violated);
}

#[test]
fn e8_feasibility_sweep_clean() {
    let res = exp_sweep::sweep(7);
    assert!(res.mismatches.is_empty(), "{:?}", res.mismatches);
}

#[test]
fn e9_view_change_recovers() {
    for crashes in 0..=2 {
        let (_, learned) = exp_latency::measure_view_change(crashes);
        assert!(learned, "must learn with {crashes} crashed leaders");
    }
}

#[test]
fn all_reports_render() {
    let reports = bench::all_reports();
    assert!(reports.len() >= 11);
    for r in reports {
        let text = r.to_string();
        assert!(text.contains("=="), "report must render: {text}");
    }
}
