//! Byzantine consensus in the state-machine-replication framing of §4:
//! clients (proposers) submit commands, acceptors order them, replicas
//! (learners) learn the outcome — here a single slot, as in the paper.
//!
//! Demonstrates:
//! - the 2-message-delay fast path with all acceptors correct;
//! - an equivocating Byzantine acceptor failing to break agreement;
//! - leader failure handled by the election module (view change).
//!
//! ```sh
//! cargo run --example byzantine_consensus
//! ```

use rqs::consensus::byzantine::ScriptedAcceptor;
use rqs::consensus::{ConsensusHarness, ConsensusMsg};
use rqs::core::threshold::ThresholdConfig;
use rqs::sim::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = 1;
    let config = ThresholdConfig::byzantine_fast(t);
    println!(
        "consensus over n = {} acceptors, tolerating t = k = {t} Byzantine",
        config.n()
    );

    // --- Scenario 1: best case ------------------------------------------
    let mut c = ConsensusHarness::new(config.build()?, 2, 3);
    c.propose(0, 1001);
    assert!(c.run_until_learned(200_000));
    println!(
        "[best case]   agreed on {:?} in {:?} message delays",
        c.agreed_value().unwrap(),
        c.learner_delays().into_iter().flatten().max().unwrap()
    );

    // --- Scenario 2: an equivocating acceptor ---------------------------
    let mut c = ConsensusHarness::new(config.build()?, 2, 3);
    {
        // Acceptor 3 echoes value 1001 to half the world and 9999 to the
        // other half.
        let cfg = c.config();
        let half_a: Vec<_> = cfg.acceptors[..2]
            .iter()
            .chain(&cfg.learners[..1])
            .copied()
            .collect();
        let half_b: Vec<_> = cfg.acceptors[2..]
            .iter()
            .chain(&cfg.learners[1..])
            .copied()
            .collect();
        let evil = ScriptedAcceptor::equivocating_update1(half_a, 1001, half_b, 9999);
        c.make_byzantine(3, Box::new(evil));
    }
    c.propose(0, 1001);
    assert!(c.run_until_learned(600_000));
    let agreed = c.agreed_value().expect("agreement despite equivocation");
    println!("[equivocator] agreed on {agreed:?} — Byzantine acceptor defeated");
    assert_eq!(agreed, 1001, "validity: only the proposed value");

    // --- Scenario 3: the leader crashes ---------------------------------
    let mut c = ConsensusHarness::new(config.build()?, 2, 3);
    c.crash_proposer_at(0, Time::ZERO); // proposer 0 dies before proposing
    c.propose(1, 2002); // proposer 1 carries on
    assert!(c.run_until_learned(800_000));
    println!(
        "[leader loss] agreed on {:?} after proposer 0 crashed",
        c.agreed_value().unwrap()
    );

    // Show that every acceptor converged too (decision broadcast).
    let decided: Vec<_> = (0..config.n()).map(|i| c.acceptor_decided(i)).collect();
    println!("acceptor decisions: {decided:?}");

    // Keep the unused import honest: messages are plain data.
    let _ = std::mem::size_of::<ConsensusMsg>();
    Ok(())
}
