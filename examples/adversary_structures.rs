//! General (non-threshold) adversary structures: correlated failures.
//!
//! The paper's RQS is defined for a *general adversary* — "various subsets
//! of processes can collude", relaxing the often-criticized assumption of
//! independent, identically distributed failures. This example models a
//! small data center where failures correlate by rack and by firmware
//! batch, derives a refined quorum system with [`find_maximal_classes`],
//! and compares its behaviour with a naive threshold model.
//!
//! ```sh
//! cargo run --example adversary_structures
//! ```

use rqs::core::analysis::{class_availability, find_maximal_classes, load};
use rqs::core::{Adversary, ProcessSet, QuorumClass};
use rqs::storage::StorageHarness;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six servers: racks {s1,s2}, {s3,s4}, {s5,s6}; servers s2 and s4
    // share a suspect firmware image. A whole rack, or the firmware
    // batch, may misbehave together — but not two racks at once.
    let adversary = Adversary::general(
        6,
        [
            ProcessSet::from_indices([0, 1]), // rack A
            ProcessSet::from_indices([2, 3]), // rack B
            ProcessSet::from_indices([1, 3]), // firmware batch
        ],
    )?;
    println!("adversary: {adversary}");

    // Candidate quorums, hand-picked around the racks (this is the
    // paper's Example 7 family).
    let quorums = vec![
        ProcessSet::from_indices([1, 3, 4, 5]),
        ProcessSet::from_indices([0, 1, 2, 3, 4]),
        ProcessSet::from_indices([0, 1, 2, 3, 5]),
    ];

    // Let the library find the strongest class assignment.
    let rqs = find_maximal_classes(&adversary, &quorums)?;
    println!("\nderived refined quorum system:\n{rqs}");

    println!("load: {:.3}", load(rqs.quorums(), 6));
    for class in [
        QuorumClass::Class1,
        QuorumClass::Class2,
        QuorumClass::Class3,
    ] {
        println!(
            "availability of {class} at p_fail = 0.05: {:.4}",
            class_availability(&rqs, class, 0.05)
        );
    }

    // Run the storage protocol over it with one server down in each of
    // racks A and B (liveness needs a fully-correct quorum: Q1 = {s2,s4,
    // s5,s6} survives exactly when s1 and s3 are the casualties).
    println!("\nstorage with s1 and s3 down (Q1 = {{s2,s4,s5,s6}} survives):");
    let mut storage = StorageHarness::new(rqs, 1);
    storage.crash_servers(ProcessSet::from_indices([0, 2]));
    let w = storage.write("two-racks-degraded".into());
    let r = storage.read(0);
    storage.check_atomicity()?;
    println!(
        "  write: {} round(s); read: {} round(s) → {}",
        w.rounds, r.rounds, r.returned
    );

    // Contrast: a threshold model must assume ANY 2 servers can fail
    // together, which costs feasibility headroom. The general structure
    // knows {s5,s6} never fail together, and keeps Q1 = {s2,s4,s5,s6}
    // class 1 — impossible under B_2 with 6 servers (needs n > t+2k+2q).
    let naive = rqs::ThresholdConfig::new(6, 2, 2).with_class1(2);
    println!(
        "\nthreshold strawman n=6 t=k=2 fast@4 feasible? {}",
        naive.is_feasible()
    );

    Ok(())
}
