//! Quickstart: build a refined quorum system, run the two protocols, and
//! watch graceful degradation as servers fail.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rqs::consensus::ConsensusHarness;
use rqs::core::threshold::ThresholdConfig;
use rqs::storage::StorageHarness;
use rqs::ProcessSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A graded system with all three quorum classes distinct:
    // n = 7 acceptors/servers, t = 2 may fail, k = 1 may be Byzantine,
    // class-1 quorums need all 7, class-2 quorums need 6.
    let config = ThresholdConfig::new(7, 2, 1).with_class1(0).with_class2(1);
    println!(
        "configuration: {config} (feasible: {})",
        config.is_feasible()
    );
    let rqs = config.build()?;
    println!(
        "{} quorums; {} class-1, {} class-2",
        rqs.len(),
        rqs.class1_ids().len(),
        rqs.class2_ids().len()
    );

    // --- Atomic storage: rounds degrade 1 → 2 → 3 with failures -------
    println!("\natomic storage (SWMR, Byzantine-tolerant, no data auth):");
    for crashes in 0..=2usize {
        let rqs = config.build()?;
        let n = rqs.universe_size();
        let faulty: ProcessSet = (n - crashes..n).collect();
        let class = rqs.best_available_class(faulty);
        let mut storage = StorageHarness::new(rqs, 1);
        if crashes > 0 {
            storage.crash_servers(faulty);
        }
        let write = storage.write(format!("value-{crashes}").as_str().into());
        let read = storage.read(0);
        storage.check_atomicity()?;
        println!(
            "  {crashes} crashed → best {}: write {} round(s), read {} round(s), read {}",
            class.map(|c| c.to_string()).unwrap_or_default(),
            write.rounds,
            read.rounds,
            read.returned
        );
    }

    // --- Consensus: message delays degrade 2 → 3 → 4 ------------------
    println!("\nconsensus (proposers/acceptors/learners, signatures only on view change):");
    for crashes in 0..=2usize {
        let rqs = config.build()?;
        let n = rqs.universe_size();
        let faulty: ProcessSet = (n - crashes..n).collect();
        let mut consensus = ConsensusHarness::new(rqs, 2, 2);
        if crashes > 0 {
            consensus.crash_acceptors(faulty);
        }
        consensus.propose(0, 40 + crashes as u64);
        assert!(consensus.run_until_learned(400_000));
        let delays = consensus
            .learner_delays()
            .into_iter()
            .flatten()
            .max()
            .unwrap();
        println!(
            "  {crashes} crashed → agreed on {:?} in {delays} message delays",
            consensus.agreed_value().unwrap()
        );
    }

    Ok(())
}
