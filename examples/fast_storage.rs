//! A distributed disk array in the style the paper's introduction
//! motivates (FAB-like storage from commodity components, §1.3):
//! a write-ahead metadata register replicated across bricks, where
//! best-case latency matters and bricks may fail — some arbitrarily.
//!
//! Demonstrates:
//! - a real (threaded, channel-connected) deployment via `rqs_runtime`;
//! - wall-clock latencies of the 1-round fast path;
//! - deterministic replay of a misbehaving brick in the simulator, with
//!   the atomicity checker as the correctness oracle.
//!
//! ```sh
//! cargo run --example fast_storage
//! ```

use rqs::core::threshold::ThresholdConfig;
use rqs::runtime::RtStorage;
use rqs::storage::byzantine::ForgedServer;
use rqs::storage::{StorageHarness, TsVal, Value};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 7 bricks; up to 2 may be down, 1 of those arbitrarily faulty.
    let config = ThresholdConfig::new(7, 2, 1).with_class1(0).with_class2(1);
    println!("disk-array metadata register over {config}");

    // --- Part 1: threaded deployment, wall-clock numbers --------------
    println!("\n[threaded runtime] 20 write/read pairs on live threads:");
    let mut array = RtStorage::with_tick(config.build()?, 1, Duration::from_micros(500));
    let mut write_total = Duration::ZERO;
    let mut read_total = Duration::ZERO;
    for i in 0..20u64 {
        let (w, w_wall) = array.write(Value::from(i));
        let (r, r_wall) = array.read(0);
        assert_eq!(r.returned.val, Value::from(i));
        assert_eq!(w.rounds, 1, "all bricks alive: fast path");
        write_total += w_wall;
        read_total += r_wall;
    }
    println!("  mean write latency: {:?} (1 round)", write_total / 20);
    println!("  mean read  latency: {:?} (1 round)", read_total / 20);
    array.shutdown();

    // --- Part 2: deterministic replay of a lying brick -----------------
    println!("\n[simulator] a brick advertises a fabricated newer version:");
    let mut sim = StorageHarness::new(config.build()?, 1);
    sim.write(Value::from(1u64));
    // Brick 6 turns Byzantine and fabricates version 99.
    let fabricated = TsVal::new(99, Value::from(0xDEAD_u64));
    sim.make_byzantine(6, Box::new(ForgedServer::with_slot1(&fabricated)));
    let read = sim.read(0);
    println!(
        "  read returned {} in {} round(s) — the fabricated ⟨99,…⟩ was ignored",
        read.returned, read.rounds
    );
    assert_eq!(read.returned.ts, 1, "fabrication must not be returned");
    sim.check_atomicity()?;
    println!("  atomicity checker: ok");

    Ok(())
}
