//! # rqs — Refined Quorum Systems
//!
//! A production-quality Rust reproduction of *Refined Quorum Systems*
//! (Rachid Guerraoui and Marko Vukolić, PODC 2007 / EPFL
//! LPD-REPORT-2007-002): the refined-quorum abstraction itself, the
//! optimally-resilient best-case-optimal Byzantine **atomic storage** and
//! **consensus** algorithms built on it, a deterministic simulation
//! substrate able to replay the paper's indistinguishability executions,
//! and a threaded runtime for wall-clock measurements.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`core`] ([`rqs_core`]) — process sets, adversary structures,
//!   quorum classes, Properties 1–3, threshold constructions, analysis;
//! - [`sim`] ([`rqs_sim`]) — the deterministic discrete-event simulator,
//!   plus the [`Substrate`](rqs_sim::Substrate) abstraction every
//!   deployment driver is generic over and the declarative
//!   [`Scenario`](rqs_sim::Scenario) fault engine (partitions with heal
//!   times, lossy/duplicating links, crash-restart, Byzantine swap-in)
//!   that runs identically on both substrates;
//! - [`crypto`] ([`rqs_crypto`]) — simulated unforgeable signatures;
//! - [`storage`] ([`rqs_storage`]) — the SWMR atomic storage (Figs. 5–7)
//!   plus ABD and naive baselines, deployed by the substrate-generic
//!   `StorageDeployment`;
//! - [`consensus`] ([`rqs_consensus`]) — the consensus algorithm
//!   (Figs. 9–15) with its `choose()` safety core, deployed by the
//!   substrate-generic `ConsensusDeployment`;
//! - [`runtime`] ([`rqs_runtime`]) — the node-per-thread
//!   [`Substrate`](rqs_sim::Substrate) implementation over crossbeam
//!   channels (scenarios compile to an interposed message-filter thread);
//! - [`check`] ([`rqs_check`]) — systematic schedule exploration (model
//!   checking) over the deterministic world: bounded DFS with state-hash
//!   deduplication and fault branching, seeded random walks, pluggable
//!   invariants (SWMR atomicity, consensus agreement/validity, fast-path
//!   bounds), counterexample shrinking and replay;
//! - [`kv`] ([`rqs_kv`]) — the sharded, batched multi-object KV service:
//!   many SWMR registers multiplexed over one server set, with
//!   per-object atomicity checking, a seeded workload generator, and one
//!   substrate-generic `KvDeployment` driver (`KvSim`/`RtKv` are its
//!   aliases);
//! - [`obs`] ([`rqs_obs`]) — end-to-end observability: the
//!   [`Tracer`](rqs_obs::Tracer) trait with a lock-free flight recorder
//!   and a zero-overhead no-op sink, typed trace events emitted from
//!   every layer on both substrates, log-bucketed latency histograms,
//!   slow-path latency-class attribution (the paper's degradation
//!   conditions), and Chrome trace-event export.
//!
//! ## Two results in two dozen lines
//!
//! ```
//! use rqs::core::threshold::ThresholdConfig;
//! use rqs::storage::StorageHarness;
//! use rqs::consensus::ConsensusHarness;
//!
//! // n = 3t+1 = 4 servers, one may be Byzantine (the paper's flagship
//! // instantiation: all quorums class 2, the full set class 1).
//! let rqs = ThresholdConfig::byzantine_fast(1).build()?;
//!
//! // Atomic storage: 1-round writes and reads in the best case.
//! let mut storage = StorageHarness::new(rqs.clone(), 1);
//! assert_eq!(storage.write("hello".into()).rounds, 1);
//! assert_eq!(storage.read(0).rounds, 1);
//! storage.check_atomicity()?;
//!
//! // Consensus: learners learn in 2 message delays in the best case.
//! let mut consensus = ConsensusHarness::new(rqs, 2, 2);
//! consensus.propose(0, 42);
//! assert!(consensus.run_until_learned(100_000));
//! assert_eq!(consensus.agreed_value(), Some(42));
//! assert!(consensus.learner_delays().iter().all(|d| *d == Some(2)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rqs_check as check;
pub use rqs_consensus as consensus;
pub use rqs_core as core;
pub use rqs_crypto as crypto;
pub use rqs_kv as kv;
pub use rqs_obs as obs;
pub use rqs_runtime as runtime;
pub use rqs_sim as sim;
pub use rqs_storage as storage;

pub use rqs_core::{Adversary, ProcessId, ProcessSet, QuorumClass, QuorumId, Rqs, ThresholdConfig};
