//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic SplitMix64-backed [`rngs::StdRng`] plus the
//! [`Rng`] / [`SeedableRng`] trait subset the randomized tests use
//! (`seed_from_u64`, `gen_range` over half-open and inclusive integer
//! ranges, `gen_bool`). Distribution quality is ample for test-case
//! generation; not cryptographic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Concrete RNG types.
pub mod rngs {
    /// A deterministic 64-bit RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    fn next(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush when
        // used as a 64-bit generator; trivially seedable from one word.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// A range random values of type `T` can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi as u128 - lo as u128 + 1) as u64;
                lo + (rng.next() % width) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next() % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next() % width) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(isize, i64, i32, i16, i8);

/// Random value generation over an RNG.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized;

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads), "suspicious bias: {heads}");
    }
}
