//! Offline stand-in for `crossbeam-channel`, implemented over
//! `std::sync::mpsc`.
//!
//! Covers the subset the runtime uses: [`unbounded`] / [`bounded`]
//! construction, clonable [`Sender`]s, and blocking [`Receiver`] iteration.
//! `bounded` does not enforce a capacity (the runtime only uses it for
//! one-shot rendezvous channels where backpressure is irrelevant).

#![forbid(unsafe_code)]

use std::sync::mpsc;

/// Sending half of a channel; clonable.
pub struct Sender<T>(mpsc::Sender<T>);

/// Receiving half of a channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

/// Error returned by [`Sender::send`] when the receiver is gone; carries
/// the unsent message.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Enqueues a message; fails only if the receiver was dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Blocking iterator over incoming messages; ends when all senders
    /// are dropped.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.0.iter()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
        self.0.try_recv()
    }

    /// Blocks until a message arrives, all senders are dropped, or
    /// `timeout` elapses.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, mpsc::RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }
}

/// An unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

/// A "bounded" channel; capacity is not enforced by this stand-in.
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41u32).unwrap());
        tx.send(1).unwrap();
        let sum: u32 = [rx.recv().unwrap(), rx.recv().unwrap()].iter().sum();
        assert_eq!(sum, 42);
    }

    #[test]
    fn iter_ends_when_senders_drop() {
        let (tx, rx) = bounded(1);
        tx.send(7u8).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![7]);
    }
}
