//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, integer-range and
//! bit-set strategies, `prop::collection::vec`, `prop::option::of`, the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, and
//! [`test_runner::ProptestConfig`]. Generation is deterministic per test
//! (seeded from the test name), so failures reproduce exactly; there is
//! no shrinking — the failing case number and message are reported
//! instead.

#![forbid(unsafe_code)]

/// Test-runner configuration and error types.
pub mod test_runner {
    use std::fmt;

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the heavier
            // simulation-backed properties fast while still exploring.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property; carries the assertion message.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG driving strategy generation, backed by the
    /// workspace `rand` stand-in (as real proptest is backed by rand)
    /// and seeded from the test name, so each test replays identically.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// RNG whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            use rand::SeedableRng;
            // FNV-1a over the test name.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::Rng;
            self.inner.next_u64()
        }

        /// Uniform draw below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let width = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(width) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy on empty range");
                    let width = (hi as u128 - lo as u128 + 1) as u64;
                    lo + rng.below(width) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);
}

/// Namespaced strategy constructors (`prop::collection::vec`, …).
pub mod prop {
    /// Bit-set strategies.
    pub mod bits {
        /// Strategies over `u64` bit masks.
        pub mod u64 {
            use crate::strategy::Strategy;
            use crate::test_runner::TestRng;

            /// Strategy for `u64` values whose set bits all lie in
            /// `[lo, hi)`.
            pub struct BitsBetween {
                mask: u64,
            }

            /// Generates masks with arbitrary subsets of bits
            /// `lo..hi` set.
            pub fn between(lo: usize, hi: usize) -> BitsBetween {
                assert!(lo <= hi && hi <= 64, "bit range out of bounds");
                let upper = if hi == 64 { u64::MAX } else { (1u64 << hi) - 1 };
                let lower = if lo == 64 { u64::MAX } else { (1u64 << lo) - 1 };
                BitsBetween {
                    mask: upper & !lower,
                }
            }

            impl Strategy for BitsBetween {
                type Value = u64;
                fn generate(&self, rng: &mut TestRng) -> u64 {
                    rng.next_u64() & self.mask
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Element count for [`vec`]: an exact size or a half-open range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for `Vec`s of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy with `size` elements (exact or ranged).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy wrapping `inner` values in `Option`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `None` about a quarter of the time, otherwise
        /// `Some` of the inner strategy.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests over strategy-drawn inputs.
///
/// Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0u32..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0u64..100;
        for _ in 0..32 {
            assert_eq!(s.clone().generate(&mut a), s.clone().generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 1u64..=3) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=3).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn vec_sizes_respected(
            exact in prop::collection::vec(0u32..5, 4),
            ranged in prop::collection::vec(0u32..5, 1..6),
            opt in prop::option::of(1u64..4),
        ) {
            prop_assert_eq!(exact.len(), 4);
            prop_assert!((1..6).contains(&ranged.len()));
            if let Some(v) = opt {
                prop_assert!((1..4).contains(&v));
            }
        }

        #[test]
        fn bit_strategies_masked(bits in prop::bits::u64::between(0, 16)) {
            prop_assert_eq!(bits >> 16, 0);
        }

        #[test]
        fn prop_map_applies(doubled in (0u64..10).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0 && doubled < 20);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..1000) {
            prop_assert!(x < 1000);
        }
    }
}
