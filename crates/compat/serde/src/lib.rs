//! Offline stand-in for the `serde` derive macros.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! forward-looking annotations — nothing actually serializes yet, and the
//! build environment has no registry access. These derives therefore
//! expand to nothing; swapping in real serde later requires only a
//! manifest change, no source edits.

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize` in derive position.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize` in derive position.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
