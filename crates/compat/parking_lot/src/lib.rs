//! Offline stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Exposes the poison-free API surface the runtime uses: [`Mutex::lock`]
//! returning a guard directly, and [`Condvar::wait_until`] /
//! [`Condvar::wait_for`] taking `&mut MutexGuard`. Poisoned std locks are
//! transparently recovered (parking_lot has no poisoning).

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases the lock on drop.
///
/// The inner `Option` is always `Some` except transiently inside a
/// condvar wait, where ownership moves through the std API.
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` iff the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl<T> Mutex<T> {
    /// Wraps a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified or `timeout` has elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present outside wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or the `deadline` instant is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait_for(&mut g, Duration::from_secs(5));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
