//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], `sample_size` — with a simple
//! min/mean timing loop instead of criterion's statistical machinery.
//! Numbers are indicative; the benches' embedded correctness assertions
//! (round counts, message delays) run on every sample either way.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    last: Option<Stats>,
}

#[derive(Clone, Copy)]
struct Stats {
    min: Duration,
    mean: Duration,
}

impl Bencher {
    /// Times `f`, running one warm-up plus `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        hint::black_box(f()); // warm-up, also surfaces panics early
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            hint::black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last = Some(Stats {
            min,
            mean: total / self.samples as u32,
        });
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    match b.last {
        Some(s) => println!(
            "bench {label:<50} min {:>12?}  mean {:>12?}  ({samples} samples)",
            s.min, s.mean
        ),
        None => println!("bench {label:<50} (no iter() call)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured-iteration count for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        run_one(&label, self.samples, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op in this stand-in).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    const DEFAULT_SAMPLES: usize = 10;

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: Self::DEFAULT_SAMPLES,
            _criterion: self,
        }
    }

    /// Benchmarks `f` under a bare name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, Self::DEFAULT_SAMPLES, &mut f);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("inc", 1), &1usize, |b, &x| {
            b.iter(|| {
                calls += x;
                calls
            });
        });
        group.finish();
        assert!(calls >= 4, "warm-up + samples ran: {calls}");
    }
}
