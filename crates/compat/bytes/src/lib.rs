//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the real crate the workspace uses:
//! [`Bytes`], an immutable, cheaply-clonable byte container backed by
//! `Arc<[u8]>`, and [`BytesMut`], a growable accumulation buffer whose
//! allocation survives [`clear`](BytesMut::clear) — the piece that lets
//! hot paths refill one buffer per destination instead of allocating a
//! fresh `Vec` per message.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Clones share the underlying allocation, matching the cost model of the
/// real `bytes::Bytes` for the operations this workspace performs.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies the slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

/// A growable, reusable byte buffer.
///
/// Unlike [`Bytes`], the backing allocation is exclusively owned and
/// kept across [`clear`](Self::clear), so a long-lived `BytesMut` filled
/// and drained in a loop stops allocating once it reaches its high-water
/// mark. [`freeze`](Self::freeze) converts the accumulated contents into
/// an immutable [`Bytes`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Appends `data` to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Appends one byte to the buffer.
    pub fn put_u8(&mut self, byte: u8) {
        self.0.push(byte);
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Truncates the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.0.truncate(len);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Capacity of the backing allocation.
    pub fn capacity(&self) -> usize {
        self.0.capacity()
    }

    /// Converts the contents into an immutable [`Bytes`] (one copy into
    /// a shared allocation; the real crate's zero-copy freeze is an
    /// optimisation this stand-in forgoes).
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::from(self.0))
    }

    /// Takes the accumulated contents as a `Vec`, leaving the buffer
    /// empty (the allocation moves out with the contents).
    pub fn take_vec(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut(v.to_vec())
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_mut_accumulates_and_freezes() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"ab");
        b.put_u8(b'c');
        assert_eq!(&*b, b"abc");
        assert_eq!(b.len(), 3);
        b.truncate(2);
        assert_eq!(&*b, b"ab");
        assert_eq!(b.clone().freeze(), Bytes::from(&b"ab"[..]));
    }

    #[test]
    fn clear_keeps_the_allocation() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[0u8; 256]);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "clear must not shrink");
        b.reserve(cap); // no-op: capacity already there
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.take_vec().capacity(), cap, "allocation moves out");
        assert_eq!(b.capacity(), 0);
    }

    #[test]
    fn roundtrip_and_sharing() {
        let b = Bytes::copy_from_slice(b"abc");
        let c = b.clone();
        assert_eq!(&*b, b"abc");
        assert_eq!(b, c);
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::from(vec![1u8, 2]).as_ref(), &[1, 2]);
    }
}
