//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of [`Bytes`] the workspace uses: an immutable,
//! cheaply-clonable byte container backed by `Arc<[u8]>`.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// Clones share the underlying allocation, matching the cost model of the
/// real `bytes::Bytes` for the operations this workspace performs.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies the slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_sharing() {
        let b = Bytes::copy_from_slice(b"abc");
        let c = b.clone();
        assert_eq!(&*b, b"abc");
        assert_eq!(b, c);
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::from(vec![1u8, 2]).as_ref(), &[1, 2]);
    }
}
