//! Durable crash-recovery storage: an append-only write-ahead log plus a
//! snapshot store, behind the [`Durable`] trait.
//!
//! A node that must survive *amnesia* crashes (volatile state lost)
//! appends a delta record for every externally-visible state change
//! **before** acknowledging it, and may periodically [`install_snapshot`]
//! to compact the log. On an amnesia restart the node is rebuilt from its
//! store only: [`load`] returns the last installed snapshot plus every
//! record that survived the crash.
//!
//! Two backends implement the trait:
//!
//! - [`MemDurable`] — in-memory and fully deterministic; the simulator
//!   backend. "Disk" is a byte vector.
//! - [`FileDurable`] — file-backed (`wal` + `snapshot` files under a
//!   directory); the threaded-runtime backend.
//!
//! Both simulate the two classic durability hazards:
//!
//! - **fsync points** ([`StoreConfig::sync_every`]): appends accumulate in
//!   a volatile tail buffer and only reach the durable medium at sync
//!   points. Everything after the last sync is lost by a crash. The
//!   default (`sync_every = 1`) syncs every append — the write-ahead
//!   guarantee protocols rely on before acking.
//! - **torn tails** ([`StoreConfig::torn_tail`]): a crash may leave a
//!   *prefix* of the first unsynced record on the medium. The framed
//!   decoder (length + FNV-1a checksum per record) detects and discards
//!   the torn record at load, counting it in
//!   [`StoreStats::torn_discarded`].
//!
//! [`install_snapshot`]: Durable::install_snapshot
//! [`load`]: Durable::load

use bytes::BytesMut;
use rqs_obs::{Obs, TraceKind, LANE_SYS};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

pub mod codec;

/// 64-bit FNV-1a (the workspace's stable dependency-free hash), used here
/// as the per-record checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Record framing: `[len: u32 LE][checksum: u64 LE][payload]`.
const FRAME_HEADER: usize = 4 + 8;

/// Appends one framed record to `out` in place — the hot-path variant
/// that lets a store reuse a single tail buffer across appends instead
/// of allocating a `Vec` per record.
fn frame_into(out: &mut BytesMut, record: &[u8]) {
    out.reserve(FRAME_HEADER + record.len());
    out.extend_from_slice(&(record.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(record).to_le_bytes());
    out.extend_from_slice(record);
}

#[cfg(test)]
fn frame(record: &[u8]) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(FRAME_HEADER + record.len());
    frame_into(&mut out, record);
    out.take_vec()
}

/// Decodes every intact framed record in `bytes`; returns the records and
/// whether a torn (truncated or checksum-failing) tail was discarded.
fn deframe(bytes: &[u8]) -> (Vec<Vec<u8>>, bool) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        if bytes.len() - at < FRAME_HEADER {
            return (records, true);
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        let start = at + FRAME_HEADER;
        if bytes.len() - start < len {
            return (records, true);
        }
        let payload = &bytes[start..start + len];
        if fnv1a(payload) != sum {
            return (records, true);
        }
        records.push(payload.to_vec());
        at = start + len;
    }
    (records, false)
}

/// Store configuration: where the durability hazards sit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Sync the log to the durable medium every `sync_every` appends.
    /// `1` (the default) syncs each append before it is visible to a
    /// crash — the write-ahead guarantee. `0` never auto-syncs (only
    /// explicit [`Durable::sync`] calls persist the tail).
    pub sync_every: usize,
    /// Simulate torn tails: a crash leaves half of the first unsynced
    /// record on the medium, which the loader must detect and discard.
    pub torn_tail: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            sync_every: 1,
            torn_tail: false,
        }
    }
}

impl StoreConfig {
    /// The write-ahead default: sync every append, no torn tails.
    pub fn write_ahead() -> Self {
        StoreConfig::default()
    }

    /// A hazardous configuration: sync only every `n` appends and leave
    /// torn tails behind crashes. For tests that demonstrate what the
    /// write-ahead discipline prevents.
    pub fn lazy(n: usize) -> Self {
        StoreConfig {
            sync_every: n,
            torn_tail: true,
        }
    }
}

/// Counters every backend maintains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended to the log.
    pub appends: usize,
    /// Sync points (explicit calls and auto-syncs).
    pub syncs: usize,
    /// Snapshots installed.
    pub snapshots: usize,
    /// Size of the last installed snapshot, in bytes.
    pub snapshot_bytes: usize,
    /// Bytes currently in the durable log (synced, framed).
    pub log_bytes: usize,
    /// Records returned by [`Durable::load`] calls, summed.
    pub replayed: usize,
    /// Torn tails discarded at load.
    pub torn_discarded: usize,
    /// Records lost to crashes (appended but never synced).
    pub lost_unsynced: usize,
    /// Simulated crashes survived.
    pub crashes: usize,
}

impl StoreStats {
    /// Field-wise sum (aggregating a fleet of stores for reports).
    pub fn merge(&mut self, other: &StoreStats) {
        self.appends += other.appends;
        self.syncs += other.syncs;
        self.snapshots += other.snapshots;
        self.snapshot_bytes += other.snapshot_bytes;
        self.log_bytes += other.log_bytes;
        self.replayed += other.replayed;
        self.torn_discarded += other.torn_discarded;
        self.lost_unsynced += other.lost_unsynced;
        self.crashes += other.crashes;
    }
}

/// What a crashed node gets back from its store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovered {
    /// The last installed snapshot, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Log records appended after that snapshot, oldest first.
    pub log: Vec<Vec<u8>>,
}

/// An append-only write-ahead log plus snapshot store.
///
/// Appends go to a volatile tail until a sync point makes them durable;
/// [`crash`](Durable::crash) models the process dying (the unsynced tail
/// is lost, possibly leaving a torn record), and [`load`](Durable::load)
/// is what a recovering node reads.
pub trait Durable: Send {
    /// Appends one record to the log (volatile until the next sync
    /// point; auto-syncs per [`StoreConfig::sync_every`]).
    fn append(&mut self, record: &[u8]);

    /// Forces the unsynced tail onto the durable medium.
    fn sync(&mut self);

    /// Installs a full-state snapshot and truncates the log. Snapshots
    /// are synced immediately (atomically replacing any previous one).
    fn install_snapshot(&mut self, snapshot: &[u8]);

    /// Simulates a process crash: the unsynced tail is lost; with
    /// [`StoreConfig::torn_tail`] half of its first record stays behind
    /// as a torn tail for the loader to reject.
    fn crash(&mut self);

    /// Reads the store back: last snapshot + surviving log records.
    fn load(&mut self) -> Recovered;

    /// Counters.
    fn stats(&self) -> StoreStats;
}

// ---- in-memory backend ------------------------------------------------

/// The deterministic in-memory backend: "disk" is a byte vector.
#[derive(Debug, Default)]
pub struct MemDurable {
    config: StoreConfig,
    /// Synced (durable) framed log bytes.
    disk_log: Vec<u8>,
    /// Durable snapshot.
    disk_snapshot: Option<Vec<u8>>,
    /// Unsynced framed bytes, in one reusable buffer: `clear` keeps the
    /// allocation, so a steady append/sync cadence stops allocating once
    /// the buffer reaches its high-water mark.
    tail: BytesMut,
    /// Framed length of each unsynced record (record count for
    /// `sync_every` / `lost_unsynced`; first entry bounds the torn tail).
    tail_lens: Vec<usize>,
    stats: StoreStats,
}

impl MemDurable {
    /// A store with the write-ahead default configuration.
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// A store with an explicit configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        MemDurable {
            config,
            ..MemDurable::default()
        }
    }
}

impl Durable for MemDurable {
    fn append(&mut self, record: &[u8]) {
        frame_into(&mut self.tail, record);
        self.tail_lens.push(FRAME_HEADER + record.len());
        self.stats.appends += 1;
        if self.config.sync_every > 0 && self.tail_lens.len() >= self.config.sync_every {
            self.sync();
        }
    }

    fn sync(&mut self) {
        if self.tail_lens.is_empty() {
            return;
        }
        self.disk_log.extend_from_slice(&self.tail);
        self.tail.clear();
        self.tail_lens.clear();
        self.stats.syncs += 1;
        self.stats.log_bytes = self.disk_log.len();
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) {
        self.sync(); // durable order: log precedes snapshot cut-over
        self.disk_snapshot = Some(snapshot.to_vec());
        self.disk_log.clear();
        self.tail.clear();
        self.tail_lens.clear();
        self.stats.snapshots += 1;
        self.stats.snapshot_bytes = snapshot.len();
        self.stats.log_bytes = 0;
    }

    fn crash(&mut self) {
        self.stats.crashes += 1;
        if self.tail_lens.is_empty() {
            return;
        }
        self.stats.lost_unsynced += self.tail_lens.len();
        if self.config.torn_tail {
            let first = &self.tail[..self.tail_lens[0]];
            self.disk_log.extend_from_slice(&first[..first.len() / 2]);
        }
        self.tail.clear();
        self.tail_lens.clear();
        self.stats.log_bytes = self.disk_log.len();
    }

    fn load(&mut self) -> Recovered {
        let (log, torn) = deframe(&self.disk_log);
        if torn {
            self.stats.torn_discarded += 1;
            // Heal the medium: truncate the torn bytes so later appends
            // start at a clean frame boundary.
            let clean: usize = log.iter().map(|r| FRAME_HEADER + r.len()).sum();
            self.disk_log.truncate(clean);
            self.stats.log_bytes = self.disk_log.len();
        }
        self.stats.replayed += log.len();
        Recovered {
            snapshot: self.disk_snapshot.clone(),
            log,
        }
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

// ---- file backend -----------------------------------------------------

/// The file-backed backend: `wal` and `snapshot` files under a directory.
///
/// Appends buffer in memory and reach the `wal` file (with `sync_data`)
/// at sync points; snapshots are written to a temp file and atomically
/// renamed over `snapshot`. The crash/torn-tail simulation is identical
/// to [`MemDurable`]'s, applied to the on-disk bytes.
#[derive(Debug)]
pub struct FileDurable {
    config: StoreConfig,
    dir: PathBuf,
    /// Unsynced framed bytes in one reusable buffer (see
    /// [`MemDurable::tail`]); synced to the `wal` file in a single
    /// contiguous write instead of a flatten-and-collect.
    tail: BytesMut,
    /// Framed length of each unsynced record.
    tail_lens: Vec<usize>,
    stats: StoreStats,
}

impl FileDurable {
    /// Opens (creating if needed) a store under `dir`. Existing `wal` /
    /// `snapshot` files are preserved — reopening a directory recovers
    /// the previous store's durable contents.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with_config(dir, StoreConfig::default())
    }

    /// Opens with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn open_with_config(dir: impl AsRef<Path>, config: StoreConfig) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut store = FileDurable {
            config,
            dir,
            tail: BytesMut::new(),
            tail_lens: Vec::new(),
            stats: StoreStats::default(),
        };
        store.stats.log_bytes = store
            .wal_path()
            .metadata()
            .map(|m| m.len() as usize)
            .unwrap_or(0);
        Ok(store)
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot")
    }

    fn append_disk(&mut self, bytes: &[u8]) {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path())
            .expect("open wal for append");
        f.write_all(bytes).expect("append wal");
        f.sync_data().expect("sync wal");
        self.stats.log_bytes = self
            .wal_path()
            .metadata()
            .map(|m| m.len() as usize)
            .unwrap_or(0);
    }
}

impl Durable for FileDurable {
    fn append(&mut self, record: &[u8]) {
        frame_into(&mut self.tail, record);
        self.tail_lens.push(FRAME_HEADER + record.len());
        self.stats.appends += 1;
        if self.config.sync_every > 0 && self.tail_lens.len() >= self.config.sync_every {
            self.sync();
        }
    }

    fn sync(&mut self) {
        if self.tail_lens.is_empty() {
            return;
        }
        let bytes = std::mem::take(&mut self.tail);
        self.append_disk(&bytes);
        // Hand the allocation back so the next sync cycle reuses it.
        self.tail = bytes;
        self.tail.clear();
        self.tail_lens.clear();
        self.stats.syncs += 1;
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) {
        self.sync();
        let tmp = self.dir.join("snapshot.tmp");
        fs::write(&tmp, snapshot).expect("write snapshot");
        fs::rename(&tmp, self.snapshot_path()).expect("install snapshot");
        let _ = fs::remove_file(self.wal_path());
        self.tail.clear();
        self.tail_lens.clear();
        self.stats.snapshots += 1;
        self.stats.snapshot_bytes = snapshot.len();
        self.stats.log_bytes = 0;
    }

    fn crash(&mut self) {
        self.stats.crashes += 1;
        if self.tail_lens.is_empty() {
            return;
        }
        self.stats.lost_unsynced += self.tail_lens.len();
        if self.config.torn_tail {
            let torn = self.tail[..self.tail_lens[0] / 2].to_vec();
            self.append_disk(&torn);
        }
        self.tail.clear();
        self.tail_lens.clear();
    }

    fn load(&mut self) -> Recovered {
        let bytes = fs::read(self.wal_path()).unwrap_or_default();
        let (log, torn) = deframe(&bytes);
        if torn {
            self.stats.torn_discarded += 1;
            let clean: usize = log.iter().map(|r| FRAME_HEADER + r.len()).sum();
            let mut healed = bytes;
            healed.truncate(clean);
            fs::write(self.wal_path(), &healed).expect("heal torn wal");
            self.stats.log_bytes = clean;
        }
        self.stats.replayed += log.len();
        Recovered {
            snapshot: fs::read(self.snapshot_path()).ok(),
            log,
        }
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

// ---- shared handle ----------------------------------------------------

/// A cloneable handle to one node's store.
///
/// The automaton holds one clone (appending deltas before it acks) and
/// the deployment holds another (injecting crashes, reading stats,
/// verifying recovery) — the store outlives the node's volatile state,
/// which is the whole point.
#[derive(Clone)]
pub struct StoreHandle {
    inner: Arc<Mutex<Box<dyn Durable>>>,
    /// Shared across clones so tracing installed by the deployment is
    /// visible to the automaton's clone too. Durability events are not
    /// clock-stamped (the store has no clock): they carry tick 0 and the
    /// owning node id in both the node and op fields.
    obs: Arc<Mutex<Obs>>,
}

impl fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StoreHandle({:?})", self.stats())
    }
}

impl StoreHandle {
    /// Wraps any backend.
    pub fn new(backend: Box<dyn Durable>) -> Self {
        StoreHandle {
            inner: Arc::new(Mutex::new(backend)),
            obs: Arc::new(Mutex::new(Obs::nop())),
        }
    }

    /// Installs a structured-trace observer (shared by every clone of
    /// this handle); its tag should be the owning node's id.
    pub fn set_obs(&self, obs: Obs) {
        *self.obs.lock().expect("obs lock") = obs;
    }

    fn emit(&self, kind: TraceKind, a: u64, b: u64) {
        let obs = self.obs.lock().expect("obs lock");
        if obs.enabled() {
            obs.emit(kind, 0, obs.tag(), LANE_SYS, a, b);
        }
    }

    /// A deterministic in-memory store (the simulator default).
    pub fn mem() -> Self {
        Self::new(Box::new(MemDurable::new()))
    }

    /// An in-memory store with an explicit configuration.
    pub fn mem_with(config: StoreConfig) -> Self {
        Self::new(Box::new(MemDurable::with_config(config)))
    }

    /// A file-backed store under `dir` (the threaded-runtime backend).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory.
    pub fn file(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(FileDurable::open(dir)?)))
    }

    /// See [`Durable::append`].
    pub fn append(&self, record: &[u8]) {
        self.inner.lock().expect("store lock").append(record);
        self.emit(TraceKind::WalAppended, record.len() as u64, 0);
    }

    /// See [`Durable::sync`].
    pub fn sync(&self) {
        self.inner.lock().expect("store lock").sync();
        self.emit(TraceKind::Fsync, 0, 0);
    }

    /// See [`Durable::install_snapshot`].
    pub fn install_snapshot(&self, snapshot: &[u8]) {
        self.inner
            .lock()
            .expect("store lock")
            .install_snapshot(snapshot);
        self.emit(TraceKind::Fsync, snapshot.len() as u64, 1);
    }

    /// See [`Durable::crash`].
    pub fn crash(&self) {
        self.inner.lock().expect("store lock").crash();
        self.emit(TraceKind::Crash, 0, 2);
    }

    /// See [`Durable::load`].
    pub fn load(&self) -> Recovered {
        let rec = self.inner.lock().expect("store lock").load();
        self.emit(TraceKind::Recover, rec.log.len() as u64, 2);
        rec
    }

    /// See [`Durable::stats`].
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().expect("store lock").stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(store: &mut dyn Durable) {
        store.append(b"one");
        store.append(b"two");
        let rec = store.load();
        assert_eq!(rec.snapshot, None);
        assert_eq!(rec.log, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn mem_append_load_roundtrip() {
        roundtrip(&mut MemDurable::new());
    }

    #[test]
    fn mem_snapshot_truncates_log() {
        let mut s = MemDurable::new();
        s.append(b"a");
        s.install_snapshot(b"SNAP");
        s.append(b"b");
        let rec = s.load();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"SNAP"[..]));
        assert_eq!(rec.log, vec![b"b".to_vec()]);
        assert_eq!(s.stats().snapshots, 1);
        assert_eq!(s.stats().snapshot_bytes, 4);
    }

    #[test]
    fn write_ahead_survives_crash() {
        let mut s = MemDurable::new(); // sync_every = 1
        s.append(b"critical");
        s.crash();
        let rec = s.load();
        assert_eq!(rec.log, vec![b"critical".to_vec()]);
        assert_eq!(s.stats().lost_unsynced, 0);
    }

    #[test]
    fn lazy_sync_loses_unsynced_tail() {
        let mut s = MemDurable::with_config(StoreConfig {
            sync_every: 0,
            torn_tail: false,
        });
        s.append(b"a");
        s.sync();
        s.append(b"lost-1");
        s.append(b"lost-2");
        s.crash();
        let rec = s.load();
        assert_eq!(rec.log, vec![b"a".to_vec()]);
        assert_eq!(s.stats().lost_unsynced, 2);
    }

    #[test]
    fn torn_tail_detected_and_discarded() {
        let mut s = MemDurable::with_config(StoreConfig::lazy(0));
        s.append(b"durable");
        s.sync();
        s.append(b"torn-record-payload");
        s.crash();
        let rec = s.load();
        assert_eq!(rec.log, vec![b"durable".to_vec()]);
        assert_eq!(s.stats().torn_discarded, 1);
        // The medium is healed: appending after recovery works.
        s.append(b"after");
        s.sync();
        let rec = s.load();
        assert_eq!(rec.log, vec![b"durable".to_vec(), b"after".to_vec()]);
    }

    #[test]
    fn checksum_rejects_corruption() {
        let mut bytes = frame(b"hello");
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        let (recs, torn) = deframe(&bytes);
        assert!(recs.is_empty());
        assert!(torn);
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp")).join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = temp_dir("file-roundtrip");
        {
            let mut s = FileDurable::open(&dir).unwrap();
            roundtrip(&mut s);
            s.install_snapshot(b"S1");
            s.append(b"three");
        }
        // Reopen: durable contents survive the process "restart".
        let mut s = FileDurable::open(&dir).unwrap();
        let rec = s.load();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"S1"[..]));
        assert_eq!(rec.log, vec![b"three".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_torn_tail() {
        let dir = temp_dir("file-torn");
        let mut s = FileDurable::open_with_config(&dir, StoreConfig::lazy(0)).unwrap();
        s.append(b"kept");
        s.sync();
        s.append(b"gone");
        s.crash();
        let rec = s.load();
        assert_eq!(rec.log, vec![b"kept".to_vec()]);
        assert_eq!(s.stats().torn_discarded, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn handle_is_shared() {
        let a = StoreHandle::mem();
        let b = a.clone();
        a.append(b"x");
        assert_eq!(b.load().log, vec![b"x".to_vec()]);
        assert_eq!(b.stats().appends, 1);
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = StoreStats {
            appends: 1,
            syncs: 1,
            ..StoreStats::default()
        };
        let b = StoreStats {
            appends: 2,
            replayed: 3,
            ..StoreStats::default()
        };
        a.merge(&b);
        assert_eq!(a.appends, 3);
        assert_eq!(a.syncs, 1);
        assert_eq!(a.replayed, 3);
    }
}
