//! Tiny little-endian byte codec shared by the WAL record formats.
//!
//! Every durable record in the workspace (storage deltas, consensus
//! ballot state, snapshots) is encoded by hand with these helpers —
//! there is no serialization framework in the offline build, and the
//! formats are small enough that explicit encoding doubles as
//! documentation of exactly what each protocol persists.

/// Append-only record writer.
#[derive(Debug, Default)]
pub struct Enc(Vec<u8>);

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed sequence of `u64`s.
    pub fn u64s(&mut self, vs: impl IntoIterator<Item = u64>) -> &mut Self {
        let items: Vec<u64> = vs.into_iter().collect();
        self.u64(items.len() as u64);
        for v in items {
            self.u64(v);
        }
        self
    }

    /// The encoded record.
    pub fn finish(self) -> Vec<u8> {
        self.0
    }
}

/// Sequential record reader. Every read returns `None` past the end or
/// on a malformed length — callers treat that as a corrupt record.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    /// A reader over one record.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, at: 0 }
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let end = self.at.checked_add(8)?;
        if end > self.bytes.len() {
            return None;
        }
        let v = u64::from_le_bytes(self.bytes[self.at..end].try_into().ok()?);
        self.at = end;
        Some(v)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u64()? as usize;
        let end = self.at.checked_add(len)?;
        if end > self.bytes.len() {
            return None;
        }
        let v = self.bytes[self.at..end].to_vec();
        self.at = end;
        Some(v)
    }

    /// Reads a length-prefixed sequence of `u64`s.
    pub fn u64s(&mut self) -> Option<Vec<u64>> {
        let len = self.u64()? as usize;
        if len > self.bytes.len().saturating_sub(self.at) / 8 {
            return None;
        }
        (0..len).map(|_| self.u64()).collect()
    }

    /// `true` iff the whole record was consumed.
    pub fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut e = Enc::new();
        e.u64(7).bytes(b"abc").u64s([1, 2, 3]);
        let rec = e.finish();
        let mut d = Dec::new(&rec);
        assert_eq!(d.u64(), Some(7));
        assert_eq!(d.bytes().as_deref(), Some(&b"abc"[..]));
        assert_eq!(d.u64s(), Some(vec![1, 2, 3]));
        assert!(d.done());
        assert_eq!(d.u64(), None);
    }

    #[test]
    fn truncation_detected() {
        let mut e = Enc::new();
        e.bytes(b"hello");
        let rec = e.finish();
        let mut d = Dec::new(&rec[..rec.len() - 1]);
        assert_eq!(d.bytes(), None);
        // Absurd length prefixes do not allocate or panic.
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let rec = e.finish();
        assert_eq!(Dec::new(&rec).u64s(), None);
        assert_eq!(Dec::new(&rec).bytes(), None);
    }
}
