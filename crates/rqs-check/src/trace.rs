//! Counterexample files: a tiny line-based text format for checked-in,
//! replayable schedules.
//!
//! ```text
//! # free-form comment lines
//! model: storage-byz4-w2r
//! expect: pass
//! deliver 3
//! drop 2
//! crash 1
//! recover 0
//! ```
//!
//! `model` names a [`builtin_model`](crate::model::builtin_model);
//! `expect` is `pass` (the schedule must satisfy every invariant — the
//! regression corpus) or `fail` (the schedule must still violate one —
//! pinning a reproduced bug). The remaining lines are the choice script.

use rqs_sim::SchedDecision;

/// What replaying a counterexample must produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Every invariant holds on this schedule.
    Pass,
    /// Some invariant is violated on this schedule.
    Fail,
}

/// A parsed counterexample (or regression schedule) file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// Name of the built-in model to replay against.
    pub model: String,
    /// Expected replay outcome.
    pub expect: Expectation,
    /// The choice script (canonical beyond it).
    pub choices: Vec<SchedDecision>,
}

impl Counterexample {
    /// Renders the file format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("model: {}\n", self.model));
        out.push_str(&format!(
            "expect: {}\n",
            match self.expect {
                Expectation::Pass => "pass",
                Expectation::Fail => "fail",
            }
        ));
        for c in &self.choices {
            match c {
                SchedDecision::Deliver(i) => out.push_str(&format!("deliver {i}\n")),
                SchedDecision::Drop(i) => out.push_str(&format!("drop {i}\n")),
                SchedDecision::Crash(n) => out.push_str(&format!("crash {n}\n")),
                SchedDecision::CrashRecover(n) => out.push_str(&format!("recover {n}\n")),
            }
        }
        out
    }

    /// Parses the file format.
    ///
    /// # Errors
    ///
    /// Returns a message locating the first malformed line.
    pub fn parse(text: &str) -> Result<Counterexample, String> {
        let mut model = None;
        let mut expect = None;
        let mut choices = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(m) = line.strip_prefix("model:") {
                model = Some(m.trim().to_string());
                continue;
            }
            if let Some(e) = line.strip_prefix("expect:") {
                expect = Some(match e.trim() {
                    "pass" => Expectation::Pass,
                    "fail" => Expectation::Fail,
                    other => {
                        return Err(format!(
                            "line {}: unknown expectation {other:?}",
                            lineno + 1
                        ))
                    }
                });
                continue;
            }
            let (word, arg) = line
                .split_once(' ')
                .ok_or_else(|| format!("line {}: malformed choice {line:?}", lineno + 1))?;
            let n: usize = arg
                .trim()
                .parse()
                .map_err(|_| format!("line {}: not an index: {arg:?}", lineno + 1))?;
            choices.push(match word {
                "deliver" => SchedDecision::Deliver(n),
                "drop" => SchedDecision::Drop(n),
                "crash" => SchedDecision::Crash(n),
                "recover" => SchedDecision::CrashRecover(n),
                other => return Err(format!("line {}: unknown choice {other:?}", lineno + 1)),
            });
        }
        Ok(Counterexample {
            model: model.ok_or("missing `model:` line")?,
            expect: expect.ok_or("missing `expect:` line")?,
            choices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cex = Counterexample {
            model: "storage-byz4-w2r".into(),
            expect: Expectation::Fail,
            choices: vec![
                SchedDecision::Deliver(3),
                SchedDecision::Drop(0),
                SchedDecision::Crash(2),
                SchedDecision::CrashRecover(1),
            ],
        };
        let text = cex.to_text();
        assert_eq!(Counterexample::parse(&text).unwrap(), cex);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# found by exp_explore, seed 7\n\nmodel: m\nexpect: pass\n\ndeliver 1\n";
        let cex = Counterexample::parse(text).unwrap();
        assert_eq!(cex.model, "m");
        assert_eq!(cex.expect, Expectation::Pass);
        assert_eq!(cex.choices, vec![SchedDecision::Deliver(1)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Counterexample::parse("model: m\nexpect: maybe\n").is_err());
        assert!(Counterexample::parse("model: m\nexpect: pass\nfrobnicate 1\n").is_err());
        assert!(Counterexample::parse("model: m\nexpect: pass\ndeliver x\n").is_err());
        assert!(Counterexample::parse("expect: pass\n").is_err());
        assert!(Counterexample::parse("model: m\n").is_err());
    }
}
