//! Run control: the scripted scheduler and the per-run record.
//!
//! One *run* of a model is fully determined by a choice script: at choice
//! point `i` the [`ChoiceScheduler`] applies `script[i]`, and beyond the
//! script a tail policy takes over — canonical (the default deterministic
//! order, [`Tail::Canonical`]) or a seeded random walk
//! ([`Tail::Random`]). Everything the scheduler decides, the option sets
//! it decided among, and the world-state fingerprints at each point are
//! written into the shared [`RunRecord`], which the explorer reads back
//! to branch, deduplicate and shrink.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rqs_sim::{PendingEvent, SchedDecision, Scheduler, World};
use std::cell::RefCell;
use std::rc::Rc;

/// Everything recorded about one controlled run.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// The decision actually applied at each choice point.
    pub choices: Vec<SchedDecision>,
    /// The pending-event views the scheduler chose among, per point.
    pub options: Vec<Vec<PendingEvent>>,
    /// World-state fingerprint *before* each choice point.
    pub fingerprints: Vec<u64>,
}

impl RunRecord {
    /// `true` iff every decision was the canonical earliest-event one —
    /// i.e. the run is exactly the default synchronous schedule.
    pub fn is_canonical(&self) -> bool {
        self.choices.iter().all(|c| *c == SchedDecision::CANONICAL)
    }

    /// Number of injected faults (drops + crashes + amnesia
    /// crash-recoveries) in the run.
    pub fn fault_count(&self) -> usize {
        self.choices
            .iter()
            .filter(|c| {
                matches!(
                    c,
                    SchedDecision::Drop(_)
                        | SchedDecision::Crash(_)
                        | SchedDecision::CrashRecover(_)
                )
            })
            .count()
    }
}

/// Tuning of the random tail policy used by walk-mode exploration.
#[derive(Clone, Copy, Debug)]
pub struct WalkOpts {
    /// Probability (percent) of injecting a message drop at a choice
    /// point, while the drop budget lasts.
    pub drop_pct: u8,
    /// Probability (percent) of picking among the *newest* few pending
    /// events instead of uniformly — a LIFO-ish adversarial bias that
    /// starves old in-flight messages (where reordering bugs live).
    pub newest_pct: u8,
    /// Maximum scheduler-injected drops per run.
    pub max_drops: usize,
}

impl Default for WalkOpts {
    fn default() -> Self {
        WalkOpts {
            drop_pct: 10,
            newest_pct: 50,
            max_drops: 4,
        }
    }
}

/// What the scheduler does beyond the scripted prefix.
#[derive(Clone, Copy, Debug)]
pub enum Tail {
    /// Follow the canonical `(time, sequence)` order — deterministic.
    Canonical,
    /// Seeded random walk over delivery choices and drops.
    Random {
        /// Walk seed (each seed is one reproducible schedule).
        seed: u64,
        /// Walk tuning.
        opts: WalkOpts,
    },
}

/// The scripted scheduler: applies a prefix of decisions, then the tail
/// policy; records everything into the shared [`RunRecord`].
pub struct ChoiceScheduler {
    script: Vec<SchedDecision>,
    tail: Tail,
    rng: StdRng,
    drops_injected: usize,
    rec: Rc<RefCell<RunRecord>>,
}

impl ChoiceScheduler {
    /// Creates the scheduler for one run.
    pub fn new(script: Vec<SchedDecision>, tail: Tail, rec: Rc<RefCell<RunRecord>>) -> Self {
        let rng = match tail {
            Tail::Canonical => StdRng::seed_from_u64(0),
            Tail::Random { seed, .. } => StdRng::seed_from_u64(seed),
        };
        ChoiceScheduler {
            script,
            tail,
            rng,
            drops_injected: 0,
            rec,
        }
    }

    fn tail_decision(&mut self, pending: &[PendingEvent]) -> SchedDecision {
        match self.tail {
            Tail::Canonical => SchedDecision::CANONICAL,
            Tail::Random { opts, .. } => {
                let deliverable: Vec<usize> = (0..pending.len())
                    .filter(|&i| pending[i].kind.is_deliver())
                    .collect();
                if !deliverable.is_empty()
                    && self.drops_injected < opts.max_drops
                    && self.rng.gen_bool(opts.drop_pct as f64 / 100.0)
                {
                    self.drops_injected += 1;
                    let i = self.rng.gen_range(0..deliverable.len());
                    return SchedDecision::Drop(deliverable[i]);
                }
                if self.rng.gen_bool(opts.newest_pct as f64 / 100.0) {
                    let window = pending.len().min(3);
                    let back = self.rng.gen_range(0..window);
                    SchedDecision::Deliver(pending.len() - 1 - back)
                } else {
                    SchedDecision::Deliver(self.rng.gen_range(0..pending.len()))
                }
            }
        }
    }
}

impl Scheduler for ChoiceScheduler {
    fn choose(&mut self, pending: &[PendingEvent]) -> SchedDecision {
        let pos = self.rec.borrow().choices.len();
        let decision = match self.script.get(pos) {
            Some(&d) => {
                if let SchedDecision::Drop(_) = d {
                    self.drops_injected += 1;
                }
                d
            }
            None => self.tail_decision(pending),
        };
        let mut rec = self.rec.borrow_mut();
        rec.options.push(pending.to_vec());
        rec.choices.push(decision);
        decision
    }
}

/// Hands one run of a model to the explorer: the script to follow, the
/// tail policy, the per-run bounds, and the shared record.
pub struct RunCtl {
    /// Decisions to apply at the first `script.len()` choice points.
    pub script: Vec<SchedDecision>,
    /// Policy beyond the script.
    pub tail: Tail,
    /// Per-run step budget (a run stops when it exceeds this many world
    /// steps, quiescent or not — safety invariants still apply to the
    /// partial execution).
    pub max_steps: usize,
    /// Collect a rendered event trace (pretty-printed counterexamples).
    pub collect_trace: bool,
    /// Record per-choice-point state fingerprints (needed by DFS dedup;
    /// skipped by replays and shrinking, where digesting every node each
    /// step is pure overhead).
    pub collect_fingerprints: bool,
    /// Structured-trace sink for the run's world (set on counterexample
    /// replays to attach a flight-recorder dump; `None` during bulk
    /// exploration, where tracing every run is pure overhead).
    pub tracer: Option<rqs_obs::ObsHandle>,
    /// The shared record the scheduler writes into.
    pub rec: Rc<RefCell<RunRecord>>,
}

impl RunCtl {
    /// A fresh control block for one run.
    pub fn new(script: Vec<SchedDecision>, tail: Tail, max_steps: usize) -> Self {
        RunCtl {
            script,
            tail,
            max_steps,
            collect_trace: false,
            collect_fingerprints: true,
            tracer: None,
            rec: Rc::new(RefCell::new(RunRecord::default())),
        }
    }

    /// The [`rqs_obs::Obs`] handle models hand to their world: the run's
    /// tracer when one is attached, the no-op observer otherwise.
    pub fn obs(&self) -> rqs_obs::Obs {
        match &self.tracer {
            Some(t) => rqs_obs::Obs::new(t.clone(), 0),
            None => rqs_obs::Obs::nop(),
        }
    }

    /// Builds the scheduler for this run (hand it to
    /// [`World::set_scheduler`]).
    pub fn scheduler(&self) -> Box<dyn Scheduler> {
        Box::new(ChoiceScheduler::new(
            self.script.clone(),
            self.tail,
            self.rec.clone(),
        ))
    }

    /// Drives `world` one step under this control block, recording the
    /// state fingerprint for the choice point the step consumed. Returns
    /// `false` when the world is quiescent or the step budget is spent.
    pub fn step<M: Clone + 'static>(
        &self,
        world: &mut World<M>,
        hash_msg: impl Fn(&M) -> u64,
    ) -> bool {
        let before = self.rec.borrow().choices.len();
        if before >= self.max_steps {
            return false;
        }
        let fp = self
            .collect_fingerprints
            .then(|| world.digest_with(hash_msg));
        if !world.step() {
            return false;
        }
        if self.rec.borrow().choices.len() > before {
            if let Some(fp) = fp {
                self.rec.borrow_mut().fingerprints.push(fp);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_runs() {
        let mut rec = RunRecord::default();
        assert!(rec.is_canonical());
        rec.choices.push(SchedDecision::Deliver(0));
        assert!(rec.is_canonical());
        rec.choices.push(SchedDecision::Drop(1));
        assert!(!rec.is_canonical());
        assert_eq!(rec.fault_count(), 1);
        rec.choices.push(SchedDecision::Crash(0));
        assert_eq!(rec.fault_count(), 2);
        rec.choices.push(SchedDecision::CrashRecover(2));
        assert!(!rec.is_canonical());
        assert_eq!(rec.fault_count(), 3);
    }
}
