//! Checkable models: a protocol deployment, a workload, and pluggable
//! invariants over the resulting execution.
//!
//! A [`Model`] runs one complete controlled execution per call: it builds
//! a fresh deployment, injects the workload, lets the [`RunCtl`]'s
//! scheduler decide every delivery, and evaluates its invariants on the
//! final `World` state and completed-operation history. Because the
//! deployment is rebuilt from scratch each time, a recorded choice script
//! replays the identical execution — the property counterexamples,
//! shrinking and the regression corpus rely on.

use crate::ctl::RunCtl;
use rqs_consensus::harness::ConsensusHarness;
use rqs_consensus::types::ConsensusMsg;
use rqs_core::threshold::ThresholdConfig;
use rqs_core::Rqs;
use rqs_sim::{fnv1a, Time};
use rqs_storage::reader::Reader;
use rqs_storage::writer::Writer;
use rqs_storage::{check_atomicity_reference, CheckerStats, StorageHarness, StorageMsg, Value};
use std::rc::Rc;

/// A deployment hook run after build, before any operation starts.
pub type SetupHook<H> = Rc<dyn Fn(&mut H)>;

/// The result of one controlled run.
#[derive(Clone, Debug, Default)]
pub struct RunOutput {
    /// The first invariant violation, if any (invariant name + detail).
    pub violation: Option<String>,
    /// Rendered event trace (only when `ctl.collect_trace` is set).
    pub trace: Vec<String>,
    /// Streaming-checker counters of the run's harness (storage models
    /// only). `checker.violation_op` is the arrival index of the op that
    /// tripped the violation — evidence of at-arrival detection.
    pub checker: Option<CheckerStats>,
    /// Completed operations scanned by atomicity polling over the run.
    /// The streaming invariant scans each op exactly once; the rescan
    /// baseline rescans the full history at every choice point, so this
    /// is the deterministic per-run cost of the invariant machinery.
    pub scanned_ops: usize,
}

/// A model the explorer can run under schedule control.
pub trait Model {
    /// Short name (reports, counterexample files).
    fn name(&self) -> &str;

    /// Node indices that fault branching may crash (typically servers).
    fn crash_candidates(&self) -> Vec<usize>;

    /// Executes one run under `ctl` and checks the invariants.
    fn run(&self, ctl: &RunCtl) -> RunOutput;
}

/// Fingerprint hash for storage messages.
pub fn storage_msg_hash(m: &StorageMsg) -> u64 {
    fnv1a(format!("{m:?}").as_bytes())
}

/// Fingerprint hash for consensus messages.
pub fn consensus_msg_hash(m: &ConsensusMsg) -> u64 {
    fnv1a(format!("{m:?}").as_bytes())
}

// ---- storage ----------------------------------------------------------

/// Which refined quorum system the storage model deploys.
#[derive(Clone, Copy, Debug)]
pub enum StorageSystem {
    /// `ThresholdConfig::crash_fast(n, q)` — the §1.2 benign family.
    CrashFast {
        /// Universe size.
        n: usize,
        /// Crash-fast profile parameter (class-1 quorums have `n - q`
        /// members).
        q: usize,
    },
    /// `ThresholdConfig::byzantine_fast(t)` — `n = 3t + 1`.
    ByzantineFast {
        /// Byzantine threshold.
        t: usize,
    },
}

impl StorageSystem {
    fn build(self) -> Rqs {
        match self {
            StorageSystem::CrashFast { n, q } => ThresholdConfig::crash_fast(n, q)
                .build()
                .expect("valid crash-fast system"),
            StorageSystem::ByzantineFast { t } => ThresholdConfig::byzantine_fast(t)
                .build()
                .expect("valid byzantine-fast system"),
        }
    }
}

/// One storage operation in a chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageOp {
    /// `write(v)` by the single writer.
    Write(u64),
    /// `read()` by reader `i`.
    Read(usize),
}

/// A pluggable storage invariant.
#[derive(Clone, Copy, Debug)]
pub enum StorageInvariant {
    /// SWMR atomicity of the completed-op history (the paper's Theorem 8
    /// claim), via the harness's streaming
    /// [`AtomicityChecker`](rqs_storage::AtomicityChecker): the run polls
    /// the checker at every choice point (each poll costs O(new ops),
    /// since checker state persists across the run instead of being
    /// recomputed per explored state) and aborts the run at the first
    /// violating operation.
    Atomicity,
    /// The pre-streaming baseline, kept for differential testing: rescan
    /// the *full* history with the quadratic
    /// [`rqs_storage::check_atomicity_reference`] at every choice point.
    /// Verdicts must match [`Atomicity`](Self::Atomicity); DFS throughput
    /// must not.
    AtomicityRescan,
    /// Fast-path latency (Theorem 9): on *synchronous* runs — canonical
    /// schedule, no injected faults — completed operations stay within
    /// the stated round bounds. Skipped on reordered/faulty runs, where
    /// the claim does not apply.
    FastPath {
        /// Maximum rounds any completed write may take.
        max_write_rounds: usize,
        /// Maximum rounds any completed read may take.
        max_read_rounds: usize,
    },
}

/// A storage model: one writer, `readers` reader clients, operation
/// chains (ops within a chain are sequential, chains run concurrently),
/// and a set of invariants.
pub struct StorageModel {
    /// The quorum system.
    pub system: StorageSystem,
    /// Number of reader clients.
    pub readers: usize,
    /// Concurrent chains of sequential operations. All writes must live
    /// in one chain and a reader must not appear in two chains (clients
    /// are well-formed: one operation at a time).
    pub chains: Vec<Vec<StorageOp>>,
    /// The invariants checked after the run.
    pub invariants: Vec<StorageInvariant>,
    /// Back every server with a deterministic in-memory durable store
    /// (write-ahead log). Required for amnesia crash-recover branching
    /// ([`Bounds::with_recovers`](crate::explore::Bounds::with_recovers)):
    /// a recovery rebuilds the server from this store, so on the correct
    /// protocol it must be invisible to clients. Volatile models recover
    /// to an empty server, which trivially "violates" atomicity without
    /// indicating a protocol bug.
    pub durable: bool,
    /// Post-build hook (mutant swap-ins, Byzantine servers, scripted
    /// scenarios). Runs before any operation starts.
    pub setup: Option<SetupHook<StorageHarness>>,
}

impl StorageModel {
    /// The canonical small model: write ∥ (read by reader 0, then read by
    /// reader 1) — the 1-writer/2-reader configuration whose exhaustive
    /// exploration the acceptance tests pin.
    pub fn write_read_read(system: StorageSystem) -> Self {
        StorageModel {
            system,
            readers: 2,
            chains: vec![
                vec![StorageOp::Write(1)],
                vec![StorageOp::Read(0), StorageOp::Read(1)],
            ],
            invariants: vec![StorageInvariant::Atomicity],
            durable: false,
            setup: None,
        }
    }

    /// Returns the model with durable (write-ahead-logged) servers, the
    /// prerequisite for amnesia crash-recover branching.
    pub fn durable(mut self) -> Self {
        self.durable = true;
        self
    }

    /// A sequential workload (single chain) with the fast-path invariant:
    /// on the canonical synchronous schedule every op is 1 round.
    pub fn sequential_fast_path(system: StorageSystem) -> Self {
        StorageModel {
            system,
            readers: 1,
            chains: vec![vec![
                StorageOp::Write(1),
                StorageOp::Read(0),
                StorageOp::Write(2),
                StorageOp::Read(0),
            ]],
            invariants: vec![
                StorageInvariant::Atomicity,
                StorageInvariant::FastPath {
                    max_write_rounds: 1,
                    max_read_rounds: 1,
                },
            ],
            durable: false,
            setup: None,
        }
    }

    /// Completion time of the writer's op at `baseline`, if finished.
    fn writer_done(h: &mut StorageHarness, baseline: usize) -> Option<Time> {
        let id = h.writer_id();
        let outs = h.world_mut().node_as::<Writer>(id).outcomes();
        outs.get(baseline).map(|o| o.completed_at)
    }

    /// Completion time of reader `r`'s op at `baseline`, if finished.
    fn reader_done(h: &mut StorageHarness, r: usize, baseline: usize) -> Option<Time> {
        let id = h.reader_id(r);
        let outs = h.world_mut().node_as::<Reader>(id).outcomes();
        outs.get(baseline).map(|o| o.completed_at)
    }

    /// Starts every chain op whose predecessor completed *strictly
    /// earlier* than the current time (so program order within a chain is
    /// real-time order, which is what the atomicity oracle checks).
    /// Returns whether anything launched, and the earliest time a gated
    /// chain could proceed (to bump the clock on a quiescent world).
    fn advance(&self, h: &mut StorageHarness, pos: &mut [ChainPos]) -> Advance {
        let mut res = Advance {
            launched: false,
            gate: None,
        };
        for (ci, p) in pos.iter_mut().enumerate() {
            loop {
                if let Some(wait) = p.waiting {
                    let done = match wait {
                        Waiting::Writer(b) => Self::writer_done(h, b),
                        Waiting::Reader(r, b) => Self::reader_done(h, r, b),
                    };
                    match done {
                        None => break,
                        Some(completed_at) => {
                            if h.now() <= completed_at {
                                let gate = completed_at + 1;
                                res.gate = Some(match res.gate {
                                    Some(g) if g < gate => g,
                                    _ => gate,
                                });
                                break;
                            }
                            p.waiting = None;
                        }
                    }
                }
                let Some(&op) = self.chains[ci].get(p.next) else {
                    break;
                };
                p.next += 1;
                res.launched = true;
                match op {
                    StorageOp::Write(v) => {
                        let id = h.writer_id();
                        let b = h.world_mut().node_as::<Writer>(id).outcomes().len();
                        h.start_write(Value::from(v));
                        p.waiting = Some(Waiting::Writer(b));
                    }
                    StorageOp::Read(r) => {
                        let id = h.reader_id(r);
                        let b = h.world_mut().node_as::<Reader>(id).outcomes().len();
                        h.start_read(r);
                        p.waiting = Some(Waiting::Reader(r, b));
                    }
                }
            }
        }
        res
    }
}

#[derive(Clone, Copy, Debug)]
struct Advance {
    launched: bool,
    /// Earliest time a completed-but-gated chain may continue.
    gate: Option<Time>,
}

#[derive(Clone, Copy, Debug)]
enum Waiting {
    Writer(usize),
    Reader(usize, usize),
}

#[derive(Clone, Copy, Debug, Default)]
struct ChainPos {
    next: usize,
    waiting: Option<Waiting>,
}

impl Model for StorageModel {
    fn name(&self) -> &str {
        "storage"
    }

    fn crash_candidates(&self) -> Vec<usize> {
        let n = match self.system {
            StorageSystem::CrashFast { n, .. } => n,
            StorageSystem::ByzantineFast { t } => 3 * t + 1,
        };
        (0..n).collect()
    }

    fn run(&self, ctl: &RunCtl) -> RunOutput {
        let mut h = if self.durable {
            StorageHarness::durable_with_scenario(
                self.system.build(),
                self.readers,
                Default::default(),
            )
        } else {
            StorageHarness::new(self.system.build(), self.readers)
        };
        if let Some(setup) = &self.setup {
            setup(&mut h);
        }
        if ctl.collect_trace {
            h.world_mut().enable_trace(|m| m.to_string());
        }
        if ctl.tracer.is_some() {
            h.world_mut().set_obs(ctl.obs());
        }
        let stream = self
            .invariants
            .iter()
            .any(|i| matches!(i, StorageInvariant::Atomicity));
        let rescan = self
            .invariants
            .iter()
            .any(|i| matches!(i, StorageInvariant::AtomicityRescan));
        let mut live: Option<String> = None;
        let mut scanned_ops = 0;
        let mut pos = vec![ChainPos::default(); self.chains.len()];
        self.advance(&mut h, &mut pos);
        h.world_mut().set_scheduler(ctl.scheduler());
        loop {
            // Poll the atomicity invariant at every choice point and
            // abort the run the moment the offending op has completed:
            // every extension of this schedule keeps the violating
            // prefix, so nothing sound is pruned.
            if let Some(v) = self.poll_atomicity(&mut h, stream, rescan, &mut scanned_ops) {
                live = Some(v);
                break;
            }
            if ctl.step(h.world_mut(), storage_msg_hash) {
                self.advance(&mut h, &mut pos);
                continue;
            }
            if ctl.rec.borrow().choices.len() >= ctl.max_steps {
                break; // out of budget
            }
            // Quiescent: only new invocations (possibly gated on the
            // clock passing a completion time) can make progress.
            let adv = self.advance(&mut h, &mut pos);
            if adv.launched {
                continue;
            }
            let Some(gate) = adv.gate else {
                break;
            };
            h.world_mut().run_before(gate);
            if !self.advance(&mut h, &mut pos).launched {
                break;
            }
        }
        h.world_mut().clear_scheduler();
        let trace = h
            .world_mut()
            .trace()
            .iter()
            .map(|e| format!("{} {}", e.at, e.what))
            .collect();
        let violation = live.or_else(|| self.check_invariants(&mut h, ctl));
        let checker = Some(h.checker_stats());
        RunOutput {
            violation,
            trace,
            checker,
            scanned_ops,
        }
    }
}

impl StorageModel {
    /// Checks the atomicity invariant at a choice point. The streaming
    /// path harvests new outcomes into the harness's incremental checker
    /// (O(new ops)); the rescan path re-runs the quadratic reference
    /// over the full history, kept as a differential baseline. `scanned`
    /// accumulates the ops each path looked at, so explorations can
    /// compare invariant cost deterministically.
    fn poll_atomicity(
        &self,
        h: &mut StorageHarness,
        stream: bool,
        rescan: bool,
        scanned: &mut usize,
    ) -> Option<String> {
        if !stream && !rescan {
            return None;
        }
        let before = h.ops().len();
        h.harvest();
        if stream {
            *scanned += h.ops().len() - before;
            if let Some(v) = h.checker_violation() {
                return Some(format!("atomicity: {v}"));
            }
        }
        if rescan {
            *scanned += h.ops().len();
            if let Err(v) = check_atomicity_reference(h.ops()) {
                return Some(format!("atomicity: {v}"));
            }
        }
        None
    }

    fn check_invariants(&self, h: &mut StorageHarness, ctl: &RunCtl) -> Option<String> {
        for inv in &self.invariants {
            match inv {
                StorageInvariant::Atomicity => {
                    if let Err(v) = h.check_atomicity() {
                        return Some(format!("atomicity: {v}"));
                    }
                }
                StorageInvariant::AtomicityRescan => {
                    h.harvest();
                    if let Err(v) = check_atomicity_reference(h.ops()) {
                        return Some(format!("atomicity: {v}"));
                    }
                }
                StorageInvariant::FastPath {
                    max_write_rounds,
                    max_read_rounds,
                } => {
                    if !ctl.rec.borrow().is_canonical() {
                        continue; // claim only covers synchronous runs
                    }
                    let wid = h.writer_id();
                    for out in h.world_mut().node_as::<Writer>(wid).outcomes() {
                        if out.rounds > *max_write_rounds {
                            return Some(format!(
                                "fast-path: write ts {} took {} rounds (bound {})",
                                out.ts, out.rounds, max_write_rounds
                            ));
                        }
                    }
                    for r in 0..self.readers {
                        let rid = h.reader_id(r);
                        for out in h.world_mut().node_as::<Reader>(rid).outcomes() {
                            if out.rounds > *max_read_rounds {
                                return Some(format!(
                                    "fast-path: read {} by reader {r} took {} rounds (bound {})",
                                    out.read_no, out.rounds, max_read_rounds
                                ));
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

// ---- consensus --------------------------------------------------------

/// A pluggable consensus invariant.
#[derive(Clone, Copy, Debug)]
pub enum ConsensusInvariant {
    /// Agreement: no two learners learn different values.
    Agreement,
    /// Validity: every learned value was actually proposed.
    Validity,
    /// Fast learning (Definition 4): on synchronous runs every learner
    /// that learned did so within the stated number of message delays.
    FastLearning {
        /// Maximum message delays from the first propose.
        max_delays: u64,
    },
}

/// A consensus model over `byzantine_fast(t)`: proposers all propose at
/// time zero, the run is driven to the bound, and safety invariants are
/// evaluated over whatever the learners managed to learn.
pub struct ConsensusModel {
    /// Byzantine threshold (`n = 3t + 1` acceptors).
    pub t: usize,
    /// Number of proposers.
    pub proposers: usize,
    /// Number of learners.
    pub learners: usize,
    /// `(proposer index, value)` — all injected before the first step.
    pub proposals: Vec<(usize, u64)>,
    /// The invariants checked after the run.
    pub invariants: Vec<ConsensusInvariant>,
    /// Post-build hook (Byzantine acceptor swap-ins, mutant learners).
    pub setup: Option<SetupHook<ConsensusHarness>>,
}

impl ConsensusModel {
    /// The canonical contention model: two proposers, two learners,
    /// conflicting proposals.
    pub fn contention(t: usize) -> Self {
        ConsensusModel {
            t,
            proposers: 2,
            learners: 2,
            proposals: vec![(0, 1), (1, 2)],
            invariants: vec![ConsensusInvariant::Agreement, ConsensusInvariant::Validity],
            setup: None,
        }
    }

    /// The uncontended fast-path model: one proposer, two learners, and
    /// the 2-message-delay claim pinned on synchronous runs.
    pub fn fast_path(t: usize) -> Self {
        ConsensusModel {
            t,
            proposers: 1,
            learners: 2,
            proposals: vec![(0, 7)],
            invariants: vec![
                ConsensusInvariant::Agreement,
                ConsensusInvariant::Validity,
                ConsensusInvariant::FastLearning { max_delays: 2 },
            ],
            setup: None,
        }
    }
}

impl Model for ConsensusModel {
    fn name(&self) -> &str {
        "consensus"
    }

    fn crash_candidates(&self) -> Vec<usize> {
        (0..3 * self.t + 1).collect()
    }

    fn run(&self, ctl: &RunCtl) -> RunOutput {
        let rqs = ThresholdConfig::byzantine_fast(self.t)
            .build()
            .expect("valid byzantine-fast system");
        let mut h = ConsensusHarness::new(rqs, self.proposers, self.learners);
        if let Some(setup) = &self.setup {
            setup(&mut h);
        }
        if ctl.collect_trace {
            h.world_mut().enable_trace(|m| format!("{m:?}"));
        }
        if ctl.tracer.is_some() {
            h.world_mut().set_obs(ctl.obs());
        }
        for &(p, v) in &self.proposals {
            h.propose(p, v);
        }
        h.world_mut().set_scheduler(ctl.scheduler());
        while ctl.step(h.world_mut(), consensus_msg_hash) {}
        h.world_mut().clear_scheduler();
        let trace = h
            .world_mut()
            .trace()
            .iter()
            .map(|e| format!("{} {}", e.at, e.what))
            .collect();
        let violation = self.check_invariants(&h, ctl);
        RunOutput {
            violation,
            trace,
            checker: None,
            scanned_ops: 0,
        }
    }
}

impl ConsensusModel {
    fn check_invariants(&self, h: &ConsensusHarness, ctl: &RunCtl) -> Option<String> {
        let learned: Vec<(usize, u64)> = (0..self.learners)
            .filter_map(|i| h.learned(i).map(|v| (i, v)))
            .collect();
        for inv in &self.invariants {
            match inv {
                ConsensusInvariant::Agreement => {
                    for window in learned.windows(2) {
                        let (i, vi) = window[0];
                        let (j, vj) = window[1];
                        if vi != vj {
                            return Some(format!(
                                "agreement: learner {i} learned {vi} but learner {j} learned {vj}"
                            ));
                        }
                    }
                }
                ConsensusInvariant::Validity => {
                    for &(i, v) in &learned {
                        if !self.proposals.iter().any(|&(_, p)| p == v) {
                            return Some(format!(
                                "validity: learner {i} learned {v}, which nobody proposed"
                            ));
                        }
                    }
                }
                ConsensusInvariant::FastLearning { max_delays } => {
                    if !ctl.rec.borrow().is_canonical() {
                        continue;
                    }
                    for (i, d) in h.learner_delays().iter().enumerate() {
                        if let Some(d) = d {
                            if *d > *max_delays {
                                return Some(format!(
                                    "fast-learning: learner {i} took {d} delays (bound {max_delays})"
                                ));
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

// ---- registry ---------------------------------------------------------

/// Looks up a named built-in model (the regression corpus and
/// `exp_explore` reference models by these names).
pub fn builtin_model(name: &str) -> Option<Box<dyn Model>> {
    match name {
        "storage-byz4-w2r" => Some(Box::new(StorageModel::write_read_read(
            StorageSystem::ByzantineFast { t: 1 },
        ))),
        "storage-crash4-w2r" => Some(Box::new(StorageModel::write_read_read(
            StorageSystem::CrashFast { n: 4, q: 1 },
        ))),
        "storage-crash4-w2r-durable" => Some(Box::new(
            StorageModel::write_read_read(StorageSystem::CrashFast { n: 4, q: 1 }).durable(),
        )),
        "storage-crash5-w2r" => Some(Box::new(StorageModel::write_read_read(
            StorageSystem::CrashFast { n: 5, q: 1 },
        ))),
        "storage-crash5-seq" => Some(Box::new(StorageModel::sequential_fast_path(
            StorageSystem::CrashFast { n: 5, q: 1 },
        ))),
        "consensus-byz4-contention" => Some(Box::new(ConsensusModel::contention(1))),
        "consensus-byz4-fast" => Some(Box::new(ConsensusModel::fast_path(1))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctl::Tail;

    #[test]
    fn canonical_storage_run_is_clean() {
        let model = StorageModel::write_read_read(StorageSystem::ByzantineFast { t: 1 });
        let ctl = RunCtl::new(vec![], Tail::Canonical, 10_000);
        let out = model.run(&ctl);
        assert_eq!(out.violation, None);
        assert!(ctl.rec.borrow().choices.len() > 10);
        assert!(ctl.rec.borrow().is_canonical());
    }

    #[test]
    fn canonical_durable_storage_run_is_clean() {
        let model =
            StorageModel::write_read_read(StorageSystem::CrashFast { n: 4, q: 1 }).durable();
        let ctl = RunCtl::new(vec![], Tail::Canonical, 10_000);
        assert_eq!(model.run(&ctl).violation, None);
    }

    #[test]
    fn canonical_sequential_run_hits_fast_path() {
        let model = StorageModel::sequential_fast_path(StorageSystem::CrashFast { n: 5, q: 1 });
        let ctl = RunCtl::new(vec![], Tail::Canonical, 10_000);
        assert_eq!(model.run(&ctl).violation, None);
    }

    #[test]
    fn canonical_consensus_run_is_clean() {
        for model in [ConsensusModel::contention(1), ConsensusModel::fast_path(1)] {
            let ctl = RunCtl::new(vec![], Tail::Canonical, 20_000);
            assert_eq!(model.run(&ctl).violation, None);
        }
    }

    #[test]
    fn registry_resolves_all_names() {
        for name in [
            "storage-byz4-w2r",
            "storage-crash4-w2r-durable",
            "storage-crash5-w2r",
            "storage-crash5-seq",
            "consensus-byz4-contention",
            "consensus-byz4-fast",
        ] {
            assert!(builtin_model(name).is_some(), "{name}");
        }
        assert!(builtin_model("no-such-model").is_none());
    }

    #[test]
    fn trace_collection_renders_events() {
        let model = StorageModel::write_read_read(StorageSystem::ByzantineFast { t: 1 });
        let mut ctl = RunCtl::new(vec![], Tail::Canonical, 10_000);
        ctl.collect_trace = true;
        let out = model.run(&ctl);
        assert!(!out.trace.is_empty());
        assert!(out.trace.iter().any(|l| l.contains("wr⟨")));
    }
}
