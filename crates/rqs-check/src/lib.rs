//! # rqs-check — systematic schedule exploration for RQS protocols
//!
//! The deterministic [`World`](rqs_sim::World) executes one delivery
//! order per scenario; the paper's claims (SWMR atomicity, consensus
//! agreement/validity, fast-path latency in synchronous runs) quantify
//! over *all* orders. This crate turns the simulator's
//! [`Scheduler`](rqs_sim::Scheduler) seam into a small model checker:
//!
//! - [`explore::dfs`] — bounded depth-first enumeration of delivery
//!   choices (CHESS-style depth and branching bounds), with state-hash
//!   deduplication via [`World::digest_with`](rqs_sim::World::digest_with)
//!   and optional fault branching (message drops, node crashes);
//! - [`explore::random_walks`] — seeded random schedules for
//!   configurations too large to enumerate, with an adversarial
//!   recency bias and probabilistic drops;
//! - [`model`] — checkable models ([`StorageModel`], [`ConsensusModel`])
//!   with pluggable invariants evaluated on world state and
//!   completed-operation histories (atomicity via
//!   [`check_atomicity`](rqs_storage::check_atomicity), consensus
//!   agreement/validity, fast-path round bounds);
//! - [`explore::shrink`] — delta-debugging minimization of failing
//!   schedules; every violation carries a replayable choice script;
//! - [`trace`] — a text format for checked-in counterexamples, replayed
//!   by the `tests/regressions/` corpus.
//!
//! ## Quick start
//!
//! ```
//! use rqs_check::explore::{dfs, Bounds};
//! use rqs_check::model::{StorageModel, StorageSystem};
//!
//! // Exhaustively explore a 1-writer/2-reader/4-server model to the
//! // depth bound: the algorithm is atomic under every schedule.
//! let model = StorageModel::write_read_read(StorageSystem::ByzantineFast { t: 1 });
//! let outcome = dfs(&model, &Bounds::delivery(4, 2), true);
//! assert!(outcome.stats.exhausted);
//! assert!(outcome.violations.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ctl;
pub mod explore;
pub mod model;
pub mod trace;

pub use ctl::{RunCtl, RunRecord, Tail, WalkOpts};
pub use explore::{dfs, random_walks, replay, shrink, Bounds, ExploreOutcome, FoundViolation};
pub use model::{
    builtin_model, ConsensusInvariant, ConsensusModel, Model, RunOutput, StorageInvariant,
    StorageModel, StorageOp, StorageSystem,
};
pub use trace::{Counterexample, Expectation};
