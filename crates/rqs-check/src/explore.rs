//! The explorer: bounded DFS and seeded random walks over schedules,
//! with state-hash deduplication, fault branching, and counterexample
//! shrinking.
//!
//! Exploration is *stateless* in the Verisoft/CHESS sense: the model is
//! re-executed from its initial state for every schedule, and a schedule
//! is identified by its choice script. DFS enumerates scripts by running
//! one, then branching at every choice point past the frozen prefix —
//! alternative deliveries up to the branching bound, plus optional drop
//! and crash faults within their budgets. A state fingerprint taken
//! before each choice point prunes subtrees already explored from an
//! identical logical state.

use crate::ctl::{RunCtl, RunRecord, Tail, WalkOpts};
use crate::model::{Model, RunOutput};
use rqs_sim::SchedDecision;
use std::collections::HashSet;

/// Exploration bounds.
#[derive(Clone, Debug)]
pub struct Bounds {
    /// Choice points eligible for branching: beyond this depth every run
    /// continues canonically (CHESS-style depth bounding).
    pub max_choice_depth: usize,
    /// Alternative deliveries considered per choice point (the first
    /// `max_branch` pending events in canonical order).
    pub max_branch: usize,
    /// Per-run step budget.
    pub max_steps: usize,
    /// Total runs the exploration may execute.
    pub max_runs: usize,
    /// Scheduler-injected message drops allowed per schedule.
    pub max_drops: usize,
    /// Scheduler-injected crashes allowed per schedule.
    pub max_crashes: usize,
    /// Scheduler-injected atomic amnesia crash-recoveries
    /// ([`SchedDecision::CrashRecover`]) allowed per schedule. Each one
    /// wipes a node's volatile state at the choice point and immediately
    /// rebuilds it from its durable store — the state a node is entitled
    /// to forget. Only meaningful on durable models; on volatile nodes a
    /// recovery degenerates to total amnesia and "violations" it finds
    /// merely restate that volatile nodes forget.
    pub max_recovers: usize,
    /// Crash- and recover-branching targets; `None` uses the model's
    /// full candidate list. Narrowing this focuses the fault budget (and
    /// shrinks the branching factor) on suspected nodes.
    pub crash_candidates: Option<Vec<usize>>,
    /// Deduplicate branching on state fingerprints. Any violation found
    /// is real either way; pruning assumes the fingerprints capture the
    /// full logical state, so automata relying on the default
    /// `state_digest` of `0` (e.g. closure-scripted Byzantine nodes)
    /// should set this to `false` or an "exhausted" result only covers
    /// the deduplicated space.
    pub dedup: bool,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_choice_depth: 6,
            max_branch: 3,
            max_steps: 500,
            max_runs: 50_000,
            max_drops: 0,
            max_crashes: 0,
            max_recovers: 0,
            crash_candidates: None,
            dedup: true,
        }
    }
}

impl Bounds {
    /// Depth/branch-bounded delivery-only exploration (no faults).
    pub fn delivery(depth: usize, branch: usize) -> Self {
        Bounds {
            max_choice_depth: depth,
            max_branch: branch,
            ..Bounds::default()
        }
    }

    /// Enables drop-fault branching with the given budget.
    pub fn with_drops(mut self, drops: usize) -> Self {
        self.max_drops = drops;
        self
    }

    /// Enables crash-fault branching with the given budget.
    pub fn with_crashes(mut self, crashes: usize) -> Self {
        self.max_crashes = crashes;
        self
    }

    /// Enables amnesia crash-recover branching with the given budget.
    pub fn with_recovers(mut self, recovers: usize) -> Self {
        self.max_recovers = recovers;
        self
    }

    /// Focuses crash and recover branching on the given node indices.
    pub fn with_crash_candidates(mut self, nodes: Vec<usize>) -> Self {
        self.crash_candidates = Some(nodes);
        self
    }
}

/// Aggregate exploration statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreStats {
    /// Complete runs executed.
    pub runs: usize,
    /// Choice points taken across all runs.
    pub choice_points: usize,
    /// Distinct state fingerprints seen at choice points.
    pub unique_states: usize,
    /// Longest run, in choice points.
    pub max_depth: usize,
    /// Completed ops scanned by atomicity polling, summed over runs —
    /// the invariant-machinery share of exploration cost (see
    /// [`RunOutput::scanned_ops`]).
    pub scanned_ops: usize,
    /// `true` iff the bounded space was fully enumerated (the run budget
    /// was not the stopping reason).
    pub exhausted: bool,
}

/// A violation the explorer found.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// Invariant name and detail.
    pub message: String,
    /// The full recorded choice script of the failing run.
    pub script: Vec<SchedDecision>,
    /// The shrunk script (trailing canonical choices stripped).
    pub shrunk: Vec<SchedDecision>,
    /// Pretty-printed event trace of the shrunk run.
    pub rendered: Vec<String>,
    /// One-line structured JSON failure report
    /// ([`rqs_obs::dump_json`]): the invariant message plus the
    /// flight-recorder events of an instrumented replay of the shrunk
    /// script — machine-readable evidence to file next to the
    /// counterexample.
    pub flight_dump: String,
}

/// The result of one exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreOutcome {
    /// Statistics.
    pub stats: ExploreStats,
    /// Violations, in discovery order (exploration stops at the first by
    /// default — see [`dfs`] / [`random_walks`]).
    pub violations: Vec<FoundViolation>,
}

/// Replays one script (canonical beyond it) and returns the record and
/// output.
pub fn replay(
    model: &dyn Model,
    script: &[SchedDecision],
    max_steps: usize,
) -> (RunRecord, RunOutput) {
    let ctl = RunCtl::new(script.to_vec(), Tail::Canonical, max_steps);
    let out = model.run(&ctl);
    let rec = ctl.rec.borrow().clone();
    (rec, out)
}

fn rendered_trace(model: &dyn Model, script: &[SchedDecision], max_steps: usize) -> Vec<String> {
    let mut ctl = RunCtl::new(script.to_vec(), Tail::Canonical, max_steps);
    ctl.collect_trace = true;
    ctl.collect_fingerprints = false;
    model.run(&ctl).trace
}

/// Replays `script` with a flight recorder attached to the model's world
/// and renders the recorded events as a one-line structured JSON failure
/// report.
fn flight_dump(
    model: &dyn Model,
    message: &str,
    script: &[SchedDecision],
    max_steps: usize,
) -> String {
    use rqs_obs::Tracer;
    let rec = rqs_obs::FlightRecorder::for_export();
    let mut ctl = RunCtl::new(script.to_vec(), Tail::Canonical, max_steps);
    ctl.collect_fingerprints = false;
    ctl.tracer = Some(rec.clone());
    model.run(&ctl);
    let details = [
        ("model", model.name().to_string()),
        ("invariant", message.to_string()),
        ("decisions", script.len().to_string()),
    ];
    rqs_obs::dump_json("schedule-violation", &details, &rec.snapshot())
}

/// Does the script still violate an invariant? (Shrinking probe: skips
/// fingerprint collection, which replays never read.)
fn still_fails(model: &dyn Model, script: &[SchedDecision], max_steps: usize) -> bool {
    let mut ctl = RunCtl::new(script.to_vec(), Tail::Canonical, max_steps);
    ctl.collect_fingerprints = false;
    model.run(&ctl).violation.is_some()
}

fn strip_trailing_canonical(mut script: Vec<SchedDecision>) -> Vec<SchedDecision> {
    while script.last() == Some(&SchedDecision::CANONICAL) {
        script.pop();
    }
    script
}

/// Delta-debugging shrinker: minimizes a failing script while the run
/// keeps violating some invariant. Tries chunk deletion (ddmin-style),
/// pointwise canonicalization, and trailing-default stripping, to a
/// fixpoint within `budget` replays.
pub fn shrink(
    model: &dyn Model,
    script: Vec<SchedDecision>,
    max_steps: usize,
    budget: usize,
) -> Vec<SchedDecision> {
    let mut spent = 0usize;
    let fails = |s: &[SchedDecision], spent: &mut usize| -> bool {
        *spent += 1;
        still_fails(model, s, max_steps)
    };
    let mut cur = strip_trailing_canonical(script);
    loop {
        let before = cur.clone();
        // Chunk deletion, halving chunk sizes.
        let mut chunk = cur.len().div_ceil(2).max(1);
        while chunk >= 1 && spent < budget {
            let mut i = 0;
            while i < cur.len() && spent < budget {
                let mut cand = cur.clone();
                let end = (i + chunk).min(cand.len());
                cand.drain(i..end);
                let cand = strip_trailing_canonical(cand);
                if fails(&cand, &mut spent) {
                    cur = cand;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Pointwise canonicalization of surviving non-default choices.
        let mut i = 0;
        while i < cur.len() && spent < budget {
            if cur[i] != SchedDecision::CANONICAL {
                let mut cand = cur.clone();
                cand[i] = SchedDecision::CANONICAL;
                let cand = strip_trailing_canonical(cand);
                if fails(&cand, &mut spent) {
                    cur = cand;
                    continue; // re-check same index (list may have shrunk)
                }
            }
            i += 1;
        }
        if cur == before || spent >= budget {
            return cur;
        }
    }
}

fn found(
    model: &dyn Model,
    message: String,
    script: Vec<SchedDecision>,
    bounds: &Bounds,
) -> FoundViolation {
    let script = strip_trailing_canonical(script);
    let shrunk = shrink(model, script.clone(), bounds.max_steps, 400);
    let rendered = rendered_trace(model, &shrunk, bounds.max_steps);
    let flight_dump = flight_dump(model, &message, &shrunk, bounds.max_steps);
    FoundViolation {
        message,
        script,
        shrunk,
        rendered,
        flight_dump,
    }
}

/// Alternatives to branch into at one choice point, given the option set
/// the recorded run saw there and the fault budget already spent by the
/// prefix.
fn alternatives(
    rec: &RunRecord,
    p: usize,
    prefix: &[SchedDecision],
    bounds: &Bounds,
    crash_candidates: &[usize],
) -> Vec<SchedDecision> {
    let options = &rec.options[p];
    let taken = rec.choices[p];
    let mut alts = Vec::new();
    let reachable = options.len().min(bounds.max_branch);
    for i in 0..reachable {
        let d = SchedDecision::Deliver(i);
        if d != taken {
            alts.push(d);
        }
    }
    let drops_used = prefix
        .iter()
        .filter(|c| matches!(c, SchedDecision::Drop(_)))
        .count();
    if drops_used < bounds.max_drops {
        for (i, opt) in options.iter().take(reachable).enumerate() {
            if opt.kind.is_deliver() {
                alts.push(SchedDecision::Drop(i));
            }
        }
    }
    let crashes_used: Vec<usize> = prefix
        .iter()
        .filter_map(|c| match c {
            SchedDecision::Crash(n) => Some(*n),
            _ => None,
        })
        .collect();
    if crashes_used.len() < bounds.max_crashes {
        for &node in crash_candidates {
            if !crashes_used.contains(&node) {
                alts.push(SchedDecision::Crash(node));
            }
        }
    }
    let recovers_used = prefix
        .iter()
        .filter(|c| matches!(c, SchedDecision::CrashRecover(_)))
        .count();
    if recovers_used < bounds.max_recovers {
        // A node may amnesia-recover more than once per schedule (each
        // recovery is non-terminal); only the budget bounds the count.
        // Already-crashed nodes are excluded — the world ignores the
        // decision there, so branching into it would duplicate the
        // parent schedule.
        for &node in crash_candidates {
            if !crashes_used.contains(&node) {
                alts.push(SchedDecision::CrashRecover(node));
            }
        }
    }
    alts
}

/// Deduplication key for branching at choice point `p`: the world-state
/// fingerprint alone is not enough, because the *branching behaviour*
/// from a state also depends on context the fingerprint deliberately
/// ignores — the canonical order of the events inside the branch window
/// (the digest hashes pending events as a multiset) and how much of the
/// fault budget the prefix already spent. Folding those in keeps the
/// "identical key ⇒ identical subtree" pruning argument sound.
fn dedup_key(rec: &RunRecord, p: usize, bounds: &Bounds) -> u64 {
    let mut key = rec.fingerprints[p];
    for opt in rec.options[p].iter().take(bounds.max_branch) {
        key = rqs_sim::fnv1a_fold(key, rqs_sim::fnv1a(format!("{:?}", opt.kind).as_bytes()));
    }
    let prefix = &rec.choices[..p];
    let drops_used = prefix
        .iter()
        .filter(|c| matches!(c, SchedDecision::Drop(_)))
        .count();
    key = rqs_sim::fnv1a_fold(key, drops_used as u64);
    let mut crashes_used: Vec<usize> = prefix
        .iter()
        .filter_map(|c| match c {
            SchedDecision::Crash(n) => Some(*n),
            _ => None,
        })
        .collect();
    crashes_used.sort_unstable();
    for n in crashes_used {
        key = rqs_sim::fnv1a_fold(key, 1 + n as u64);
    }
    // Recoveries leave no lasting mark the fingerprint misses (the node
    // keeps running on its restored state, which the digest captures),
    // so only the *count* affects future branching — via the remaining
    // budget — exactly like drops.
    let recovers_used = prefix
        .iter()
        .filter(|c| matches!(c, SchedDecision::CrashRecover(_)))
        .count();
    key = rqs_sim::fnv1a_fold(key, recovers_used as u64);
    key
}

/// Bounded depth-first exploration. Stops at the first violation when
/// `stop_at_first` (the shrunk, replayable counterexample is attached);
/// otherwise collects every violating schedule it encounters.
pub fn dfs(model: &dyn Model, bounds: &Bounds, stop_at_first: bool) -> ExploreOutcome {
    let crash_candidates = bounds
        .crash_candidates
        .clone()
        .unwrap_or_else(|| model.crash_candidates());
    let mut agenda: Vec<Vec<SchedDecision>> = vec![Vec::new()];
    let mut seen: HashSet<u64> = HashSet::new();
    let mut out = ExploreOutcome::default();
    out.stats.exhausted = true;
    while let Some(script) = agenda.pop() {
        if out.stats.runs >= bounds.max_runs {
            out.stats.exhausted = false;
            break;
        }
        let (rec, run_out) = replay(model, &script, bounds.max_steps);
        out.stats.runs += 1;
        out.stats.choice_points += rec.choices.len();
        out.stats.max_depth = out.stats.max_depth.max(rec.choices.len());
        out.stats.scanned_ops += run_out.scanned_ops;
        if let Some(v) = run_out.violation {
            out.violations
                .push(found(model, v, rec.choices.clone(), bounds));
            if stop_at_first {
                out.stats.exhausted = false;
                break;
            }
            continue;
        }
        let horizon = rec.choices.len().min(bounds.max_choice_depth);
        // Deepest-first push order makes the agenda a true DFS stack.
        for p in (script.len()..horizon).rev() {
            if bounds.dedup && !seen.insert(dedup_key(&rec, p, bounds)) {
                continue; // an identical state already branched here
            }
            let prefix = &rec.choices[..p];
            for alt in alternatives(&rec, p, prefix, bounds, &crash_candidates) {
                let mut next = rec.choices[..p].to_vec();
                next.push(alt);
                agenda.push(next);
            }
        }
    }
    out.stats.unique_states = seen.len();
    out
}

/// Seeded random-walk exploration: `walks` independent runs whose tails
/// are random schedules (see [`WalkOpts`]). Violations are shrunk exactly
/// like DFS finds.
pub fn random_walks(
    model: &dyn Model,
    bounds: &Bounds,
    walks: usize,
    seed: u64,
    opts: WalkOpts,
) -> ExploreOutcome {
    let mut out = ExploreOutcome::default();
    let mut seen: HashSet<u64> = HashSet::new();
    out.stats.exhausted = false; // sampling never exhausts
    for walk in 0..walks {
        if out.stats.runs >= bounds.max_runs {
            break;
        }
        let walk_seed = seed.wrapping_add(walk as u64).wrapping_mul(0x9e37_79b9);
        let ctl = RunCtl::new(
            Vec::new(),
            Tail::Random {
                seed: walk_seed,
                opts,
            },
            bounds.max_steps,
        );
        let run_out = model.run(&ctl);
        let rec = ctl.rec.borrow().clone();
        out.stats.runs += 1;
        out.stats.choice_points += rec.choices.len();
        out.stats.max_depth = out.stats.max_depth.max(rec.choices.len());
        out.stats.scanned_ops += run_out.scanned_ops;
        for fp in &rec.fingerprints {
            seen.insert(*fp);
        }
        if let Some(v) = run_out.violation {
            out.violations
                .push(found(model, v, rec.choices.clone(), bounds));
            break;
        }
    }
    out.stats.unique_states = seen.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StorageModel, StorageSystem};

    #[test]
    fn bounds_builders_compose() {
        let b = Bounds::delivery(4, 2)
            .with_drops(1)
            .with_crashes(2)
            .with_recovers(3);
        assert_eq!(b.max_choice_depth, 4);
        assert_eq!(b.max_branch, 2);
        assert_eq!(b.max_drops, 1);
        assert_eq!(b.max_crashes, 2);
        assert_eq!(b.max_recovers, 3);
    }

    #[test]
    fn strip_trailing_defaults() {
        let s = vec![
            SchedDecision::Deliver(2),
            SchedDecision::CANONICAL,
            SchedDecision::CANONICAL,
        ];
        assert_eq!(strip_trailing_canonical(s), vec![SchedDecision::Deliver(2)]);
        assert!(strip_trailing_canonical(vec![SchedDecision::CANONICAL]).is_empty());
    }

    #[test]
    fn tiny_dfs_exhausts_cleanly() {
        let model = StorageModel::sequential_fast_path(StorageSystem::CrashFast { n: 5, q: 1 });
        let outcome = dfs(&model, &Bounds::delivery(2, 2), true);
        assert!(outcome.stats.exhausted);
        assert!(outcome.violations.is_empty());
        assert!(outcome.stats.runs >= 2, "branched at least once");
    }

    #[test]
    fn recover_branching_on_durable_model_exhausts_clean() {
        // Amnesia crash-recoveries are invisible on write-ahead-logged
        // servers: branching them into every choice point must not
        // manufacture a violation.
        let model =
            StorageModel::write_read_read(StorageSystem::CrashFast { n: 4, q: 1 }).durable();
        let bounds = Bounds::delivery(3, 2)
            .with_recovers(2)
            .with_crash_candidates(vec![0, 1]);
        let outcome = dfs(&model, &bounds, true);
        assert!(outcome.stats.exhausted);
        assert!(
            outcome.violations.is_empty(),
            "{:?}",
            outcome.violations.first().map(|v| &v.message)
        );
    }

    #[test]
    fn dedup_prunes_runs() {
        let model = StorageModel::write_read_read(StorageSystem::ByzantineFast { t: 1 });
        let with = dfs(&model, &Bounds::delivery(3, 2), true);
        let mut loose = Bounds::delivery(3, 2);
        loose.dedup = false;
        let without = dfs(&model, &loose, true);
        assert!(with.stats.exhausted && without.stats.exhausted);
        assert!(without.violations.is_empty() && with.violations.is_empty());
        assert!(
            with.stats.runs <= without.stats.runs,
            "dedup must not add runs ({} vs {})",
            with.stats.runs,
            without.stats.runs
        );
    }
}
