//! Acceptance tests for the explorer on the *correct* protocol: bounded
//! DFS must exhaust the schedule space of the canonical small models with
//! zero violations, and sampling modes must stay clean too.

use rqs_check::explore::{dfs, random_walks, replay, Bounds};
use rqs_check::model::{builtin_model, ConsensusModel, StorageModel, StorageSystem};
use rqs_check::WalkOpts;
use rqs_sim::SchedDecision;

/// The headline acceptance claim: DFS exploration of the
/// 1-writer/2-reader/4-server storage model to the depth bound exhausts
/// the bounded space with zero violations.
#[test]
fn dfs_exhausts_writer_two_readers_four_servers_clean() {
    let model = StorageModel::write_read_read(StorageSystem::ByzantineFast { t: 1 });
    let outcome = dfs(&model, &Bounds::delivery(8, 3), true);
    assert!(
        outcome.stats.exhausted,
        "bounded space must be fully enumerated (ran {} runs)",
        outcome.stats.runs
    );
    assert!(
        outcome.violations.is_empty(),
        "atomicity must hold on every explored schedule: {:?}",
        outcome.violations.first().map(|v| &v.message)
    );
    assert!(
        outcome.stats.runs > 100,
        "the space is non-trivial ({} runs)",
        outcome.stats.runs
    );
    assert!(outcome.stats.unique_states > 50);
    assert!(outcome.stats.max_depth > 20);
}

/// Fault branching (message drops + one crash, within the resilience
/// bound t = 1) must not produce false positives on the correct
/// algorithm.
#[test]
fn dfs_with_faults_stays_clean_on_correct_algorithm() {
    let model = StorageModel::write_read_read(StorageSystem::CrashFast { n: 4, q: 1 });
    let bounds = Bounds::delivery(6, 2)
        .with_drops(3)
        .with_crashes(1)
        .with_crash_candidates(vec![0]);
    let outcome = dfs(&model, &bounds, true);
    assert!(outcome.stats.exhausted);
    assert!(
        outcome.violations.is_empty(),
        "dropped messages are just delayed messages and one crash is within t: {:?}",
        outcome.violations.first().map(|v| &v.message)
    );
}

/// Consensus under contention: every reordering within the bound keeps
/// agreement and validity.
#[test]
fn dfs_consensus_contention_clean() {
    let model = ConsensusModel::contention(1);
    let outcome = dfs(&model, &Bounds::delivery(4, 2), true);
    assert!(outcome.stats.exhausted);
    assert!(
        outcome.violations.is_empty(),
        "{:?}",
        outcome.violations.first().map(|v| &v.message)
    );
}

/// Seeded random walks over the 5-server model: clean, reproducible, and
/// deep (walks reach schedules DFS's depth bound cannot).
#[test]
fn random_walks_are_clean_and_reproducible() {
    let model = StorageModel::write_read_read(StorageSystem::CrashFast { n: 5, q: 1 });
    let bounds = Bounds::delivery(0, 1);
    let a = random_walks(&model, &bounds, 60, 42, WalkOpts::default());
    let b = random_walks(&model, &bounds, 60, 42, WalkOpts::default());
    assert!(
        a.violations.is_empty(),
        "{:?}",
        a.violations.first().map(|v| &v.message)
    );
    assert_eq!(a.stats.runs, b.stats.runs);
    assert_eq!(
        a.stats.choice_points, b.stats.choice_points,
        "same seed, same schedules"
    );
    assert_eq!(a.stats.unique_states, b.stats.unique_states);
    assert!(a.stats.max_depth > 8);
}

/// Replaying the same script twice gives the identical record — the
/// property counterexample files and shrinking rely on.
#[test]
fn replay_is_deterministic() {
    let model = StorageModel::write_read_read(StorageSystem::ByzantineFast { t: 1 });
    let script = vec![
        SchedDecision::Deliver(2),
        SchedDecision::Deliver(1),
        SchedDecision::Deliver(3),
    ];
    let (rec_a, out_a) = replay(&model, &script, 500);
    let (rec_b, out_b) = replay(&model, &script, 500);
    assert_eq!(rec_a.choices, rec_b.choices);
    assert_eq!(rec_a.fingerprints, rec_b.fingerprints);
    assert_eq!(out_a.violation, out_b.violation);
    assert_eq!(out_a.violation, None);
}

/// The fast-path invariant holds on the canonical schedule and is
/// correctly skipped (not falsely reported) on reordered schedules.
#[test]
fn fast_path_invariant_checks_canonical_runs_only() {
    let model = builtin_model("storage-crash5-seq").unwrap();
    let (rec, out) = replay(model.as_ref(), &[], 2_000);
    assert!(rec.is_canonical());
    assert_eq!(out.violation, None, "1-round ops on the synchronous path");
    // A reordered run may legitimately exceed the fast path; the
    // invariant must not fire there.
    let (rec, out) = replay(model.as_ref(), &[SchedDecision::Deliver(4)], 2_000);
    assert!(!rec.is_canonical());
    assert_eq!(out.violation, None);
}
