//! Acceptance tests for the streaming atomicity path in the explorer:
//! the per-choice-point incremental checker must agree with the
//! quadratic full-history rescan baseline, beat it on checking work per
//! explored node, and attribute a planted violation to the operation
//! whose arrival exposed it (not to a post-hoc history scan).

use rqs_check::explore::{dfs, replay, Bounds};
use rqs_check::model::{StorageInvariant, StorageModel, StorageOp, StorageSystem};
use rqs_storage::reader::Reader;
use std::rc::Rc;

/// Completed ops per fully-executed run of [`deep_model`].
const DEEP_OPS: usize = 24;

/// The 1-writer/2-reader/4-server model with a longer interleaved
/// workload, so each run's history is big enough for the quadratic
/// baseline's per-choice-point cost to show up.
fn deep_model(invariant: StorageInvariant) -> StorageModel {
    StorageModel {
        system: StorageSystem::CrashFast { n: 4, q: 1 },
        readers: 2,
        chains: vec![
            (1..=8).map(StorageOp::Write).collect(),
            vec![StorageOp::Read(0); DEEP_OPS / 3],
            vec![StorageOp::Read(1); DEEP_OPS / 3],
        ],
        invariants: vec![invariant],
        setup: None,
        durable: false,
    }
}

/// Streaming and rescan explore the identical schedule space with the
/// identical (clean) verdict, and the streaming invariant does a small
/// fraction of the checking work — the satellite claim: DFS node
/// throughput improves once the per-state full-history re-check is
/// gone. `ExploreStats::scanned_ops` counts the ops each invariant
/// looked at, so the comparison is deterministic: streaming scans each
/// completed op once per run, while the rescan baseline rescans the
/// whole history at every choice point (wall-clock at this model scale
/// is dominated by World execution, which is identical for both).
#[test]
fn streaming_matches_rescan_and_improves_dfs_throughput() {
    let bounds = Bounds::delivery(3, 2);
    let stream = dfs(&deep_model(StorageInvariant::Atomicity), &bounds, true);
    let rescan = dfs(
        &deep_model(StorageInvariant::AtomicityRescan),
        &bounds,
        true,
    );
    for out in [&stream, &rescan] {
        assert!(
            out.violations.is_empty() && out.stats.exhausted,
            "exploration must exhaust clean"
        );
    }
    assert_eq!(
        stream.stats.runs, rescan.stats.runs,
        "invariant choice must not change the explored space"
    );
    let (s, r) = (stream.stats.scanned_ops, rescan.stats.scanned_ops);
    assert!(s > 0, "streaming polling must have observed completed ops");
    assert!(
        s <= stream.stats.runs * DEEP_OPS,
        "streaming scans each completed op at most once per run \
         ({s} scanned over {} runs)",
        stream.stats.runs
    );
    assert!(
        r >= 5 * s,
        "per-choice-point rescans must dwarf streaming's one-scan-per-op \
         checking work: rescan scanned {r}, streaming {s}"
    );
}

/// Swaps reader 1 for the always-stale mutant in a workload with ops
/// *after* the first stale read. The streaming checker must flag the
/// violation the moment the offending read arrives, aborting the run
/// before the remaining chain ops even execute — observable as
/// `ops_checked` falling short of the workload size, with
/// `violation_op` naming the arrival index.
#[test]
fn stale_mutant_is_flagged_at_arrival_mid_history() {
    let mut model = StorageModel {
        system: StorageSystem::ByzantineFast { t: 1 },
        readers: 2,
        chains: vec![
            vec![StorageOp::Write(1)],
            vec![
                StorageOp::Read(0),
                StorageOp::Read(1), // first stale read: the violation
                StorageOp::Read(0),
                StorageOp::Read(1),
            ],
        ],
        invariants: vec![StorageInvariant::Atomicity],
        setup: None,
        durable: false,
    };
    model.setup = Some(Rc::new(|h| {
        let rqs = h.rqs().clone();
        let servers = h.servers().to_vec();
        let id = h.reader_id(1);
        h.world_mut()
            .replace_node(id, Box::new(Reader::new_mutant_stale(rqs, servers)));
    }));
    let outcome = dfs(&model, &Bounds::delivery(4, 2), true);
    assert_eq!(outcome.violations.len(), 1);
    let v = &outcome.violations[0];
    assert!(v.message.contains("atomicity"), "{}", v.message);

    let (_, out) = replay(&model, &v.shrunk, 500);
    assert!(out.violation.is_some(), "shrunk script must still fail");
    let stats = out.checker.expect("storage runs report checker stats");
    let bad = stats
        .violation_op
        .expect("violation must be pinned to an arriving op");
    assert!(
        stats.ops_checked < 5,
        "run must abort at the violating arrival, before the remaining \
         chain ops execute (checked {} of 5)",
        stats.ops_checked
    );
    assert_eq!(
        bad,
        stats.ops_checked - 1,
        "the violating op is the last one observed"
    );
}

/// The schedule-dependent §1.2 skip-write-back mutant: the streaming
/// checker finds the same new/old inversion the offline checker pins,
/// and the replayed counterexample attributes it to a specific arrival.
#[test]
fn skip_write_back_mutant_attributed_to_arrival() {
    let mut model = StorageModel::write_read_read(StorageSystem::CrashFast { n: 4, q: 1 });
    model.setup = Some(Rc::new(|h| {
        let rqs = h.rqs().clone();
        let servers = h.servers().to_vec();
        let id = h.reader_id(0);
        h.world_mut().replace_node(
            id,
            Box::new(Reader::new_mutant_skip_write_back(rqs, servers)),
        );
    }));
    let bounds = Bounds::delivery(6, 2)
        .with_drops(3)
        .with_crashes(1)
        .with_crash_candidates(vec![0]);
    let outcome = dfs(&model, &bounds, true);
    assert_eq!(outcome.violations.len(), 1, "runs: {}", outcome.stats.runs);
    let v = &outcome.violations[0];
    assert!(v.message.contains("stale"), "{}", v.message);

    let (_, out) = replay(&model, &v.shrunk, 500);
    assert!(out.violation.is_some());
    let stats = out.checker.expect("storage runs report checker stats");
    assert!(
        stats.violation_op.is_some(),
        "the inversion must be pinned to an arriving op"
    );
}

/// Differential check on a buggy model: the rescan baseline convicts the
/// stale mutant too, with the same invariant-class message — verdict
/// equivalence holds on violating histories, not just clean ones.
#[test]
fn rescan_baseline_agrees_on_mutant_verdict() {
    let mut model = StorageModel::write_read_read(StorageSystem::ByzantineFast { t: 1 });
    model.invariants = vec![StorageInvariant::AtomicityRescan];
    model.setup = Some(Rc::new(|h| {
        let rqs = h.rqs().clone();
        let servers = h.servers().to_vec();
        let id = h.reader_id(1);
        h.world_mut()
            .replace_node(id, Box::new(Reader::new_mutant_stale(rqs, servers)));
    }));
    let outcome = dfs(&model, &Bounds::delivery(4, 2), true);
    assert_eq!(outcome.violations.len(), 1);
    assert!(
        outcome.violations[0].message.contains("atomicity"),
        "{}",
        outcome.violations[0].message
    );
}
