//! Negative tests for the checker itself: plant known bugs (behind the
//! `mutants` feature of the protocol crates) and assert the explorer
//! *finds* each violation within a fixed budget, producing a shrunk,
//! replayable counterexample.

use rqs_check::explore::{dfs, replay, Bounds};
use rqs_check::model::{ConsensusModel, StorageModel, StorageSystem};
use rqs_consensus::byzantine::ScriptedAcceptor;
use rqs_consensus::learner::Learner;
use rqs_consensus::types::ConsensusMsg;
use rqs_storage::reader::Reader;
use rqs_storage::server::Server;
use std::rc::Rc;

/// Reader 1 always returns `⟨0,⊥⟩` — a stale-read bug. The canonical
/// schedule already exposes it, so the explorer finds it on its very
/// first run and the shrunk trace is empty (the bug is
/// schedule-independent).
#[test]
fn stale_reader_mutant_is_found() {
    let mut model = StorageModel::write_read_read(StorageSystem::ByzantineFast { t: 1 });
    model.setup = Some(Rc::new(|h| {
        let rqs = h.rqs().clone();
        let servers = h.servers().to_vec();
        let id = h.reader_id(1);
        h.world_mut()
            .replace_node(id, Box::new(Reader::new_mutant_stale(rqs, servers)));
    }));
    let outcome = dfs(&model, &Bounds::delivery(4, 2), true);
    assert_eq!(outcome.violations.len(), 1);
    let v = &outcome.violations[0];
    assert!(v.message.contains("atomicity"), "{}", v.message);
    assert!(v.shrunk.len() <= 2, "shrunk trace: {:?}", v.shrunk);
    assert!(outcome.stats.runs <= 5, "found almost immediately");
    // The counterexample replays.
    let (_, out) = replay(&model, &v.shrunk, 500);
    assert!(out.violation.is_some());
}

fn skip_write_back_model() -> StorageModel {
    let mut model = StorageModel::write_read_read(StorageSystem::CrashFast { n: 4, q: 1 });
    model.setup = Some(Rc::new(|h| {
        let rqs = h.rqs().clone();
        let servers = h.servers().to_vec();
        let id = h.reader_id(0);
        h.world_mut().replace_node(
            id,
            Box::new(Reader::new_mutant_skip_write_back(rqs, servers)),
        );
    }));
    model
}

/// Reader 0 skips the write-back phase — the §1.2 greedy bug. This one is
/// genuinely schedule-dependent: it only fires when the write reaches a
/// single server, the skipping reader returns the new value from that
/// server alone, the server then crashes, and the second reader completes
/// against the remaining quorum — a new/old inversion. Bounded DFS with
/// fault branching (3 drops + 1 crash, within budget) must construct that
/// schedule.
#[test]
fn skip_write_back_mutant_is_found_and_shrunk() {
    let model = skip_write_back_model();
    let bounds = Bounds::delivery(6, 2)
        .with_drops(3)
        .with_crashes(1)
        .with_crash_candidates(vec![0]);
    let outcome = dfs(&model, &bounds, true);
    assert_eq!(
        outcome.violations.len(),
        1,
        "explorer must find the inversion within the budget ({} runs)",
        outcome.stats.runs
    );
    let v = &outcome.violations[0];
    assert!(v.message.contains("atomicity"), "{}", v.message);
    assert!(v.message.contains("stale"), "{}", v.message);
    assert!(
        v.shrunk.len() <= 8,
        "shrunk trace must be short, got {}: {:?}",
        v.shrunk.len(),
        v.shrunk
    );
    assert!(
        outcome.stats.runs <= 2_000,
        "budget: {} runs",
        outcome.stats.runs
    );
    // The shrunk counterexample replays to the same violation class.
    let (_, out) = replay(&model, &v.shrunk, 500);
    assert!(out.violation.is_some(), "shrunk script must still fail");
    // And the rendered trace shows the failing execution.
    assert!(!v.rendered.is_empty());
    // The flight-recorder dump is a one-line structured report carrying
    // the instrumented replay's trace events.
    assert!(v.flight_dump.starts_with('{'), "{}", v.flight_dump);
    assert!(!v.flight_dump.contains('\n'));
    assert!(v.flight_dump.contains("schedule-violation"));
    assert!(v.flight_dump.contains("atomicity"));
    assert!(
        v.flight_dump.contains("\"deliver\""),
        "instrumented replay must record delivery events: {}",
        v.flight_dump
    );
}

/// The same planted bug must NOT be reported when the mutant is absent:
/// identical bounds on the correct algorithm exhaust clean. (Guards
/// against the checker "finding" violations that are artifacts of fault
/// branching.)
#[test]
fn no_mutant_no_violation_under_same_budget() {
    let model = StorageModel::write_read_read(StorageSystem::CrashFast { n: 4, q: 1 });
    let bounds = Bounds::delivery(6, 2)
        .with_drops(3)
        .with_crashes(1)
        .with_crash_candidates(vec![0]);
    let outcome = dfs(&model, &bounds, true);
    assert!(outcome.stats.exhausted);
    assert!(outcome.violations.is_empty());
}

/// A durable model whose servers ack writes *without* write-ahead
/// logging them (the planted durability bug): amnesia recovery then
/// loses acknowledged state.
fn no_wal_model() -> StorageModel {
    let mut model =
        StorageModel::write_read_read(StorageSystem::CrashFast { n: 4, q: 1 }).durable();
    model.setup = Some(Rc::new(|h| {
        let stores = h.server_stores().to_vec();
        let servers = h.servers().to_vec();
        for (id, store) in servers.into_iter().zip(stores) {
            h.world_mut()
                .replace_node(id, Box::new(Server::new_mutant_no_wal(store)));
        }
    }));
    model
}

fn amnesia_bounds() -> Bounds {
    Bounds::delivery(7, 2)
        .with_drops(1)
        .with_recovers(3)
        .with_crash_candidates(vec![0, 1, 2])
}

/// Servers that ack before logging violate atomicity under amnesia
/// crash-recovery: the write collects a quorum of acks, the acking
/// servers forget the value, and a later read completes against the
/// amnesiac quorum and returns stale state. The explorer's
/// `CrashRecover` branching must construct that schedule within the
/// pinned budget.
#[test]
fn no_wal_mutant_is_found_by_amnesia_branching() {
    let model = no_wal_model();
    let outcome = dfs(&model, &amnesia_bounds(), true);
    assert_eq!(
        outcome.violations.len(),
        1,
        "explorer must find the lost-write within the budget ({} runs)",
        outcome.stats.runs
    );
    let v = &outcome.violations[0];
    assert!(v.message.contains("atomicity"), "{}", v.message);
    assert!(
        v.shrunk
            .iter()
            .any(|c| matches!(c, rqs_sim::SchedDecision::CrashRecover(_))),
        "the counterexample must hinge on an amnesia recovery: {:?}",
        v.shrunk
    );
    assert!(
        v.shrunk.len() <= 10,
        "shrunk trace must be short, got {}: {:?}",
        v.shrunk.len(),
        v.shrunk
    );
    assert!(
        outcome.stats.runs <= 5_000,
        "budget: {} runs",
        outcome.stats.runs
    );
    let (_, out) = replay(&model, &v.shrunk, 500);
    assert!(out.violation.is_some(), "shrunk script must still fail");
}

/// The same amnesia schedules must be invisible on the correct
/// write-ahead-logging servers: identical bounds on the unmutated
/// durable model exhaust clean.
#[test]
fn wal_servers_survive_amnesia_branching_under_same_budget() {
    let model = StorageModel::write_read_read(StorageSystem::CrashFast { n: 4, q: 1 }).durable();
    let outcome = dfs(&model, &amnesia_bounds(), true);
    assert!(outcome.stats.exhausted);
    assert!(
        outcome.violations.is_empty(),
        "{:?}",
        outcome.violations.first().map(|v| &v.message)
    );
}

/// Learner 0 trusts `decision⟨v⟩` one sender short of a basic subset
/// (quorum-size off-by-one): a single forged decision from a Byzantine
/// acceptor makes it learn a never-proposed value — agreement and
/// validity both break.
#[test]
fn one_short_decision_mutant_is_found() {
    let mut model = ConsensusModel::contention(1);
    model.setup = Some(Rc::new(|h| {
        let cfg = h.config().clone();
        let learners = cfg.learners.clone();
        h.world_mut()
            .replace_node(learners[0], Box::new(Learner::new_mutant_one_short(cfg)));
        let targets = learners;
        h.make_byzantine(
            3,
            Box::new(ScriptedAcceptor::new(move |_from, msg, ctx| {
                if let ConsensusMsg::Prepare { .. } = msg {
                    ctx.broadcast(
                        targets.iter().copied(),
                        ConsensusMsg::Decision { value: 999 },
                    );
                }
            })),
        );
    }));
    let outcome = dfs(&model, &Bounds::delivery(4, 2), true);
    assert_eq!(outcome.violations.len(), 1);
    let v = &outcome.violations[0];
    assert!(
        v.message.contains("agreement") || v.message.contains("validity"),
        "{}",
        v.message
    );
    assert!(v.message.contains("999"), "{}", v.message);
    assert!(v.shrunk.len() <= 2, "shrunk trace: {:?}", v.shrunk);
    let (_, out) = replay(&model, &v.shrunk, 20_000);
    assert!(out.violation.is_some());
}

/// The correct learner is immune to the same forged decision: a single
/// Byzantine sender is not a basic subset.
#[test]
fn correct_learner_ignores_forged_decision() {
    let mut model = ConsensusModel::contention(1);
    model.setup = Some(Rc::new(|h| {
        let learners = h.config().learners.clone();
        let targets = learners;
        h.make_byzantine(
            3,
            Box::new(ScriptedAcceptor::new(move |_from, msg, ctx| {
                if let ConsensusMsg::Prepare { .. } = msg {
                    ctx.broadcast(
                        targets.iter().copied(),
                        ConsensusMsg::Decision { value: 999 },
                    );
                }
            })),
        );
    }));
    let outcome = dfs(&model, &Bounds::delivery(3, 2), true);
    assert!(outcome.stats.exhausted);
    assert!(
        outcome.violations.is_empty(),
        "{:?}",
        outcome.violations.first().map(|v| &v.message)
    );
}
