//! Exporters: Chrome `trace_event` JSON and structured failure dumps.
//!
//! [`chrome_trace`] renders a slice of [`TraceEvent`]s in the Chrome
//! trace-event format (load it in `chrome://tracing` or Perfetto): every
//! event becomes an instant (`"ph":"i"`) entry carrying its full payload
//! in `args`, and every invoked/completed pair additionally becomes a
//! duration span (`"ph":"X"`) so op latency renders as a bar per
//! node/lane track. [`parse_chrome_trace`] is the strict inverse used by
//! the round-trip test and CI validation — it reconstructs the exact
//! event multiset from the instant entries. [`dump_json`] renders
//! machine-readable failure reports (stuck lanes, atomicity violations,
//! counterexamples) with the flight-recorder tail attached.

use crate::trace::{TraceEvent, TraceKind};
use std::collections::BTreeMap;

/// One parsed Chrome trace entry (instant or span).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Entry name (the [`TraceKind::name`] for instants, `"op"` for
    /// spans).
    pub name: String,
    /// `"i"` for instants, `"X"` for spans.
    pub ph: String,
    /// Timestamp (protocol tick, rendered as µs).
    pub ts: u64,
    /// Span duration (0 for instants).
    pub dur: u64,
    /// Process track: the node id.
    pub pid: u64,
    /// Thread track: the lane.
    pub tid: u64,
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn instant_entry(ev: &TraceEvent) -> String {
    format!(
        "{{\"name\":{},\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\
         \"args\":{{\"op\":{},\"a\":{},\"b\":{}}}}}",
        json_string(ev.kind.name()),
        ev.tick,
        ev.node,
        ev.lane,
        ev.op,
        ev.a,
        ev.b
    )
}

/// Renders events as a Chrome trace-event JSON document.
///
/// Ticks are rendered as microseconds (`1 tick = 1 µs`), nodes as
/// processes, lanes as threads. Instant entries carry the exact payload;
/// `X` span entries are synthesized for every
/// [`TraceKind::OpInvoked`]/[`TraceKind::OpCompleted`] pair on the same
/// `(node, lane, op)` so operation latency renders as bars.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(events.len());
    let mut open: BTreeMap<(u64, u8, u64), u64> = BTreeMap::new();
    for ev in events {
        entries.push(instant_entry(ev));
        match ev.kind {
            TraceKind::OpInvoked => {
                open.insert((ev.node, ev.lane, ev.op), ev.tick);
            }
            TraceKind::OpCompleted => {
                if let Some(start) = open.remove(&(ev.node, ev.lane, ev.op)) {
                    entries.push(format!(
                        "{{\"name\":\"op\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                         \"pid\":{},\"tid\":{},\"args\":{{\"op\":{},\"rounds\":{}}}}}",
                        start,
                        ev.tick.saturating_sub(start),
                        ev.node,
                        ev.lane,
                        ev.op,
                        ev.a
                    ));
                }
            }
            _ => {}
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        entries.join(",")
    )
}

/// Renders a machine-readable failure report: a `report` tag, free-form
/// string details, and the flight-recorder tail. One JSON object per
/// call, suitable for a single stderr line CI can parse.
pub fn dump_json(report: &str, details: &[(&str, String)], events: &[TraceEvent]) -> String {
    let detail_fields: Vec<String> = details
        .iter()
        .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
        .collect();
    let evs: Vec<String> = events
        .iter()
        .map(|e| {
            format!(
                "{{\"tick\":{},\"node\":{},\"op\":{},\"lane\":{},\"kind\":{},\"a\":{},\"b\":{}}}",
                e.tick,
                e.node,
                e.op,
                e.lane,
                json_string(e.kind.name()),
                e.a,
                e.b
            )
        })
        .collect();
    format!(
        "{{\"report\":{},\"details\":{{{}}},\"flight_recorder\":[{}]}}",
        json_string(report),
        detail_fields.join(","),
        evs.join(",")
    )
}

// ---- strict mini-JSON parsing -----------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Val {
    Str(String),
    Int(u64),
    Obj(Vec<(String, Val)>),
    Arr(Vec<Val>),
}

struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { rest: s }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at {:?}", &self.rest[..self.rest.len().min(24)])
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(self.err(&format!("expected {c:?}"))),
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.rest.starts_with(c)
    }

    fn comma_or(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix(',') {
            self.rest = rest;
            Ok(true)
        } else if let Some(rest) = self.rest.strip_prefix(close) {
            self.rest = rest;
            Ok(false)
        } else {
            Err(self.err(&format!("expected ',' or {close:?}")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((j, 'u')) => {
                        let hex = self.rest.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn value(&mut self) -> Result<Val, String> {
        self.skip_ws();
        if self.rest.starts_with('"') {
            return Ok(Val::Str(self.string()?));
        }
        if self.rest.starts_with('{') {
            self.expect('{')?;
            let mut fields = Vec::new();
            if self.peek_is('}') {
                self.expect('}')?;
                return Ok(Val::Obj(fields));
            }
            loop {
                let key = self.string()?;
                self.expect(':')?;
                fields.push((key, self.value()?));
                if !self.comma_or('}')? {
                    return Ok(Val::Obj(fields));
                }
            }
        }
        if self.rest.starts_with('[') {
            self.expect('[')?;
            let mut items = Vec::new();
            if self.peek_is(']') {
                self.expect(']')?;
                return Ok(Val::Arr(items));
            }
            loop {
                items.push(self.value()?);
                if !self.comma_or(']')? {
                    return Ok(Val::Arr(items));
                }
            }
        }
        let digits: String = self
            .rest
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if digits.is_empty() {
            return Err(self.err("expected a JSON value"));
        }
        self.rest = &self.rest[digits.len()..];
        digits
            .parse::<u64>()
            .map(Val::Int)
            .map_err(|e| format!("number {digits:?}: {e}"))
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(self.err("trailing input"))
        }
    }
}

fn obj_get<'v>(fields: &'v [(String, Val)], key: &str) -> Option<&'v Val> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn int_field(fields: &[(String, Val)], key: &str) -> Result<u64, String> {
    match obj_get(fields, key) {
        Some(Val::Int(v)) => Ok(*v),
        Some(other) => Err(format!("field {key:?}: expected integer, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn str_field<'v>(fields: &'v [(String, Val)], key: &str) -> Result<&'v str, String> {
    match obj_get(fields, key) {
        Some(Val::Str(v)) => Ok(v),
        Some(other) => Err(format!("field {key:?}: expected string, got {other:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

/// Strictly parses a [`chrome_trace`] document back into `(entries,
/// events)`: every entry (instants and spans) plus the exact
/// [`TraceEvent`] multiset reconstructed from the instant entries.
///
/// # Errors
///
/// Returns the first structural problem: syntax errors, missing or
/// mistyped required fields, unknown `ph`/`cat` values, or an instant
/// whose name is not a known [`TraceKind`].
pub fn parse_chrome_trace(s: &str) -> Result<(Vec<ChromeEvent>, Vec<TraceEvent>), String> {
    let mut p = Parser::new(s);
    let top = p.value()?;
    p.end()?;
    let Val::Obj(fields) = top else {
        return Err("top level must be an object".into());
    };
    let Some(Val::Arr(raw_entries)) = obj_get(&fields, "traceEvents") else {
        return Err("missing \"traceEvents\" array".into());
    };
    for (key, _) in &fields {
        if key != "traceEvents" && key != "displayTimeUnit" {
            return Err(format!("unknown top-level key {key:?}"));
        }
    }
    let mut entries = Vec::with_capacity(raw_entries.len());
    let mut events = Vec::new();
    for raw in raw_entries {
        let Val::Obj(e) = raw else {
            return Err("trace entry must be an object".into());
        };
        let name = str_field(e, "name")?.to_string();
        let cat = str_field(e, "cat")?;
        let ph = str_field(e, "ph")?.to_string();
        let ts = int_field(e, "ts")?;
        let pid = int_field(e, "pid")?;
        let tid = int_field(e, "tid")?;
        let Some(Val::Obj(args)) = obj_get(e, "args") else {
            return Err(format!("entry {name:?}: missing \"args\" object"));
        };
        let dur = match (ph.as_str(), cat) {
            ("i", "event") => {
                let kind = TraceKind::from_name(&name)
                    .ok_or_else(|| format!("unknown event name {name:?}"))?;
                events.push(TraceEvent {
                    tick: ts,
                    node: pid,
                    op: int_field(args, "op")?,
                    lane: u8::try_from(tid).map_err(|_| format!("lane {tid} out of range"))?,
                    kind,
                    a: int_field(args, "a")?,
                    b: int_field(args, "b")?,
                });
                0
            }
            ("X", "span") => int_field(e, "dur")?,
            (ph, cat) => return Err(format!("unknown entry shape ph={ph:?} cat={cat:?}")),
        };
        entries.push(ChromeEvent {
            name,
            ph,
            ts,
            dur,
            pid,
            tid,
        });
    }
    Ok((entries, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LANE_READER, LANE_WRITER};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                tick: 1,
                node: 9,
                op: 4,
                lane: LANE_WRITER,
                kind: TraceKind::OpInvoked,
                a: 0,
                b: 0,
            },
            TraceEvent {
                tick: 2,
                node: 0,
                op: 4,
                lane: LANE_WRITER,
                kind: TraceKind::Deliver,
                a: 9,
                b: 0,
            },
            TraceEvent {
                tick: 5,
                node: 9,
                op: 4,
                lane: LANE_WRITER,
                kind: TraceKind::OpCompleted,
                a: 1,
                b: 0,
            },
            TraceEvent {
                tick: 6,
                node: 9,
                op: 4,
                lane: LANE_READER,
                kind: TraceKind::RetryNudged,
                a: 1,
                b: 0,
            },
        ]
    }

    #[test]
    fn chrome_round_trips_the_event_multiset() {
        let events = sample_events();
        let doc = chrome_trace(&events);
        let (entries, back) = parse_chrome_trace(&doc).expect("trace must parse");
        assert_eq!(back, events, "instant entries round-trip exactly");
        // One instant per event plus one span for the op pair.
        assert_eq!(entries.len(), events.len() + 1);
        let span = entries.iter().find(|e| e.ph == "X").expect("span");
        assert_eq!(span.ts, 1);
        assert_eq!(span.dur, 4);
        assert_eq!(span.pid, 9);
    }

    #[test]
    fn empty_trace_is_valid() {
        let doc = chrome_trace(&[]);
        let (entries, events) = parse_chrome_trace(&doc).unwrap();
        assert!(entries.is_empty());
        assert!(events.is_empty());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_chrome_trace("").is_err());
        assert!(parse_chrome_trace("[]").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":[{}]}").is_err());
        assert!(parse_chrome_trace("{\"bogus\":[]}").is_err());
        assert!(parse_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"nope\",\"cat\":\"event\",\"ph\":\"i\",\
             \"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"op\":0,\"a\":0,\"b\":0}}]}"
        )
        .is_err());
        let doc = chrome_trace(&sample_events());
        assert!(parse_chrome_trace(&format!("{doc} trailing")).is_err());
    }

    #[test]
    fn dump_json_carries_details_and_events() {
        let events = sample_events();
        let dump = dump_json(
            "stuck-lanes",
            &[("client", "c9".to_string()), ("lane", "o4/w".to_string())],
            &events[..1],
        );
        assert!(dump.starts_with("{\"report\":\"stuck-lanes\""));
        assert!(dump.contains("\"client\":\"c9\""));
        assert!(dump.contains("\"kind\":\"op_invoked\""));
        // The dump itself is valid JSON by the strict parser's rules.
        let mut p = Parser::new(&dump);
        let v = p.value().expect("dump must be valid JSON");
        p.end().unwrap();
        assert!(matches!(v, Val::Obj(_)));
    }

    #[test]
    fn op_span_requires_matching_invoke() {
        // A completion without an invoke yields no span.
        let only_complete = vec![TraceEvent {
            tick: 5,
            node: 1,
            op: 2,
            lane: LANE_WRITER,
            kind: TraceKind::OpCompleted,
            a: 1,
            b: 0,
        }];
        let (entries, events) = parse_chrome_trace(&chrome_trace(&only_complete)).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(events, only_complete);
    }
}
