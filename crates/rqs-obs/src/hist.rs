//! A log-bucketed fixed-size latency histogram.
//!
//! Replaces the unbounded `Vec<u64>` latency capture (clone + sort per
//! percentile query) with bounded memory and O(buckets) queries: values
//! `0..=15` get exact unit buckets; larger values land in one of eight
//! sub-buckets per power of two, bounding the relative quantization
//! error at 12.5% — "within one bucket" of the exact nearest-rank
//! percentile. Histograms merge field-wise, so latency distributions
//! survive aggregation across crash segments and scenario phases.

/// Unit buckets for values `0..=15`.
const EXACT: usize = 16;
/// Sub-buckets per octave above the exact range.
const SUBS: usize = 8;
/// First octave with sub-buckets (values `16..=31` are octave 4).
const FIRST_OCTAVE: u32 = 4;
/// Total bucket count: 16 exact + 8 per octave for octaves 4..=63.
const BUCKETS: usize = EXACT + (64 - FIRST_OCTAVE as usize) * SUBS;

/// Bounded-memory latency distribution with log-bucketed percentiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= FIRST_OCTAVE
    let sub = ((v >> (octave - 3)) & 7) as usize;
    EXACT + (octave - FIRST_OCTAVE) as usize * SUBS + sub
}

/// The smallest value a bucket holds (its representative for queries).
fn bucket_floor(idx: usize) -> u64 {
    if idx < EXACT {
        return idx as u64;
    }
    let octave = FIRST_OCTAVE + ((idx - EXACT) / SUBS) as u32;
    let sub = ((idx - EXACT) % SUBS) as u64;
    (1u64 << octave) + (sub << (octave - 3))
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Field-wise merge (aggregating crash segments, waves, shards).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, rounded down (0 on an empty histogram).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The nearest-rank `p`-th percentile (`0.0..=100.0`), quantized to
    /// its bucket's floor: exact for values below 16, within 12.5% above.
    /// Returns 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the true extremes so p0/p100 are exact.
                return bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [5u64, 1, 9, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(100.0), 9);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 9);
        assert_eq!(h.mean(), 5);
    }

    #[test]
    fn large_values_stay_within_one_bucket() {
        let mut h = LatencyHistogram::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut x: u64 = 17;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x % 1_000_000;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for p in [50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * exact.len() as f64).ceil() as usize;
            let truth = exact[rank - 1];
            let got = h.percentile(p);
            // Within one log bucket: floor ≤ truth, and the bucket floor
            // is at most 12.5% below the true value (plus the unit floor).
            assert!(got <= truth, "p{p}: {got} > {truth}");
            assert!(
                (truth - got) as f64 <= (truth as f64) * 0.125 + 1.0,
                "p{p}: {got} too far below {truth}"
            );
        }
    }

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of must be monotone at {v}");
            last = b;
            assert!(bucket_floor(b) <= v);
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
        assert_eq!(bucket_floor(bucket_of(u64::MAX)), 0xF000_0000_0000_0000);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [3u64, 100, 250_000] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 90_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.len(), 5);
        assert_eq!(a.sum(), both.sum());
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }
}
