//! # Observability for RQS deployments
//!
//! The paper's whole contribution is *latency classes*: why an operation
//! completes in one round versus degrading under contention, failures or
//! asynchrony (Figures 5 and 7). This crate makes that degradation
//! measurable instead of merely countable:
//!
//! - [`TraceEvent`] / [`TraceKind`] — one fixed-size, `Copy` record per
//!   protocol step worth auditing (op invoked, round started, quorum
//!   assembled, retry nudged, WAL appended, fsync, crash, recover,
//!   deliver, drop), with node + op + lane + tick attribution.
//! - [`Tracer`] — the sink trait every layer emits into. [`NopTracer`]
//!   is the zero-overhead default (one non-atomic bool check, no
//!   allocation); [`FlightRecorder`] is a lock-free fixed-capacity ring
//!   that keeps the last `N` events for post-mortem dumps.
//! - [`Obs`] — a cheap cloneable handle (`Arc<dyn Tracer>` + a tag)
//!   embedded in protocol automata, with typed emit helpers.
//! - [`LatencyHistogram`] — a log-bucketed fixed-size histogram for
//!   bounded-memory latency percentiles, mergeable across crash
//!   segments.
//! - [`SlowPathCause`] / [`Attribution`] — per-op classification of why
//!   an operation left the one-round fast path, the paper's degradation
//!   conditions as a table.
//! - [`chrome_trace`] / [`parse_chrome_trace`] — export to (and strict
//!   re-parse of) the Chrome `trace_event` JSON format, so any run can
//!   be opened in `chrome://tracing` / Perfetto.
//! - [`dump_json`] — structured machine-readable diagnostics (stuck-lane
//!   dumps, atomicity-violation reports, counterexample annotations).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attr;
pub mod chrome;
pub mod hist;
pub mod trace;

pub use attr::{classify, Attribution, SlowPathCause};
pub use chrome::{chrome_trace, dump_json, parse_chrome_trace, ChromeEvent};
pub use hist::LatencyHistogram;
pub use trace::{
    FlightRecorder, NopTracer, Obs, ObsHandle, TraceEvent, TraceKind, Tracer, LANE_READER,
    LANE_SYS, LANE_WRITER,
};
