//! Typed trace events, the tracer trait, and the flight recorder.
//!
//! Protocol automata emit one fixed-size [`TraceEvent`] per auditable
//! step through an [`Obs`] handle. The handle wraps an `Arc<dyn Tracer>`
//! so every layer shares one sink: the zero-overhead [`NopTracer`] by
//! default, or a [`FlightRecorder`] ring when a run is being observed.

use core::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Lane tag for events emitted by a writer automaton.
pub const LANE_WRITER: u8 = 0;
/// Lane tag for events emitted by a reader automaton.
pub const LANE_READER: u8 = 1;
/// Lane tag for substrate/storage events that belong to no client lane.
pub const LANE_SYS: u8 = 2;

/// What happened. Every variant carries its specifics in the generic
/// [`TraceEvent::a`] / [`TraceEvent::b`] payload words (documented per
/// variant), keeping the event `Copy` and allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum TraceKind {
    /// A client operation was invoked (`a` = op payload hint, `b` unused).
    OpInvoked = 0,
    /// A client operation completed (`a` = protocol rounds used).
    OpCompleted = 1,
    /// A protocol round began (`a` = round number).
    RoundStarted = 2,
    /// A quorum of replies closed a round (`a` = round, `b` = acks).
    QuorumAssembled = 3,
    /// A retry watchdog fired and re-sent the current round (`a` =
    /// attempt number).
    RetryNudged = 4,
    /// A record was appended to a write-ahead log (`a` = payload bytes).
    WalAppended = 5,
    /// A WAL tail reached the durable medium (`a` = syncs so far).
    Fsync = 6,
    /// A node (or its store) crashed.
    Crash = 7,
    /// A node recovered (`a` = log records replayed).
    Recover = 8,
    /// The substrate delivered a message (`a` = sender node).
    Deliver = 9,
    /// The substrate dropped a message (`a` = sender node, `b` = 1 if
    /// dropped because the receiver was crashed).
    Drop = 10,
    /// A pipelined op left its client-side lane backlog and was issued
    /// (`a` = ticks spent queued, `b` = backlog depth behind it at
    /// launch). Emitted only when the wait was non-zero, so depth-1
    /// runs produce no such events.
    QueueWait = 11,
}

impl TraceKind {
    /// Stable lowercase name (used by the exporters).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::OpInvoked => "op_invoked",
            TraceKind::OpCompleted => "op_completed",
            TraceKind::RoundStarted => "round_started",
            TraceKind::QuorumAssembled => "quorum_assembled",
            TraceKind::RetryNudged => "retry_nudged",
            TraceKind::WalAppended => "wal_appended",
            TraceKind::Fsync => "fsync",
            TraceKind::Crash => "crash",
            TraceKind::Recover => "recover",
            TraceKind::Deliver => "deliver",
            TraceKind::Drop => "drop",
            TraceKind::QueueWait => "queue_wait",
        }
    }

    /// Inverse of [`TraceKind::name`] (used by the strict parser).
    pub fn from_name(name: &str) -> Option<TraceKind> {
        Some(match name {
            "op_invoked" => TraceKind::OpInvoked,
            "op_completed" => TraceKind::OpCompleted,
            "round_started" => TraceKind::RoundStarted,
            "quorum_assembled" => TraceKind::QuorumAssembled,
            "retry_nudged" => TraceKind::RetryNudged,
            "wal_appended" => TraceKind::WalAppended,
            "fsync" => TraceKind::Fsync,
            "crash" => TraceKind::Crash,
            "recover" => TraceKind::Recover,
            "deliver" => TraceKind::Deliver,
            "drop" => TraceKind::Drop,
            "queue_wait" => TraceKind::QueueWait,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            0 => TraceKind::OpInvoked,
            1 => TraceKind::OpCompleted,
            2 => TraceKind::RoundStarted,
            3 => TraceKind::QuorumAssembled,
            4 => TraceKind::RetryNudged,
            5 => TraceKind::WalAppended,
            6 => TraceKind::Fsync,
            7 => TraceKind::Crash,
            8 => TraceKind::Recover,
            9 => TraceKind::Deliver,
            10 => TraceKind::Drop,
            11 => TraceKind::QueueWait,
            _ => return None,
        })
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One auditable protocol step: fixed-size, `Copy`, allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceEvent {
    /// Protocol tick at which the event happened (`0` for layers with no
    /// clock access, e.g. the durable store).
    pub tick: u64,
    /// Node the event is attributed to.
    pub node: u64,
    /// Operation/object the event belongs to (`0` when not op-scoped).
    pub op: u64,
    /// Client lane ([`LANE_WRITER`], [`LANE_READER`], [`LANE_SYS`]).
    pub lane: u8,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific payload (see [`TraceKind`]).
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{} n{} op{} l{} {} a={} b={}",
            self.tick, self.node, self.op, self.lane, self.kind, self.a, self.b
        )
    }
}

/// A sink for trace events. Implementations must be cheap enough to sit
/// on the protocol hot path: call sites guard every emission with
/// [`Tracer::enabled`], so a disabled tracer costs one virtual call and
/// one bool check per *potential* event, and zero allocations.
pub trait Tracer: Send + Sync {
    /// Whether events should be constructed and recorded at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, ev: TraceEvent);

    /// The retained events, oldest first (empty for sinks that keep
    /// nothing). Used to attach flight-recorder dumps to failure
    /// reports.
    fn snapshot(&self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// The zero-overhead default sink: reports itself disabled and drops
/// everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopTracer;

impl Tracer for NopTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _ev: TraceEvent) {}
}

/// A shared, cheaply cloneable tracer.
pub type ObsHandle = Arc<dyn Tracer>;

/// A lock-free fixed-capacity ring keeping the last `capacity` events.
///
/// Writers claim a slot with one `fetch_add` and stamp it with a
/// sequence word released after the payload, so concurrent recording
/// never blocks and a [`FlightRecorder::snapshot`] skips slots caught
/// mid-overwrite. On the deterministic simulator (single-threaded) the
/// snapshot is exact; on the threaded runtime a wrapped ring may drop a
/// handful of in-flight slots, which is acceptable for a post-mortem
/// diagnostic buffer.
pub struct FlightRecorder {
    /// 7 words per slot: tick, node, op, lane|kind, a, b, seq.
    slots: Vec<[AtomicU64; 7]>,
    head: AtomicUsize,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FlightRecorder(cap={}, recorded={})",
            self.slots.len(),
            self.head.load(Ordering::Relaxed)
        )
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(core::array::from_fn(|_| AtomicU64::new(0)));
        }
        FlightRecorder {
            slots,
            head: AtomicUsize::new(0),
        }
    }

    /// A recorder sized for whole-run exports of bench workloads.
    pub fn for_export() -> Arc<Self> {
        Arc::new(FlightRecorder::new(1 << 16))
    }

    /// Events ever recorded (recorded, not retained).
    pub fn recorded(&self) -> usize {
        self.head.load(Ordering::Acquire)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl Tracer for FlightRecorder {
    fn record(&self, ev: TraceEvent) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[ticket % self.slots.len()];
        slot[0].store(ev.tick, Ordering::Relaxed);
        slot[1].store(ev.node, Ordering::Relaxed);
        slot[2].store(ev.op, Ordering::Relaxed);
        slot[3].store(((ev.lane as u64) << 8) | ev.kind as u64, Ordering::Relaxed);
        slot[4].store(ev.a, Ordering::Relaxed);
        slot[5].store(ev.b, Ordering::Relaxed);
        // Sequence stamp last, released: a snapshot accepts the slot only
        // if the stamp matches this ticket before and after reading.
        slot[6].store(ticket as u64 + 1, Ordering::Release);
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len();
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity(head - start);
        for ticket in start..head {
            let slot = &self.slots[ticket % cap];
            let seq = slot[6].load(Ordering::Acquire);
            if seq != ticket as u64 + 1 {
                continue; // claimed but unstamped, or already overwritten
            }
            let packed = slot[3].load(Ordering::Relaxed);
            let Some(kind) = TraceKind::from_u8((packed & 0xff) as u8) else {
                continue;
            };
            let ev = TraceEvent {
                tick: slot[0].load(Ordering::Relaxed),
                node: slot[1].load(Ordering::Relaxed),
                op: slot[2].load(Ordering::Relaxed),
                lane: (packed >> 8) as u8,
                kind,
                a: slot[4].load(Ordering::Relaxed),
                b: slot[5].load(Ordering::Relaxed),
            };
            if slot[6].load(Ordering::Acquire) == seq {
                out.push(ev);
            }
        }
        out
    }
}

/// The handle protocol automata embed: a shared tracer plus a `tag`
/// identifying the emitting automaton (conventionally the object id for
/// KV lanes, `0` for substrate layers).
#[derive(Clone)]
pub struct Obs {
    tracer: ObsHandle,
    tag: u64,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Obs(tag={}, enabled={})",
            self.tag,
            self.tracer.enabled()
        )
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::nop()
    }
}

impl Obs {
    /// The disabled handle every automaton starts with.
    pub fn nop() -> Self {
        Obs {
            tracer: Arc::new(NopTracer),
            tag: 0,
        }
    }

    /// Wraps a tracer with an automaton tag.
    pub fn new(tracer: ObsHandle, tag: u64) -> Self {
        Obs { tracer, tag }
    }

    /// The same tracer under a different tag (one per object lane).
    pub fn with_tag(&self, tag: u64) -> Self {
        Obs {
            tracer: self.tracer.clone(),
            tag,
        }
    }

    /// The automaton tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Whether emission is worthwhile (hot paths check this first).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// The underlying shared tracer.
    pub fn handle(&self) -> ObsHandle {
        self.tracer.clone()
    }

    /// The retained events of the underlying tracer.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.tracer.snapshot()
    }

    /// Emits one event with this handle's tag as the `op` field.
    #[inline]
    pub fn emit(&self, kind: TraceKind, tick: u64, node: u64, lane: u8, a: u64, b: u64) {
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent {
                tick,
                node,
                op: self.tag,
                lane,
                kind,
                a,
                b,
            });
        }
    }

    /// Emits a fully explicit event (for layers that manage op ids
    /// themselves).
    #[inline]
    pub fn emit_event(&self, ev: TraceEvent) {
        if self.tracer.enabled() {
            self.tracer.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            tick,
            node: 1,
            op: 2,
            lane: LANE_WRITER,
            kind,
            a: 3,
            b: 4,
        }
    }

    #[test]
    fn nop_tracer_is_disabled_and_silent() {
        let nop = NopTracer;
        assert!(!nop.enabled());
        nop.record(ev(0, TraceKind::Deliver));
        assert!(nop.snapshot().is_empty());
    }

    #[test]
    fn recorder_round_trips_events_in_order() {
        let rec = FlightRecorder::new(8);
        assert!(rec.enabled());
        for t in 0..5 {
            rec.record(ev(t, TraceKind::Deliver));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0], ev(0, TraceKind::Deliver));
        assert_eq!(snap[4], ev(4, TraceKind::Deliver));
        assert_eq!(rec.recorded(), 5);
    }

    #[test]
    fn recorder_ring_keeps_only_the_tail() {
        let rec = FlightRecorder::new(4);
        for t in 0..10 {
            rec.record(ev(t, TraceKind::Fsync));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        let ticks: Vec<u64> = snap.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
        assert_eq!(rec.capacity(), 4);
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn recorder_is_safe_under_concurrent_writers() {
        let rec = Arc::new(FlightRecorder::new(64));
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for t in 0..1000 {
                    rec.record(TraceEvent {
                        tick: t,
                        node: w,
                        op: 0,
                        lane: LANE_SYS,
                        kind: TraceKind::Deliver,
                        a: 0,
                        b: 0,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.recorded(), 4000);
        let snap = rec.snapshot();
        assert!(snap.len() <= 64);
        assert!(!snap.is_empty());
    }

    #[test]
    fn obs_tags_and_emits() {
        let rec: Arc<FlightRecorder> = Arc::new(FlightRecorder::new(8));
        let obs = Obs::new(rec.clone(), 7);
        assert_eq!(obs.tag(), 7);
        obs.emit(TraceKind::RoundStarted, 3, 9, LANE_READER, 2, 0);
        let other = obs.with_tag(8);
        other.emit(TraceKind::RoundStarted, 4, 9, LANE_READER, 1, 0);
        let snap = obs.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].op, 7);
        assert_eq!(snap[1].op, 8);
        assert_eq!(snap[0].kind, TraceKind::RoundStarted);
    }

    #[test]
    fn kind_names_round_trip() {
        for k in [
            TraceKind::OpInvoked,
            TraceKind::OpCompleted,
            TraceKind::RoundStarted,
            TraceKind::QuorumAssembled,
            TraceKind::RetryNudged,
            TraceKind::WalAppended,
            TraceKind::Fsync,
            TraceKind::Crash,
            TraceKind::Recover,
            TraceKind::Deliver,
            TraceKind::Drop,
            TraceKind::QueueWait,
        ] {
            assert_eq!(TraceKind::from_name(k.name()), Some(k));
            assert_eq!(TraceKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(TraceKind::from_name("bogus"), None);
        assert_eq!(TraceKind::from_u8(99), None);
    }

    #[test]
    fn event_display_is_compact() {
        let e = ev(5, TraceKind::QuorumAssembled);
        assert_eq!(e.to_string(), "t5 n1 op2 l0 quorum_assembled a=3 b=4");
    }
}
