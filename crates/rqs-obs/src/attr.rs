//! Slow-path attribution: *why* an operation left the one-round fast
//! path.
//!
//! The paper's latency classes promise one-round operations under
//! favourable conditions and bound the degradation under contention,
//! failures and asynchrony (Figures 5 and 7). [`classify`] folds the
//! per-op facts a deployment can observe — rounds used, retry nudges,
//! overlap with crash/recovery windows, the lane — into one
//! [`SlowPathCause`], and [`Attribution`] tallies causes into the table
//! surfaced by `KvRunStats` and the bench reports.

use core::fmt;

/// Why an operation completed the way it did.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(usize)]
pub enum SlowPathCause {
    /// One round, no retries: the paper's favourable-conditions class.
    FastPath = 0,
    /// The op overlapped a server's crash-to-restart window and paid for
    /// the recovery (replay, catch-up).
    Recovery = 1,
    /// The op overlapped a server crash that never restarted within the
    /// run.
    ServerFailure = 2,
    /// A retry watchdog had to re-send the round (lost or delayed
    /// messages on an otherwise healthy system).
    Retry = 3,
    /// A reader needed the write-back round because it observed
    /// concurrent writes — the paper's contention degradation.
    Contention = 4,
    /// Delay with no failure, retry or contention evidence:
    /// scheduling/asynchrony (a writer's round advanced on timer
    /// expiry, or the op waited in a pipeline backlog behind an
    /// earlier op on its lane).
    Scheduling = 5,
}

/// All causes, in attribution-table display order.
pub const ALL_CAUSES: [SlowPathCause; 6] = [
    SlowPathCause::FastPath,
    SlowPathCause::Recovery,
    SlowPathCause::ServerFailure,
    SlowPathCause::Retry,
    SlowPathCause::Contention,
    SlowPathCause::Scheduling,
];

impl SlowPathCause {
    /// Stable lowercase label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SlowPathCause::FastPath => "fast-path",
            SlowPathCause::Recovery => "recovery",
            SlowPathCause::ServerFailure => "server-failure",
            SlowPathCause::Retry => "retry",
            SlowPathCause::Contention => "contention",
            SlowPathCause::Scheduling => "scheduling",
        }
    }
}

impl fmt::Display for SlowPathCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Folds per-op facts into one cause.
///
/// Precedence (first match wins):
///
/// 1. **fast-path** — at most one round, no retry nudges, and no
///    pipeline queue wait.
/// 2. **recovery** — the op's `[invoked, completed]` window overlapped a
///    crash window that ends in a restart (the op paid for recovery).
/// 3. **server-failure** — the window overlapped a crash with no restart.
/// 4. **retry** — a watchdog re-sent the round at least once.
/// 5. **contention** — a reader used ≥ 2 rounds (the write-back round
///    exists only when concurrent writes were observed).
/// 6. **scheduling** — anything else: extra writer rounds driven by
///    timer expiry under asynchrony, or time spent queued behind an
///    earlier op on the same pipelined lane (`queued`).
///
/// Recovery outranks retry deliberately: ops inside a fault window
/// almost always also get nudged, and attributing them to the fault
/// keeps `retry` a clean signal for lossy-link degradation. Queueing
/// only demotes an op that has no stronger evidence — a queued op that
/// also retried still reads as `retry`.
pub fn classify(
    is_reader: bool,
    rounds: u32,
    retries: u32,
    in_recovery: bool,
    in_failure: bool,
    queued: bool,
) -> SlowPathCause {
    if rounds <= 1 && retries == 0 && !queued {
        SlowPathCause::FastPath
    } else if in_recovery {
        SlowPathCause::Recovery
    } else if in_failure {
        SlowPathCause::ServerFailure
    } else if retries > 0 {
        SlowPathCause::Retry
    } else if is_reader && rounds >= 2 {
        SlowPathCause::Contention
    } else {
        SlowPathCause::Scheduling
    }
}

/// A tally of [`SlowPathCause`]s — the attribution table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    counts: [u64; 6],
}

impl Attribution {
    /// An empty table.
    pub fn new() -> Self {
        Attribution::default()
    }

    /// Tallies one op.
    pub fn record(&mut self, cause: SlowPathCause) {
        self.counts[cause as usize] += 1;
    }

    /// Ops attributed to `cause`.
    pub fn count(&self, cause: SlowPathCause) -> u64 {
        self.counts[cause as usize]
    }

    /// Total ops attributed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of ops on the fast path (1.0 when empty).
    pub fn fast_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.count(SlowPathCause::FastPath) as f64 / total as f64
        }
    }

    /// Field-wise sum.
    pub fn merge(&mut self, other: &Attribution) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// `(label, count)` rows in display order.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        ALL_CAUSES
            .iter()
            .map(|&c| (c.label(), self.count(c)))
            .collect()
    }

    /// Compact `cause:count` summary of the non-fast-path tallies
    /// (`"-"` when every op was fast).
    pub fn slow_summary(&self) -> String {
        let parts: Vec<String> = ALL_CAUSES
            .iter()
            .skip(1)
            .filter(|&&c| self.count(c) > 0)
            .map(|&c| format!("{}:{}", c.label(), self.count(c)))
            .collect();
        if parts.is_empty() {
            "-".into()
        } else {
            parts.join(" ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_wins_even_inside_fault_windows() {
        assert_eq!(
            classify(false, 1, 0, true, true, false),
            SlowPathCause::FastPath
        );
        assert_eq!(
            classify(true, 0, 0, false, false, false),
            SlowPathCause::FastPath
        );
    }

    #[test]
    fn precedence_orders_causes() {
        assert_eq!(
            classify(false, 2, 3, true, true, false),
            SlowPathCause::Recovery
        );
        assert_eq!(
            classify(false, 2, 3, false, true, false),
            SlowPathCause::ServerFailure
        );
        assert_eq!(
            classify(false, 1, 2, false, false, false),
            SlowPathCause::Retry
        );
        assert_eq!(
            classify(true, 2, 0, false, false, false),
            SlowPathCause::Contention
        );
        assert_eq!(
            classify(false, 2, 0, false, false, false),
            SlowPathCause::Scheduling
        );
    }

    #[test]
    fn queue_wait_demotes_fast_ops_to_scheduling() {
        // A one-round op that waited in a pipeline backlog is not
        // fast-path; with no stronger evidence it reads as scheduling.
        assert_eq!(
            classify(false, 1, 0, false, false, true),
            SlowPathCause::Scheduling
        );
        assert_eq!(
            classify(true, 1, 0, false, false, true),
            SlowPathCause::Scheduling
        );
        // Stronger evidence still wins over the queue wait.
        assert_eq!(
            classify(false, 1, 1, false, false, true),
            SlowPathCause::Retry
        );
        assert_eq!(
            classify(true, 2, 0, false, false, true),
            SlowPathCause::Contention
        );
        assert_eq!(
            classify(false, 2, 0, true, false, true),
            SlowPathCause::Recovery
        );
    }

    #[test]
    fn attribution_tallies_and_merges() {
        let mut a = Attribution::new();
        a.record(SlowPathCause::FastPath);
        a.record(SlowPathCause::FastPath);
        a.record(SlowPathCause::Retry);
        let mut b = Attribution::new();
        b.record(SlowPathCause::Recovery);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(SlowPathCause::FastPath), 2);
        assert_eq!(a.count(SlowPathCause::Retry), 1);
        assert_eq!(a.count(SlowPathCause::Recovery), 1);
        assert!((a.fast_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(a.slow_summary(), "recovery:1 retry:1");
    }

    #[test]
    fn empty_table_reads_as_all_fast() {
        let a = Attribution::new();
        assert_eq!(a.total(), 0);
        assert!((a.fast_ratio() - 1.0).abs() < 1e-9);
        assert_eq!(a.slow_summary(), "-");
        assert_eq!(a.rows().len(), 6);
    }
}
