//! Overhead guard: the instrumented hot path must not allocate.
//!
//! Every emission site in the protocol crates runs through
//! [`Obs::emit`], so it is enough to prove here — with a counting global
//! allocator — that emitting through a `NopTracer` handle performs zero
//! allocations, and that a pre-sized `FlightRecorder` records without
//! allocating either. The library itself forbids `unsafe`; the counting
//! allocator below is test-harness scaffolding, not shipped code.

use rqs_obs::{FlightRecorder, Obs, TraceEvent, TraceKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

// One test body (not two) so no sibling test thread allocates while a
// measurement window is open.
#[test]
fn hot_path_emission_allocates_nothing() {
    let ev = TraceEvent {
        tick: 1,
        node: 2,
        op: 3,
        lane: 0,
        kind: TraceKind::Deliver,
        a: 4,
        b: 5,
    };

    // Disabled tracer: the default every automaton carries.
    let nop = Obs::nop();
    let delta = allocations(|| {
        for t in 0..100_000u64 {
            nop.emit(TraceKind::Deliver, t, 2, 0, 4, 5);
            nop.emit_event(ev);
        }
    });
    assert_eq!(delta, 0, "NopTracer emission must not allocate");

    // Enabled flight recorder: the ring is fully allocated up front.
    let rec = Arc::new(FlightRecorder::new(1024));
    let obs = Obs::new(rec.clone(), 3);
    let delta = allocations(|| {
        for t in 0..100_000u64 {
            obs.emit(TraceKind::Deliver, t, 2, 0, 4, 5);
        }
    });
    assert_eq!(delta, 0, "FlightRecorder recording must not allocate");
    assert_eq!(rec.recorded(), 100_000);
}
