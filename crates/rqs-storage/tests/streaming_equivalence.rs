//! Differential properties: the streaming [`AtomicityChecker`] (behind
//! [`check_atomicity`]) must agree with the quadratic reference checker
//! [`check_atomicity_reference`] on the Ok/Err verdict of *any* history —
//! synthetic garbage, shuffled feeds, retired wave-structured streams,
//! and real executions with Byzantine servers swapped in. Taxonomy may
//! differ on multi-violation histories (the sink reports by arrival
//! order, the reference by rule order), so properties compare verdicts,
//! not violation kinds.

use proptest::prelude::*;
use rqs_core::threshold::ThresholdConfig;
use rqs_sim::Time;
use rqs_storage::atomicity::{OpKind, OpRecord};
use rqs_storage::value::{TsVal, Value};
use rqs_storage::{check_atomicity, check_atomicity_reference, AtomicityChecker, StorageHarness};

/// Decodes one raw 64-bit sample into an operation record. Roughly one
/// op in four is a write; timestamps are drawn from a small pool so
/// duplicates, fabrications and inversions all occur; values are
/// canonical per timestamp except for an occasional corruption (bit 15),
/// which plants `Inconsistent` cases.
fn decode_op(raw: u64, base: u64) -> OpRecord {
    let is_write = raw.is_multiple_of(4);
    let ts = (raw >> 2) % 6;
    let corrupt = (raw >> 15).is_multiple_of(16);
    let invoked = base + (raw >> 16) % 40;
    let completed = invoked + (raw >> 24) % 10;
    let val = if ts == 0 && !corrupt {
        Value::bottom()
    } else if corrupt {
        Value::from(900 + ts)
    } else {
        Value::from(100 + ts)
    };
    OpRecord {
        kind: if is_write {
            OpKind::Write
        } else {
            OpKind::Read
        },
        client: (raw % 3) as usize,
        pair: TsVal::new(ts, val),
        invoked_at: Time(invoked),
        completed_at: Time(completed),
    }
}

/// Deterministic Fisher–Yates driven by a caller-provided seed (the
/// compat `proptest` has no tuple strategies, so the permutation is an
/// explicit input).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        // xorshift64
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        items.swap(i, (seed as usize) % (i + 1));
    }
}

proptest! {
    /// On arbitrary (mostly broken) histories the streaming wrapper and
    /// the quadratic reference return the same verdict.
    #[test]
    fn wrapper_matches_reference_on_random_histories(
        raws in prop::collection::vec(0u64..u64::MAX, 0..14)
    ) {
        let ops: Vec<OpRecord> = raws.iter().map(|&r| decode_op(r, 0)).collect();
        let streamed = check_atomicity(&ops);
        let reference = check_atomicity_reference(&ops);
        prop_assert_eq!(
            streamed.is_err(),
            reference.is_err(),
            "streamed {:?} vs reference {:?}",
            streamed,
            reference
        );
    }

    /// The sink accepts completed operations in any feed order: a
    /// shuffled feed reaches the same verdict as the original order.
    #[test]
    fn verdict_is_feed_order_invariant(
        raws in prop::collection::vec(0u64..u64::MAX, 0..14),
        seed in 1u64..u64::MAX,
    ) {
        let mut ops: Vec<OpRecord> = raws.iter().map(|&r| decode_op(r, 0)).collect();
        let in_order = check_atomicity(&ops);
        shuffle(&mut ops, seed);
        let shuffled = check_atomicity(&ops);
        prop_assert_eq!(
            in_order.is_err(),
            shuffled.is_err(),
            "in-order {:?} vs shuffled {:?}",
            in_order,
            shuffled
        );
    }

    /// Wave-structured histories (wave `k+1` invokes only after wave `k`
    /// completed) checked with `retire_settled()` between waves reach the
    /// same verdict as the reference pass over the full history — and the
    /// retired checker's residency stays bounded by the wave size, not
    /// the history length.
    #[test]
    fn retirement_preserves_verdicts_on_wave_histories(
        waves in prop::collection::vec(
            prop::collection::vec(0u64..u64::MAX, 1..6),
            1..6,
        )
    ) {
        let mut all = Vec::new();
        let mut sink = AtomicityChecker::new();
        for (w, wave) in waves.iter().enumerate() {
            // Wave w lives in [100w, 100w + 50): disjoint from wave w+1,
            // so every later op invokes past this wave's completions and
            // the retire-settled watermark contract holds.
            let ops: Vec<OpRecord> =
                wave.iter().map(|&r| decode_op(r, 100 * w as u64)).collect();
            for op in &ops {
                sink.observe(op);
            }
            sink.retire_settled();
            all.extend(ops);
        }
        let resident = sink.resident_ops();
        let streamed = sink.finish();
        let reference = check_atomicity_reference(&all);
        prop_assert_eq!(
            streamed.is_err(),
            reference.is_err(),
            "streamed {:?} vs reference {:?}",
            streamed,
            reference
        );
        // Residency is bounded by the last (unretired) wave — each live
        // op occupies up to three indexes (write map + both staircases) —
        // plus the retained anchor/boundary context. Independent of how
        // many waves ran before.
        prop_assert!(
            resident <= 3 * waves.last().unwrap().len() + 6,
            "resident {} after {} waves",
            resident,
            waves.len()
        );
    }

    /// Real executions with a Byzantine server swapped in: the RQS
    /// protocol masks the forgery, and the streaming verdict equals the
    /// reference verdict on the harvested history.
    #[test]
    fn byzantine_swap_in_executions_agree(
        forged in 0usize..4,
        forged_ts in 1u64..1000,
        script in prop::collection::vec(0u64..u64::MAX, 1..8),
    ) {
        let rqs = ThresholdConfig::byzantine_fast(1)
            .build()
            .expect("valid byzantine-fast system");
        let mut h = StorageHarness::new(rqs, 2);
        h.make_byzantine(
            forged,
            Box::new(rqs_storage::byzantine::ForgedServer::with_slot1(
                &TsVal::new(forged_ts, Value::from(0xBAD_u64)),
            )),
        );
        let mut next = 1u64;
        for &raw in &script {
            if raw % 3 == 0 {
                h.write(Value::from(next));
                next += 1;
            } else {
                h.read((raw % 2) as usize);
            }
        }
        let streamed = h.check_atomicity();
        let reference = check_atomicity_reference(h.ops());
        prop_assert!(streamed.is_ok(), "forgery must be masked: {:?}", streamed);
        prop_assert_eq!(
            streamed.is_err(),
            reference.is_err(),
            "streamed {:?} vs reference {:?}",
            streamed,
            reference
        );
    }
}

/// With the `mutants` feature the stale-reader automaton produces real
/// *violating* executions; both checkers must convict them. (Run with
/// `cargo test -p rqs-storage --features mutants`.)
#[cfg(feature = "mutants")]
mod mutants {
    use super::*;
    use rqs_storage::reader::Reader;

    proptest! {
        #[test]
        fn stale_mutant_executions_agree(script in prop::collection::vec(0u64..u64::MAX, 2..8)) {
            let rqs = ThresholdConfig::byzantine_fast(1)
                .build()
                .expect("valid byzantine-fast system");
            let mut h = StorageHarness::new(rqs, 2);
            let mutant = h.rqs().clone();
            let servers = h.servers().to_vec();
            let id = h.reader_id(1);
            h.world_mut()
                .replace_node(id, Box::new(Reader::new_mutant_stale(mutant, servers)));
            let mut next = 1u64;
            // Always write first so the mutant's ⟨0,⊥⟩ answer is stale.
            h.write(Value::from(next));
            next += 1;
            let mut hit_mutant = false;
            for &raw in &script {
                // Advance the clock so program order is real-time order
                // (the atomicity conditions compare strict completion <
                // invocation; the instantaneous mutant would otherwise
                // never form a real-time pair with the write).
                let gate = h.now() + 1;
                h.world_mut().run_before(gate);
                if raw % 3 == 0 {
                    h.write(Value::from(next));
                    next += 1;
                } else {
                    let reader = (raw % 2) as usize;
                    hit_mutant |= reader == 1;
                    h.read(reader);
                }
            }
            let streamed = h.check_atomicity();
            let reference = check_atomicity_reference(h.ops());
            prop_assert_eq!(
                streamed.is_err(),
                reference.is_err(),
                "streamed {:?} vs reference {:?}",
                streamed,
                reference
            );
            if hit_mutant {
                prop_assert!(streamed.is_err(), "stale read must be convicted");
            }
        }
    }
}
