//! The reader's predicates (Fig. 7, lines 1–9), as pure functions.
//!
//! Separating these from the reader automaton makes the case analysis of
//! the correctness proof (Appendix A) directly testable: each lemma about
//! `valid_j`, `safe`, `highCand` and the best-case detector `BCD`
//! corresponds to unit tests here.

use crate::history::History;
use crate::value::{Timestamp, TsVal};
use rqs_core::{ProcessId, ProcessSet, QuorumId, Rqs};
use std::borrow::Borrow;
use std::collections::BTreeMap;

/// A reader's view of the system: its local copies of server histories
/// plus the bookkeeping the predicates quantify over.
///
/// `histories[i]` is the latest history received from server `i` (the
/// empty history before any reply, matching the reader's initialization
/// `history[∗,∗,∗] := ⟨⟨0,⊥⟩, ∅⟩`).
///
/// The element type is anything that borrows a [`History`]: plain
/// `History` copies (tests, the regular reader) or the
/// `Arc<History>` snapshots `rd_ack`s carry (the atomic reader keeps
/// the shared snapshots as received, no deep copy per ack).
#[derive(Debug)]
pub struct ReadView<'a, H: Borrow<History> = History> {
    /// The refined quorum system.
    pub rqs: &'a Rqs,
    /// Per-server history copies (length = universe size).
    pub histories: &'a [H],
    /// Quorums all of whose servers have replied in this read
    /// (`Responded`, lines 52–53).
    pub responded: &'a [QuorumId],
    /// Highest timestamp seen in round 1 (line 29).
    pub highest_ts: Timestamp,
    /// Class-2 quorums that responded in round 1 (`QC'2`, lines 30–31).
    pub qc2_prime: &'a [QuorumId],
}

impl<H: Borrow<History>> ReadView<'_, H> {
    /// Server `i`'s history copy.
    fn history(&self, i: usize) -> &History {
        self.histories[i].borrow()
    }

    /// `read(c, i)` (line 7): server `i`'s history stores `c` in slot 1
    /// or 2. Empty slots read as the initial pair, so
    /// `read(⟨0,⊥⟩, i)` always holds.
    pub fn read_pred(&self, c: &TsVal, i: ProcessId) -> bool {
        let h = self.history(i.index());
        h.pair(c.ts, 1) == *c || h.pair(c.ts, 2) == *c
    }

    /// `{si ∈ S | read(c, i)}` — the servers vouching for `c`.
    pub fn readers_of(&self, c: &TsVal) -> ProcessSet {
        (0..self.histories.len())
            .map(ProcessId)
            .filter(|&i| self.read_pred(c, i))
            .collect()
    }

    /// `safe(c)` (line 8): the vouching servers form a basic subset, so at
    /// least one of them is benign — `c` is not fabricated.
    pub fn safe(&self, c: &TsVal) -> bool {
        self.rqs.adversary().is_basic(self.readers_of(c))
    }

    /// `valid1(c, Q)` (line 3): a basic subset of `Q` stores `c` in
    /// slot 1.
    pub fn valid1(&self, c: &TsVal, q: ProcessSet) -> bool {
        let w: ProcessSet = q
            .iter()
            .filter(|&i| self.history(i.index()).pair(c.ts, 1) == *c)
            .collect();
        self.rqs.adversary().is_basic(w)
    }

    /// `valid2(c, Q)` (line 4): some server of `Q` stores `c` in slot 2.
    pub fn valid2(&self, c: &TsVal, q: ProcessSet) -> bool {
        q.iter()
            .any(|i| self.history(i.index()).pair(c.ts, 2) == *c)
    }

    /// `valid3(c, Q)` (line 5): there are a class-2 quorum `Q2` and a
    /// `B ∈ B` with `P3b(Q2, Q, B)` such that every server of
    /// `Q2 ∩ Q \ B` stores `c` in slot 1 *with `Q2` attached*.
    ///
    /// Implementation note: with `W` the servers of `Q2 ∩ Q` storing
    /// `⟨c, {…, Q2, …}⟩` and `M = Q2 ∩ Q \ W`, a witness `B` exists iff
    /// `M ∈ B` and `P3b(Q2, Q, M)` — `B` must cover `M` (downward closure
    /// puts `M` in `B`), and shrinking `B` to `M` only makes `P3b` easier.
    pub fn valid3(&self, c: &TsVal, q: ProcessSet) -> bool {
        for &q2_id in &self.rqs.class2_ids() {
            let q2 = self.rqs.quorum(q2_id);
            let inter = q2.intersection(q);
            let w: ProcessSet = inter
                .iter()
                .filter(|&i| {
                    let slot = self.history(i.index()).slot(c.ts, 1);
                    slot.pair == *c && slot.sets.contains(&q2_id)
                })
                .collect();
            let m = inter.difference(w);
            if self.rqs.adversary().contains(m) && self.rqs.p3b(q2, q, m) {
                return true;
            }
        }
        false
    }

    /// `invalid(c)` (line 6): some responded quorum supports none of the
    /// three validity cases for `c`, or `c.ts` exceeds the round-1 highest
    /// timestamp.
    pub fn invalid(&self, c: &TsVal) -> bool {
        if c.ts > self.highest_ts {
            return true;
        }
        self.responded.iter().any(|&qid| {
            let q = self.rqs.quorum(qid);
            !(self.valid1(c, q) || self.valid2(c, q) || self.valid3(c, q))
        })
    }

    /// `highCand(c)` (line 9): every reported pair with a higher timestamp
    /// is invalid — no possibly-newer value remains in play.
    pub fn high_cand(&self, c: &TsVal) -> bool {
        self.reported_pairs()
            .iter()
            .filter(|c2| c2.ts > c.ts)
            .all(|c2| self.invalid(c2))
    }

    /// All pairs reported by any server (slots 1–2), plus the initial pair.
    pub fn reported_pairs(&self) -> Vec<TsVal> {
        let mut out = vec![TsVal::initial()];
        // Servers report near-identical histories, so cross-server dedup
        // dominates; bucketing candidate indexes by timestamp keeps it
        // linear in the history size instead of quadratic.
        let mut by_ts: BTreeMap<Timestamp, Vec<usize>> = BTreeMap::new();
        for h in self.histories {
            for c in h.borrow().reported_pairs() {
                let bucket = by_ts.entry(c.ts).or_default();
                if !bucket.iter().any(|&i| out[i] == c) {
                    bucket.push(out.len());
                    out.push(c);
                }
            }
        }
        out
    }

    /// The candidate set `C` (line 33): safe, highest-candidate pairs.
    ///
    /// Equivalent to filtering on `safe(c) && high_cand(c)`, evaluated
    /// with one `invalid` pass: `highCand(c)` holds iff no *non-invalid*
    /// reported pair has a timestamp above `c.ts`, i.e. iff `c.ts` is at
    /// least the highest non-invalid timestamp. The naive form reruns
    /// `reported_pairs` + `invalid` per pair — quadratic in the history a
    /// long-lived object accumulates (the paper's histories are unbounded,
    /// §5) and the reader is the hot path of every read.
    pub fn candidates(&self) -> Vec<TsVal> {
        let pairs = self.reported_pairs();
        let live_max = pairs
            .iter()
            .filter(|c| !self.invalid(c))
            .map(|c| c.ts)
            .max();
        pairs
            .into_iter()
            .filter(|c| live_max.is_none_or(|m| m <= c.ts) && self.safe(c))
            .collect()
    }

    /// `csel` (line 35): the candidate with the highest timestamp, if the
    /// candidate set is non-empty.
    ///
    /// Equivalent to `candidates().into_iter().max_by_key(ts)` but
    /// evaluated top-down: pairs are scanned in descending timestamp
    /// order, so the first non-invalid pair fixes the `highCand`
    /// threshold and the scan stops — one `invalid` evaluation in the
    /// common case, against one *per reported pair* for the naive form.
    /// On the read hot path with the paper's unbounded histories (§5)
    /// that difference is the dominant cost of a read.
    ///
    /// The descending sort is stable, so pairs with equal timestamps
    /// keep their reported order and tie-breaking picks the same pair
    /// the naive form does.
    pub fn select(&self) -> Option<TsVal> {
        if let Some(resolved) = self.select_top_fast() {
            return resolved;
        }
        let mut pairs = self.reported_pairs();
        pairs.sort_by_key(|c| std::cmp::Reverse(c.ts));
        let live_max = pairs.iter().find(|c| !self.invalid(c)).map(|c| c.ts);
        pairs
            .into_iter()
            .filter(|c| live_max.is_none_or(|m| m <= c.ts) && self.safe(c))
            .max_by_key(|c| c.ts)
    }

    /// The uncontended fast case of [`ReadView::select`], without
    /// materializing the candidate domain. When the highest reported
    /// timestamp carries exactly one distinct non-invalid pair `c`,
    /// every other reported pair sits strictly below the `highCand`
    /// threshold, so the candidate set is `{c}` filtered by `safe` —
    /// the result is decided by `c` alone:
    ///
    /// - `safe(c)` holds: `c` is `csel` → `Some(Some(c))`.
    /// - `safe(c)` fails: the candidate set is empty → `Some(None)`
    ///   (common mid-round, before a full quorum has reported `c`).
    ///
    /// When nothing has been reported the top pair is `⟨0,⊥⟩` itself —
    /// `reported_pairs` always includes it — and the same two-way
    /// decision applies. Ambiguity at the top — several distinct pairs
    /// (concurrent or forged writes) or an invalid top pair (the
    /// `highCand` threshold drops below `top_ts`) — returns `None` and
    /// the caller runs the exact scan. Keeps a read O(quorum checks)
    /// instead of O(total history) on the hot path.
    fn select_top_fast(&self) -> Option<Option<TsVal>> {
        let top_ts = self
            .histories
            .iter()
            .map(|h| h.borrow().highest_ts())
            .max()?;
        let mut top: Option<TsVal> = None;
        if top_ts == 0 {
            // No server reported a written pair: the initial pair is the
            // sole reported (and thus sole top) pair.
            top = Some(TsVal::initial());
        }
        for h in self.histories {
            for rnd in 1..=2 {
                let pair = h.borrow().pair(top_ts, rnd);
                if pair.is_initial() {
                    continue;
                }
                match &top {
                    Some(seen) if *seen == pair => {}
                    Some(_) => return None, // contested top timestamp
                    None => top = Some(pair),
                }
            }
        }
        let c = top?;
        if self.invalid(&c) {
            return None;
        }
        Some(self.safe(&c).then_some(c))
    }

    /// Quorums of class `r` (`QC_1`, `QC_2`, or the full family for 3).
    fn class_quorums(&self, r: usize) -> Vec<QuorumId> {
        match r {
            1 => self.rqs.class1_ids(),
            2 => self.rqs.class2_ids(),
            3 => self.rqs.all_ids(),
            other => panic!("quorum class {other} out of range"),
        }
    }

    /// `BCD(c, 1, R)` (line 1): there are a class-1 quorum `Q1` and a
    /// class-`R` quorum `QR` such that every server of `Q1 ∩ QR` stores
    /// `c` in slot `R` — and, for `R = 2`, stores it with `QR` attached.
    ///
    /// When it holds at the end of round 1 of a synchronous uncontended
    /// read, the read returns without any write-back (line 40).
    pub fn bcd1(&self, c: &TsVal, r: usize) -> bool {
        let c1 = self.rqs.class1_ids();
        let qrs = self.class_quorums(r);
        c1.iter().any(|&q1_id| {
            let q1 = self.rqs.quorum(q1_id);
            qrs.iter().any(|&qr_id| {
                let qr = self.rqs.quorum(qr_id);
                q1.intersection(qr).iter().all(|i| {
                    let slot = self.history(i.index()).slot(c.ts, r);
                    slot.pair == *c && (r != 2 || slot.sets.contains(&qr_id))
                })
            })
        })
    }

    /// `BCD(c, 2, R)` (line 2): the class-2 quorums `Q2 ∈ QC'2` for which
    /// some class-`R` quorum `QR` has all of `QR ∩ Q2` storing `c` in
    /// slot `R`.
    pub fn bcd2(&self, c: &TsVal, r: usize) -> Vec<QuorumId> {
        let qrs = self.class_quorums(r);
        self.qc2_prime
            .iter()
            .copied()
            .filter(|&q2_id| {
                let q2 = self.rqs.quorum(q2_id);
                qrs.iter().any(|&qr_id| {
                    let qr = self.rqs.quorum(qr_id);
                    qr.intersection(q2)
                        .iter()
                        .all(|i| self.history(i.index()).pair(c.ts, r) == *c)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use rqs_core::threshold::ThresholdConfig;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn pair(ts: Timestamp, v: u64) -> TsVal {
        TsVal::new(ts, Value::from(v))
    }

    /// §1.2 system: n=5, t=2, k=0; class-1 at 4 servers, class-2 at 3.
    fn rqs() -> Arc<Rqs> {
        Arc::new(ThresholdConfig::crash_fast(5, 1).build().unwrap())
    }

    fn histories_with(
        n: usize,
        writes: &[(usize, TsVal, usize)], // (server, pair, rnd)
    ) -> Vec<History> {
        let mut hs = vec![History::new(); n];
        for (i, c, rnd) in writes {
            hs[*i].apply_write(c, &BTreeSet::new(), *rnd);
        }
        hs
    }

    #[test]
    fn initial_pair_always_safe_candidate() {
        let rqs = rqs();
        let hs = vec![History::new(); 5];
        let responded = rqs.quorums_within(ProcessSet::universe(5));
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &responded,
            highest_ts: 0,
            qc2_prime: &[],
        };
        assert!(view.safe(&TsVal::initial()));
        assert!(view.high_cand(&TsVal::initial()));
        assert_eq!(view.select(), Some(TsVal::initial()));
    }

    #[test]
    fn written_value_selected() {
        let rqs = rqs();
        let c = pair(1, 42);
        // 4 servers store c in slot 1 (a completed 1-round write).
        let hs = histories_with(
            5,
            &[
                (0, c.clone(), 1),
                (1, c.clone(), 1),
                (2, c.clone(), 1),
                (3, c.clone(), 1),
            ],
        );
        let responded = rqs.quorums_within(ProcessSet::universe(5));
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &responded,
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert!(view.safe(&c));
        assert!(view.high_cand(&c));
        assert_eq!(view.select(), Some(c));
    }

    #[test]
    fn fabricated_value_not_safe() {
        // k=0 crash-only: a single server's claim is still "safe" under
        // B = {∅}? No — is_basic({s}) = true for B={∅}, any non-empty set
        // is basic. Use a Byzantine threshold system instead.
        let rqs = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        let c = pair(1, 99);
        let hs = histories_with(4, &[(0, c.clone(), 1)]); // only server 0 claims c
        let responded: Vec<QuorumId> = vec![];
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &responded,
            highest_ts: 1,
            qc2_prime: &[],
        };
        // {s0} ∈ B_1 → not basic → unsafe.
        assert!(!view.safe(&c));
        // Two servers claiming it would make it safe.
        let hs2 = histories_with(4, &[(0, c.clone(), 1), (1, c.clone(), 1)]);
        let view2 = ReadView {
            rqs: &rqs,
            histories: &hs2,
            responded: &responded,
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert!(view2.safe(&c));
    }

    #[test]
    fn higher_fabricated_ts_blocks_until_invalid() {
        // A Byzantine server advertises a ghost pair above highest_ts: the
        // ghost is invalid (line 6, right disjunct) and unsafe (only one
        // reporter), so it neither blocks highCand of the real value nor
        // becomes a candidate itself.
        let rqs = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        let c = pair(1, 42);
        let ghost = pair(9, 66);
        let mut hs = histories_with(
            4,
            &[(0, c.clone(), 2), (1, c.clone(), 2), (2, c.clone(), 2)],
        );
        hs[3].apply_write(&ghost, &BTreeSet::new(), 1);
        let responded = rqs.quorums_within(ProcessSet::universe(4));
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &responded,
            highest_ts: 1, // computed in round 1 before the ghost appeared
            qc2_prime: &[],
        };
        assert!(view.invalid(&ghost));
        assert!(!view.safe(&ghost), "one Byzantine reporter is not basic");
        assert!(view.high_cand(&c));
        assert_eq!(view.select(), Some(c));
    }

    #[test]
    fn candidates_match_naive_definition() {
        // The memoized `candidates()` must equal the literal line-33
        // filter `safe(c) && high_cand(c)` on a messy view: a completed
        // low write, a partially-replicated middle write, a ghost above
        // highest_ts, and divergent same-ts values.
        let rqs = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        let low = pair(1, 10);
        let mid = pair(2, 20);
        let mid_forged = pair(2, 99);
        let ghost = pair(9, 66);
        let mut hs = histories_with(
            4,
            &[
                (0, low.clone(), 2),
                (1, low.clone(), 2),
                (2, low.clone(), 2),
                (3, low.clone(), 2),
                (1, mid.clone(), 1),
                (2, mid.clone(), 1),
            ],
        );
        hs[3].apply_write(&mid_forged, &BTreeSet::new(), 1);
        hs[3].apply_write(&ghost, &BTreeSet::new(), 1);
        for responded in [
            rqs.quorums_within(ProcessSet::universe(4)),
            rqs.quorums_within(ProcessSet::from_indices([0, 1, 2])),
            vec![],
        ] {
            let view = ReadView {
                rqs: &rqs,
                histories: &hs,
                responded: &responded,
                highest_ts: 2,
                qc2_prime: &[],
            };
            let naive: Vec<TsVal> = view
                .reported_pairs()
                .into_iter()
                .filter(|c| view.safe(c) && view.high_cand(c))
                .collect();
            assert_eq!(view.candidates(), naive);
        }
    }

    #[test]
    fn valid1_needs_basic_slot1_support() {
        let rqs = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        let c = pair(1, 7);
        let q = ProcessSet::from_indices([0, 1, 2]);
        let hs = histories_with(4, &[(0, c.clone(), 1)]);
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &[],
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert!(!view.valid1(&c, q)); // one server ∈ B_1
        let hs2 = histories_with(4, &[(0, c.clone(), 1), (1, c.clone(), 1)]);
        let view2 = ReadView {
            rqs: &rqs,
            histories: &hs2,
            responded: &[],
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert!(view2.valid1(&c, q));
    }

    #[test]
    fn valid2_needs_one_slot2_server() {
        let rqs = rqs();
        let c = pair(1, 7);
        let q = ProcessSet::from_indices([0, 1, 2]);
        let hs = histories_with(5, &[(3, c.clone(), 2)]);
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &[],
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert!(!view.valid2(&c, q)); // server 3 ∉ Q
        assert!(view.valid2(&c, ProcessSet::from_indices([2, 3, 4])));
    }

    #[test]
    fn valid3_requires_attached_quorum_ids() {
        // Example-7-like situation: slot-1 entries carrying the class-2
        // quorum id make valid3 hold where plain entries do not.
        let rqs = rqs();
        let q2_id = rqs.class2_ids()[0];
        let q2 = rqs.quorum(q2_id);
        let q = rqs.quorum(rqs.all_ids()[0]);
        let c = pair(1, 7);
        let mut sets = BTreeSet::new();
        sets.insert(q2_id);
        let mut hs = vec![History::new(); 5];
        for i in q2.intersection(q).iter() {
            hs[i.index()].apply_write(&c, &sets, 1);
        }
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &[],
            highest_ts: 1,
            qc2_prime: &[],
        };
        // With k=0, M = ∅ ∈ B and P3b(q2, q, ∅) holds whenever class-1
        // quorums intersect q2∩q — which they do in this construction.
        assert!(view.valid3(&c, q));

        // Without the attached ids, W is empty, M = q2∩q ∉ B (non-empty,
        // crash-only adversary) → valid3 fails.
        let hs_plain = {
            let mut hs = vec![History::new(); 5];
            for i in q2.intersection(q).iter() {
                hs[i.index()].apply_write(&c, &BTreeSet::new(), 1);
            }
            hs
        };
        let view_plain = ReadView {
            rqs: &rqs,
            histories: &hs_plain,
            responded: &[],
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert!(!view_plain.valid3(&c, q));
    }

    #[test]
    fn bcd1_detects_one_round_write() {
        // All servers of a class-1 quorum store c in slot 1: BCD(c,1,1).
        let rqs = rqs();
        let c = pair(1, 5);
        let q1 = rqs.quorum(rqs.class1_ids()[0]);
        let mut hs = vec![History::new(); 5];
        for i in q1.iter() {
            hs[i.index()].apply_write(&c, &BTreeSet::new(), 1);
        }
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &[],
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert!(view.bcd1(&c, 1));
        assert!(!view.bcd1(&c, 3), "slot 3 is empty");
    }

    #[test]
    fn bcd1_r2_requires_attached_ids() {
        let rqs = rqs();
        let c = pair(1, 5);
        let q2_id = rqs.class2_ids()[0];
        // Entire universe stores c in slot 2 but without ids → BCD(c,1,2)
        // fails; with ids → holds.
        let mut plain = vec![History::new(); 5];
        let mut tagged = vec![History::new(); 5];
        let mut sets = BTreeSet::new();
        sets.insert(q2_id);
        for i in 0..5 {
            plain[i].apply_write(&c, &BTreeSet::new(), 2);
            tagged[i].apply_write(&c, &sets, 2);
        }
        let mk = |hs: &[History]| -> bool {
            let view = ReadView {
                rqs: &rqs,
                histories: hs,
                responded: &[],
                highest_ts: 1,
                qc2_prime: &[],
            };
            view.bcd1(&c, 2)
        };
        assert!(!mk(&plain));
        assert!(mk(&tagged));
    }

    #[test]
    fn bcd2_filters_qc2_prime() {
        let rqs = rqs();
        let c = pair(1, 5);
        let q2_ids = rqs.class2_ids();
        let (qa, qb) = (q2_ids[0], q2_ids[1]);
        // Entire universe stores c in slot 1.
        let mut hs = vec![History::new(); 5];
        for h in &mut hs {
            h.apply_write(&c, &BTreeSet::new(), 1);
        }
        let qc2_prime = vec![qa];
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &[],
            highest_ts: 1,
            qc2_prime: &qc2_prime,
        };
        let x = view.bcd2(&c, 1);
        assert_eq!(x, vec![qa], "only quorums in QC'2 qualify");
        assert!(!x.contains(&qb));
    }

    /// The exact scan of [`ReadView::select`], re-derived without the
    /// fast path: the oracle `select_top_fast` must agree with whenever
    /// it claims a definitive answer.
    fn select_exact(view: &ReadView<History>) -> Option<TsVal> {
        let mut pairs = view.reported_pairs();
        pairs.sort_by_key(|c| std::cmp::Reverse(c.ts));
        let live_max = pairs.iter().find(|c| !view.invalid(c)).map(|c| c.ts);
        pairs
            .into_iter()
            .filter(|c| live_max.is_none_or(|m| m <= c.ts) && view.safe(c))
            .max_by_key(|c| c.ts)
    }

    #[test]
    fn fast_select_agrees_with_the_exact_scan() {
        // Views spanning every fast-path branch: empty (top_ts == 0),
        // uncontested safe top, uncontested top with too few reporters,
        // contested top (forked slot-1 values), and an invalid ghost
        // above the real value (fast path must defer, not decide).
        let rqs = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        let real = pair(1, 42);
        let fork = pair(1, 7);
        let ghost = pair(9, 66);
        let all4 = |c: &TsVal, rnd: usize| (0..4).map(|i| (i, c.clone(), rnd)).collect::<Vec<_>>();
        let mut ghosted = histories_with(
            4,
            &[
                (0, real.clone(), 2),
                (1, real.clone(), 2),
                (2, real.clone(), 2),
            ],
        );
        ghosted[3].apply_write(&ghost, &BTreeSet::new(), 1);
        let mut forked = histories_with(
            4,
            &[
                (0, real.clone(), 1),
                (1, real.clone(), 1),
                (2, real.clone(), 1),
            ],
        );
        forked[3].apply_write(&fork, &BTreeSet::new(), 1);
        let cases: Vec<(Vec<History>, Timestamp)> = vec![
            (histories_with(4, &[]), 0),
            (histories_with(4, &all4(&real, 1)), 1),
            (histories_with(4, &[(0, real.clone(), 1)]), 1),
            (forked, 1),
            (ghosted, 1),
        ];
        for responded in [rqs.quorums_within(ProcessSet::universe(4)), vec![]] {
            for (hs, highest_ts) in &cases {
                let view = ReadView {
                    rqs: &rqs,
                    histories: hs,
                    responded: &responded,
                    highest_ts: *highest_ts,
                    qc2_prime: &[],
                };
                assert_eq!(
                    view.select(),
                    select_exact(&view),
                    "responded={responded:?} hs={hs:?}"
                );
            }
        }
    }

    #[test]
    fn fast_select_tri_state() {
        let rqs = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        let c = pair(1, 42);
        // Nothing reported: the initial pair is the definitive answer.
        let empty = histories_with(4, &[]);
        let view = ReadView {
            rqs: &rqs,
            histories: &empty,
            responded: &[],
            highest_ts: 0,
            qc2_prime: &[],
        };
        assert_eq!(view.select_top_fast(), Some(Some(TsVal::initial())));
        // Mid-round: one reporter of an in-range pair is not yet safe —
        // definitively *no* candidate (the reader waits, not falls back).
        let thin = histories_with(4, &[(0, c.clone(), 1)]);
        let view = ReadView {
            rqs: &rqs,
            histories: &thin,
            responded: &[],
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert_eq!(view.select_top_fast(), Some(None));
        // Same view after a full quorum responded without supporting the
        // pair: the top is invalid, so the fast path must defer.
        let responded = rqs.quorums_within(ProcessSet::universe(4));
        let view = ReadView {
            rqs: &rqs,
            histories: &thin,
            responded: &responded,
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert_eq!(view.select_top_fast(), None);
    }

    #[test]
    fn no_candidate_when_value_unsafe_and_blocking() {
        // A pair ≤ highest_ts reported by too few servers: not safe itself,
        // and if nothing else is written the initial pair must wait for it
        // to become invalid. With a fully-responded universe the ghost has
        // no valid_j support at the full quorum → invalid → ⊥ selectable.
        let rqs = Arc::new(ThresholdConfig::byzantine_fast(1).build().unwrap());
        let ghost = pair(1, 13);
        let hs = histories_with(4, &[(0, ghost.clone(), 1)]);
        let responded = rqs.quorums_within(ProcessSet::universe(4));
        let view = ReadView {
            rqs: &rqs,
            histories: &hs,
            responded: &responded,
            highest_ts: 1,
            qc2_prime: &[],
        };
        assert!(!view.safe(&ghost));
        assert!(view.invalid(&ghost));
        assert_eq!(view.select(), Some(TsVal::initial()));
    }
}
