//! The single writer automaton (Fig. 5).
//!
//! A write proceeds in at most three rounds:
//!
//! 1. send `wr⟨ts, v, ∅, 1⟩` to all servers; wait for acks from some quorum
//!    *and* the `2Δ` timeout. If a class-1 quorum acked → done (1 round).
//!    Otherwise remember every class-2 quorum that acked (`QC'2`).
//! 2. send `wr⟨ts, v, QC'2, 2⟩`; wait for quorum acks and the timeout. If
//!    some quorum *from `QC'2`* acked → done (2 rounds).
//! 3. send `wr⟨ts, v, ∅, 3⟩`; wait for acks from any quorum → done.
//!
//! Discretization note: the paper's timer is `2Δ`; with `Δ = 1` tick and
//! deterministic same-tick ordering we arm it for `2Δ + 1` ticks so that
//! every ack arriving *within* the synchrony bound is counted before the
//! timer fires. Latency is measured in protocol rounds, not ticks, so this
//! changes nothing observable.

use crate::messages::StorageMsg;
use crate::value::{Timestamp, Value};
use rqs_core::{ProcessId, ProcessSet, QuorumId, Rqs};
use rqs_obs::{Obs, TraceKind, LANE_WRITER};
use rqs_sim::{Automaton, Context, NodeId, Time, TimerToken, DELTA};
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Timeout used by clients: the paper's `2Δ`, plus one tick so that acks
/// arriving exactly at the synchrony bound sort before the timer.
pub const CLIENT_TIMEOUT: u64 = 2 * DELTA + 1;

/// Record of one completed write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Timestamp the writer attached.
    pub ts: Timestamp,
    /// The written value.
    pub val: Value,
    /// Rounds the write took (1, 2 or 3).
    pub rounds: usize,
    /// Invocation time.
    pub invoked_at: Time,
    /// Response time.
    pub completed_at: Time,
}

#[derive(Debug)]
struct WriteInProgress {
    val: Value,
    invoked_at: Time,
    round: usize,
    acks: ProcessSet,
    timer_expired: bool,
    timer: Option<TimerToken>,
    qc2_prime: Vec<QuorumId>,
}

/// The SWMR writer (Fig. 5).
///
/// Drive it with [`Writer::start_write`] via
/// [`World::invoke`](rqs_sim::World::invoke); completed operations
/// accumulate in [`Writer::outcomes`].
#[derive(Debug)]
pub struct Writer {
    rqs: Arc<Rqs>,
    servers: Vec<NodeId>,
    ts: Timestamp,
    current: Option<WriteInProgress>,
    outcomes: Vec<WriteOutcome>,
    obs: Obs,
    eager: bool,
    round_timeout: u64,
}

impl Writer {
    /// Creates the writer for a refined quorum system whose universe
    /// member `i` is the simulated node `servers[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `servers.len()` differs from the RQS universe size.
    pub fn new(rqs: Arc<Rqs>, servers: Vec<NodeId>) -> Self {
        assert_eq!(
            servers.len(),
            rqs.universe_size(),
            "server list must cover the RQS universe"
        );
        Writer {
            rqs,
            servers,
            ts: 0,
            current: None,
            outcomes: Vec::new(),
            obs: Obs::nop(),
            eager: false,
            round_timeout: CLIENT_TIMEOUT,
        }
    }

    /// Overrides the per-round timer (default [`CLIENT_TIMEOUT`], the
    /// paper's `2Δ + 1`). The timeout is a synchrony assumption, not a
    /// safety ingredient: lengthening it never forfeits atomicity, it
    /// only delays the fall-back to the next round. Pipelined clients
    /// stretch it in proportion to their depth — self-induced queueing
    /// inflates the effective `Δ`, and with eager completion the timer
    /// is pure fall-back, so patience converts spurious second rounds
    /// into single-round completions.
    pub fn set_round_timeout(&mut self, ticks: u64) {
        assert!(ticks >= 1, "round timeout must be at least one tick");
        self.round_timeout = ticks;
    }

    /// Enables eager round completion: when *every* server in the
    /// universe has acked the current round, the round is settled
    /// immediately instead of waiting out the `2Δ` timer.
    ///
    /// This is information-equivalent to the paper's protocol — the
    /// timer exists only to collect as many acks as the synchrony bound
    /// allows before classifying the quorum, and once all `n` acks are
    /// in, no further ack can arrive. It changes event *schedules*
    /// though (ops complete at ack time, not timer time), so it is
    /// off by default and deployments that pin golden traces leave it
    /// off; the pipelined hot path switches it on to keep lanes moving
    /// at network speed instead of timer speed.
    pub fn set_eager_completion(&mut self, on: bool) {
        self.eager = on;
    }

    /// Installs a structured-trace observer; by convention its tag is the
    /// object id this writer serves (0 for the single-object deployment).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Completed writes, in completion order.
    pub fn outcomes(&self) -> &[WriteOutcome] {
        &self.outcomes
    }

    /// `true` iff no write is in progress.
    pub fn is_idle(&self) -> bool {
        self.current.is_none()
    }

    /// The timestamp of the most recent write (0 before the first).
    pub fn last_ts(&self) -> Timestamp {
        self.ts
    }

    /// The invoked-but-incomplete write, if any: `(ts, value, invoked_at)`.
    ///
    /// Atomicity checking needs this: a concurrent read may legitimately
    /// return a value whose write never completes (the writer crashed or
    /// was cut off).
    pub fn in_progress(&self) -> Option<(Timestamp, Value, Time)> {
        self.current
            .as_ref()
            .map(|w| (self.ts, w.val.clone(), w.invoked_at))
    }

    /// Invokes `write(v)`.
    ///
    /// # Panics
    ///
    /// Panics if a write is already in progress (clients are
    /// well-formed: one operation at a time, §3.1) or if `v` is `⊥`.
    pub fn start_write(&mut self, v: Value, ctx: &mut Context<StorageMsg>) {
        assert!(self.current.is_none(), "write already in progress");
        assert!(!v.is_bottom(), "⊥ is not a writable value");
        self.ts += 1;
        self.obs.emit(
            TraceKind::OpInvoked,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_WRITER,
            self.ts,
            0,
        );
        self.current = Some(WriteInProgress {
            val: v,
            invoked_at: ctx.now(),
            round: 0,
            acks: ProcessSet::empty(),
            timer_expired: false,
            timer: None,
            qc2_prime: Vec::new(),
        });
        self.enter_round(1, ctx);
    }

    /// Re-broadcasts the in-progress round's `wr` message without
    /// re-invoking the operation: the timestamp, value, round and quorum
    /// ids are exactly those of the original broadcast, so servers that
    /// already applied it re-ack idempotently and duplicate acks collapse
    /// in the round's ack [`ProcessSet`]. This is the retry seam for
    /// clients hardened against message loss and amnesia restarts: a
    /// nudge can never double-apply a write or fork its timestamp.
    ///
    /// Returns `false` (and sends nothing) when no write is in progress.
    pub fn resend_round(&mut self, ctx: &mut Context<StorageMsg>) -> bool {
        let Some(w) = self.current.as_ref() else {
            return false;
        };
        let sets: BTreeSet<QuorumId> = if w.round == 2 {
            w.qc2_prime.iter().copied().collect()
        } else {
            BTreeSet::new()
        };
        ctx.broadcast(
            self.servers.clone(),
            StorageMsg::Wr {
                ts: self.ts,
                val: w.val.clone(),
                sets,
                rnd: w.round,
            },
        );
        true
    }

    fn enter_round(&mut self, round: usize, ctx: &mut Context<StorageMsg>) {
        let ts = self.ts;
        self.obs.emit(
            TraceKind::RoundStarted,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_WRITER,
            round as u64,
            ts,
        );
        let w = self.current.as_mut().expect("write in progress");
        w.round = round;
        w.acks = ProcessSet::empty();
        w.timer_expired = round == 3; // no timer in round 3 (Fig. 5 line 11)
        let sets: BTreeSet<QuorumId> = if round == 2 {
            w.qc2_prime.iter().copied().collect()
        } else {
            BTreeSet::new()
        };
        if round < 3 {
            w.timer = Some(ctx.set_timer(self.round_timeout));
        } else {
            w.timer = None;
        }
        let val = w.val.clone();
        let targets: Vec<NodeId> = self.servers.clone();
        ctx.broadcast(
            targets,
            StorageMsg::Wr {
                ts,
                val,
                sets,
                rnd: round,
            },
        );
    }

    fn try_finish_round(&mut self, ctx: &mut Context<StorageMsg>) {
        let Some(w) = self.current.as_ref() else {
            return;
        };
        // Fig. 5 line 12: wait for quorum acks AND timer expiration.
        if !w.timer_expired || !self.rqs.any_quorum_within(w.acks) {
            return;
        }
        let round = w.round;
        self.obs.emit(
            TraceKind::QuorumAssembled,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_WRITER,
            round as u64,
            w.acks.len() as u64,
        );
        match round {
            1 => {
                if self.rqs.class1_within(w.acks).is_some() {
                    self.complete(1, ctx);
                } else {
                    let qc2 = self.rqs.class2_within(w.acks);
                    self.current.as_mut().expect("in progress").qc2_prime = qc2;
                    self.enter_round(2, ctx);
                }
            }
            2 => {
                let acked_from_qc2_prime = w
                    .qc2_prime
                    .iter()
                    .any(|&q2| self.rqs.quorum(q2).is_subset_of(w.acks));
                if acked_from_qc2_prime {
                    self.complete(2, ctx);
                } else {
                    self.current
                        .as_mut()
                        .expect("in progress")
                        .qc2_prime
                        .clear();
                    self.enter_round(3, ctx);
                }
            }
            3 => self.complete(3, ctx),
            other => unreachable!("write round {other}"),
        }
    }

    fn complete(&mut self, rounds: usize, ctx: &mut Context<StorageMsg>) {
        let w = self.current.take().expect("write in progress");
        if let Some(timer) = w.timer {
            ctx.cancel_timer(timer);
        }
        self.obs.emit(
            TraceKind::OpCompleted,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_WRITER,
            rounds as u64,
            self.ts,
        );
        self.outcomes.push(WriteOutcome {
            ts: self.ts,
            val: w.val,
            rounds,
            invoked_at: w.invoked_at,
            completed_at: ctx.now(),
        });
    }

    fn server_index(&self, node: NodeId) -> Option<ProcessId> {
        self.servers.iter().position(|&s| s == node).map(ProcessId)
    }
}

impl Automaton<StorageMsg> for Writer {
    fn state_digest(&self) -> u64 {
        rqs_sim::fnv1a(format!("{:?},{:?},{:?}", self.ts, self.current, self.outcomes).as_bytes())
    }

    fn on_message(&mut self, from: NodeId, msg: StorageMsg, ctx: &mut Context<StorageMsg>) {
        let StorageMsg::WrAck { ts, rnd } = msg else {
            return; // writers ignore everything but write acks
        };
        let Some(sender) = self.server_index(from) else {
            return; // not a server — ignore
        };
        let Some(w) = self.current.as_mut() else {
            return; // stale ack after completion
        };
        if ts != self.ts || rnd != w.round {
            return; // ack for an earlier round/operation
        }
        w.acks.insert(sender);
        // All n acks collected: the timer can contribute nothing more,
        // so (when eager completion is on) settle the round now and
        // release the timer back to the wheel.
        if self.eager && !w.timer_expired && w.acks.len() == self.rqs.universe_size() {
            w.timer_expired = true;
            if let Some(timer) = w.timer.take() {
                ctx.cancel_timer(timer);
            }
        }
        self.try_finish_round(ctx);
    }

    fn on_timer(&mut self, timer: TimerToken, ctx: &mut Context<StorageMsg>) {
        let Some(w) = self.current.as_mut() else {
            return;
        };
        if w.timer == Some(timer) {
            w.timer_expired = true;
            self.try_finish_round(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;
    use rqs_sim::Time;

    fn rqs_5() -> Arc<Rqs> {
        // §1.2: n=5, t=2, k=0, class-1 at 4 servers, all quorums class 2.
        Arc::new(ThresholdConfig::crash_fast(5, 1).build().unwrap())
    }

    fn servers() -> Vec<NodeId> {
        (0..5).map(NodeId).collect()
    }

    fn new_ctx(at: u64) -> Context<StorageMsg> {
        Context::new(NodeId(5), Time(at), 0)
    }

    #[test]
    fn write_broadcasts_round1() {
        let mut w = Writer::new(rqs_5(), servers());
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(7u64), &mut ctx);
        assert_eq!(ctx.sent().len(), 5);
        assert_eq!(w.last_ts(), 1);
        assert!(!w.is_idle());
        match &ctx.sent()[0].1 {
            StorageMsg::Wr { ts, rnd, sets, .. } => {
                assert_eq!((*ts, *rnd), (1, 1));
                assert!(sets.is_empty());
            }
            other => panic!("expected Wr, got {other:?}"),
        }
        // a timer was armed
        assert_eq!(ctx.armed_timers().len(), 1);
        assert_eq!(ctx.armed_timers()[0].0, CLIENT_TIMEOUT);
    }

    #[test]
    fn class1_acks_complete_in_one_round() {
        let mut w = Writer::new(rqs_5(), servers());
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(7u64), &mut ctx);
        let timer = ctx.armed_timers()[0].1;
        // 4 acks (a class-1 quorum) arrive…
        for i in 0..4 {
            let mut c = new_ctx(2);
            w.on_message(NodeId(i), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
            assert!(!w.is_idle(), "must await the timer");
        }
        // …then the timer fires: complete in 1 round.
        let mut c = new_ctx(3);
        w.on_timer(timer, &mut c);
        assert!(w.is_idle());
        let out = &w.outcomes()[0];
        assert_eq!(out.rounds, 1);
        assert_eq!(out.ts, 1);
        assert_eq!(out.completed_at, Time(3));
    }

    #[test]
    fn three_acks_go_to_round_two_and_complete() {
        let mut w = Writer::new(rqs_5(), servers());
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(7u64), &mut ctx);
        let timer = ctx.armed_timers()[0].1;
        for i in 0..3 {
            let mut c = new_ctx(2);
            w.on_message(NodeId(i), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        }
        let mut c = new_ctx(3);
        w.on_timer(timer, &mut c);
        // round 2 broadcast with QC'2 = the class-2 quorum {0,1,2}
        assert!(!w.is_idle());
        assert_eq!(c.sent().len(), 5);
        let round2_timer = c.armed_timers()[0].1;
        match &c.sent()[0].1 {
            StorageMsg::Wr { rnd, sets, .. } => {
                assert_eq!(*rnd, 2);
                assert!(!sets.is_empty(), "QC'2 must carry the acked class-2 quorum");
            }
            other => panic!("{other:?}"),
        }
        // same 3 servers ack round 2; then timer.
        for i in 0..3 {
            let mut c = new_ctx(5);
            w.on_message(NodeId(i), StorageMsg::WrAck { ts: 1, rnd: 2 }, &mut c);
        }
        let mut c = new_ctx(6);
        w.on_timer(round2_timer, &mut c);
        assert!(w.is_idle());
        assert_eq!(w.outcomes()[0].rounds, 2);
    }

    #[test]
    fn different_quorum_in_round_two_forces_round_three() {
        let mut w = Writer::new(rqs_5(), servers());
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(7u64), &mut ctx);
        let timer = ctx.armed_timers()[0].1;
        // Round 1: servers {0,1,2} ack → QC'2 = {{0,1,2}}.
        for i in 0..3 {
            let mut c = new_ctx(2);
            w.on_message(NodeId(i), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        }
        let mut c = new_ctx(3);
        w.on_timer(timer, &mut c);
        let round2_timer = c.armed_timers()[0].1;
        // Round 2: a DIFFERENT quorum {2,3,4} acks — not in QC'2.
        for i in 2..5 {
            let mut c = new_ctx(5);
            w.on_message(NodeId(i), StorageMsg::WrAck { ts: 1, rnd: 2 }, &mut c);
        }
        let mut c = new_ctx(6);
        w.on_timer(round2_timer, &mut c);
        assert!(!w.is_idle(), "must proceed to round 3");
        // Round 3: any quorum completes, no timer needed.
        for i in 2..5 {
            let mut c = new_ctx(8);
            w.on_message(NodeId(i), StorageMsg::WrAck { ts: 1, rnd: 3 }, &mut c);
        }
        assert!(w.is_idle());
        assert_eq!(w.outcomes()[0].rounds, 3);
    }

    #[test]
    fn stale_acks_ignored() {
        let mut w = Writer::new(rqs_5(), servers());
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(7u64), &mut ctx);
        // wrong ts
        let mut c = new_ctx(1);
        w.on_message(NodeId(0), StorageMsg::WrAck { ts: 9, rnd: 1 }, &mut c);
        // wrong round
        w.on_message(NodeId(0), StorageMsg::WrAck { ts: 1, rnd: 2 }, &mut c);
        // non-server sender
        w.on_message(NodeId(77), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        let cur = w.current.as_ref().unwrap();
        assert!(cur.acks.is_empty());
    }

    #[test]
    fn resend_repeats_round_and_duplicate_acks_collapse() {
        let mut w = Writer::new(rqs_5(), servers());
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(7u64), &mut ctx);
        let timer = ctx.armed_timers()[0].1;
        // Two acks arrive, then the network goes quiet.
        for i in 0..2 {
            let mut c = new_ctx(2);
            w.on_message(NodeId(i), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        }
        // A nudge re-broadcasts round 1 verbatim: same ts, no new timer.
        let mut c = new_ctx(9);
        assert!(w.resend_round(&mut c));
        assert_eq!(c.sent().len(), 5);
        match &c.sent()[0].1 {
            StorageMsg::Wr { ts, rnd, .. } => assert_eq!((*ts, *rnd), (1, 1)),
            other => panic!("{other:?}"),
        }
        assert!(c.armed_timers().is_empty(), "resend arms no round timer");
        // A duplicate ack from server 0 does not inflate the ack set…
        let mut c = new_ctx(10);
        w.on_message(NodeId(0), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        assert_eq!(w.current.as_ref().unwrap().acks.len(), 2);
        // …while a fresh ack still counts, completing after the timer.
        let mut c = new_ctx(10);
        w.on_message(NodeId(2), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        let mut c = new_ctx(11);
        w.on_timer(timer, &mut c);
        assert!(!w.is_idle(), "3 of 5 is class-2: round 2 follows");
        assert_eq!(w.outcomes().len(), 0);
        // Idle writers have nothing to resend.
        let mut w2 = Writer::new(rqs_5(), servers());
        let mut c = new_ctx(0);
        assert!(!w2.resend_round(&mut c));
        assert!(c.sent().is_empty());
    }

    #[test]
    fn round_timeout_override_arms_the_longer_timer() {
        let mut w = Writer::new(rqs_5(), servers());
        w.set_round_timeout(4 * CLIENT_TIMEOUT);
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(7u64), &mut ctx);
        assert_eq!(ctx.armed_timers()[0].0, 4 * CLIENT_TIMEOUT);
    }

    #[test]
    fn eager_completion_settles_at_all_n_acks() {
        let mut w = Writer::new(rqs_5(), servers());
        w.set_eager_completion(true);
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(7u64), &mut ctx);
        let timer = ctx.armed_timers()[0].1;
        // n−1 acks: a class-1 quorum, but the timer could still reveal
        // more — the round must keep waiting.
        for i in 0..4 {
            let mut c = new_ctx(2);
            w.on_message(NodeId(i), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
            assert!(!w.is_idle(), "n−1 acks must still await the timer");
        }
        // The nth ack settles immediately — no timer firing — and hands
        // the now-useless timer back to the wheel.
        let mut c = new_ctx(3);
        w.on_message(NodeId(4), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        assert!(w.is_idle());
        assert_eq!(c.cancelled_timers(), &[timer]);
        let out = &w.outcomes()[0];
        assert_eq!(out.rounds, 1);
        assert_eq!(out.completed_at, Time(3), "completes at ack time");
    }

    #[test]
    fn eager_completion_off_still_waits_for_the_timer() {
        let mut w = Writer::new(rqs_5(), servers());
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(7u64), &mut ctx);
        for i in 0..5 {
            let mut c = new_ctx(2);
            w.on_message(NodeId(i), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        }
        assert!(!w.is_idle(), "default mode keeps the paper's schedule");
    }

    #[test]
    #[should_panic(expected = "write already in progress")]
    fn concurrent_write_rejected() {
        let mut w = Writer::new(rqs_5(), servers());
        let mut ctx = new_ctx(0);
        w.start_write(Value::from(1u64), &mut ctx);
        w.start_write(Value::from(2u64), &mut ctx);
    }

    #[test]
    #[should_panic(expected = "⊥ is not a writable value")]
    fn bottom_write_rejected() {
        let mut w = Writer::new(rqs_5(), servers());
        let mut ctx = new_ctx(0);
        w.start_write(Value::bottom(), &mut ctx);
    }

    #[test]
    fn timestamps_monotone() {
        let mut w = Writer::new(rqs_5(), servers());
        for expect_ts in 1..=3u64 {
            let mut ctx = new_ctx(0);
            w.start_write(Value::from(expect_ts), &mut ctx);
            assert_eq!(w.last_ts(), expect_ts);
            let timer = ctx.armed_timers()[0].1;
            for i in 0..4 {
                let mut c = new_ctx(2);
                w.on_message(
                    NodeId(i),
                    StorageMsg::WrAck {
                        ts: expect_ts,
                        rnd: 1,
                    },
                    &mut c,
                );
            }
            let mut c = new_ctx(3);
            w.on_timer(timer, &mut c);
            assert!(w.is_idle());
        }
        assert_eq!(w.outcomes().len(), 3);
    }
}
