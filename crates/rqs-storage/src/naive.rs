//! Counterexample baseline: the "greedy" fast storage of §1.2 / Figure 1.
//!
//! This algorithm expedites every synchronous, uncontended operation in a
//! single round as soon as `n - t` servers respond — i.e. it treats every
//! plain quorum as a class-1 quorum, which violates Property 2 when
//! `n ≤ t + 2k + 2q` (for the §1.2 instance: 5 ≤ 2 + 0 + 4 = 6). The
//! paper's Figure 1 executions show the resulting atomicity violation;
//! experiment **E1** drives this implementation through exactly those
//! schedules and watches a read return a value that a later read cannot
//! see.
//!
//! The writer writes `⟨ts, v⟩` to all and completes on `n - t` acks; a
//! reader collects `n - t` replies, returns the highest pair immediately
//! (no write-back, no timeout discipline) — fast but wrong.

use crate::value::{Timestamp, TsVal, Value};
use rqs_core::ProcessSet;
use rqs_sim::{Automaton, Context, NodeId, Time};
use std::any::Any;

/// Messages of the naive protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NaiveMsg {
    /// Store `⟨ts, v⟩`.
    Write {
        /// The pair.
        pair: TsVal,
    },
    /// Write ack.
    WriteAck {
        /// Echoed timestamp.
        ts: Timestamp,
    },
    /// Read query.
    Read {
        /// Reader-local operation id.
        read_no: u64,
    },
    /// Read reply.
    ReadAck {
        /// Echoed id.
        read_no: u64,
        /// Server's stored pair.
        pair: TsVal,
    },
}

/// A naive server (same storage rule as ABD).
#[derive(Clone, Debug, Default)]
pub struct NaiveServer {
    pair: TsVal,
}

impl NaiveServer {
    /// Fresh server.
    pub fn new() -> Self {
        NaiveServer::default()
    }

    /// The stored pair.
    pub fn pair(&self) -> &TsVal {
        &self.pair
    }
}

impl Automaton<NaiveMsg> for NaiveServer {
    fn on_message(&mut self, from: NodeId, msg: NaiveMsg, ctx: &mut Context<NaiveMsg>) {
        match msg {
            NaiveMsg::Write { pair } => {
                if pair.ts > self.pair.ts {
                    self.pair = pair.clone();
                }
                ctx.send(from, NaiveMsg::WriteAck { ts: pair.ts });
            }
            NaiveMsg::Read { read_no } => {
                ctx.send(
                    from,
                    NaiveMsg::ReadAck {
                        read_no,
                        pair: self.pair.clone(),
                    },
                );
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Outcome of a naive operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaiveOutcome {
    /// The pair written or returned.
    pub pair: TsVal,
    /// Rounds used (always 1 — that is the bug).
    pub rounds: usize,
    /// Invocation time.
    pub invoked_at: Time,
    /// Response time.
    pub completed_at: Time,
}

#[derive(Debug)]
enum State {
    Idle,
    Writing {
        pair: TsVal,
        acks: ProcessSet,
        invoked_at: Time,
    },
    Reading {
        read_no: u64,
        acks: ProcessSet,
        best: TsVal,
        invoked_at: Time,
    },
}

/// A naive client completing every operation at `n - t` responses.
#[derive(Debug)]
pub struct NaiveClient {
    servers: Vec<NodeId>,
    threshold: usize,
    ts: Timestamp,
    read_no: u64,
    state: State,
    outcomes: Vec<NaiveOutcome>,
}

impl NaiveClient {
    /// Creates a client completing operations at `servers.len() - t`
    /// responses.
    ///
    /// # Panics
    ///
    /// Panics if `t >= servers.len()`.
    pub fn new(servers: Vec<NodeId>, t: usize) -> Self {
        assert!(t < servers.len());
        let threshold = servers.len() - t;
        NaiveClient {
            servers,
            threshold,
            ts: 0,
            read_no: 0,
            state: State::Idle,
            outcomes: Vec::new(),
        }
    }

    /// Completed operations.
    pub fn outcomes(&self) -> &[NaiveOutcome] {
        &self.outcomes
    }

    /// `true` iff idle.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, State::Idle)
    }

    /// Invokes `write(v)` — completes on `n - t` acks, one round, always.
    ///
    /// # Panics
    ///
    /// Panics if an operation is in progress.
    pub fn start_write(&mut self, v: Value, ctx: &mut Context<NaiveMsg>) {
        assert!(self.is_idle());
        self.ts += 1;
        let pair = TsVal::new(self.ts, v);
        self.state = State::Writing {
            pair: pair.clone(),
            acks: ProcessSet::empty(),
            invoked_at: ctx.now(),
        };
        ctx.broadcast(self.servers.iter().copied(), NaiveMsg::Write { pair });
    }

    /// Invokes `read()` — returns the highest pair among the first
    /// `n - t` replies, no write-back.
    ///
    /// # Panics
    ///
    /// Panics if an operation is in progress.
    pub fn start_read(&mut self, ctx: &mut Context<NaiveMsg>) {
        assert!(self.is_idle());
        self.read_no += 1;
        self.state = State::Reading {
            read_no: self.read_no,
            acks: ProcessSet::empty(),
            best: TsVal::initial(),
            invoked_at: ctx.now(),
        };
        ctx.broadcast(
            self.servers.iter().copied(),
            NaiveMsg::Read {
                read_no: self.read_no,
            },
        );
    }

    fn server_index(&self, node: NodeId) -> Option<usize> {
        self.servers.iter().position(|&s| s == node)
    }
}

impl Automaton<NaiveMsg> for NaiveClient {
    fn on_message(&mut self, from: NodeId, msg: NaiveMsg, ctx: &mut Context<NaiveMsg>) {
        let Some(idx) = self.server_index(from) else {
            return;
        };
        match (&mut self.state, msg) {
            (
                State::Writing {
                    pair,
                    acks,
                    invoked_at,
                },
                NaiveMsg::WriteAck { ts },
            ) if ts == pair.ts => {
                acks.insert(rqs_core::ProcessId(idx));
                if acks.len() >= self.threshold {
                    let outcome = NaiveOutcome {
                        pair: pair.clone(),
                        rounds: 1,
                        invoked_at: *invoked_at,
                        completed_at: ctx.now(),
                    };
                    self.outcomes.push(outcome);
                    self.state = State::Idle;
                }
            }
            (
                State::Reading {
                    read_no,
                    acks,
                    best,
                    invoked_at,
                },
                NaiveMsg::ReadAck {
                    read_no: echo,
                    pair,
                },
            ) if echo == *read_no => {
                acks.insert(rqs_core::ProcessId(idx));
                if pair.ts > best.ts {
                    *best = pair;
                }
                if acks.len() >= self.threshold {
                    let outcome = NaiveOutcome {
                        pair: best.clone(),
                        rounds: 1,
                        invoked_at: *invoked_at,
                        completed_at: ctx.now(),
                    };
                    self.outcomes.push(outcome);
                    self.state = State::Idle;
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_sim::{Fate, NetworkScript, Rule, Selector, World};

    fn build() -> (World<NaiveMsg>, Vec<NodeId>, NodeId, NodeId, NodeId) {
        let mut world = World::new(NetworkScript::synchronous());
        let servers: Vec<NodeId> = (0..5)
            .map(|_| world.add_node(Box::new(NaiveServer::new())))
            .collect();
        let writer = world.add_node(Box::new(NaiveClient::new(servers.clone(), 2)));
        let r1 = world.add_node(Box::new(NaiveClient::new(servers.clone(), 2)));
        let r2 = world.add_node(Box::new(NaiveClient::new(servers.clone(), 2)));
        (world, servers, writer, r1, r2)
    }

    #[test]
    fn happy_path_one_round_each() {
        let (mut world, _s, writer, r1, _r2) = build();
        world.invoke::<NaiveClient>(writer, |c, ctx| c.start_write(Value::from(1u64), ctx));
        world.run_to_quiescence();
        assert_eq!(world.node_as::<NaiveClient>(writer).outcomes()[0].rounds, 1);
        world.invoke::<NaiveClient>(r1, |c, ctx| c.start_read(ctx));
        world.run_to_quiescence();
        let out = &world.node_as::<NaiveClient>(r1).outcomes()[0];
        assert_eq!(out.rounds, 1);
        assert_eq!(out.pair.val, Value::from(1u64));
    }

    /// The Figure 1 schedule: ex3/ex4 — an incomplete write reaches only
    /// server 3; reader r1 reads {3,4,5}… wait, reads {s3,s4,s5} and sees
    /// v at s3, returns it in one round; then s3 and s5 crash and r2 reads
    /// {s1,s2,s4}, which have no trace of v. Atomicity is violated: r2
    /// returns ⊥ although r1 (which completed earlier) returned v.
    #[test]
    fn figure1_schedule_violates_atomicity() {
        let (mut world, servers, writer, r1, r2) = build();
        // Incomplete write: round-1 messages reach only server index 2
        // (s3); all others are lost (the writer then crashes, Fig. 1 ex3).
        world.set_policy(
            NetworkScript::synchronous()
                .rule(
                    Rule::always(Fate::Deliver { delay: 1 })
                        .from(Selector::Is(writer))
                        .to(Selector::Is(servers[2])),
                )
                .rule(Rule::always(Fate::Drop).from(Selector::Is(writer))),
        );
        world.invoke::<NaiveClient>(writer, |c, ctx| c.start_write(Value::from(7u64), ctx));
        world.run_to_quiescence();
        assert!(
            !world.node_as::<NaiveClient>(writer).is_idle(),
            "write is incomplete"
        );

        // r1 reads; replies from {s3,s4,s5} arrive, {s1,s2} delayed.
        world.set_policy(
            NetworkScript::synchronous().rule(
                Rule::always(Fate::Drop)
                    .from(Selector::In(vec![servers[0], servers[1]]))
                    .to(Selector::Is(r1)),
            ),
        );
        world.invoke::<NaiveClient>(r1, |c, ctx| c.start_read(ctx));
        world.run_to_quiescence();
        let rd1 = world.node_as::<NaiveClient>(r1).outcomes()[0].clone();
        assert_eq!(rd1.pair.val, Value::from(7u64), "r1 returns v in 1 round");

        // ex4: s3 and s5 crash; r2 reads from {s1,s2,s4}, strictly after
        // rd1 completed.
        let now = world.now();
        world.crash_at(servers[2], now);
        world.crash_at(servers[4], now);
        world.run_before(now + 1);
        world.set_policy(NetworkScript::synchronous());
        world.invoke::<NaiveClient>(r2, |c, ctx| c.start_read(ctx));
        world.run_to_quiescence();
        let rd2 = &world.node_as::<NaiveClient>(r2).outcomes()[0];
        // Atomicity violated: rd2 follows rd1 (which returned v) but
        // returns the initial value.
        assert!(
            rd2.pair.is_initial(),
            "r2 cannot see v — atomicity violated"
        );
        assert!(rd2.invoked_at > rd1.completed_at);
    }
}
