//! Write-ahead persistence for storage servers.
//!
//! A benign server's durable state is its [`History`]. Two record shapes
//! go through the [`rqs_store::Durable`] store:
//!
//! - **Deltas** ([`StorageDelta`]): one log record per *effective*
//!   `wr⟨ts, v, QC'2, rnd⟩` — appended (and, under the write-ahead
//!   config, synced) **before** the `wr_ack` leaves the server, so any
//!   acknowledged write survives an amnesia crash.
//! - **Snapshots**: a full encoding of one or more object histories,
//!   installed by `save_state` to compact the log.
//!
//! Replay is exact: snapshots restore slot arrays verbatim
//! ([`History::insert_slots`]) and deltas re-run the paper's
//! [`History::apply_write`] rule, which is deterministic in the original
//! message contents.

use crate::history::{History, Slot, SLOTS};
use crate::value::{Timestamp, TsVal, Value};
use rqs_core::QuorumId;
use rqs_store::codec::{Dec, Enc};
use rqs_store::Recovered;
use std::collections::{BTreeMap, BTreeSet};

/// Record-kind tag for [`StorageDelta`] log records.
pub const DELTA_KIND: u64 = 1;

/// The minimal per-update delta a server logs before acknowledging a
/// write: exactly the fields of the `wr` message that changed history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageDelta {
    /// Object tag (0 for single-register deployments; the object id
    /// for multi-object KV servers).
    pub obj: u64,
    /// The written timestamp.
    pub ts: Timestamp,
    /// The written value.
    pub val: Value,
    /// Class-2 quorum ids attached at `rnd`.
    pub sets: BTreeSet<QuorumId>,
    /// The write round `∈ {1, 2, 3}`.
    pub rnd: usize,
}

impl StorageDelta {
    /// Encodes the delta as one log record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(DELTA_KIND)
            .u64(self.obj)
            .u64(self.ts)
            .bytes(self.val.as_bytes())
            .u64s(self.sets.iter().map(|q| q.0 as u64))
            .u64(self.rnd as u64);
        e.finish()
    }

    /// Decodes a log record; `None` on any corruption (wrong kind tag,
    /// truncation, out-of-range round, trailing bytes).
    pub fn decode(bytes: &[u8]) -> Option<StorageDelta> {
        let mut d = Dec::new(bytes);
        if d.u64()? != DELTA_KIND {
            return None;
        }
        let obj = d.u64()?;
        let ts = d.u64()?;
        let val = Value::from(d.bytes()?);
        let sets = d
            .u64s()?
            .into_iter()
            .map(|q| QuorumId(q as usize))
            .collect();
        let rnd = d.u64()? as usize;
        if !(1..=SLOTS).contains(&rnd) || !d.done() {
            return None;
        }
        Some(StorageDelta {
            obj,
            ts,
            val,
            sets,
            rnd,
        })
    }
}

/// Encodes one or more `(object, history)` pairs as a snapshot blob.
///
/// Shared by single-object servers (one pair, tag 0) and KV servers
/// (every object at once), so [`decode_histories`] reads both.
pub fn encode_histories<'a>(objs: impl IntoIterator<Item = (u64, &'a History)>) -> Vec<u8> {
    let objs: Vec<(u64, &History)> = objs.into_iter().collect();
    let mut e = Enc::new();
    e.u64(objs.len() as u64);
    for (obj, h) in objs {
        e.u64(obj).u64(h.len() as u64);
        for (&ts, slots) in h.iter() {
            e.u64(ts);
            for slot in slots {
                e.u64(slot.pair.ts)
                    .bytes(slot.pair.val.as_bytes())
                    .u64s(slot.sets.iter().map(|q| q.0 as u64));
            }
        }
    }
    e.finish()
}

/// Decodes a [`encode_histories`] snapshot; `None` on corruption.
pub fn decode_histories(bytes: &[u8]) -> Option<Vec<(u64, History)>> {
    let mut d = Dec::new(bytes);
    let n = d.u64()?;
    let mut out = Vec::new();
    for _ in 0..n {
        let obj = d.u64()?;
        let n_ts = d.u64()?;
        let mut h = History::new();
        for _ in 0..n_ts {
            let ts = d.u64()?;
            let mut slots: [Slot; SLOTS] = Default::default();
            for slot in slots.iter_mut() {
                let pair_ts = d.u64()?;
                let val = Value::from(d.bytes()?);
                let sets = d
                    .u64s()?
                    .into_iter()
                    .map(|q| QuorumId(q as usize))
                    .collect();
                *slot = Slot {
                    pair: TsVal::new(pair_ts, val),
                    sets,
                };
            }
            h.insert_slots(ts, slots);
        }
        out.push((obj, h));
    }
    if d.done() {
        Some(out)
    } else {
        None
    }
}

/// Rebuilds object `obj`'s history from recovered store contents:
/// snapshot first (exact slots), then every matching delta in log order.
/// Returns the history and the number of deltas replayed.
pub fn restore_history(rec: &Recovered, obj: u64) -> (History, usize) {
    let mut h = History::new();
    if let Some(snap) = &rec.snapshot {
        if let Some(objs) = decode_histories(snap) {
            for (o, oh) in objs {
                if o == obj {
                    h = oh;
                }
            }
        }
    }
    let mut replayed = 0;
    for bytes in &rec.log {
        if let Some(delta) = StorageDelta::decode(bytes) {
            if delta.obj == obj {
                let pair = TsVal::new(delta.ts, delta.val);
                h.apply_write(&pair, &delta.sets, delta.rnd);
                replayed += 1;
            }
        }
    }
    (h, replayed)
}

/// Rebuilds *every* object's history from recovered store contents in
/// one pass: snapshot histories first, then each decodable delta applied
/// to its object in log order. Object-for-object equivalent to calling
/// [`restore_history`] on every id in [`object_ids`], but the cost is
/// O(snapshot + log) instead of O(objects × log) — on a multi-object
/// server with thousands of objects sharing one store, the per-object
/// rescan turns recovery from milliseconds into minutes and can stall a
/// node past its clients' operation timeouts.
///
/// Returns the histories (sorted by object id) and the total number of
/// deltas replayed.
pub fn restore_histories(rec: &Recovered) -> (Vec<(u64, History)>, usize) {
    let mut map: BTreeMap<u64, History> = BTreeMap::new();
    if let Some(snap) = &rec.snapshot {
        if let Some(objs) = decode_histories(snap) {
            for (obj, h) in objs {
                map.insert(obj, h);
            }
        }
    }
    let mut replayed = 0;
    for bytes in &rec.log {
        if let Some(delta) = StorageDelta::decode(bytes) {
            let pair = TsVal::new(delta.ts, delta.val);
            map.entry(delta.obj)
                .or_default()
                .apply_write(&pair, &delta.sets, delta.rnd);
            replayed += 1;
        }
    }
    (map.into_iter().collect(), replayed)
}

/// Every object id mentioned anywhere in recovered store contents —
/// the domain a multi-object server must rebuild.
pub fn object_ids(rec: &Recovered) -> BTreeSet<u64> {
    let mut ids = BTreeSet::new();
    if let Some(snap) = &rec.snapshot {
        if let Some(objs) = decode_histories(snap) {
            ids.extend(objs.into_iter().map(|(o, _)| o));
        }
    }
    for bytes in &rec.log {
        if let Some(delta) = StorageDelta::decode(bytes) {
            ids.insert(delta.obj);
        }
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(obj: u64, ts: Timestamp, v: u64, rnd: usize) -> StorageDelta {
        StorageDelta {
            obj,
            ts,
            val: Value::from(v),
            sets: BTreeSet::from([QuorumId(2), QuorumId(5)]),
            rnd,
        }
    }

    #[test]
    fn delta_round_trips() {
        let d = delta(3, 7, 42, 2);
        assert_eq!(StorageDelta::decode(&d.encode()), Some(d));
        // Bottom values survive too.
        let b = StorageDelta {
            obj: 0,
            ts: 1,
            val: Value::bottom(),
            sets: BTreeSet::new(),
            rnd: 1,
        };
        assert_eq!(StorageDelta::decode(&b.encode()), Some(b));
    }

    #[test]
    fn delta_rejects_corruption() {
        let d = delta(1, 2, 3, 1);
        let enc = d.encode();
        assert_eq!(StorageDelta::decode(&enc[..enc.len() - 1]), None);
        let mut wrong_kind = enc.clone();
        wrong_kind[0] = 9;
        assert_eq!(StorageDelta::decode(&wrong_kind), None);
        let bad_rnd = StorageDelta { rnd: 4, ..d }.encode();
        assert_eq!(StorageDelta::decode(&bad_rnd), None);
        let mut trailing = enc;
        trailing.push(0);
        assert_eq!(StorageDelta::decode(&trailing), None);
    }

    #[test]
    fn histories_round_trip_exactly() {
        let mut h1 = History::new();
        h1.apply_write(
            &TsVal::new(3, Value::from(30u64)),
            &BTreeSet::from([QuorumId(1)]),
            2,
        );
        h1.apply_write(&TsVal::new(5, Value::from("five")), &BTreeSet::new(), 3);
        let mut h2 = History::new();
        h2.apply_write(&TsVal::new(1, Value::from(9u64)), &BTreeSet::new(), 1);
        let blob = encode_histories([(0, &h1), (7, &h2)]);
        let back = decode_histories(&blob).unwrap();
        assert_eq!(back, vec![(0, h1), (7, h2)]);
        assert_eq!(decode_histories(&blob[..blob.len() - 2]), None);
    }

    #[test]
    fn restore_applies_snapshot_then_deltas_per_object() {
        let mut h = History::new();
        h.apply_write(&TsVal::new(1, Value::from(10u64)), &BTreeSet::new(), 1);
        let rec = Recovered {
            snapshot: Some(encode_histories([(4, &h)])),
            log: vec![
                delta(4, 2, 20, 2).encode(),
                delta(9, 8, 80, 1).encode(), // other object: skipped
                b"garbage".to_vec(),         // corrupt: skipped
            ],
        };
        let (restored, replayed) = restore_history(&rec, 4);
        assert_eq!(replayed, 1);
        assert!(restored.stores(&TsVal::new(1, Value::from(10u64)), 1));
        assert!(restored.stores(&TsVal::new(2, Value::from(20u64)), 2));
        assert!(!restored.stores(&TsVal::new(8, Value::from(80u64)), 1));
        assert_eq!(object_ids(&rec), BTreeSet::from([4, 9]));
    }

    #[test]
    fn one_pass_restore_matches_per_object_rescan() {
        let mut snap_h = History::new();
        snap_h.apply_write(&TsVal::new(1, Value::from(10u64)), &BTreeSet::new(), 1);
        let rec = Recovered {
            snapshot: Some(encode_histories([(4, &snap_h)])),
            log: vec![
                delta(4, 2, 20, 2).encode(),
                delta(9, 8, 80, 1).encode(),
                delta(4, 3, 30, 3).encode(),
                b"garbage".to_vec(), // corrupt: skipped by both paths
            ],
        };
        let (all, replayed) = restore_histories(&rec);
        assert_eq!(replayed, 3, "every decodable delta counts once");
        let ids: BTreeSet<u64> = all.iter().map(|(o, _)| *o).collect();
        assert_eq!(ids, object_ids(&rec));
        for (obj, hist) in all {
            let (per_object, _) = restore_history(&rec, obj);
            assert_eq!(hist, per_object, "object {obj} diverged");
        }
    }
}
