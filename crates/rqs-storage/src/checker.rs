//! Incremental (streaming) atomicity checking.
//!
//! [`AtomicityChecker`] is a stateful sink over the same SWMR
//! characterization as [`crate::atomicity`]: it consumes completed
//! [`OpRecord`]s **in any order**, one at a time, and reports the same
//! [`AtomicityViolation`] taxonomy at the moment the offending operation
//! arrives. Feeding every op and calling [`AtomicityChecker::finish`]
//! yields exactly the verdict of the offline whole-history pass — which
//! is now implemented as a thin wrapper over this sink — but each op
//! costs O(log n) amortized instead of O(n):
//!
//! - a **write-timestamp index** (`writes`) checks timestamp uniqueness
//!   and value agreement in one lookup;
//! - reads whose source write has not arrived yet wait in a **pending**
//!   buffer; they are re-validated when the write shows up and condemned
//!   as fabricated once it provably never can;
//! - the real-time rule (`o1` completes before `o2` is invoked ⇒
//!   `ts(o1) ≤ ts(o2)`) is enforced against two *Pareto staircases*: the
//!   prefix-maximum of timestamps keyed by completion time (what is the
//!   largest timestamp among ops that completed before I was invoked?)
//!   and the suffix-minimum keyed by invocation time (did anyone invoked
//!   after I completed return a smaller timestamp?). Dominated entries
//!   are discarded on insertion, so each staircase holds only the
//!   current frontier.
//!
//! ## Retirement (bounded memory)
//!
//! Long-running drivers call [`AtomicityChecker::retire_before`]`(W)`
//! with a watermark `W` such that **every op fed afterwards was invoked
//! at or after `W`**. Everything that completed before `W` is then
//! provably real-time-ordered before all future ops, so the checker
//! folds it into two scalars — the maximum retired timestamp (with the
//! op that achieved it, kept as the `earlier` witness for future
//! `StaleRead`s) and the largest retired *write* timestamp (the witness
//! for future duplicate-timestamp writes) — and frees the rest. Pending
//! reads that completed before `W` are condemned at that moment: any
//! matching write arriving later would be a write from the future, i.e.
//! fabricated either way. Resident state is therefore proportional to
//! the number of ops concurrent with the watermark, not to history
//! length — see [`AtomicityChecker::stats`].

use crate::atomicity::{AtomicityViolation, OpKind, OpRecord};
use crate::value::Timestamp;
use rqs_sim::Time;
use std::collections::BTreeMap;
use std::ops::Bound::{Excluded, Unbounded};

/// Counters exposed by an [`AtomicityChecker`] (and aggregated across
/// per-object checkers by the KV layer).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CheckerStats {
    /// Operations fed into the sink so far.
    pub ops_checked: u64,
    /// Highest retirement watermark applied (ticks; 0 = never retired).
    pub retired_watermark: u64,
    /// Resident entries freed by retirement so far.
    pub retired_ops: u64,
    /// Peak resident entries (write index + staircases + pending reads).
    pub max_frontier: usize,
    /// Resident entries right now.
    pub resident: usize,
    /// Arrival index (0-based, among fed ops) of the op that triggered
    /// the sticky violation, if any — detection happened when that op
    /// arrived, not at a terminal scan.
    pub violation_op: Option<u64>,
}

impl CheckerStats {
    /// Folds another checker's counters into this one (sums the totals,
    /// maxes the peaks) — used to aggregate per-object checkers.
    pub fn merge(&mut self, other: &CheckerStats) {
        self.ops_checked += other.ops_checked;
        self.retired_ops += other.retired_ops;
        self.retired_watermark = self.retired_watermark.max(other.retired_watermark);
        self.max_frontier = self.max_frontier.max(other.max_frontier);
        self.resident += other.resident;
        self.violation_op = self.violation_op.or(other.violation_op);
    }
}

#[derive(Clone, Debug)]
struct WriteRec {
    op: OpRecord,
    /// Streamed as in-flight: a later completed record with the same
    /// timestamp and value *closes* it instead of colliding with it.
    open: bool,
}

/// A staircase entry: the timestamp frontier plus the op that set it
/// (kept so violations can name a concrete witness).
#[derive(Clone, Debug)]
struct StairEntry {
    ts: Timestamp,
    op: OpRecord,
}

/// Streaming SWMR atomicity checker; see the module docs.
///
/// # Examples
///
/// ```
/// use rqs_storage::{AtomicityChecker, OpKind, OpRecord, TsVal, Value};
/// use rqs_sim::Time;
///
/// let mut c = AtomicityChecker::new();
/// c.observe(&OpRecord {
///     kind: OpKind::Write,
///     client: 0,
///     pair: TsVal::new(1, Value::from(10u64)),
///     invoked_at: Time(0),
///     completed_at: Time(5),
/// });
/// c.observe(&OpRecord {
///     kind: OpKind::Read,
///     client: 1,
///     pair: TsVal::new(1, Value::from(10u64)),
///     invoked_at: Time(6),
///     completed_at: Time(8),
/// });
/// assert!(c.finish().is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct AtomicityChecker {
    /// Sticky first violation.
    violation: Option<AtomicityViolation>,
    /// 0-based arrival index (among fed ops) of the offending op.
    violation_op: Option<u64>,
    /// Live writes by timestamp.
    writes: BTreeMap<Timestamp, WriteRec>,
    /// Reads whose source write has not arrived, in arrival order.
    pending: Vec<(u64, OpRecord)>,
    /// Prefix-max of ts keyed by `completed_at` (ts strictly increasing).
    max_stair: BTreeMap<Time, StairEntry>,
    /// Suffix-min of ts keyed by `invoked_at` (ts strictly increasing).
    min_stair: BTreeMap<Time, StairEntry>,
    /// Every op fed from now on is invoked at or after this time.
    watermark: Time,
    /// Largest completion time seen on a closed op (retirement horizon).
    max_completed: Time,
    /// Max-ts op retired so far: the `earlier` witness for future ops.
    retired: Option<StairEntry>,
    /// Largest retired *write* timestamp and its description.
    retired_write: Option<(Timestamp, String)>,
    ops_checked: u64,
    retired_ops: u64,
    max_frontier: usize,
}

impl AtomicityChecker {
    /// An empty sink.
    pub fn new() -> Self {
        AtomicityChecker::default()
    }

    /// Feeds one completed operation. A write that never completed may be
    /// fed with a [`Time::FAR_FUTURE`] completion, exactly as the offline
    /// checker accepts it.
    pub fn observe(&mut self, op: &OpRecord) {
        self.observe_inner(op, false);
    }

    /// Feeds a write known to be in flight (recorded with a far-future
    /// completion). Unlike [`observe`](Self::observe), a later completed
    /// record with the same timestamp and value *closes* it — upgrading
    /// the completion time — rather than colliding with it. Re-feeding
    /// the same open write is a no-op, so drivers may report in-progress
    /// state on every harvest.
    pub fn observe_open_write(&mut self, op: &OpRecord) {
        debug_assert_eq!(op.kind, OpKind::Write);
        if let Some(rec) = self.writes.get(&op.pair.ts) {
            if rec.open && rec.op.pair.val == op.pair.val {
                return;
            }
        }
        self.observe_inner(op, true);
    }

    fn observe_inner(&mut self, op: &OpRecord, open: bool) {
        let index = self.ops_checked;
        self.ops_checked += 1;
        if self.violation.is_some() {
            return;
        }
        match op.kind {
            OpKind::Write => self.observe_write(op, open, index),
            OpKind::Read => self.observe_read(op, index),
        }
        let resident = self.resident_ops();
        self.max_frontier = self.max_frontier.max(resident);
    }

    fn observe_write(&mut self, op: &OpRecord, open: bool, index: u64) {
        let ts = op.pair.ts;
        if let Some(rec) = self.writes.get_mut(&ts) {
            if rec.open && !open && rec.op.pair.val == op.pair.val {
                // The completion of a write previously fed in-flight.
                rec.op.completed_at = op.completed_at;
                rec.op.invoked_at = rec.op.invoked_at.min(op.invoked_at);
                rec.open = false;
                let closed = rec.op.clone();
                self.note_completed(&closed);
                // Its invocation-side real-time check ran when it was
                // opened; completing only adds the other direction.
                if self.check_as_earlier(&closed, index) {
                    return;
                }
                self.index_completed(&closed);
                return;
            }
            let detail = format!(
                "{} and {} share timestamp {}",
                rec.op.describe(),
                op.describe(),
                ts
            );
            self.fail(AtomicityViolation::Inconsistent { detail }, index);
            return;
        }
        if let Some((rts, rdesc)) = &self.retired_write {
            if ts == *rts {
                let detail = format!("{} and {} share timestamp {}", rdesc, op.describe(), ts);
                self.fail(AtomicityViolation::Inconsistent { detail }, index);
                return;
            }
        }
        // Re-validate reads that were waiting for this write.
        let resolved: Vec<(u64, OpRecord)> = {
            let (hit, miss): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending)
                .into_iter()
                .partition(|(_, r)| r.pair.ts == ts);
            self.pending = miss;
            hit
        };
        for (ridx, read) in resolved {
            if read.pair.val != op.pair.val {
                let detail = format!(
                    "{} returned {} but the write with that timestamp wrote {}",
                    read.describe(),
                    read.pair,
                    op.pair
                );
                self.fail(AtomicityViolation::Inconsistent { detail }, ridx);
                return;
            }
            if op.invoked_at > read.completed_at {
                let read = read.describe();
                self.fail(AtomicityViolation::Fabricated { read }, ridx);
                return;
            }
        }
        self.writes.insert(
            ts,
            WriteRec {
                op: op.clone(),
                open,
            },
        );
        if !open {
            self.note_completed(op);
        }
        if self.real_time_checks(op, open, index) {
            return;
        }
        self.index_invoked(op);
        if !open {
            self.index_completed(op);
        }
    }

    fn observe_read(&mut self, op: &OpRecord, index: u64) {
        self.note_completed(op);
        if !op.pair.is_initial() {
            match self.writes.get(&op.pair.ts) {
                Some(rec) => {
                    if rec.op.pair.val != op.pair.val {
                        let detail = format!(
                            "{} returned {} but the write with that timestamp wrote {}",
                            op.describe(),
                            op.pair,
                            rec.op.pair
                        );
                        self.fail(AtomicityViolation::Inconsistent { detail }, index);
                        return;
                    }
                    if rec.op.invoked_at > op.completed_at {
                        let read = op.describe();
                        self.fail(AtomicityViolation::Fabricated { read }, index);
                        return;
                    }
                }
                None => {
                    // The source write has not arrived (or was retired,
                    // in which case the real-time check below fires: all
                    // retired writes are older than the retired anchor).
                    if self.real_time_checks(op, false, index) {
                        return;
                    }
                    self.pending.push((index, op.clone()));
                    self.index_invoked(op);
                    self.index_completed(op);
                    return;
                }
            }
        }
        if self.real_time_checks(op, false, index) {
            return;
        }
        self.index_invoked(op);
        self.index_completed(op);
    }

    /// Real-time checks with `op` as the *later* operation (against the
    /// retired summary and the prefix-max staircase) and — unless it is
    /// an open write with no completion yet — as the *earlier* one.
    /// Returns `true` if a violation was recorded.
    fn real_time_checks(&mut self, op: &OpRecord, open: bool, index: u64) -> bool {
        if let Some(anchor) = &self.retired {
            if anchor.ts > op.pair.ts && anchor.op.completed_at < op.invoked_at {
                let v = AtomicityViolation::StaleRead {
                    earlier: anchor.op.describe(),
                    later: op.describe(),
                };
                self.fail(v, index);
                return true;
            }
        }
        if let Some((_, e)) = self.max_stair.range(..op.invoked_at).next_back() {
            if e.ts > op.pair.ts {
                let v = AtomicityViolation::StaleRead {
                    earlier: e.op.describe(),
                    later: op.describe(),
                };
                self.fail(v, index);
                return true;
            }
        }
        if !open && self.check_as_earlier(op, index) {
            return true;
        }
        false
    }

    /// Did anyone invoked after `op` completed return a smaller
    /// timestamp? (`op` as `o1` of the real-time rule.)
    fn check_as_earlier(&mut self, op: &OpRecord, index: u64) -> bool {
        if let Some((_, e)) = self
            .min_stair
            .range((Excluded(op.completed_at), Unbounded))
            .next()
        {
            if e.ts < op.pair.ts {
                let v = AtomicityViolation::StaleRead {
                    earlier: op.describe(),
                    later: e.op.describe(),
                };
                self.fail(v, index);
                return true;
            }
        }
        false
    }

    /// Inserts into the suffix-min staircase (keyed by invocation time).
    fn index_invoked(&mut self, op: &OpRecord) {
        let (key, ts) = (op.invoked_at, op.pair.ts);
        if let Some((_, e)) = self.min_stair.range(key..).next() {
            if e.ts <= ts {
                return; // dominated: a later-or-equal invocation with a smaller ts
            }
        }
        self.min_stair
            .insert(key, StairEntry { ts, op: op.clone() });
        let dominated: Vec<Time> = self
            .min_stair
            .range(..key)
            .rev()
            .take_while(|(_, e)| e.ts >= ts)
            .map(|(&k, _)| k)
            .collect();
        for k in dominated {
            self.min_stair.remove(&k);
        }
    }

    /// Inserts into the prefix-max staircase (keyed by completion time).
    fn index_completed(&mut self, op: &OpRecord) {
        let (key, ts) = (op.completed_at, op.pair.ts);
        if let Some((_, e)) = self.max_stair.range(..=key).next_back() {
            if e.ts >= ts {
                return; // dominated: an earlier-or-equal completion with a larger ts
            }
        }
        self.max_stair
            .insert(key, StairEntry { ts, op: op.clone() });
        let dominated: Vec<Time> = self
            .max_stair
            .range((Excluded(key), Unbounded))
            .take_while(|(_, e)| e.ts <= ts)
            .map(|(&k, _)| k)
            .collect();
        for k in dominated {
            self.max_stair.remove(&k);
        }
    }

    fn note_completed(&mut self, op: &OpRecord) {
        if op.completed_at < Time::FAR_FUTURE {
            self.max_completed = self.max_completed.max(op.completed_at);
        }
    }

    fn fail(&mut self, v: AtomicityViolation, index: u64) {
        if self.violation.is_none() {
            self.violation = Some(v);
            self.violation_op = Some(index);
        }
    }

    /// Advances the watermark: the caller promises every op fed from now
    /// on was invoked at or after `watermark`. Ops that completed before
    /// it are folded into the retired summary and freed; pending reads
    /// that completed before it are condemned as fabricated (a matching
    /// write can only arrive from the future now).
    pub fn retire_before(&mut self, watermark: Time) {
        if watermark <= self.watermark {
            return;
        }
        self.watermark = watermark;
        if self.violation.is_some() {
            return;
        }
        // Fold the prefix of the prefix-max staircase: ts increases with
        // the key, so the last retired entry carries the maximum.
        let done: Vec<Time> = self.max_stair.range(..watermark).map(|(&k, _)| k).collect();
        if let Some(&last) = done.last() {
            let e = self.max_stair[&last].clone();
            if self.retired.as_ref().is_none_or(|a| e.ts > a.ts) {
                self.retired = Some(e);
            }
            for k in done {
                self.max_stair.remove(&k);
                self.retired_ops += 1;
            }
        }
        // Suffix-min entries invoked at or before the watermark can never
        // be the *later* op of a future pair (future ops complete at or
        // after their invocation, hence at or after the watermark).
        let done: Vec<Time> = self
            .min_stair
            .range(..=watermark)
            .map(|(&k, _)| k)
            .collect();
        for k in done {
            self.min_stair.remove(&k);
            self.retired_ops += 1;
        }
        // Writes that completed before the watermark are all older than
        // the retired anchor except the anchor itself, which we keep so
        // late reads of it still get exact value checking. Reads of any
        // freed write trip the anchor's real-time check instead.
        let anchor_ts = self.retired.as_ref().map_or(0, |a| a.ts);
        let dead: Vec<Timestamp> = self
            .writes
            .iter()
            .filter(|(&ts, r)| !r.open && r.op.completed_at < watermark && ts < anchor_ts)
            .map(|(&ts, _)| ts)
            .collect();
        for ts in dead {
            let rec = self.writes.remove(&ts).expect("collected above");
            if self.retired_write.as_ref().is_none_or(|(t, _)| ts > *t) {
                self.retired_write = Some((ts, rec.op.describe()));
            }
            self.retired_ops += 1;
        }
        let condemned: Vec<(u64, OpRecord)> = {
            let (dead, live): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending)
                .into_iter()
                .partition(|(_, r)| r.completed_at < watermark);
            self.pending = live;
            dead
        };
        if let Some((index, read)) = condemned.into_iter().next() {
            let read = read.describe();
            self.fail(AtomicityViolation::Fabricated { read }, index);
        }
    }

    /// Retires everything that completed before the latest completion
    /// seen so far. Sound whenever the driver is *wave-structured*: at
    /// call time no operation is in flight, so everything fed later is
    /// invoked at or after the newest completion already observed.
    pub fn retire_settled(&mut self) {
        self.retire_before(self.max_completed);
    }

    /// The first definite violation observed so far, if any. Pending
    /// reads are *not* condemned here — their write may still arrive; use
    /// [`verdict`](Self::verdict) or [`finish`](Self::finish) for the
    /// complete-history judgement.
    pub fn violation(&self) -> Option<&AtomicityViolation> {
        self.violation.as_ref()
    }

    /// Arrival index (0-based, among fed ops) of the op that triggered
    /// the violation — evidence that detection happened at arrival time,
    /// not at a terminal scan.
    pub fn violation_op(&self) -> Option<u64> {
        self.violation_op
    }

    /// The verdict if the history fed so far were complete: the sticky
    /// violation, or the first pending read condemned as fabricated.
    /// Non-destructive — more ops may be fed afterwards, and a pending
    /// read whose write does arrive later is re-validated normally.
    pub fn verdict(&self) -> Result<(), AtomicityViolation> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        if let Some((_, read)) = self.pending.first() {
            return Err(AtomicityViolation::Fabricated {
                read: read.describe(),
            });
        }
        Ok(())
    }

    /// Declares the history complete: pending reads become permanent
    /// fabrications and the final verdict is returned.
    pub fn finish(&mut self) -> Result<(), AtomicityViolation> {
        if self.violation.is_none() {
            if let Some((index, read)) = self.pending.first().cloned() {
                let read = read.describe();
                self.fail(AtomicityViolation::Fabricated { read }, index);
            }
        }
        self.verdict()
    }

    /// Resident entries across the write index, both staircases and the
    /// pending buffer.
    pub fn resident_ops(&self) -> usize {
        self.writes.len() + self.pending.len() + self.max_stair.len() + self.min_stair.len()
    }

    /// Current counters.
    pub fn stats(&self) -> CheckerStats {
        CheckerStats {
            ops_checked: self.ops_checked,
            retired_watermark: self.watermark.0,
            retired_ops: self.retired_ops,
            max_frontier: self.max_frontier,
            resident: self.resident_ops(),
            violation_op: self.violation_op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{TsVal, Value};

    fn write(ts: Timestamp, v: u64, inv: u64, resp: u64) -> OpRecord {
        OpRecord {
            kind: OpKind::Write,
            client: 0,
            pair: TsVal::new(ts, Value::from(v)),
            invoked_at: Time(inv),
            completed_at: Time(resp),
        }
    }

    fn read(client: usize, ts: Timestamp, v: u64, inv: u64, resp: u64) -> OpRecord {
        let pair = if ts == 0 {
            TsVal::initial()
        } else {
            TsVal::new(ts, Value::from(v))
        };
        OpRecord {
            kind: OpKind::Read,
            client,
            pair,
            invoked_at: Time(inv),
            completed_at: Time(resp),
        }
    }

    fn feed(ops: &[OpRecord]) -> AtomicityChecker {
        let mut c = AtomicityChecker::new();
        for op in ops {
            c.observe(op);
        }
        c
    }

    #[test]
    fn sequential_history_passes() {
        let mut c = feed(&[
            write(1, 10, 0, 5),
            read(1, 1, 10, 6, 8),
            write(2, 20, 9, 12),
            read(2, 2, 20, 13, 15),
        ]);
        assert!(c.finish().is_ok());
        assert_eq!(c.stats().ops_checked, 4);
    }

    #[test]
    fn violation_reported_at_arrival_not_at_finish() {
        let mut c = AtomicityChecker::new();
        c.observe(&write(1, 10, 0, 5));
        assert!(c.violation().is_none());
        c.observe(&read(1, 0, 0, 6, 8)); // stale: misses the completed write
        let v = c.violation().expect("detected on arrival");
        assert!(matches!(v, AtomicityViolation::StaleRead { .. }));
        assert_eq!(c.violation_op(), Some(1));
        // later ops do not disturb the sticky verdict
        c.observe(&read(2, 1, 10, 9, 11));
        assert_eq!(c.violation_op(), Some(1));
    }

    #[test]
    fn feed_order_does_not_matter() {
        // The stale pair is detected whichever of the two arrives last.
        let w = write(1, 10, 0, 5);
        let r = read(1, 0, 0, 6, 8);
        let mut fwd = feed(&[w.clone(), r.clone()]);
        let mut rev = feed(&[r, w]);
        assert!(fwd.finish().is_err());
        assert!(rev.finish().is_err());
    }

    #[test]
    fn pending_read_resolves_when_write_arrives() {
        let mut c = AtomicityChecker::new();
        c.observe(&read(1, 1, 10, 6, 8));
        assert!(c.violation().is_none());
        assert!(
            c.verdict().is_err(),
            "pending counts against a complete history"
        );
        c.observe(&write(1, 10, 0, 5));
        assert!(c.verdict().is_ok());
        assert!(c.finish().is_ok());
    }

    #[test]
    fn pending_read_with_future_write_is_fabricated() {
        let mut c = AtomicityChecker::new();
        c.observe(&read(1, 1, 10, 0, 2));
        c.observe(&write(1, 10, 5, 9)); // invoked after the read completed
        assert!(matches!(
            c.violation(),
            Some(AtomicityViolation::Fabricated { .. })
        ));
    }

    #[test]
    fn open_write_closes_and_is_refeed_safe() {
        let mut c = AtomicityChecker::new();
        let mut open = write(1, 10, 0, 0);
        open.completed_at = Time::FAR_FUTURE;
        c.observe_open_write(&open);
        c.observe_open_write(&open); // harvest may re-report in-flight state
        assert_eq!(c.stats().ops_checked, 1);
        c.observe(&read(1, 1, 10, 2, 4)); // concurrent read of the open write: legal
        assert!(c.violation().is_none());
        c.observe(&write(1, 10, 0, 6)); // the completion closes the open record
        assert!(c.finish().is_ok());
        // the close upgraded the completion: a later initial read is stale
        let mut c2 = AtomicityChecker::new();
        let mut open = write(1, 10, 0, 0);
        open.completed_at = Time::FAR_FUTURE;
        c2.observe_open_write(&open);
        c2.observe(&write(1, 10, 0, 6));
        c2.observe(&read(1, 0, 0, 7, 9));
        assert!(matches!(
            c2.violation(),
            Some(AtomicityViolation::StaleRead { .. })
        ));
    }

    #[test]
    fn duplicate_write_ts_detected_live_and_retired() {
        let mut c = AtomicityChecker::new();
        c.observe(&write(1, 10, 0, 5));
        c.observe(&write(1, 11, 6, 9));
        assert!(matches!(
            c.violation(),
            Some(AtomicityViolation::Inconsistent { .. })
        ));
        // same collision against a *retired* write
        let mut c = AtomicityChecker::new();
        c.observe(&write(1, 10, 0, 5));
        c.observe(&write(2, 20, 6, 9));
        c.retire_settled();
        c.observe(&write(1, 11, 10, 12));
        assert!(matches!(
            c.violation(),
            Some(AtomicityViolation::Inconsistent { .. })
        ));
    }

    #[test]
    fn retirement_keeps_verdicts_and_bounds_memory() {
        let mut c = AtomicityChecker::new();
        let mut peak_after_warmup = 0;
        for i in 1..=1000u64 {
            let t = i * 10;
            c.observe(&write(i, i, t, t + 4));
            c.observe(&read(1, i, i, t + 5, t + 8));
            c.retire_settled();
            if i == 10 {
                peak_after_warmup = c.stats().max_frontier;
            }
        }
        assert!(c.finish().is_ok());
        let stats = c.stats();
        assert_eq!(stats.ops_checked, 2000);
        assert!(
            stats.max_frontier <= peak_after_warmup,
            "frontier grew with history length: {} > {}",
            stats.max_frontier,
            peak_after_warmup
        );
        assert!(
            stats.resident <= 4,
            "resident after retirement: {}",
            stats.resident
        );
        assert!(stats.retired_ops > 1900);
    }

    #[test]
    fn stale_read_detected_across_retirement() {
        let mut c = AtomicityChecker::new();
        c.observe(&write(1, 10, 0, 4));
        c.observe(&write(2, 20, 5, 9));
        c.retire_settled();
        // invoked after everything retired, but returns the old pair
        c.observe(&read(1, 1, 10, 10, 12));
        assert!(matches!(
            c.violation(),
            Some(AtomicityViolation::StaleRead { .. })
        ));
    }

    #[test]
    fn read_of_retired_anchor_value_checked_exactly() {
        let mut c = AtomicityChecker::new();
        c.observe(&write(1, 10, 0, 4));
        c.retire_settled();
        // the anchor write stays resident: a wrong value is Inconsistent
        c.observe(&read(1, 1, 99, 5, 7));
        assert!(matches!(
            c.violation(),
            Some(AtomicityViolation::Inconsistent { .. })
        ));
    }

    #[test]
    fn pending_read_condemned_at_watermark() {
        let mut c = AtomicityChecker::new();
        c.observe(&read(1, 7, 99, 0, 2));
        assert!(c.violation().is_none());
        c.observe(&write(1, 10, 1, 6)); // overlaps the read: no real-time pair
        c.retire_settled();
        assert!(matches!(
            c.violation(),
            Some(AtomicityViolation::Fabricated { .. })
        ));
    }

    #[test]
    fn checker_is_cloneable_mid_stream() {
        let mut c = AtomicityChecker::new();
        c.observe(&write(1, 10, 0, 5));
        let mut branch = c.clone();
        branch.observe(&read(1, 0, 0, 6, 8));
        assert!(branch.violation().is_some());
        assert!(c.violation().is_none(), "the original is unaffected");
        c.observe(&read(1, 1, 10, 6, 8));
        assert!(c.finish().is_ok());
    }

    #[test]
    fn stats_merge_aggregates() {
        let a = feed(&[write(1, 10, 0, 5)]).stats();
        let b = feed(&[write(1, 10, 0, 5), read(1, 1, 10, 6, 8)]).stats();
        let mut m = CheckerStats::default();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.ops_checked, 3);
        assert_eq!(m.max_frontier, a.max_frontier.max(b.max_frontier));
    }
}
