//! Storage values and timestamp/value pairs.

use bytes::Bytes;
use core::fmt;

/// A value stored in the register.
///
/// The initial register content is [`Value::bottom`] (`⊥`), which is not in
/// the domain `D` of valid write inputs — writers must write non-`⊥`
/// values.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Value(Bytes);

impl Value {
    /// The initial register value `⊥`.
    pub fn bottom() -> Self {
        Value(Bytes::new())
    }

    /// `true` iff this is `⊥`.
    pub fn is_bottom(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw bytes of the value.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(Bytes::copy_from_slice(&v.to_be_bytes()))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value(Bytes::copy_from_slice(v.as_bytes()))
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(Bytes::from(v))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            return write!(f, "⊥");
        }
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| c.is_ascii_graphic() || c == ' ') => write!(f, "{s:?}"),
            _ => {
                if self.0.len() == 8 {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&self.0);
                    write!(f, "{}", u64::from_be_bytes(buf))
                } else {
                    write!(f, "0x{}", hex(&self.0))
                }
            }
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// A write timestamp; `0` is reserved for the initial pair `⟨0, ⊥⟩`.
pub type Timestamp = u64;

/// A timestamp/value pair `c = ⟨c.ts, c.val⟩` — the unit the protocol
/// reasons about.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TsVal {
    /// The timestamp the writer attached.
    pub ts: Timestamp,
    /// The value.
    pub val: Value,
}

impl TsVal {
    /// The initial pair `⟨0, ⊥⟩`.
    pub fn initial() -> Self {
        TsVal {
            ts: 0,
            val: Value::bottom(),
        }
    }

    /// A fresh pair.
    pub fn new(ts: Timestamp, val: Value) -> Self {
        TsVal { ts, val }
    }

    /// `true` iff this is the initial pair.
    pub fn is_initial(&self) -> bool {
        self.ts == 0 && self.val.is_bottom()
    }
}

impl Default for TsVal {
    fn default() -> Self {
        TsVal::initial()
    }
}

impl fmt::Display for TsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{}⟩", self.ts, self.val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_properties() {
        assert!(Value::bottom().is_bottom());
        assert!(!Value::from(7u64).is_bottom());
        assert_eq!(Value::bottom().to_string(), "⊥");
        assert_eq!(Value::default(), Value::bottom());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7u64).as_bytes(), 7u64.to_be_bytes());
        assert_eq!(Value::from("abc").as_bytes(), b"abc");
        assert_eq!(Value::from(vec![1, 2]).as_bytes(), &[1, 2]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::from(300u64).to_string(), "300");
        assert_eq!(Value::from(vec![0xff, 0x00]).to_string(), "0xff00");
    }

    #[test]
    fn tsval_initial() {
        let init = TsVal::initial();
        assert!(init.is_initial());
        assert_eq!(init, TsVal::default());
        assert!(!TsVal::new(1, Value::from(1u64)).is_initial());
        assert_eq!(TsVal::new(2, Value::from("x")).to_string(), "⟨2,\"x\"⟩");
    }
}
