//! # RQS atomic storage
//!
//! The optimally-resilient, best-case-optimal SWMR Byzantine atomic
//! storage algorithm of *Refined Quorum Systems* (Guerraoui & Vukolić,
//! §3, Figures 5–7), implemented over the [`rqs_sim`] substrate, plus the
//! baselines it is evaluated against:
//!
//! - [`writer::Writer`] / [`server::Server`] / [`reader::Reader`] — the
//!   paper's three automata. Synchronous uncontended operations complete
//!   in 1 round when a correct class-1 quorum responds, 2 rounds for
//!   class 2, 3 rounds for class 3 (the algorithm is `(m, QCm)`-fast for
//!   `m ∈ {1,2,3}` — Theorem 9);
//! - [`abd`] — the classic crash-tolerant ABD storage (writes 1 round,
//!   reads always 2);
//! - [`naive`] — the §1.2 greedy algorithm that expedites at any quorum
//!   and therefore violates atomicity (Figure 1);
//! - [`byzantine`] — forged/scripted server behaviours for fault
//!   injection;
//! - [`atomicity`] — a linearizability checker for SWMR histories, now a
//!   wrapper over [`checker`], the incremental streaming sink with
//!   watermark retirement (bounded memory for soak-length histories);
//! - [`regular`] — the §6 extension: a regular (non-atomic) reader whose
//!   best-case reads are always one round, plus a regularity checker;
//! - [`harness::StorageHarness`] — one-call deployment driving whole
//!   operations and collecting checkable histories.
//!
//! ## Quick start
//!
//! ```
//! use rqs_core::threshold::ThresholdConfig;
//! use rqs_storage::StorageHarness;
//!
//! // The paper's Byzantine instantiation: n = 3t+1 = 4 servers, k = t = 1.
//! let rqs = ThresholdConfig::byzantine_fast(1).build()?;
//! let mut storage = StorageHarness::new(rqs, 1);
//! let write = storage.write("hello".into());
//! assert_eq!(write.rounds, 1); // all servers correct → fast path
//! let read = storage.read(0);
//! assert_eq!(read.returned.val, "hello".into());
//! storage.check_atomicity()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abd;
pub mod atomicity;
pub mod byzantine;
pub mod checker;
pub mod harness;
pub mod history;
pub mod messages;
pub mod naive;
pub mod predicates;
pub mod reader;
pub mod regular;
pub mod server;
pub mod value;
pub mod wal;
pub mod writer;

pub use atomicity::{
    check_atomicity, check_atomicity_reference, AtomicityViolation, OpKind, OpRecord,
};
pub use checker::{AtomicityChecker, CheckerStats};
pub use harness::{StorageDeployment, StorageHarness};
pub use history::{History, Slot};
pub use messages::StorageMsg;
pub use predicates::ReadView;
pub use reader::{ReadOutcome, Reader};
pub use regular::{check_regularity, RegularReadOutcome, RegularReader, RegularityViolation};
pub use server::Server;
pub use value::{Timestamp, TsVal, Value};
pub use wal::{decode_histories, encode_histories, restore_history, StorageDelta};
pub use writer::{WriteOutcome, Writer, CLIENT_TIMEOUT};
