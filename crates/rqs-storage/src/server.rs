//! The benign storage server automaton (Fig. 6).

use crate::history::History;
use crate::messages::StorageMsg;
use crate::value::TsVal;
use rqs_sim::{Automaton, Context, NodeId};
use std::any::Any;

/// A benign storage server.
///
/// Servers are passive: they store writes into their [`History`] and
/// answer reads with the entire history, replying to each client message
/// before processing any other (the round-based restriction of §3.1 —
/// guaranteed here because a step handles exactly one message).
#[derive(Clone, Debug, Default)]
pub struct Server {
    history: History,
}

impl Server {
    /// A fresh server with the empty history.
    pub fn new() -> Self {
        Server::default()
    }

    /// Read access to the stored history (for harness assertions).
    pub fn history(&self) -> &History {
        &self.history
    }
}

impl Automaton<StorageMsg> for Server {
    fn state_digest(&self) -> u64 {
        rqs_sim::fnv1a(format!("{:?}", self.history).as_bytes())
    }

    fn on_message(&mut self, from: NodeId, msg: StorageMsg, ctx: &mut Context<StorageMsg>) {
        match msg {
            StorageMsg::Wr { ts, val, sets, rnd } => {
                let pair = TsVal::new(ts, val);
                self.history.apply_write(&pair, &sets, rnd);
                ctx.send(from, StorageMsg::WrAck { ts, rnd });
            }
            StorageMsg::Rd { read_no, rnd } => {
                ctx.send(
                    from,
                    StorageMsg::RdAck {
                        read_no,
                        rnd,
                        history: self.history.clone(),
                    },
                );
            }
            // Servers never receive acks; ignore (Byzantine clients could
            // send them).
            StorageMsg::WrAck { .. } | StorageMsg::RdAck { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use rqs_sim::Time;
    use std::collections::BTreeSet;

    fn ctx() -> Context<StorageMsg> {
        Context::new(NodeId(0), Time::ZERO, 0)
    }

    #[test]
    fn write_then_ack() {
        let mut s = Server::new();
        let mut c = ctx();
        s.on_message(
            NodeId(9),
            StorageMsg::Wr {
                ts: 1,
                val: Value::from(5u64),
                sets: BTreeSet::new(),
                rnd: 1,
            },
            &mut c,
        );
        assert!(s.history().stores(&TsVal::new(1, Value::from(5u64)), 1));
        assert_eq!(c.sent().len(), 1);
        assert_eq!(c.sent()[0].0, NodeId(9));
        assert_eq!(c.sent()[0].1, StorageMsg::WrAck { ts: 1, rnd: 1 });
    }

    #[test]
    fn read_returns_full_history() {
        let mut s = Server::new();
        let mut c = ctx();
        s.on_message(
            NodeId(9),
            StorageMsg::Wr {
                ts: 2,
                val: Value::from(7u64),
                sets: BTreeSet::new(),
                rnd: 2,
            },
            &mut c,
        );
        let mut c2 = ctx();
        s.on_message(NodeId(8), StorageMsg::Rd { read_no: 4, rnd: 1 }, &mut c2);
        match &c2.sent()[0].1 {
            StorageMsg::RdAck {
                read_no,
                rnd,
                history,
            } => {
                assert_eq!((*read_no, *rnd), (4, 1));
                assert!(history.stores(&TsVal::new(2, Value::from(7u64)), 2));
            }
            other => panic!("expected RdAck, got {other:?}"),
        }
    }

    #[test]
    fn acks_ignored() {
        let mut s = Server::new();
        let mut c = ctx();
        s.on_message(NodeId(9), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        assert!(c.sent().is_empty());
        assert!(s.history().is_empty());
    }
}
