//! The benign storage server automaton (Fig. 6).

use crate::history::History;
use crate::messages::StorageMsg;
use crate::value::TsVal;
use crate::wal::{self, StorageDelta};
use rqs_core::QuorumId;
use rqs_sim::{Automaton, Context, NodeId};
use rqs_store::{Recovered, StoreHandle};
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A benign storage server.
///
/// Servers are passive: they store writes into their [`History`] and
/// answer reads with the entire history, replying to each client message
/// before processing any other (the round-based restriction of §3.1 —
/// guaranteed here because a step handles exactly one message).
///
/// With a [`StoreHandle`] attached, every effective write is logged as a
/// [`StorageDelta`] *before* the `wr_ack` leaves — so an acknowledged
/// write survives a [`CrashMode::Amnesia`](rqs_sim::CrashMode) restart,
/// which rebuilds the history through [`Automaton::restore_state`].
/// Without a store (the default) the server is purely volatile.
#[derive(Clone, Debug, Default)]
pub struct Server {
    history: History,
    /// Shared snapshot handed to `rd_ack`s, built lazily on the first
    /// read after a state change: successive reads of a quiescent object
    /// clone an `Arc` instead of the whole (unbounded, §5) history.
    reply_cache: Option<Arc<History>>,
    store: Option<StoreHandle>,
    /// Object tag on logged records (0 for single-register deployments).
    obj: u64,
    /// Planted bug (checker self-tests): acknowledge writes without
    /// logging them, so amnesia loses acknowledged data. Always `false`
    /// outside the `mutants` feature.
    #[cfg(feature = "mutants")]
    wal_disabled: bool,
}

impl Server {
    /// A fresh volatile server with the empty history.
    pub fn new() -> Self {
        Server::default()
    }

    /// A durable server logging deltas to `store` under object tag 0.
    pub fn with_store(store: StoreHandle) -> Self {
        Server::with_tagged_store(store, 0)
    }

    /// A durable server logging deltas under an explicit object tag —
    /// how a multi-object KV server shares one store across objects.
    pub fn with_tagged_store(store: StoreHandle, obj: u64) -> Self {
        Server {
            store: Some(store),
            obj,
            ..Server::default()
        }
    }

    /// Mutant: a server that acks writes without write-ahead logging
    /// them. Amnesia crashes then lose acknowledged writes — the exact
    /// bug the rqs-check amnesia branching must find. For checker
    /// self-tests only.
    #[cfg(feature = "mutants")]
    pub fn new_mutant_no_wal(store: StoreHandle) -> Self {
        Server {
            wal_disabled: true,
            ..Server::with_store(store)
        }
    }

    /// Read access to the stored history (for harness assertions).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&StoreHandle> {
        self.store.as_ref()
    }

    /// Rebuilds this server's history from recovered store contents
    /// (snapshot + deltas under this server's object tag). Returns the
    /// number of deltas replayed. Public so a multi-object server can
    /// load its shared store once and rebuild every object from it.
    pub fn restore_from(&mut self, rec: &Recovered) -> usize {
        let (history, replayed) = wal::restore_history(rec, self.obj);
        self.history = history;
        self.reply_cache = None;
        replayed
    }

    /// Replaces the in-memory history with one rebuilt elsewhere: a
    /// multi-object server demultiplexes its shared store in a single
    /// pass ([`wal::restore_histories`]) and hands each object its
    /// history, instead of paying a full log rescan per object through
    /// [`Server::restore_from`].
    pub fn install_history(&mut self, history: History) {
        self.history = history;
        self.reply_cache = None;
    }

    /// Write-ahead step: log the delta for an effective write before
    /// the ack is sent.
    fn log_delta(&self, pair: &TsVal, sets: &BTreeSet<QuorumId>, rnd: usize) {
        #[cfg(feature = "mutants")]
        if self.wal_disabled {
            return;
        }
        if let Some(store) = &self.store {
            let delta = StorageDelta {
                obj: self.obj,
                ts: pair.ts,
                val: pair.val.clone(),
                sets: sets.clone(),
                rnd,
            };
            store.append(&delta.encode());
        }
    }
}

impl Automaton<StorageMsg> for Server {
    fn state_digest(&self) -> u64 {
        rqs_sim::fnv1a(format!("{:?}", self.history).as_bytes())
    }

    fn on_message(&mut self, from: NodeId, msg: StorageMsg, ctx: &mut Context<StorageMsg>) {
        match msg {
            StorageMsg::Wr { ts, val, sets, rnd } => {
                let pair = TsVal::new(ts, val);
                let changed = self.history.apply_write(&pair, &sets, rnd);
                // Write-ahead: the delta must be durable before the ack
                // leaves, or an amnesia crash forgets an acked write.
                if changed {
                    self.log_delta(&pair, &sets, rnd);
                    self.reply_cache = None;
                }
                ctx.send(from, StorageMsg::WrAck { ts, rnd });
            }
            StorageMsg::Rd { read_no, rnd } => {
                if self.reply_cache.is_none() {
                    self.reply_cache = Some(Arc::new(self.history.clone()));
                }
                let history = self.reply_cache.clone().expect("cache just filled");
                ctx.send(
                    from,
                    StorageMsg::RdAck {
                        read_no,
                        rnd,
                        history,
                    },
                );
            }
            // Servers never receive acks; ignore (Byzantine clients could
            // send them).
            StorageMsg::WrAck { .. } | StorageMsg::RdAck { .. } => {}
        }
    }

    fn save_state(&mut self) {
        if let Some(store) = &self.store {
            store.install_snapshot(&wal::encode_histories([(self.obj, &self.history)]));
        }
    }

    fn restore_state(&mut self) -> usize {
        self.history = History::new();
        self.reply_cache = None;
        let Some(store) = self.store.clone() else {
            return 0;
        };
        // The store models the crash itself (dropping any unsynced
        // tail) before the recovering server reads it back.
        store.crash();
        let rec = store.load();
        self.restore_from(&rec)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use rqs_sim::Time;
    use std::collections::BTreeSet;

    fn ctx() -> Context<StorageMsg> {
        Context::new(NodeId(0), Time::ZERO, 0)
    }

    #[test]
    fn write_then_ack() {
        let mut s = Server::new();
        let mut c = ctx();
        s.on_message(
            NodeId(9),
            StorageMsg::Wr {
                ts: 1,
                val: Value::from(5u64),
                sets: BTreeSet::new(),
                rnd: 1,
            },
            &mut c,
        );
        assert!(s.history().stores(&TsVal::new(1, Value::from(5u64)), 1));
        assert_eq!(c.sent().len(), 1);
        assert_eq!(c.sent()[0].0, NodeId(9));
        assert_eq!(c.sent()[0].1, StorageMsg::WrAck { ts: 1, rnd: 1 });
    }

    #[test]
    fn read_returns_full_history() {
        let mut s = Server::new();
        let mut c = ctx();
        s.on_message(
            NodeId(9),
            StorageMsg::Wr {
                ts: 2,
                val: Value::from(7u64),
                sets: BTreeSet::new(),
                rnd: 2,
            },
            &mut c,
        );
        let mut c2 = ctx();
        s.on_message(NodeId(8), StorageMsg::Rd { read_no: 4, rnd: 1 }, &mut c2);
        match &c2.sent()[0].1 {
            StorageMsg::RdAck {
                read_no,
                rnd,
                history,
            } => {
                assert_eq!((*read_no, *rnd), (4, 1));
                assert!(history.stores(&TsVal::new(2, Value::from(7u64)), 2));
            }
            other => panic!("expected RdAck, got {other:?}"),
        }
    }

    #[test]
    fn acks_ignored() {
        let mut s = Server::new();
        let mut c = ctx();
        s.on_message(NodeId(9), StorageMsg::WrAck { ts: 1, rnd: 1 }, &mut c);
        assert!(c.sent().is_empty());
        assert!(s.history().is_empty());
    }

    fn write(s: &mut Server, ts: u64, v: u64, rnd: usize) {
        let mut c = ctx();
        s.on_message(
            NodeId(9),
            StorageMsg::Wr {
                ts,
                val: Value::from(v),
                sets: BTreeSet::from([rqs_core::QuorumId(1)]),
                rnd,
            },
            &mut c,
        );
        assert!(matches!(c.sent()[0].1, StorageMsg::WrAck { .. }));
    }

    fn read_snapshot(s: &mut Server, read_no: u64) -> Arc<History> {
        let mut c = ctx();
        s.on_message(NodeId(8), StorageMsg::Rd { read_no, rnd: 1 }, &mut c);
        match &c.sent()[0].1 {
            StorageMsg::RdAck { history, .. } => history.clone(),
            other => panic!("expected RdAck, got {other:?}"),
        }
    }

    #[test]
    fn quiescent_reads_share_one_snapshot() {
        let mut s = Server::new();
        write(&mut s, 1, 10, 1);
        let a = read_snapshot(&mut s, 1);
        let b = read_snapshot(&mut s, 2);
        assert!(
            Arc::ptr_eq(&a, &b),
            "reads of a quiescent object must clone the cached Arc"
        );
    }

    #[test]
    fn writes_invalidate_the_reply_snapshot() {
        let mut s = Server::new();
        write(&mut s, 1, 10, 1);
        let before = read_snapshot(&mut s, 1);
        write(&mut s, 2, 20, 1);
        let after = read_snapshot(&mut s, 2);
        assert!(!Arc::ptr_eq(&before, &after));
        assert!(after.stores(&TsVal::new(2, Value::from(20u64)), 1));
        // A write that changes nothing must not rebuild the snapshot…
        write(&mut s, 2, 20, 1);
        let again = read_snapshot(&mut s, 3);
        assert!(Arc::ptr_eq(&after, &again), "no-op write kept the cache");
        // …and restores always do.
        s.restore_state();
        let restored = read_snapshot(&mut s, 4);
        assert!(!Arc::ptr_eq(&after, &restored));
        assert!(restored.is_empty());
    }

    #[test]
    fn amnesia_restore_replays_acked_writes() {
        let store = StoreHandle::mem();
        let mut s = Server::with_store(store.clone());
        write(&mut s, 1, 10, 1);
        write(&mut s, 2, 20, 2);
        write(&mut s, 2, 20, 2); // no-op: must not log a second delta
        let before = s.history().clone();

        // Amnesia crash: fresh automaton, same store.
        let mut recovered = Server::with_store(store.clone());
        let replayed = recovered.restore_state();
        assert_eq!(replayed, 2, "one delta per effective write");
        assert_eq!(recovered.history(), &before);
        assert_eq!(store.stats().crashes, 1);
    }

    #[test]
    fn snapshot_compacts_and_restores() {
        let store = StoreHandle::mem();
        let mut s = Server::with_store(store.clone());
        write(&mut s, 1, 10, 1);
        s.save_state();
        write(&mut s, 2, 20, 1);
        let before = s.history().clone();

        let replayed = s.restore_state();
        assert_eq!(replayed, 1, "only the post-snapshot delta replays");
        assert_eq!(s.history(), &before);
        assert_eq!(store.stats().snapshots, 1);
    }

    #[test]
    fn volatile_server_restores_to_empty() {
        let mut s = Server::new();
        write(&mut s, 1, 10, 1);
        assert_eq!(s.restore_state(), 0);
        assert!(s.history().is_empty());
    }

    #[cfg(feature = "mutants")]
    #[test]
    fn no_wal_mutant_forgets_acked_writes() {
        let store = StoreHandle::mem();
        let mut s = Server::new_mutant_no_wal(store.clone());
        write(&mut s, 1, 10, 1);
        assert!(!s.history().is_empty(), "ack implies the write applied");
        assert_eq!(s.restore_state(), 0, "nothing was logged");
        assert!(s.history().is_empty(), "the acked write is gone");
    }
}
