//! The per-server history of the shared variable.
//!
//! Each benign server stores, for every timestamp and every round slot
//! `rnd ∈ {1, 2, 3}`, the pair written in that slot plus the set of
//! class-2 quorum ids attached to it (`history_i[ts, rnd] = ⟨pair, sets⟩`,
//! Fig. 6). The paper deliberately keeps the whole history (§5 explains
//! why bounding it requires orthogonal techniques); we reproduce that
//! choice.

use crate::value::{Timestamp, TsVal};
use core::fmt;
use rqs_core::QuorumId;
use std::collections::{BTreeMap, BTreeSet};

/// Number of write-round slots per timestamp.
pub const SLOTS: usize = 3;

/// One history slot: a stored pair plus attached class-2 quorum ids.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Slot {
    /// The stored pair; `⟨0, ⊥⟩` when nothing was stored.
    pub pair: TsVal,
    /// Class-2 quorum ids attached by writers/readers (`sets` in Fig. 6).
    pub sets: BTreeSet<QuorumId>,
}

impl Slot {
    /// `true` iff nothing has been stored in this slot.
    pub fn is_empty(&self) -> bool {
        self.pair.is_initial() && self.sets.is_empty()
    }
}

/// The full history of one server (or a reader's copy of it).
///
/// Indexed by timestamp; slots are 1-based in the paper (`rnd ∈ {1,2,3}`)
/// and 1-based here too for fidelity — [`History::slot`] panics on 0.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct History {
    entries: BTreeMap<Timestamp, [Slot; SLOTS]>,
}

impl History {
    /// An empty history (`history_i[*,*] = ⟨⟨0,⊥⟩, ∅⟩`).
    pub fn new() -> Self {
        History::default()
    }

    /// The slot for `(ts, rnd)`; empty slots read as the initial value.
    ///
    /// # Panics
    ///
    /// Panics if `rnd ∉ {1, 2, 3}`.
    pub fn slot(&self, ts: Timestamp, rnd: usize) -> Slot {
        assert!((1..=SLOTS).contains(&rnd), "round slot must be 1..=3");
        self.entries
            .get(&ts)
            .map(|slots| slots[rnd - 1].clone())
            .unwrap_or_default()
    }

    /// The stored pair for `(ts, rnd)` (initial pair when empty).
    pub fn pair(&self, ts: Timestamp, rnd: usize) -> TsVal {
        self.slot(ts, rnd).pair
    }

    /// `true` iff slot `(ts, rnd)` stores exactly `pair`.
    pub fn stores(&self, pair: &TsVal, rnd: usize) -> bool {
        assert!((1..=SLOTS).contains(&rnd), "round slot must be 1..=3");
        self.entries
            .get(&pair.ts)
            .is_some_and(|slots| slots[rnd - 1].pair == *pair)
    }

    /// `true` iff slot `(ts, rnd)` stores `pair` with `q2` attached.
    pub fn stores_with_quorum(&self, pair: &TsVal, rnd: usize, q2: QuorumId) -> bool {
        assert!((1..=SLOTS).contains(&rnd), "round slot must be 1..=3");
        self.entries.get(&pair.ts).is_some_and(|slots| {
            let slot = &slots[rnd - 1];
            slot.pair == *pair && slot.sets.contains(&q2)
        })
    }

    /// Applies a `wr⟨ts, v, QC'2, rnd⟩` message per the server pseudocode
    /// (Fig. 6, lines 3–6): for every `m ≤ rnd`, store the pair if the slot
    /// is untouched or already holds the same pair; attach the quorum ids
    /// at slot `rnd`.
    ///
    /// Returns `true` if any slot changed.
    ///
    /// # Panics
    ///
    /// Panics if `rnd ∉ {1, 2, 3}`.
    pub fn apply_write(&mut self, pair: &TsVal, sets: &BTreeSet<QuorumId>, rnd: usize) -> bool {
        assert!((1..=SLOTS).contains(&rnd), "round slot must be 1..=3");
        let slots = self.entries.entry(pair.ts).or_default();
        let mut changed = false;
        for m in 1..=rnd {
            let slot = &mut slots[m - 1];
            // Fig. 6 line 4: overwrite only the untouched slot or the same
            // pair (a Byzantine client cannot make a benign server replace
            // a stored pair for a timestamp).
            if (slot.pair.is_initial() && slot.sets.is_empty()) || slot.pair == *pair {
                if slot.pair != *pair {
                    slot.pair = pair.clone();
                    changed = true;
                }
                if m == rnd && !sets.is_empty() {
                    let before = slot.sets.len();
                    slot.sets.extend(sets.iter().copied());
                    changed |= slot.sets.len() != before;
                }
            }
        }
        changed
    }

    /// All pairs appearing in slots 1 or 2 anywhere in the history — the
    /// candidate domain of the reader's `read(c, i)` predicate.
    pub fn reported_pairs(&self) -> Vec<TsVal> {
        let mut out: Vec<TsVal> = Vec::new();
        for slots in self.entries.values() {
            // Entries iterate in ascending timestamp order, so a
            // duplicate can only be among the pairs pushed for *this*
            // timestamp — no need to rescan the whole output.
            let start = out.len();
            for slot in &slots[..2] {
                if !slot.pair.is_initial() && !out[start..].contains(&slot.pair) {
                    out.push(slot.pair.clone());
                }
            }
        }
        out
    }

    /// Highest timestamp stored in slots 1 or 2 (0 when empty).
    pub fn highest_ts(&self) -> Timestamp {
        self.entries
            .iter()
            .rev()
            .find(|(_, slots)| slots[..2].iter().any(|s| !s.pair.is_initial()))
            .map(|(&ts, _)| ts)
            .unwrap_or(0)
    }

    /// Iterates `(timestamp, slots)` in ascending timestamp order — the
    /// snapshot-encoding view used by the durability layer.
    pub fn iter(&self) -> impl Iterator<Item = (&Timestamp, &[Slot; SLOTS])> {
        self.entries.iter()
    }

    /// Installs the exact slot array for `ts`, replacing whatever was
    /// there. Unlike [`History::apply_write`] this does not prefix-fill
    /// or merge: it is the faithful-reconstruction primitive snapshot
    /// restore uses, where the slots were captured from a live history.
    pub fn insert_slots(&mut self, ts: Timestamp, slots: [Slot; SLOTS]) {
        self.entries.insert(ts, slots);
    }

    /// Number of timestamps with any stored slot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing has ever been stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "history[")?;
        for (i, (ts, slots)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "ts{ts}:")?;
            for (m, slot) in slots.iter().enumerate() {
                if !slot.is_empty() {
                    write!(f, " r{}={}", m + 1, slot.pair)?;
                    if !slot.sets.is_empty() {
                        write!(f, "+{}ids", slot.sets.len())?;
                    }
                }
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn pair(ts: Timestamp, v: u64) -> TsVal {
        TsVal::new(ts, Value::from(v))
    }

    #[test]
    fn empty_history_reads_initial() {
        let h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.pair(5, 1), TsVal::initial());
        assert_eq!(h.highest_ts(), 0);
        assert!(h.reported_pairs().is_empty());
    }

    #[test]
    fn apply_write_fills_prefix_slots() {
        let mut h = History::new();
        let c = pair(3, 42);
        assert!(h.apply_write(&c, &BTreeSet::new(), 2));
        // Rounds 1 and 2 both store the pair; round 3 untouched.
        assert!(h.stores(&c, 1));
        assert!(h.stores(&c, 2));
        assert!(!h.stores(&c, 3));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn sets_attach_only_at_message_round() {
        let mut h = History::new();
        let c = pair(1, 9);
        let mut sets = BTreeSet::new();
        sets.insert(QuorumId(4));
        h.apply_write(&c, &sets, 2);
        assert!(h.slot(1, 1).sets.is_empty());
        assert!(h.stores_with_quorum(&c, 2, QuorumId(4)));
        assert!(!h.stores_with_quorum(&c, 2, QuorumId(5)));
    }

    #[test]
    fn conflicting_pair_does_not_overwrite() {
        let mut h = History::new();
        let c = pair(1, 7);
        let forged = pair(1, 8);
        h.apply_write(&c, &BTreeSet::new(), 1);
        let changed = h.apply_write(&forged, &BTreeSet::new(), 1);
        assert!(!changed);
        assert!(h.stores(&c, 1));
        assert!(!h.stores(&forged, 1));
    }

    #[test]
    fn same_pair_accumulates_sets() {
        let mut h = History::new();
        let c = pair(2, 5);
        let mut s1 = BTreeSet::new();
        s1.insert(QuorumId(0));
        let mut s2 = BTreeSet::new();
        s2.insert(QuorumId(1));
        h.apply_write(&c, &s1, 1);
        h.apply_write(&c, &s2, 1);
        let slot = h.slot(2, 1);
        assert_eq!(slot.sets.len(), 2);
        // re-applying the same set is a no-op
        assert!(!h.apply_write(&c, &s2, 1));
    }

    #[test]
    fn reported_pairs_and_highest_ts() {
        let mut h = History::new();
        h.apply_write(&pair(1, 10), &BTreeSet::new(), 1);
        h.apply_write(&pair(4, 40), &BTreeSet::new(), 2);
        let pairs = h.reported_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(h.highest_ts(), 4);
    }

    #[test]
    fn slot3_only_write_not_reported() {
        // reported_pairs/highest_ts scan slots 1 and 2 only (the reader's
        // read(c,i) predicate); but apply_write at rnd=3 fills 1 and 2 too,
        // so craft a slot-3-only state via a forged server: not possible
        // through apply_write — verify the prefix-fill makes it visible.
        let mut h = History::new();
        h.apply_write(&pair(2, 20), &BTreeSet::new(), 3);
        assert!(h.stores(&pair(2, 20), 3));
        assert_eq!(h.highest_ts(), 2);
    }

    #[test]
    #[should_panic(expected = "round slot")]
    fn slot_zero_panics() {
        let h = History::new();
        let _ = h.slot(1, 0);
    }

    #[test]
    fn display() {
        let mut h = History::new();
        h.apply_write(&pair(1, 10), &BTreeSet::new(), 1);
        let s = h.to_string();
        assert!(s.contains("ts1"), "{s}");
    }
}
