//! Regular (non-atomic) storage — the paper's §6 extension.
//!
//! The concluding remarks observe that for *regular* semantics [33]
//! (a read returns the last completed write's value or any concurrent
//! write's value, but read inversion is allowed), Properties 1 and 3a
//! suffice and the write-back part of the reader is unnecessary:
//! [2, 21] show fast non-atomic reads need weaker conditions.
//!
//! [`RegularReader`] is the Fig. 7 reader with the entire write-back part
//! (lines 40–49) removed: it runs only the regular part (lines 20–35) and
//! returns `csel` immediately. Best-case reads are **always one round**,
//! regardless of quorum class — the price is atomicity: the
//! `read_inversion_is_possible` test exhibits two sequential reads going
//! backwards, which [`check_regularity`] accepts and the atomic checker
//! rejects.

use crate::history::History;
use crate::messages::StorageMsg;
use crate::predicates::ReadView;
use crate::value::TsVal;
use crate::writer::CLIENT_TIMEOUT;
use core::fmt;
use rqs_core::{ProcessId, ProcessSet, QuorumId, Rqs};
use rqs_sim::{Automaton, Context, NodeId, Time, TimerToken};
use std::any::Any;
use std::sync::Arc;

/// Record of one completed regular read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegularReadOutcome {
    /// Reader-local operation id.
    pub read_no: u64,
    /// The selected pair.
    pub returned: TsVal,
    /// Rounds used (1 in every synchronous uncontended case).
    pub rounds: usize,
    /// Invocation time.
    pub invoked_at: Time,
    /// Response time.
    pub completed_at: Time,
}

#[derive(Debug)]
struct InProgress {
    invoked_at: Time,
    read_rnd: usize,
    acks_this_round: ProcessSet,
    responded_all: ProcessSet,
    histories: Vec<Arc<History>>,
    timer: Option<TimerToken>,
    timer_expired: bool,
    qc2_prime: Vec<QuorumId>,
    highest_ts: u64,
}

/// A reader with regular (not atomic) semantics: phase 1 of Fig. 7 only.
#[derive(Debug)]
pub struct RegularReader {
    rqs: Arc<Rqs>,
    servers: Vec<NodeId>,
    read_no: u64,
    current: Option<InProgress>,
    outcomes: Vec<RegularReadOutcome>,
}

impl RegularReader {
    /// Creates a regular reader over `rqs` with universe member `i`
    /// mapped to node `servers[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `servers.len()` differs from the RQS universe size.
    pub fn new(rqs: Arc<Rqs>, servers: Vec<NodeId>) -> Self {
        assert_eq!(servers.len(), rqs.universe_size());
        RegularReader {
            rqs,
            servers,
            read_no: 0,
            current: None,
            outcomes: Vec::new(),
        }
    }

    /// Completed reads.
    pub fn outcomes(&self) -> &[RegularReadOutcome] {
        &self.outcomes
    }

    /// `true` iff no read is in progress.
    pub fn is_idle(&self) -> bool {
        self.current.is_none()
    }

    /// Invokes `read()`.
    ///
    /// # Panics
    ///
    /// Panics if a read is in progress.
    pub fn start_read(&mut self, ctx: &mut Context<StorageMsg>) {
        assert!(self.is_idle(), "read already in progress");
        self.read_no += 1;
        let n = self.rqs.universe_size();
        // One shared empty snapshot: every slot is replaced by the
        // server's own `Arc` as its ack arrives.
        let empty = Arc::new(History::new());
        let mut ip = InProgress {
            invoked_at: ctx.now(),
            read_rnd: 0,
            acks_this_round: ProcessSet::empty(),
            responded_all: ProcessSet::empty(),
            histories: vec![empty; n],
            timer: None,
            timer_expired: false,
            qc2_prime: Vec::new(),
            highest_ts: 0,
        };
        Self::enter_round(&mut ip, self.read_no, &self.servers, ctx);
        self.current = Some(ip);
    }

    fn enter_round(
        ip: &mut InProgress,
        read_no: u64,
        servers: &[NodeId],
        ctx: &mut Context<StorageMsg>,
    ) {
        ip.read_rnd += 1;
        ip.acks_this_round = ProcessSet::empty();
        if ip.read_rnd == 1 {
            ip.timer = Some(ctx.set_timer(CLIENT_TIMEOUT));
            ip.timer_expired = false;
        } else {
            ip.timer = None;
            ip.timer_expired = true;
        }
        ctx.broadcast(
            servers.iter().copied(),
            StorageMsg::Rd {
                read_no,
                rnd: ip.read_rnd,
            },
        );
    }

    fn try_finish(&mut self, ctx: &mut Context<StorageMsg>) {
        let Some(ip) = self.current.as_mut() else {
            return;
        };
        if !ip.timer_expired || !self.rqs.any_quorum_within(ip.acks_this_round) {
            return;
        }
        if ip.read_rnd == 1 {
            ip.highest_ts = ip
                .histories
                .iter()
                .map(|h| h.highest_ts())
                .max()
                .unwrap_or(0);
            ip.qc2_prime = self.rqs.class2_within(ip.acks_this_round);
        }
        let responded = self.rqs.quorums_within(ip.responded_all);
        let view = ReadView {
            rqs: &self.rqs,
            histories: &ip.histories,
            responded: &responded,
            highest_ts: ip.highest_ts,
            qc2_prime: &ip.qc2_prime,
        };
        match view.select() {
            // Regular semantics: return immediately, no write-back.
            Some(csel) => {
                let ip = self.current.take().expect("in progress");
                if let Some(t) = ip.timer {
                    ctx.cancel_timer(t);
                }
                self.outcomes.push(RegularReadOutcome {
                    read_no: self.read_no,
                    returned: csel,
                    rounds: ip.read_rnd,
                    invoked_at: ip.invoked_at,
                    completed_at: ctx.now(),
                });
            }
            None => {
                Self::enter_round(ip, self.read_no, &self.servers.clone(), ctx);
            }
        }
    }

    fn server_index(&self, node: NodeId) -> Option<ProcessId> {
        self.servers.iter().position(|&s| s == node).map(ProcessId)
    }
}

impl Automaton<StorageMsg> for RegularReader {
    fn on_message(&mut self, from: NodeId, msg: StorageMsg, ctx: &mut Context<StorageMsg>) {
        let Some(sender) = self.server_index(from) else {
            return;
        };
        let StorageMsg::RdAck {
            read_no,
            rnd,
            history,
        } = msg
        else {
            return;
        };
        if read_no != self.read_no {
            return;
        }
        let Some(ip) = self.current.as_mut() else {
            return;
        };
        ip.histories[sender.index()] = history;
        ip.responded_all.insert(sender);
        if rnd == ip.read_rnd {
            ip.acks_this_round.insert(sender);
        }
        self.try_finish(ctx);
    }

    fn on_timer(&mut self, timer: TimerToken, ctx: &mut Context<StorageMsg>) {
        if let Some(ip) = self.current.as_mut() {
            if ip.timer == Some(timer) {
                ip.timer_expired = true;
                self.try_finish(ctx);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A regularity violation.
#[derive(Clone, Debug)]
pub struct RegularityViolation {
    /// Explanation with the offending operations.
    pub detail: String,
}

impl fmt::Display for RegularityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regularity violated: {}", self.detail)
    }
}

impl std::error::Error for RegularityViolation {}

/// Checks SWMR **regularity**: every read returns the pair of a write
/// invoked before the read's response (or `⟨0,⊥⟩`), and at least as new
/// as the last write *completed before the read's invocation*. Read
/// inversion between two reads is allowed (the difference from
/// atomicity).
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_regularity(ops: &[crate::atomicity::OpRecord]) -> Result<(), RegularityViolation> {
    use crate::atomicity::OpKind;
    let writes: Vec<_> = ops.iter().filter(|o| o.kind == OpKind::Write).collect();
    for read in ops.iter().filter(|o| o.kind == OpKind::Read) {
        // Lower bound: last write completed before the read started.
        let floor = writes
            .iter()
            .filter(|w| w.completed_at < read.invoked_at)
            .map(|w| w.pair.ts)
            .max()
            .unwrap_or(0);
        if read.pair.ts < floor {
            return Err(RegularityViolation {
                detail: format!(
                    "read returned ts {} but a write with ts {} completed before it started",
                    read.pair.ts, floor
                ),
            });
        }
        if read.pair.is_initial() {
            continue;
        }
        // Upper bound: the returned pair must come from a real write
        // invoked before the read responded.
        match writes.iter().find(|w| w.pair.ts == read.pair.ts) {
            None => {
                return Err(RegularityViolation {
                    detail: format!("read returned never-written ts {}", read.pair.ts),
                });
            }
            Some(w) => {
                if w.pair.val != read.pair.val {
                    return Err(RegularityViolation {
                        detail: format!(
                            "read returned {} but the write with ts {} wrote {}",
                            read.pair, w.pair.ts, w.pair
                        ),
                    });
                }
                if w.invoked_at > read.completed_at {
                    return Err(RegularityViolation {
                        detail: format!("read returned a future write's pair {}", read.pair),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomicity::{OpKind, OpRecord};
    use crate::server::Server;
    use crate::value::Value;
    use crate::writer::Writer;
    use rqs_core::threshold::ThresholdConfig;
    use rqs_sim::{NetworkScript, World};

    fn build(
        readers: usize,
    ) -> (
        World<StorageMsg>,
        Vec<NodeId>,
        NodeId,
        Vec<NodeId>,
        Arc<Rqs>,
    ) {
        let rqs = Arc::new(
            ThresholdConfig::new(7, 2, 1)
                .with_class1(0)
                .with_class2(1)
                .build()
                .unwrap(),
        );
        let mut world = World::new(NetworkScript::synchronous());
        let servers: Vec<NodeId> = (0..7)
            .map(|_| world.add_node(Box::new(Server::new())))
            .collect();
        let writer = world.add_node(Box::new(Writer::new(rqs.clone(), servers.clone())));
        let rds: Vec<NodeId> = (0..readers)
            .map(|_| world.add_node(Box::new(RegularReader::new(rqs.clone(), servers.clone()))))
            .collect();
        (world, servers, writer, rds, rqs)
    }

    #[test]
    fn regular_read_is_one_round_even_at_class3() {
        let (mut world, servers, writer, readers, _rqs) = build(1);
        world.invoke::<Writer>(writer, |w, ctx| w.start_write(Value::from(5u64), ctx));
        world.run_to_quiescence();
        // Crash down to class 3 (2 crashes).
        let now = world.now();
        world.crash_at(servers[5], now);
        world.crash_at(servers[6], now);
        world.run_before(now + 1);
        world.invoke::<RegularReader>(readers[0], |r, ctx| r.start_read(ctx));
        world.run_to_quiescence();
        let out = &world.node_as::<RegularReader>(readers[0]).outcomes()[0];
        assert_eq!(out.returned.val, Value::from(5u64));
        assert_eq!(out.rounds, 1, "regular reads skip the write-back entirely");
    }

    #[test]
    fn unwritten_register_reads_bottom() {
        let (mut world, _s, _w, readers, _rqs) = build(1);
        world.invoke::<RegularReader>(readers[0], |r, ctx| r.start_read(ctx));
        world.run_to_quiescence();
        let out = &world.node_as::<RegularReader>(readers[0]).outcomes()[0];
        assert!(out.returned.is_initial());
    }

    #[test]
    fn regularity_checker_accepts_inversion() {
        // Two reads concurrent with a write return (new, old) — atomicity
        // would reject, regularity accepts.
        let w = |ts, inv, resp| OpRecord {
            kind: OpKind::Write,
            client: 0,
            pair: TsVal::new(ts, Value::from(ts)),
            invoked_at: Time(inv),
            completed_at: Time(resp),
        };
        let r = |ts, inv, resp| OpRecord {
            kind: OpKind::Read,
            client: 1,
            pair: if ts == 0 {
                TsVal::initial()
            } else {
                TsVal::new(ts, Value::from(ts))
            },
            invoked_at: Time(inv),
            completed_at: Time(resp),
        };
        let ops = vec![w(1, 0, 3), w(2, 5, 20), r(2, 6, 8), r(1, 9, 11)];
        assert!(
            crate::atomicity::check_atomicity(&ops).is_err(),
            "atomic: inversion"
        );
        assert!(check_regularity(&ops).is_ok(), "regular: inversion allowed");
    }

    #[test]
    fn regularity_checker_rejects_stale_and_fabricated() {
        let w = |ts: u64, inv, resp| OpRecord {
            kind: OpKind::Write,
            client: 0,
            pair: TsVal::new(ts, Value::from(ts)),
            invoked_at: Time(inv),
            completed_at: Time(resp),
        };
        let r = |ts: u64, inv, resp| OpRecord {
            kind: OpKind::Read,
            client: 1,
            pair: if ts == 0 {
                TsVal::initial()
            } else {
                TsVal::new(ts, Value::from(ts))
            },
            invoked_at: Time(inv),
            completed_at: Time(resp),
        };
        // Stale: write(1) completed before the read started; read → ⊥.
        let stale = vec![w(1, 0, 3), r(0, 5, 7)];
        assert!(check_regularity(&stale).is_err());
        // Fabricated ts.
        let fab = vec![w(1, 0, 3), r(9, 5, 7)];
        assert!(check_regularity(&fab).is_err());
        // Wrong value for a real ts.
        let mut wrongv = vec![w(1, 0, 3), r(1, 5, 7)];
        wrongv[1].pair.val = Value::from(999u64);
        assert!(check_regularity(&wrongv).is_err());
        // Future write.
        let future = vec![r(1, 0, 2), w(1, 5, 8)];
        assert!(check_regularity(&future).is_err());
    }

    #[test]
    fn sequential_regular_history_valid() {
        let (mut world, _s, writer, readers, _rqs) = build(2);
        let mut ops: Vec<OpRecord> = Vec::new();
        for v in 1..=3u64 {
            world.invoke::<Writer>(writer, move |w, ctx| w.start_write(Value::from(v), ctx));
            world.run_to_quiescence();
            let out = world
                .node_as::<Writer>(writer)
                .outcomes()
                .last()
                .unwrap()
                .clone();
            ops.push(OpRecord {
                kind: OpKind::Write,
                client: 0,
                pair: TsVal::new(out.ts, out.val),
                invoked_at: out.invoked_at,
                completed_at: out.completed_at,
            });
            for (ci, &rd) in readers.iter().enumerate() {
                world.invoke::<RegularReader>(rd, |r, ctx| r.start_read(ctx));
                world.run_to_quiescence();
                let out = world
                    .node_as::<RegularReader>(rd)
                    .outcomes()
                    .last()
                    .unwrap()
                    .clone();
                assert_eq!(out.returned.val, Value::from(v));
                ops.push(OpRecord {
                    kind: OpKind::Read,
                    client: 1 + ci,
                    pair: out.returned,
                    invoked_at: out.invoked_at,
                    completed_at: out.completed_at,
                });
            }
        }
        check_regularity(&ops).unwrap();
    }

    #[test]
    #[should_panic(expected = "read already in progress")]
    fn overlapping_reads_rejected() {
        let (mut world, _s, _w, readers, _rqs) = build(1);
        world.invoke::<RegularReader>(readers[0], |r, ctx| {
            r.start_read(ctx);
            r.start_read(ctx);
        });
    }
}
