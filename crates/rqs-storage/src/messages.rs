//! The wire protocol of the storage algorithm (Figs. 5–7).

use crate::history::History;
use crate::value::{Timestamp, Value};
use core::fmt;
use rqs_core::QuorumId;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Messages exchanged between storage clients and servers.
///
/// The algorithm is round-based (§3.1): servers only ever send `*Ack`
/// messages, and only in response to a client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageMsg {
    /// `wr⟨ts, v, QC'2, rnd⟩` — write (or write-back) of `⟨ts, v⟩` for
    /// round `rnd`, carrying class-2 quorum ids.
    Wr {
        /// Timestamp the writer attached to the value.
        ts: Timestamp,
        /// The value.
        val: Value,
        /// Class-2 quorum ids (`QC'2` — empty in rounds 1 and 3 of a
        /// write; the reader's `BCD(c,2,1)` set in a round-1 write-back).
        sets: BTreeSet<QuorumId>,
        /// Round slot `∈ {1, 2, 3}`.
        rnd: usize,
    },
    /// `wr_ack⟨ts, rnd⟩`.
    WrAck {
        /// Timestamp being acknowledged.
        ts: Timestamp,
        /// Round being acknowledged.
        rnd: usize,
    },
    /// `rd⟨read_no, read_rnd⟩`.
    Rd {
        /// Unique id of the read operation at this reader.
        read_no: u64,
        /// Read round number.
        rnd: usize,
    },
    /// `rd_ack⟨read_no, read_rnd, history_i⟩` — the server's entire history.
    RdAck {
        /// Echoed read id.
        read_no: u64,
        /// Echoed round.
        rnd: usize,
        /// The server's full history of the shared variable, as a shared
        /// snapshot: the paper's histories are unbounded (§5) and each
        /// read round makes every server re-report its whole history, so
        /// replies share one immutable copy (refreshed on write) instead
        /// of deep-cloning the map per ack.
        history: Arc<History>,
    },
}

impl fmt::Display for StorageMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageMsg::Wr { ts, val, sets, rnd } => {
                write!(f, "wr⟨{ts},{val},|ids|={},{rnd}⟩", sets.len())
            }
            StorageMsg::WrAck { ts, rnd } => write!(f, "wr_ack⟨{ts},{rnd}⟩"),
            StorageMsg::Rd { read_no, rnd } => write!(f, "rd⟨{read_no},{rnd}⟩"),
            StorageMsg::RdAck { read_no, rnd, .. } => {
                write!(f, "rd_ack⟨{read_no},{rnd},history⟩")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_compact() {
        let m = StorageMsg::Wr {
            ts: 3,
            val: Value::from(9u64),
            sets: BTreeSet::new(),
            rnd: 1,
        };
        assert_eq!(m.to_string(), "wr⟨3,9,|ids|=0,1⟩");
        let a = StorageMsg::WrAck { ts: 3, rnd: 1 };
        assert_eq!(a.to_string(), "wr_ack⟨3,1⟩");
        let r = StorageMsg::Rd { read_no: 1, rnd: 2 };
        assert_eq!(r.to_string(), "rd⟨1,2⟩");
        let ra = StorageMsg::RdAck {
            read_no: 1,
            rnd: 2,
            history: Arc::new(History::new()),
        };
        assert!(ra.to_string().contains("rd_ack"));
    }
}
