//! Baseline: the classic crash-tolerant SWMR atomic storage of
//! Attiya–Bar-Noy–Dolev (ABD, the paper's reference [4]).
//!
//! Writes take one round (write to a majority); reads take two rounds
//! (collect from a majority, then write the highest pair back to a
//! majority). This is the optimally-resilient baseline whose read latency
//! the RQS algorithm improves on in best-case conditions: the paper's
//! lower bound [11] shows optimally-resilient ABD-style reads *cannot*
//! always be one round, which is exactly the gap refined quorums close.

use crate::value::{Timestamp, TsVal, Value};
use rqs_core::ProcessSet;
use rqs_sim::{Automaton, Context, NodeId, Time};
use std::any::Any;

/// Messages of the ABD protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbdMsg {
    /// Write `⟨ts, v⟩` (by the writer, or a reader's write-back).
    Write {
        /// The pair being stored.
        pair: TsVal,
    },
    /// Ack of a write.
    WriteAck {
        /// Echoed timestamp.
        ts: Timestamp,
    },
    /// Read query.
    Read {
        /// Reader-local operation id.
        read_no: u64,
    },
    /// Read reply with the server's current pair.
    ReadAck {
        /// Echoed operation id.
        read_no: u64,
        /// The server's stored pair.
        pair: TsVal,
    },
}

/// An ABD server: stores the highest-timestamped pair.
#[derive(Clone, Debug, Default)]
pub struct AbdServer {
    pair: TsVal,
}

impl AbdServer {
    /// Fresh server holding `⟨0,⊥⟩`.
    pub fn new() -> Self {
        AbdServer::default()
    }

    /// The stored pair.
    pub fn pair(&self) -> &TsVal {
        &self.pair
    }
}

impl Automaton<AbdMsg> for AbdServer {
    fn on_message(&mut self, from: NodeId, msg: AbdMsg, ctx: &mut Context<AbdMsg>) {
        match msg {
            AbdMsg::Write { pair } => {
                if pair.ts > self.pair.ts {
                    self.pair = pair.clone();
                }
                ctx.send(from, AbdMsg::WriteAck { ts: pair.ts });
            }
            AbdMsg::Read { read_no } => {
                ctx.send(
                    from,
                    AbdMsg::ReadAck {
                        read_no,
                        pair: self.pair.clone(),
                    },
                );
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Outcome of an ABD operation (write or read).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbdOutcome {
    /// The pair written or returned.
    pub pair: TsVal,
    /// Rounds used (1 for writes, 2 for reads).
    pub rounds: usize,
    /// Invocation time.
    pub invoked_at: Time,
    /// Response time.
    pub completed_at: Time,
}

#[derive(Debug)]
enum ClientState {
    Idle,
    Writing {
        pair: TsVal,
        acks: ProcessSet,
        invoked_at: Time,
    },
    ReadCollect {
        read_no: u64,
        acks: ProcessSet,
        best: TsVal,
        invoked_at: Time,
    },
    ReadWriteback {
        best: TsVal,
        acks: ProcessSet,
        invoked_at: Time,
    },
}

/// An ABD client; acts as the writer (via [`AbdClient::start_write`]) or a
/// reader (via [`AbdClient::start_read`]).
#[derive(Debug)]
pub struct AbdClient {
    servers: Vec<NodeId>,
    majority: usize,
    ts: Timestamp,
    read_no: u64,
    state: ClientState,
    outcomes: Vec<AbdOutcome>,
}

impl AbdClient {
    /// Creates a client over the given servers (majority quorums).
    pub fn new(servers: Vec<NodeId>) -> Self {
        let majority = servers.len() / 2 + 1;
        AbdClient {
            servers,
            majority,
            ts: 0,
            read_no: 0,
            state: ClientState::Idle,
            outcomes: Vec::new(),
        }
    }

    /// Completed operations.
    pub fn outcomes(&self) -> &[AbdOutcome] {
        &self.outcomes
    }

    /// `true` iff no operation is in progress.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ClientState::Idle)
    }

    /// Invokes `write(v)` (one round to a majority).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in progress.
    pub fn start_write(&mut self, v: Value, ctx: &mut Context<AbdMsg>) {
        assert!(self.is_idle(), "operation already in progress");
        self.ts += 1;
        let pair = TsVal::new(self.ts, v);
        self.state = ClientState::Writing {
            pair: pair.clone(),
            acks: ProcessSet::empty(),
            invoked_at: ctx.now(),
        };
        ctx.broadcast(self.servers.iter().copied(), AbdMsg::Write { pair });
    }

    /// Invokes `read()` (collect round + write-back round).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in progress.
    pub fn start_read(&mut self, ctx: &mut Context<AbdMsg>) {
        assert!(self.is_idle(), "operation already in progress");
        self.read_no += 1;
        self.state = ClientState::ReadCollect {
            read_no: self.read_no,
            acks: ProcessSet::empty(),
            best: TsVal::initial(),
            invoked_at: ctx.now(),
        };
        ctx.broadcast(
            self.servers.iter().copied(),
            AbdMsg::Read {
                read_no: self.read_no,
            },
        );
    }

    fn server_index(&self, node: NodeId) -> Option<usize> {
        self.servers.iter().position(|&s| s == node)
    }
}

impl Automaton<AbdMsg> for AbdClient {
    fn on_message(&mut self, from: NodeId, msg: AbdMsg, ctx: &mut Context<AbdMsg>) {
        let Some(idx) = self.server_index(from) else {
            return;
        };
        match (&mut self.state, msg) {
            (
                ClientState::Writing {
                    pair,
                    acks,
                    invoked_at,
                },
                AbdMsg::WriteAck { ts },
            ) if ts == pair.ts => {
                acks.insert(rqs_core::ProcessId(idx));
                if acks.len() >= self.majority {
                    let outcome = AbdOutcome {
                        pair: pair.clone(),
                        rounds: 1,
                        invoked_at: *invoked_at,
                        completed_at: ctx.now(),
                    };
                    self.outcomes.push(outcome);
                    self.state = ClientState::Idle;
                }
            }
            (
                ClientState::ReadCollect {
                    read_no,
                    acks,
                    best,
                    invoked_at,
                },
                AbdMsg::ReadAck {
                    read_no: echo,
                    pair,
                },
            ) if echo == *read_no => {
                acks.insert(rqs_core::ProcessId(idx));
                if pair.ts > best.ts {
                    *best = pair;
                }
                if acks.len() >= self.majority {
                    let best = best.clone();
                    let invoked_at = *invoked_at;
                    self.state = ClientState::ReadWriteback {
                        best: best.clone(),
                        acks: ProcessSet::empty(),
                        invoked_at,
                    };
                    ctx.broadcast(self.servers.iter().copied(), AbdMsg::Write { pair: best });
                }
            }
            (
                ClientState::ReadWriteback {
                    best,
                    acks,
                    invoked_at,
                },
                AbdMsg::WriteAck { ts },
            ) if ts == best.ts => {
                acks.insert(rqs_core::ProcessId(idx));
                if acks.len() >= self.majority {
                    let outcome = AbdOutcome {
                        pair: best.clone(),
                        rounds: 2,
                        invoked_at: *invoked_at,
                        completed_at: ctx.now(),
                    };
                    self.outcomes.push(outcome);
                    self.state = ClientState::Idle;
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_sim::{NetworkScript, Time, World};

    fn build(n: usize) -> (World<AbdMsg>, Vec<NodeId>, NodeId, NodeId) {
        let mut world = World::new(NetworkScript::synchronous());
        let servers: Vec<NodeId> = (0..n)
            .map(|_| world.add_node(Box::new(AbdServer::new())))
            .collect();
        let writer = world.add_node(Box::new(AbdClient::new(servers.clone())));
        let reader = world.add_node(Box::new(AbdClient::new(servers.clone())));
        (world, servers, writer, reader)
    }

    #[test]
    fn write_one_round_read_two_rounds() {
        let (mut world, _s, writer, reader) = build(5);
        world.invoke::<AbdClient>(writer, |c, ctx| c.start_write(Value::from(4u64), ctx));
        world.run_to_quiescence();
        let w = &world.node_as::<AbdClient>(writer).outcomes()[0];
        assert_eq!(w.rounds, 1);
        world.invoke::<AbdClient>(reader, |c, ctx| c.start_read(ctx));
        world.run_to_quiescence();
        let r = &world.node_as::<AbdClient>(reader).outcomes()[0];
        assert_eq!(r.rounds, 2, "ABD reads always write back");
        assert_eq!(r.pair.val, Value::from(4u64));
    }

    #[test]
    fn tolerates_minority_crashes() {
        let (mut world, servers, writer, reader) = build(5);
        world.crash_at(servers[0], Time::ZERO);
        world.crash_at(servers[1], Time::ZERO);
        world.invoke::<AbdClient>(writer, |c, ctx| c.start_write(Value::from(9u64), ctx));
        world.run_to_quiescence();
        assert!(world.node_as::<AbdClient>(writer).is_idle());
        world.invoke::<AbdClient>(reader, |c, ctx| c.start_read(ctx));
        world.run_to_quiescence();
        let r = &world.node_as::<AbdClient>(reader).outcomes()[0];
        assert_eq!(r.pair.val, Value::from(9u64));
    }

    #[test]
    fn read_before_write_returns_bottom() {
        let (mut world, _s, _w, reader) = build(3);
        world.invoke::<AbdClient>(reader, |c, ctx| c.start_read(ctx));
        world.run_to_quiescence();
        let r = &world.node_as::<AbdClient>(reader).outcomes()[0];
        assert!(r.pair.is_initial());
    }

    #[test]
    fn server_keeps_highest_timestamp() {
        let mut s = AbdServer::new();
        let mut ctx = Context::new(NodeId(0), Time::ZERO, 0);
        s.on_message(
            NodeId(9),
            AbdMsg::Write {
                pair: TsVal::new(2, Value::from(2u64)),
            },
            &mut ctx,
        );
        s.on_message(
            NodeId(9),
            AbdMsg::Write {
                pair: TsVal::new(1, Value::from(1u64)),
            },
            &mut ctx,
        );
        assert_eq!(s.pair().ts, 2, "older write must not regress the pair");
    }
}
