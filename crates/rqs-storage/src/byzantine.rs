//! Byzantine server behaviours for fault injection.
//!
//! The paper's counterexample executions (Figs. 4, 8) need servers that
//! forge state: report a rolled-back history, advertise fabricated pairs,
//! or go silent. These automatons plug into the simulation through
//! [`World::replace_node`](rqs_sim::World::replace_node).

use crate::history::History;
use crate::messages::StorageMsg;
use crate::value::TsVal;
use rqs_sim::{Automaton, Context, NodeId};
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A server that never replies (crash-faulty from the clients' viewpoint,
/// but still "registered" so schedules can reference it).
#[derive(Clone, Debug, Default)]
pub struct MuteServer;

impl Automaton<StorageMsg> for MuteServer {
    fn on_message(&mut self, _f: NodeId, _m: StorageMsg, _c: &mut Context<StorageMsg>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A server that presents a *fixed, forged* history to readers while
/// acking writes without storing them — the "forget about round 2 of rd" /
/// "forge their state to σ0/σ1" behaviours of Figs. 4 and 8.
#[derive(Clone, Debug)]
pub struct ForgedServer {
    /// The history presented to every read.
    pub forged: History,
    /// Whether to keep acknowledging writes (a forger that stonewalls
    /// writes is distinguishable; the paper's forgers ack).
    pub ack_writes: bool,
}

impl ForgedServer {
    /// A forger presenting the empty (initial, `σ0`) history.
    pub fn initial_state() -> Self {
        ForgedServer {
            forged: History::new(),
            ack_writes: true,
        }
    }

    /// A forger presenting a history containing exactly `pair` stored in
    /// slot 1 (the `σ1` state of the Theorem 3 proof).
    pub fn with_slot1(pair: &TsVal) -> Self {
        let mut forged = History::new();
        forged.apply_write(pair, &BTreeSet::new(), 1);
        ForgedServer {
            forged,
            ack_writes: true,
        }
    }
}

impl Automaton<StorageMsg> for ForgedServer {
    fn on_message(&mut self, from: NodeId, msg: StorageMsg, ctx: &mut Context<StorageMsg>) {
        match msg {
            StorageMsg::Wr { ts, rnd, .. } if self.ack_writes => {
                ctx.send(from, StorageMsg::WrAck { ts, rnd });
            }
            StorageMsg::Rd { read_no, rnd } => {
                ctx.send(
                    from,
                    StorageMsg::RdAck {
                        read_no,
                        rnd,
                        history: Arc::new(self.forged.clone()),
                    },
                );
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A fully scriptable Byzantine server: the closure sees every incoming
/// message and decides the replies.
pub struct ScriptedServer {
    #[allow(clippy::type_complexity)]
    script: Box<dyn FnMut(NodeId, StorageMsg, &mut Context<StorageMsg>) + 'static>,
}

impl ScriptedServer {
    /// Wraps a behaviour closure.
    pub fn new(script: impl FnMut(NodeId, StorageMsg, &mut Context<StorageMsg>) + 'static) -> Self {
        ScriptedServer {
            script: Box::new(script),
        }
    }
}

impl std::fmt::Debug for ScriptedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedServer").finish_non_exhaustive()
    }
}

impl Automaton<StorageMsg> for ScriptedServer {
    fn on_message(&mut self, from: NodeId, msg: StorageMsg, ctx: &mut Context<StorageMsg>) {
        (self.script)(from, msg, ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use rqs_sim::Time;

    fn ctx() -> Context<StorageMsg> {
        Context::new(NodeId(0), Time::ZERO, 0)
    }

    #[test]
    fn mute_server_stays_silent() {
        let mut s = MuteServer;
        let mut c = ctx();
        s.on_message(NodeId(1), StorageMsg::Rd { read_no: 1, rnd: 1 }, &mut c);
        assert!(c.sent().is_empty());
    }

    #[test]
    fn forged_server_presents_fixed_history() {
        let pair = TsVal::new(3, Value::from(9u64));
        let mut s = ForgedServer::with_slot1(&pair);
        let mut c = ctx();
        // Writes are acked but ignored.
        s.on_message(
            NodeId(1),
            StorageMsg::Wr {
                ts: 5,
                val: Value::from(5u64),
                sets: BTreeSet::new(),
                rnd: 1,
            },
            &mut c,
        );
        assert_eq!(c.sent().len(), 1);
        let mut c2 = ctx();
        s.on_message(NodeId(1), StorageMsg::Rd { read_no: 1, rnd: 1 }, &mut c2);
        match &c2.sent()[0].1 {
            StorageMsg::RdAck { history, .. } => {
                assert!(history.stores(&pair, 1));
                assert!(!history.stores(&TsVal::new(5, Value::from(5u64)), 1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forged_initial_state_is_empty() {
        let mut s = ForgedServer::initial_state();
        let mut c = ctx();
        s.on_message(NodeId(1), StorageMsg::Rd { read_no: 1, rnd: 1 }, &mut c);
        match &c.sent()[0].1 {
            StorageMsg::RdAck { history, .. } => assert!(history.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scripted_server_runs_closure() {
        let mut s = ScriptedServer::new(|from, msg, ctx| {
            if let StorageMsg::Rd { read_no, rnd } = msg {
                // Equivocate: claim a fabricated pair.
                let mut h = History::new();
                h.apply_write(&TsVal::new(99, Value::from(1u64)), &BTreeSet::new(), 1);
                ctx.send(
                    from,
                    StorageMsg::RdAck {
                        read_no,
                        rnd,
                        history: Arc::new(h),
                    },
                );
            }
        });
        let mut c = ctx();
        s.on_message(NodeId(1), StorageMsg::Rd { read_no: 7, rnd: 1 }, &mut c);
        assert_eq!(c.sent().len(), 1);
        assert!(format!("{s:?}").contains("ScriptedServer"));
    }
}
