//! End-to-end harness: builds a world with servers, the writer and
//! readers over a refined quorum system, drives whole operations, and
//! collects [`OpRecord`]s for atomicity checking and latency reporting.

use crate::atomicity::{check_atomicity, AtomicityViolation, OpKind, OpRecord};
use crate::messages::StorageMsg;
use crate::reader::{ReadOutcome, Reader};
use crate::server::Server;
use crate::value::Value;
use crate::writer::{WriteOutcome, Writer};
use rqs_core::{ProcessSet, Rqs};
use rqs_sim::{Automaton, NetworkScript, NodeId, Time, World};
use std::sync::Arc;

/// A built storage deployment inside a simulation world.
///
/// # Examples
///
/// ```
/// use rqs_core::threshold::ThresholdConfig;
/// use rqs_storage::StorageHarness;
///
/// // The §1.2 system: 5 servers, t = 2 crash faults, fast path at 4.
/// let rqs = ThresholdConfig::crash_fast(5, 1).build()?;
/// let mut h = StorageHarness::new(rqs, 1);
/// let w = h.write(7u64.into());
/// assert_eq!(w.rounds, 1);
/// let r = h.read(0);
/// assert_eq!(r.returned.val, 7u64.into());
/// assert_eq!(r.rounds, 1);
/// h.check_atomicity()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct StorageHarness {
    world: World<StorageMsg>,
    rqs: Arc<Rqs>,
    servers: Vec<NodeId>,
    writer: NodeId,
    readers: Vec<NodeId>,
    ops: Vec<OpRecord>,
}

impl StorageHarness {
    /// Builds a synchronous-network deployment with `readers` reader
    /// clients.
    pub fn new(rqs: Rqs, readers: usize) -> Self {
        Self::with_script(rqs, readers, NetworkScript::synchronous())
    }

    /// Builds a deployment with a custom network script (asynchrony,
    /// partitions, scripted schedules).
    pub fn with_script(rqs: Rqs, readers: usize, script: NetworkScript) -> Self {
        let rqs = Arc::new(rqs);
        let mut world = World::new(script);
        let servers: Vec<NodeId> = (0..rqs.universe_size())
            .map(|_| world.add_node(Box::new(Server::new())))
            .collect();
        let writer = world.add_node(Box::new(Writer::new(rqs.clone(), servers.clone())));
        let readers: Vec<NodeId> = (0..readers)
            .map(|_| world.add_node(Box::new(Reader::new(rqs.clone(), servers.clone()))))
            .collect();
        StorageHarness {
            world,
            rqs,
            servers,
            writer,
            readers,
            ops: Vec::new(),
        }
    }

    /// The underlying world (for crash injection, Byzantine substitution,
    /// message release, trace inspection).
    pub fn world_mut(&mut self) -> &mut World<StorageMsg> {
        &mut self.world
    }

    /// The refined quorum system in use.
    pub fn rqs(&self) -> &Arc<Rqs> {
        &self.rqs
    }

    /// Node ids of the servers (universe order).
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Node id of the writer.
    pub fn writer_id(&self) -> NodeId {
        self.writer
    }

    /// Node id of reader `i`.
    pub fn reader_id(&self, i: usize) -> NodeId {
        self.readers[i]
    }

    /// Crashes a set of servers (given as universe indices) immediately.
    pub fn crash_servers(&mut self, faulty: ProcessSet) {
        let now = self.world.now();
        for p in faulty.iter() {
            self.world.crash_at(self.servers[p.index()], now);
        }
        // Process the crash events before continuing.
        self.world.run_before(now + 1);
    }

    /// Replaces a server with a Byzantine automaton.
    pub fn make_byzantine(&mut self, server_idx: usize, node: Box<dyn Automaton<StorageMsg>>) {
        self.world.replace_node(self.servers[server_idx], node);
    }

    /// Runs a complete `write(v)` to quiescence and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics if the write cannot complete (no correct quorum).
    pub fn write(&mut self, v: Value) -> WriteOutcome {
        let before = self
            .world
            .node_as::<Writer>(self.writer)
            .outcomes()
            .len();
        self.world
            .invoke::<Writer>(self.writer, |w, ctx| w.start_write(v, ctx));
        let writer = self.writer;
        let done = self
            .world
            .run_until(|w| w.node_as::<Writer>(writer).outcomes().len() > before);
        assert!(done, "write did not complete (no correct quorum?)");
        let out = self.world.node_as::<Writer>(self.writer).outcomes()[before].clone();
        self.ops.push(OpRecord {
            kind: OpKind::Write,
            client: self.writer.index(),
            pair: crate::value::TsVal::new(out.ts, out.val.clone()),
            invoked_at: out.invoked_at,
            completed_at: out.completed_at,
        });
        out
    }

    /// Runs a complete `read()` by reader `i` to quiescence.
    ///
    /// # Panics
    ///
    /// Panics if the read cannot complete.
    pub fn read(&mut self, i: usize) -> ReadOutcome {
        let node = self.readers[i];
        let before = self.world.node_as::<Reader>(node).outcomes().len();
        self.world
            .invoke::<Reader>(node, |r, ctx| r.start_read(ctx));
        let done = self
            .world
            .run_until(|w| w.node_as::<Reader>(node).outcomes().len() > before);
        assert!(done, "read did not complete (no correct quorum?)");
        let out = self.world.node_as::<Reader>(node).outcomes()[before].clone();
        self.ops.push(OpRecord {
            kind: OpKind::Read,
            client: node.index(),
            pair: out.returned.clone(),
            invoked_at: out.invoked_at,
            completed_at: out.completed_at,
        });
        out
    }

    /// Starts a write without waiting for completion (for contention /
    /// partial-write scenarios).
    pub fn start_write(&mut self, v: Value) {
        self.world
            .invoke::<Writer>(self.writer, |w, ctx| w.start_write(v, ctx));
    }

    /// Starts a read without waiting for completion.
    pub fn start_read(&mut self, i: usize) {
        let node = self.readers[i];
        self.world
            .invoke::<Reader>(node, |r, ctx| r.start_read(ctx));
    }

    /// Runs the world until quiescence and harvests any operations that
    /// completed since the last harvest.
    pub fn settle(&mut self) {
        self.world.run_to_quiescence();
        self.harvest();
    }

    /// Collects completed-but-unrecorded operations into the op log.
    ///
    /// An invoked-but-incomplete write is recorded with a far-future
    /// response time: concurrent reads may legitimately return its value,
    /// and the checker must know the value was genuinely written.
    pub fn harvest(&mut self) {
        if let Some((ts, val, invoked_at)) =
            self.world.node_as::<Writer>(self.writer).in_progress()
        {
            let already = self
                .ops
                .iter()
                .any(|o| o.kind == OpKind::Write && o.pair.ts == ts);
            if !already {
                self.ops.push(OpRecord {
                    kind: OpKind::Write,
                    client: self.writer.index(),
                    pair: crate::value::TsVal::new(ts, val),
                    invoked_at,
                    completed_at: Time::FAR_FUTURE,
                });
            }
        }
        let writer_outs: Vec<WriteOutcome> = self
            .world
            .node_as::<Writer>(self.writer)
            .outcomes()
            .to_vec();
        for out in writer_outs {
            let already = self.ops.iter().any(|o| {
                o.kind == OpKind::Write && o.pair.ts == out.ts
            });
            if !already {
                self.ops.push(OpRecord {
                    kind: OpKind::Write,
                    client: self.writer.index(),
                    pair: crate::value::TsVal::new(out.ts, out.val.clone()),
                    invoked_at: out.invoked_at,
                    completed_at: out.completed_at,
                });
            }
        }
        for &node in &self.readers.clone() {
            let outs: Vec<ReadOutcome> =
                self.world.node_as::<Reader>(node).outcomes().to_vec();
            for out in outs {
                let already = self.ops.iter().any(|o| {
                    o.kind == OpKind::Read
                        && o.client == node.index()
                        && o.invoked_at == out.invoked_at
                });
                if !already {
                    self.ops.push(OpRecord {
                        kind: OpKind::Read,
                        client: node.index(),
                        pair: out.returned.clone(),
                        invoked_at: out.invoked_at,
                        completed_at: out.completed_at,
                    });
                }
            }
        }
    }

    /// The operation log collected so far.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Checks the collected operation log (after harvesting completed and
    /// pending operations) for atomicity.
    ///
    /// # Errors
    ///
    /// Returns the first [`AtomicityViolation`] found.
    pub fn check_atomicity(&mut self) -> Result<(), AtomicityViolation> {
        self.harvest();
        check_atomicity(&self.ops)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.world.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    fn five_server() -> StorageHarness {
        StorageHarness::new(ThresholdConfig::crash_fast(5, 1).build().unwrap(), 2)
    }

    #[test]
    fn sequential_workload_atomic() {
        let mut h = five_server();
        for v in 1..=5u64 {
            let w = h.write(Value::from(v));
            assert_eq!(w.rounds, 1);
            let r = h.read(0);
            assert_eq!(r.returned.val, Value::from(v));
        }
        h.check_atomicity().unwrap();
        assert_eq!(h.ops().len(), 10);
    }

    #[test]
    fn two_readers_no_inversion() {
        let mut h = five_server();
        h.write(Value::from(10u64));
        let r1 = h.read(0);
        let r2 = h.read(1);
        assert_eq!(r1.returned, r2.returned);
        h.check_atomicity().unwrap();
    }

    #[test]
    fn graceful_degradation_with_crashes() {
        let mut h = five_server();
        h.write(Value::from(1u64));
        // Crash two servers: every class-1 quorum (any 4 of 5) dies.
        h.crash_servers(ProcessSet::from_indices([3, 4]));
        let w = h.write(Value::from(2u64));
        assert_eq!(w.rounds, 2, "class-2 path");
        let r = h.read(0);
        assert_eq!(r.returned.val, Value::from(2u64));
        assert!(r.rounds <= 2);
        h.check_atomicity().unwrap();
    }

    #[test]
    fn byzantine_threshold_system_runs() {
        // n = 3t+1 = 4, k = t = 1.
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = StorageHarness::new(rqs, 1);
        let w = h.write(Value::from(77u64));
        assert_eq!(w.rounds, 1, "all 4 servers correct: class-1 fast path");
        let r = h.read(0);
        assert_eq!(r.returned.val, Value::from(77u64));
        h.check_atomicity().unwrap();
    }

    #[test]
    fn harvest_picks_up_settled_ops() {
        let mut h = five_server();
        h.start_write(Value::from(5u64));
        h.settle();
        assert_eq!(h.ops().len(), 1);
        // harvest is idempotent
        h.harvest();
        assert_eq!(h.ops().len(), 1);
    }
}
