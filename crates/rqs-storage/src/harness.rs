//! End-to-end storage deployment, generic over the execution substrate:
//! builds servers, the writer and readers over a refined quorum system,
//! drives whole operations, and collects [`OpRecord`]s for atomicity
//! checking and latency reporting.
//!
//! [`StorageDeployment`] is written once against
//! [`Substrate`](rqs_sim::Substrate) and therefore runs unchanged on the
//! deterministic simulator ([`StorageHarness`] is the
//! `StorageDeployment<World<StorageMsg>>` alias, with extra sim-only
//! scripting methods) and on the threaded runtime
//! (`rqs_runtime::RtStorage` wraps the same driver). Fault injection goes
//! through a declarative [`Scenario`], which compiles to a fate policy on
//! the simulator and an interposed filter thread on the runtime.

use crate::atomicity::{AtomicityViolation, OpKind, OpRecord};
use crate::byzantine::ForgedServer;
use crate::checker::{AtomicityChecker, CheckerStats};
use crate::messages::StorageMsg;
use crate::reader::{ReadOutcome, Reader};
use crate::server::Server;
use crate::value::Value;
use crate::writer::{WriteOutcome, Writer};
use rqs_core::{ProcessSet, Rqs};
use rqs_sim::{
    Automaton, CrashMode, NetworkScript, NodeId, Scenario, Substrate, SubstrateConfig, Time, World,
    DEFAULT_AWAIT_STEPS,
};
use rqs_store::{StoreHandle, StoreStats};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// A storage deployment on any [`Substrate`].
///
/// # Examples
///
/// ```
/// use rqs_core::threshold::ThresholdConfig;
/// use rqs_storage::StorageHarness;
///
/// // The §1.2 system: 5 servers, t = 2 crash faults, fast path at 4.
/// let rqs = ThresholdConfig::crash_fast(5, 1).build()?;
/// let mut h = StorageHarness::new(rqs, 1);
/// let w = h.write(7u64.into());
/// assert_eq!(w.rounds, 1);
/// let r = h.read(0);
/// assert_eq!(r.returned.val, 7u64.into());
/// assert_eq!(r.rounds, 1);
/// h.check_atomicity()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct StorageDeployment<S: Substrate<StorageMsg>> {
    sub: S,
    rqs: Arc<Rqs>,
    servers: Vec<NodeId>,
    writer: NodeId,
    readers: Vec<NodeId>,
    ops: Vec<OpRecord>,
    /// Streaming checker fed as operations are harvested: violations are
    /// visible at op arrival, without rescanning `ops`.
    checker: AtomicityChecker,
    /// Harvest cursor into the writer's outcome log.
    harvested_writes: usize,
    /// Harvest cursor into each reader's outcome log.
    harvested_reads: Vec<usize>,
    /// Timestamps fed to the checker as in-flight (far-future) writes.
    open_writes: BTreeSet<u64>,
    /// Per-server durable stores (empty for volatile deployments).
    stores: Vec<StoreHandle>,
}

/// The simulated storage deployment (back-compat alias): the same driver
/// instantiated on the deterministic [`World`].
pub type StorageHarness = StorageDeployment<World<StorageMsg>>;

impl<S: Substrate<StorageMsg>> StorageDeployment<S> {
    /// Builds a fault-free deployment with `readers` reader clients.
    pub fn new(rqs: Rqs, readers: usize) -> Self {
        Self::with_scenario(rqs, readers, Scenario::default())
    }

    /// Builds a deployment under a fault scenario (partitions, lossy or
    /// duplicating links, crash-restart plans, Byzantine swap-ins — the
    /// scenario's `byzantine` indices become forging servers).
    pub fn with_scenario(rqs: Rqs, readers: usize, scenario: Scenario) -> Self {
        Self::with_setup(rqs, readers, scenario, rqs_sim::DEFAULT_TICK)
    }

    /// Builds with a scenario and an explicit wall-clock tick length
    /// (ignored by the simulator).
    pub fn with_setup(rqs: Rqs, readers: usize, scenario: Scenario, tick: Duration) -> Self {
        Self::with_setup_stores(rqs, readers, scenario, tick, Vec::new())
    }

    /// Builds a durable deployment under a fault scenario: every server
    /// journals to a fresh deterministic in-memory store, so the
    /// scenario may use [`CrashMode::Amnesia`] crash plans.
    pub fn durable_with_scenario(rqs: Rqs, readers: usize, scenario: Scenario) -> Self {
        let stores = (0..rqs.universe_size())
            .map(|_| StoreHandle::mem())
            .collect();
        Self::with_setup_stores(rqs, readers, scenario, rqs_sim::DEFAULT_TICK, stores)
    }

    /// Builds with explicit per-server stores (`stores[i]` backs server
    /// `i`; servers beyond the vector stay volatile) — the seam the
    /// threaded chaos experiment uses to hand in file-backed stores.
    pub fn with_setup_stores(
        rqs: Rqs,
        readers: usize,
        scenario: Scenario,
        tick: Duration,
        stores: Vec<StoreHandle>,
    ) -> Self {
        let rqs = Arc::new(rqs);
        let n = rqs.universe_size();
        let server_ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let byzantine = scenario.byzantine.clone();
        let mut nodes: Vec<Box<dyn Automaton<StorageMsg> + Send>> = Vec::new();
        for i in 0..n {
            nodes.push(match stores.get(i) {
                Some(s) => Box::new(Server::with_store(s.clone())),
                None => Box::new(Server::new()),
            });
        }
        nodes.push(Box::new(Writer::new(rqs.clone(), server_ids.clone())));
        for _ in 0..readers {
            nodes.push(Box::new(Reader::new(rqs.clone(), server_ids.clone())));
        }
        let config = SubstrateConfig::new(nodes).scenario(scenario).tick(tick);
        let mut sub = S::build(config);
        for idx in byzantine {
            sub.replace_node(server_ids[idx], Box::new(ForgedServer::initial_state()));
        }
        StorageDeployment {
            sub,
            rqs,
            servers: server_ids,
            writer: NodeId(n),
            readers: (n + 1..n + 1 + readers).map(NodeId).collect(),
            ops: Vec::new(),
            checker: AtomicityChecker::new(),
            harvested_writes: 0,
            harvested_reads: vec![0; readers],
            open_writes: BTreeSet::new(),
            stores,
        }
    }

    /// The underlying substrate (crash injection, stats, scripting).
    pub fn substrate(&mut self) -> &mut S {
        &mut self.sub
    }

    /// The refined quorum system in use.
    pub fn rqs(&self) -> &Arc<Rqs> {
        &self.rqs
    }

    /// Node ids of the servers (universe order).
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Node id of the writer.
    pub fn writer_id(&self) -> NodeId {
        self.writer
    }

    /// Node id of reader `i`.
    pub fn reader_id(&self, i: usize) -> NodeId {
        self.readers[i]
    }

    /// Crashes a set of servers (given as universe indices) immediately.
    pub fn crash_servers(&mut self, faulty: ProcessSet) {
        for p in faulty.iter() {
            self.sub.crash(self.servers[p.index()]);
        }
    }

    /// Restarts a set of crashed servers with their retained state.
    pub fn restart_servers(&mut self, healed: ProcessSet) {
        for p in healed.iter() {
            self.sub.restart(self.servers[p.index()]);
        }
    }

    /// Crashes a set of servers with amnesia: on restart each rebuilds
    /// from its durable store only. Meaningful on durable deployments;
    /// volatile servers come back empty.
    pub fn crash_servers_amnesia(&mut self, faulty: ProcessSet) {
        for p in faulty.iter() {
            self.sub
                .crash_with(self.servers[p.index()], CrashMode::Amnesia);
        }
    }

    /// The per-server durable stores (empty for volatile deployments).
    pub fn server_stores(&self) -> &[StoreHandle] {
        &self.stores
    }

    /// Merged store counters across all servers.
    pub fn store_stats(&self) -> StoreStats {
        let mut acc = StoreStats::default();
        for s in &self.stores {
            acc.merge(&s.stats());
        }
        acc
    }

    /// Runs a complete `write(v)` and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics if the write cannot complete (no correct quorum).
    pub fn write(&mut self, v: Value) -> WriteOutcome {
        let writer = self.writer;
        let before = self
            .sub
            .inspect_on::<Writer, usize>(writer, |w| w.outcomes().len());
        self.sub
            .invoke_on::<Writer>(writer, move |w, ctx| w.start_write(v, ctx));
        let done = self.sub.await_on::<Writer>(
            writer,
            move |w| w.outcomes().len() > before,
            DEFAULT_AWAIT_STEPS,
        );
        assert!(done, "write did not complete (no correct quorum?)");
        let out = self
            .sub
            .inspect_on::<Writer, WriteOutcome>(writer, move |w| w.outcomes()[before].clone());
        self.harvest();
        out
    }

    /// Runs a complete `read()` by reader `i`.
    ///
    /// # Panics
    ///
    /// Panics if the read cannot complete.
    pub fn read(&mut self, i: usize) -> ReadOutcome {
        let node = self.readers[i];
        let before = self
            .sub
            .inspect_on::<Reader, usize>(node, |r| r.outcomes().len());
        self.sub
            .invoke_on::<Reader>(node, |r, ctx| r.start_read(ctx));
        let done = self.sub.await_on::<Reader>(
            node,
            move |r| r.outcomes().len() > before,
            DEFAULT_AWAIT_STEPS,
        );
        assert!(done, "read did not complete (no correct quorum?)");
        let out = self
            .sub
            .inspect_on::<Reader, ReadOutcome>(node, move |r| r.outcomes()[before].clone());
        self.harvest();
        out
    }

    /// Starts a write without waiting for completion (for contention /
    /// partial-write scenarios).
    pub fn start_write(&mut self, v: Value) {
        self.sub
            .invoke_on::<Writer>(self.writer, move |w, ctx| w.start_write(v, ctx));
    }

    /// Starts a read without waiting for completion.
    pub fn start_read(&mut self, i: usize) {
        let node = self.readers[i];
        self.sub
            .invoke_on::<Reader>(node, |r, ctx| r.start_read(ctx));
    }

    /// Collects completed-but-unrecorded operations into the op log and
    /// streams them into the incremental checker.
    ///
    /// Each node's outcome log is read past a per-node cursor, so a
    /// harvest costs O(new ops), and every new record is fed to the
    /// [`AtomicityChecker`] at that moment — a violation is observable
    /// via [`checker_violation`](Self::checker_violation) as soon as the
    /// offending operation completes, without rescanning the history.
    ///
    /// An invoked-but-incomplete write is recorded with a far-future
    /// response time: concurrent reads may legitimately return its value,
    /// and the checker must know the value was genuinely written. When
    /// that write later completes, its record (in `ops` and in the
    /// checker) is upgraded in place with the real completion time.
    pub fn harvest(&mut self) {
        let writer = self.writer;
        // The in-flight write first: reads harvested in the same pass may
        // legitimately return its value.
        if let Some((ts, val, invoked_at)) = self
            .sub
            .inspect_on::<Writer, Option<(u64, Value, Time)>>(writer, |w| w.in_progress())
        {
            if self.open_writes.insert(ts) {
                let rec = OpRecord {
                    kind: OpKind::Write,
                    client: self.writer.index(),
                    pair: crate::value::TsVal::new(ts, val),
                    invoked_at,
                    completed_at: Time::FAR_FUTURE,
                };
                self.checker.observe_open_write(&rec);
                self.ops.push(rec);
            }
        }
        let from = self.harvested_writes;
        let writer_outs = self
            .sub
            .inspect_on::<Writer, Vec<WriteOutcome>>(writer, move |w| {
                w.outcomes()[from..].to_vec()
            });
        self.harvested_writes += writer_outs.len();
        for out in writer_outs {
            let rec = OpRecord {
                kind: OpKind::Write,
                client: self.writer.index(),
                pair: crate::value::TsVal::new(out.ts, out.val.clone()),
                invoked_at: out.invoked_at,
                completed_at: out.completed_at,
            };
            self.checker.observe(&rec);
            if self.open_writes.remove(&out.ts) {
                if let Some(o) = self
                    .ops
                    .iter_mut()
                    .rev()
                    .find(|o| o.kind == OpKind::Write && o.pair.ts == out.ts)
                {
                    *o = rec;
                }
            } else {
                self.ops.push(rec);
            }
        }
        for (i, node) in self.readers.clone().into_iter().enumerate() {
            let from = self.harvested_reads[i];
            let outs = self
                .sub
                .inspect_on::<Reader, Vec<ReadOutcome>>(node, move |r| {
                    r.outcomes()[from..].to_vec()
                });
            self.harvested_reads[i] += outs.len();
            for out in outs {
                let rec = OpRecord {
                    kind: OpKind::Read,
                    client: node.index(),
                    pair: out.returned.clone(),
                    invoked_at: out.invoked_at,
                    completed_at: out.completed_at,
                };
                self.checker.observe(&rec);
                self.ops.push(rec);
            }
        }
    }

    /// The operation log collected so far.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// The first definite violation streamed so far (without declaring
    /// the history complete — reads still waiting for their source write
    /// do not count). Cheap: no rescan.
    pub fn checker_violation(&self) -> Option<&AtomicityViolation> {
        self.checker.violation()
    }

    /// Counters of the embedded streaming checker.
    pub fn checker_stats(&self) -> CheckerStats {
        self.checker.stats()
    }

    /// Checks the collected operation log (after harvesting completed and
    /// pending operations) for atomicity.
    ///
    /// The verdict is read off the streaming checker — the history was
    /// validated as it was harvested, so this costs O(new ops), not
    /// O(history²).
    ///
    /// # Errors
    ///
    /// Returns the first [`AtomicityViolation`] found.
    pub fn check_atomicity(&mut self) -> Result<(), AtomicityViolation> {
        self.harvest();
        self.checker.verdict()
    }

    /// Stops the substrate (a no-op on the simulator).
    pub fn shutdown(&mut self) {
        self.sub.shutdown();
    }
}

/// Simulator-only scripting surface: direct [`World`] access, scripted
/// network policies, Byzantine substitution with non-`Send` scripted
/// automatons, and quiescence-based settling.
impl StorageHarness {
    /// Builds a deployment with a custom network script (asynchrony,
    /// partitions, scripted schedules).
    pub fn with_script(rqs: Rqs, readers: usize, script: NetworkScript) -> Self {
        let mut h = Self::new(rqs, readers);
        h.world_mut().set_policy(script);
        h
    }

    /// The underlying world (crash injection, Byzantine substitution,
    /// message release, trace inspection).
    pub fn world_mut(&mut self) -> &mut World<StorageMsg> {
        &mut self.sub
    }

    /// Replaces a server with a Byzantine automaton (simulator only: the
    /// scripted forgers need not be `Send`; on other substrates use a
    /// [`Scenario`]'s `byzantine` list or `Substrate::replace_node`).
    pub fn make_byzantine(&mut self, server_idx: usize, node: Box<dyn Automaton<StorageMsg>>) {
        let id = self.servers[server_idx];
        self.sub.replace_node(id, node);
    }

    /// Runs the world until quiescence and harvests any operations that
    /// completed since the last harvest.
    pub fn settle(&mut self) {
        self.sub.run_to_quiescence();
        self.harvest();
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sub.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::threshold::ThresholdConfig;

    fn five_server() -> StorageHarness {
        StorageHarness::new(ThresholdConfig::crash_fast(5, 1).build().unwrap(), 2)
    }

    #[test]
    fn sequential_workload_atomic() {
        let mut h = five_server();
        for v in 1..=5u64 {
            let w = h.write(Value::from(v));
            assert_eq!(w.rounds, 1);
            let r = h.read(0);
            assert_eq!(r.returned.val, Value::from(v));
        }
        h.check_atomicity().unwrap();
        assert_eq!(h.ops().len(), 10);
    }

    #[test]
    fn two_readers_no_inversion() {
        let mut h = five_server();
        h.write(Value::from(10u64));
        let r1 = h.read(0);
        let r2 = h.read(1);
        assert_eq!(r1.returned, r2.returned);
        h.check_atomicity().unwrap();
    }

    #[test]
    fn graceful_degradation_with_crashes() {
        let mut h = five_server();
        h.write(Value::from(1u64));
        // Crash two servers: every class-1 quorum (any 4 of 5) dies.
        h.crash_servers(ProcessSet::from_indices([3, 4]));
        let w = h.write(Value::from(2u64));
        assert_eq!(w.rounds, 2, "class-2 path");
        let r = h.read(0);
        assert_eq!(r.returned.val, Value::from(2u64));
        assert!(r.rounds <= 2);
        h.check_atomicity().unwrap();
    }

    #[test]
    fn crash_then_restart_restores_fast_path() {
        let mut h = five_server();
        h.crash_servers(ProcessSet::from_indices([3, 4]));
        assert_eq!(h.write(Value::from(1u64)).rounds, 2);
        h.restart_servers(ProcessSet::from_indices([3, 4]));
        // All 5 back: class-1 quorum (4 acks) available again.
        assert_eq!(h.write(Value::from(2u64)).rounds, 1);
        h.check_atomicity().unwrap();
    }

    #[test]
    fn byzantine_threshold_system_runs() {
        // n = 3t+1 = 4, k = t = 1.
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut h = StorageHarness::new(rqs, 1);
        let w = h.write(Value::from(77u64));
        assert_eq!(w.rounds, 1, "all 4 servers correct: class-1 fast path");
        let r = h.read(0);
        assert_eq!(r.returned.val, Value::from(77u64));
        h.check_atomicity().unwrap();
    }

    #[test]
    fn scenario_byzantine_swap_in_tolerated() {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let scenario = Scenario::named("byz").with_byzantine(0);
        let mut h = StorageHarness::with_scenario(rqs, 1, scenario);
        h.write(Value::from(5u64));
        let r = h.read(0);
        assert_eq!(r.returned.val, Value::from(5u64));
        h.check_atomicity().unwrap();
    }

    #[test]
    fn amnesia_crash_recovers_from_stores() {
        let rqs = ThresholdConfig::crash_fast(5, 1).build().unwrap();
        let mut h = StorageHarness::durable_with_scenario(rqs, 2, Scenario::default());
        h.write(Value::from(1u64));
        h.write(Value::from(2u64));
        // Amnesia-crash two servers, restart: they rebuild from WAL.
        h.crash_servers_amnesia(ProcessSet::from_indices([3, 4]));
        h.settle();
        h.restart_servers(ProcessSet::from_indices([3, 4]));
        h.settle();
        let r = h.read(0);
        assert_eq!(r.returned.val, Value::from(2u64));
        // Recovered servers hold the acked writes again.
        for idx in [3usize, 4] {
            let id = h.servers()[idx];
            let holds = h
                .world_mut()
                .node_as::<Server>(id)
                .history()
                .stores(&crate::value::TsVal::new(2, Value::from(2u64)), 1);
            assert!(holds, "server {idx} must recover acked writes");
        }
        h.check_atomicity().unwrap();
        let stats = h.store_stats();
        assert!(stats.appends >= 4, "write-ahead appends recorded");
        assert_eq!(stats.crashes, 2);
        assert!(stats.replayed > 0, "recovery replayed log records");
    }

    #[test]
    fn amnesia_without_wal_would_lose_state_but_volatile_retain_keeps_it() {
        // Control: a Retain crash/restart keeps in-memory state even
        // without stores — the two modes genuinely differ.
        let mut h = five_server();
        h.write(Value::from(9u64));
        h.crash_servers(ProcessSet::from_indices([4]));
        h.settle();
        h.restart_servers(ProcessSet::from_indices([4]));
        h.settle();
        let id = h.servers()[4];
        assert!(!h.world_mut().node_as::<Server>(id).history().is_empty());
    }

    #[test]
    fn harvest_picks_up_settled_ops() {
        let mut h = five_server();
        h.start_write(Value::from(5u64));
        h.settle();
        assert_eq!(h.ops().len(), 1);
        // harvest is idempotent
        h.harvest();
        assert_eq!(h.ops().len(), 1);
    }
}
