//! The reader automaton (Fig. 7).
//!
//! A read has two parts:
//!
//! 1. **Regular part** (lines 20–35): repeat rounds of `rd` messages until
//!    the candidate set `C` is non-empty; in round 1 additionally wait for
//!    the `2Δ` timeout, fix `highest_ts`, and remember the class-2 quorums
//!    that responded (`QC'2`).
//! 2. **Write-back part** (lines 40–49), driven by the best-case detector
//!    `BCD`:
//!    - `BCD(csel,1,·)` holds → return immediately (1-round read);
//!    - `BCD(csel,2,·)` non-empty for rounds 2/3 → one plain round-2
//!      write-back (2-round read);
//!    - `BCD(csel,2,1)` non-empty → a round-1 write-back carrying the
//!      detected class-2 quorum ids, with a timer: if one of those quorums
//!      acks in time the read finishes in 2 rounds, otherwise a round-2
//!      write-back follows (3 rounds);
//!    - otherwise → round-1 then round-2 write-backs.

use crate::history::History;
use crate::messages::StorageMsg;
use crate::predicates::ReadView;
use crate::value::TsVal;
use crate::writer::CLIENT_TIMEOUT;
use rqs_core::{ProcessId, ProcessSet, QuorumId, Rqs};
use rqs_obs::{Obs, TraceKind, LANE_READER};
use rqs_sim::{Automaton, Context, NodeId, Time, TimerToken};
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Record of one completed read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The reader-local operation id.
    pub read_no: u64,
    /// The selected (returned) pair; `⟨0,⊥⟩` for the initial value.
    pub returned: TsVal,
    /// Total client round-trips used.
    pub rounds: usize,
    /// Invocation time.
    pub invoked_at: Time,
    /// Response time.
    pub completed_at: Time,
}

#[derive(Debug)]
struct Phase1 {
    invoked_at: Time,
    read_rnd: usize,
    acks_this_round: ProcessSet,
    responded_all: ProcessSet,
    histories: Vec<Arc<History>>,
    timer: Option<TimerToken>,
    timer_expired: bool,
    qc2_prime: Vec<QuorumId>,
    highest_ts: u64,
}

#[derive(Debug, PartialEq, Eq)]
enum WbKind {
    /// Round-1 write-back carrying `BCD(csel,2,1)` ids, with timer
    /// (lines 43–46): finish at `rounds_so_far + 1` if a listed quorum
    /// acks, else fall through to a final round-2 write-back.
    FastRound1 { x: Vec<QuorumId> },
    /// Plain round-1 write-back (line 49 first half): no timer, always
    /// followed by the final round-2 write-back.
    PlainRound1,
    /// Final round-2 write-back (lines 42/47/49): quorum ack completes the
    /// read.
    FinalRound2,
}

#[derive(Debug)]
struct Writeback {
    invoked_at: Time,
    csel: TsVal,
    kind: WbKind,
    acks: ProcessSet,
    timer: Option<TimerToken>,
    timer_expired: bool,
    rounds_so_far: usize,
}

#[derive(Debug)]
enum State {
    Idle,
    Phase1(Phase1),
    Writeback(Writeback),
}

/// Deliberately planted bugs, used by the `rqs-check` mutation tests to
/// prove the explorer finds real violations. All flags are `false` in
/// every normal build; the constructors that set them only exist behind
/// the (default-off) `mutants` cargo feature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Mutations {
    /// Return `⟨0,⊥⟩` instead of the selected candidate (stale reads).
    stale_select: bool,
    /// Return the selected candidate without the write-back phase (the
    /// §1.2 greedy bug: a concurrent read can expose a value that a later
    /// read then misses — new/old inversion).
    skip_write_back: bool,
}

/// A reader client (Fig. 7).
///
/// Drive with [`Reader::start_read`] via
/// [`World::invoke`](rqs_sim::World::invoke); completed reads accumulate
/// in [`Reader::outcomes`].
#[derive(Debug)]
pub struct Reader {
    rqs: Arc<Rqs>,
    servers: Vec<NodeId>,
    read_no: u64,
    state: State,
    outcomes: Vec<ReadOutcome>,
    muts: Mutations,
    obs: Obs,
    eager: bool,
    round_timeout: u64,
}

impl Reader {
    /// Creates a reader over `rqs` whose universe member `i` is node
    /// `servers[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `servers.len()` differs from the RQS universe size.
    pub fn new(rqs: Arc<Rqs>, servers: Vec<NodeId>) -> Self {
        assert_eq!(
            servers.len(),
            rqs.universe_size(),
            "server list must cover the RQS universe"
        );
        Reader {
            rqs,
            servers,
            read_no: 0,
            state: State::Idle,
            outcomes: Vec::new(),
            muts: Mutations::default(),
            obs: Obs::nop(),
            eager: false,
            round_timeout: CLIENT_TIMEOUT,
        }
    }

    /// Overrides the per-round timer (default [`CLIENT_TIMEOUT`]), the
    /// read-side analogue of
    /// [`Writer::set_round_timeout`](crate::writer::Writer::set_round_timeout):
    /// a synchrony knob, not a safety ingredient — patience only delays
    /// the fall-back write-back rounds.
    pub fn set_round_timeout(&mut self, ticks: u64) {
        assert!(ticks >= 1, "round timeout must be at least one tick");
        self.round_timeout = ticks;
    }

    /// Enables eager round completion, the read-side analogue of
    /// [`Writer::set_eager_completion`](crate::writer::Writer::set_eager_completion):
    /// once every server in the universe has answered the current timed
    /// round (phase-1 round 1, or a fast round-1 write-back), the `2Δ`
    /// timer can contribute no further information, so the round is
    /// settled immediately. Off by default — it changes event schedules,
    /// which golden-trace deployments pin; the pipelined hot path
    /// switches it on.
    pub fn set_eager_completion(&mut self, on: bool) {
        self.eager = on;
    }

    /// Installs a structured-trace observer; by convention its tag is the
    /// object id this reader serves (0 for the single-object deployment).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Mutant: a reader that always returns the initial pair `⟨0,⊥⟩`
    /// regardless of what the servers report (a stale-read bug). For
    /// checker self-tests only.
    #[cfg(feature = "mutants")]
    pub fn new_mutant_stale(rqs: Arc<Rqs>, servers: Vec<NodeId>) -> Self {
        let mut r = Reader::new(rqs, servers);
        r.muts.stale_select = true;
        r
    }

    /// Mutant: a reader that skips the write-back phase and returns the
    /// selected candidate directly (the §1.2 greedy bug). For checker
    /// self-tests only.
    #[cfg(feature = "mutants")]
    pub fn new_mutant_skip_write_back(rqs: Arc<Rqs>, servers: Vec<NodeId>) -> Self {
        let mut r = Reader::new(rqs, servers);
        r.muts.skip_write_back = true;
        r
    }

    /// Completed reads, in completion order.
    pub fn outcomes(&self) -> &[ReadOutcome] {
        &self.outcomes
    }

    /// `true` iff no read is in progress.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, State::Idle)
    }

    /// Invokes `read()`.
    ///
    /// # Panics
    ///
    /// Panics if a read is already in progress (well-formed clients).
    pub fn start_read(&mut self, ctx: &mut Context<StorageMsg>) {
        assert!(self.is_idle(), "read already in progress");
        self.read_no += 1;
        self.obs.emit(
            TraceKind::OpInvoked,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_READER,
            self.read_no,
            0,
        );
        let n = self.rqs.universe_size();
        // One shared empty snapshot: every slot is replaced by the
        // server's own `Arc` as its ack arrives.
        let empty = Arc::new(History::new());
        let mut p1 = Phase1 {
            invoked_at: ctx.now(),
            read_rnd: 0,
            acks_this_round: ProcessSet::empty(),
            responded_all: ProcessSet::empty(),
            histories: vec![empty; n],
            timer: None,
            timer_expired: false,
            qc2_prime: Vec::new(),
            highest_ts: 0,
        };
        Self::enter_phase1_round(
            &mut p1,
            self.read_no,
            &self.servers,
            &self.obs,
            self.round_timeout,
            ctx,
        );
        self.state = State::Phase1(p1);
    }

    /// Re-broadcasts the in-progress phase's message without advancing
    /// the protocol: a phase-1 resend repeats the current `rd` round
    /// (same `read_no`, same round number — servers re-answer with their
    /// current history, which overwrite-merges idempotently), a
    /// write-back resend repeats the current `wr` (same selected pair,
    /// round and quorum ids, so duplicate acks collapse in the ack set).
    /// This is the retry seam for loss-hardened clients; a nudge never
    /// starts a new read round or a new operation.
    ///
    /// Returns `false` (and sends nothing) when the reader is idle.
    pub fn resend_round(&mut self, ctx: &mut Context<StorageMsg>) -> bool {
        match &self.state {
            State::Idle => false,
            State::Phase1(p1) => {
                ctx.broadcast(
                    self.servers.iter().copied(),
                    StorageMsg::Rd {
                        read_no: self.read_no,
                        rnd: p1.read_rnd,
                    },
                );
                true
            }
            State::Writeback(wb) => {
                let (rnd, sets): (usize, BTreeSet<QuorumId>) = match &wb.kind {
                    WbKind::FastRound1 { x } => (1, x.iter().copied().collect()),
                    WbKind::PlainRound1 => (1, BTreeSet::new()),
                    WbKind::FinalRound2 => (2, BTreeSet::new()),
                };
                ctx.broadcast(
                    self.servers.iter().copied(),
                    StorageMsg::Wr {
                        ts: wb.csel.ts,
                        val: wb.csel.val.clone(),
                        sets,
                        rnd,
                    },
                );
                true
            }
        }
    }

    fn enter_phase1_round(
        p1: &mut Phase1,
        read_no: u64,
        servers: &[NodeId],
        obs: &Obs,
        round_timeout: u64,
        ctx: &mut Context<StorageMsg>,
    ) {
        p1.read_rnd += 1;
        obs.emit(
            TraceKind::RoundStarted,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_READER,
            p1.read_rnd as u64,
            read_no,
        );
        p1.acks_this_round = ProcessSet::empty();
        if p1.read_rnd == 1 {
            p1.timer = Some(ctx.set_timer(round_timeout));
            p1.timer_expired = false;
        } else {
            p1.timer = None;
            p1.timer_expired = true;
        }
        ctx.broadcast(
            servers.iter().copied(),
            StorageMsg::Rd {
                read_no,
                rnd: p1.read_rnd,
            },
        );
    }

    fn server_index(&self, node: NodeId) -> Option<ProcessId> {
        self.servers.iter().position(|&s| s == node).map(ProcessId)
    }

    fn try_finish_phase1_round(&mut self, ctx: &mut Context<StorageMsg>) {
        let State::Phase1(p1) = &mut self.state else {
            return;
        };
        if !p1.timer_expired || !self.rqs.any_quorum_within(p1.acks_this_round) {
            return;
        }
        self.obs.emit(
            TraceKind::QuorumAssembled,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_READER,
            p1.read_rnd as u64,
            p1.acks_this_round.len() as u64,
        );
        if p1.read_rnd == 1 {
            // Lines 29–31: fix highest_ts and QC'2 at the end of round 1.
            p1.highest_ts = p1
                .histories
                .iter()
                .map(|h| h.highest_ts())
                .max()
                .unwrap_or(0);
            p1.qc2_prime = self.rqs.class2_within(p1.acks_this_round);
        }
        let responded = self.rqs.quorums_within(p1.responded_all);
        let view = ReadView {
            rqs: &self.rqs,
            histories: &p1.histories,
            responded: &responded,
            highest_ts: p1.highest_ts,
            qc2_prime: &p1.qc2_prime,
        };
        let Some(csel) = view.select() else {
            // C = ∅: another round of the regular part (line 34).
            Self::enter_phase1_round(
                p1,
                self.read_no,
                &self.servers.clone(),
                &self.obs,
                self.round_timeout,
                ctx,
            );
            return;
        };

        // Write-back part (lines 40–49).
        let read_rnd = p1.read_rnd;
        let invoked_at = p1.invoked_at;
        if self.muts.stale_select || self.muts.skip_write_back {
            // Planted bugs (checker self-tests): complete after the
            // regular part, returning a stale pair or skipping write-back.
            let returned = if self.muts.stale_select {
                TsVal::initial()
            } else {
                csel
            };
            self.state = State::Idle;
            self.obs.emit(
                TraceKind::OpCompleted,
                ctx.now().ticks(),
                ctx.me().0 as u64,
                LANE_READER,
                read_rnd as u64,
                self.read_no,
            );
            self.outcomes.push(ReadOutcome {
                read_no: self.read_no,
                returned,
                rounds: read_rnd,
                invoked_at,
                completed_at: ctx.now(),
            });
            return;
        }
        if read_rnd == 1 {
            // Line 40: BCD(csel, 1, ·) → 1-round read, no write-back.
            if (1..=3).any(|r| view.bcd1(&csel, r)) {
                self.state = State::Idle;
                self.obs.emit(
                    TraceKind::OpCompleted,
                    ctx.now().ticks(),
                    ctx.me().0 as u64,
                    LANE_READER,
                    1,
                    self.read_no,
                );
                self.outcomes.push(ReadOutcome {
                    read_no: self.read_no,
                    returned: csel,
                    rounds: 1,
                    invoked_at,
                    completed_at: ctx.now(),
                });
                return;
            }
            // Line 41: BCD(csel, 2, ·) non-empty?
            let x1 = view.bcd2(&csel, 1);
            let x23: Vec<QuorumId> = {
                let mut v = view.bcd2(&csel, 2);
                for q in view.bcd2(&csel, 3) {
                    if !v.contains(&q) {
                        v.push(q);
                    }
                }
                v
            };
            if !x23.is_empty() {
                // Line 42: the writer already completed at some quorum —
                // one plain round-2 write-back finishes the read.
                self.start_writeback(csel, WbKind::FinalRound2, 1, invoked_at, ctx);
                return;
            }
            if !x1.is_empty() {
                // Lines 43–46: fast round-1 write-back carrying X.
                self.start_writeback(csel, WbKind::FastRound1 { x: x1 }, 1, invoked_at, ctx);
                return;
            }
        }
        // Line 49: round-1 then round-2 write-backs.
        self.start_writeback(csel, WbKind::PlainRound1, read_rnd, invoked_at, ctx);
    }

    fn start_writeback(
        &mut self,
        csel: TsVal,
        kind: WbKind,
        rounds_so_far: usize,
        invoked_at: Time,
        ctx: &mut Context<StorageMsg>,
    ) {
        let (rnd, sets, with_timer): (usize, BTreeSet<QuorumId>, bool) = match &kind {
            WbKind::FastRound1 { x } => (1, x.iter().copied().collect(), true),
            WbKind::PlainRound1 => (1, BTreeSet::new(), false),
            WbKind::FinalRound2 => (2, BTreeSet::new(), false),
        };
        self.obs.emit(
            TraceKind::RoundStarted,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_READER,
            (rounds_so_far + 1) as u64,
            self.read_no,
        );
        let timer = with_timer.then(|| ctx.set_timer(self.round_timeout));
        ctx.broadcast(
            self.servers.iter().copied(),
            StorageMsg::Wr {
                ts: csel.ts,
                val: csel.val.clone(),
                sets,
                rnd,
            },
        );
        self.state = State::Writeback(Writeback {
            invoked_at,
            csel,
            kind,
            acks: ProcessSet::empty(),
            timer,
            timer_expired: !with_timer,
            rounds_so_far,
        });
    }

    fn try_finish_writeback(&mut self, ctx: &mut Context<StorageMsg>) {
        let State::Writeback(wb) = &mut self.state else {
            return;
        };
        if !wb.timer_expired || !self.rqs.any_quorum_within(wb.acks) {
            return;
        }
        self.obs.emit(
            TraceKind::QuorumAssembled,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_READER,
            (wb.rounds_so_far + 1) as u64,
            wb.acks.len() as u64,
        );
        let rounds = wb.rounds_so_far + 1;
        let csel = wb.csel.clone();
        let invoked_at = wb.invoked_at;
        match &wb.kind {
            WbKind::FastRound1 { x } => {
                // Line 46: did one of the detected class-2 quorums ack?
                let confirmed = x
                    .iter()
                    .any(|&q2| self.rqs.quorum(q2).is_subset_of(wb.acks));
                if confirmed {
                    self.complete(csel, rounds, invoked_at, ctx);
                } else {
                    // Line 47: final round-2 write-back.
                    self.start_writeback(csel, WbKind::FinalRound2, rounds, invoked_at, ctx);
                }
            }
            WbKind::PlainRound1 => {
                self.start_writeback(csel, WbKind::FinalRound2, rounds, invoked_at, ctx);
            }
            WbKind::FinalRound2 => {
                self.complete(csel, rounds, invoked_at, ctx);
            }
        }
    }

    fn complete(
        &mut self,
        returned: TsVal,
        rounds: usize,
        invoked_at: Time,
        ctx: &mut Context<StorageMsg>,
    ) {
        if let State::Writeback(wb) = &self.state {
            if let Some(t) = wb.timer {
                ctx.cancel_timer(t);
            }
        }
        self.obs.emit(
            TraceKind::OpCompleted,
            ctx.now().ticks(),
            ctx.me().0 as u64,
            LANE_READER,
            rounds as u64,
            self.read_no,
        );
        self.outcomes.push(ReadOutcome {
            read_no: self.read_no,
            returned,
            rounds,
            invoked_at,
            completed_at: ctx.now(),
        });
        self.state = State::Idle;
    }
}

impl Automaton<StorageMsg> for Reader {
    fn state_digest(&self) -> u64 {
        rqs_sim::fnv1a(
            format!("{:?},{:?},{:?}", self.read_no, self.state, self.outcomes).as_bytes(),
        )
    }

    fn on_message(&mut self, from: NodeId, msg: StorageMsg, ctx: &mut Context<StorageMsg>) {
        let Some(sender) = self.server_index(from) else {
            return;
        };
        match msg {
            StorageMsg::RdAck {
                read_no,
                rnd,
                history,
            } => {
                if read_no != self.read_no {
                    return; // ack for an older read
                }
                let State::Phase1(p1) = &mut self.state else {
                    return; // late ack during write-back: no effect
                };
                // Lines 50–53: adopt the newest history, track responders.
                p1.histories[sender.index()] = history;
                p1.responded_all.insert(sender);
                if rnd == p1.read_rnd {
                    p1.acks_this_round.insert(sender);
                }
                // All n answered the timed round: nothing more can
                // arrive, so settle without waiting out the timer.
                if self.eager
                    && !p1.timer_expired
                    && p1.acks_this_round.len() == self.rqs.universe_size()
                {
                    p1.timer_expired = true;
                    if let Some(timer) = p1.timer.take() {
                        ctx.cancel_timer(timer);
                    }
                }
                self.try_finish_phase1_round(ctx);
            }
            StorageMsg::WrAck { ts, rnd } => {
                let State::Writeback(wb) = &mut self.state else {
                    return;
                };
                let expected_rnd = match &wb.kind {
                    WbKind::FastRound1 { .. } | WbKind::PlainRound1 => 1,
                    WbKind::FinalRound2 => 2,
                };
                if ts != wb.csel.ts || rnd != expected_rnd {
                    return;
                }
                wb.acks.insert(sender);
                if self.eager && !wb.timer_expired && wb.acks.len() == self.rqs.universe_size() {
                    wb.timer_expired = true;
                    if let Some(timer) = wb.timer.take() {
                        ctx.cancel_timer(timer);
                    }
                }
                self.try_finish_writeback(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, timer: TimerToken, ctx: &mut Context<StorageMsg>) {
        match &mut self.state {
            State::Phase1(p1) if p1.timer == Some(timer) => {
                p1.timer_expired = true;
                self.try_finish_phase1_round(ctx);
            }
            State::Writeback(wb) if wb.timer == Some(timer) => {
                wb.timer_expired = true;
                self.try_finish_writeback(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use crate::value::Value;
    use crate::writer::Writer;
    use rqs_core::threshold::ThresholdConfig;
    use rqs_sim::{NetworkScript, World};

    /// Builds a full world over the §1.2 system: 5 servers, 1 writer,
    /// 1 reader; returns (world, server_ids, writer_id, reader_id).
    fn build_world() -> (World<StorageMsg>, Vec<NodeId>, NodeId, NodeId) {
        let rqs = Arc::new(ThresholdConfig::crash_fast(5, 1).build().unwrap());
        let mut world = World::new(NetworkScript::synchronous());
        let servers: Vec<NodeId> = (0..5)
            .map(|_| world.add_node(Box::new(Server::new())))
            .collect();
        let writer = world.add_node(Box::new(Writer::new(rqs.clone(), servers.clone())));
        let reader = world.add_node(Box::new(Reader::new(rqs, servers.clone())));
        (world, servers, writer, reader)
    }

    #[test]
    fn read_of_unwritten_register_returns_bottom() {
        let (mut world, _s, _w, reader) = build_world();
        world.invoke::<Reader>(reader, |r, ctx| r.start_read(ctx));
        world.run_to_quiescence();
        let out = &world.node_as::<Reader>(reader).outcomes()[0];
        assert!(out.returned.is_initial());
        assert_eq!(out.rounds, 1, "uncontended synchronous read is fast");
    }

    #[test]
    fn read_after_fast_write_is_one_round() {
        let (mut world, _s, writer, reader) = build_world();
        world.invoke::<Writer>(writer, |w, ctx| w.start_write(Value::from(7u64), ctx));
        world.run_to_quiescence();
        assert_eq!(world.node_as::<Writer>(writer).outcomes()[0].rounds, 1);
        world.invoke::<Reader>(reader, |r, ctx| r.start_read(ctx));
        world.run_to_quiescence();
        let out = &world.node_as::<Reader>(reader).outcomes()[0];
        assert_eq!(out.returned.val, Value::from(7u64));
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn read_sees_latest_of_multiple_writes() {
        let (mut world, _s, writer, reader) = build_world();
        for v in [1u64, 2, 3] {
            world.invoke::<Writer>(writer, |w, ctx| w.start_write(Value::from(v), ctx));
            world.run_to_quiescence();
        }
        world.invoke::<Reader>(reader, |r, ctx| r.start_read(ctx));
        world.run_to_quiescence();
        let out = &world.node_as::<Reader>(reader).outcomes()[0];
        assert_eq!(out.returned, TsVal::new(3, Value::from(3u64)));
    }

    #[test]
    fn two_crashes_degrade_but_stay_correct() {
        use rqs_sim::Time;
        let (mut world, servers, writer, reader) = build_world();
        world.crash_at(servers[3], Time::ZERO);
        world.crash_at(servers[4], Time::ZERO);
        world.step(); // process crash events
        world.step();
        world.invoke::<Writer>(writer, |w, ctx| w.start_write(Value::from(9u64), ctx));
        world.run_to_quiescence();
        let wout = &world.node_as::<Writer>(writer).outcomes()[0];
        assert!(wout.rounds >= 2, "no class-1 quorum available");
        world.invoke::<Reader>(reader, |r, ctx| r.start_read(ctx));
        world.run_to_quiescence();
        let out = &world.node_as::<Reader>(reader).outcomes()[0];
        assert_eq!(out.returned.val, Value::from(9u64));
    }

    #[test]
    fn resend_repeats_phase_without_advancing() {
        use rqs_sim::Time;
        let rqs = Arc::new(ThresholdConfig::crash_fast(5, 1).build().unwrap());
        let servers: Vec<NodeId> = (0..5).map(NodeId).collect();
        let mut r = Reader::new(rqs, servers);
        // Idle readers have nothing to resend.
        let mut c = Context::new(NodeId(5), Time(0), 0);
        assert!(!r.resend_round(&mut c));
        assert!(c.sent().is_empty());
        // Phase-1 resend repeats the same read round verbatim.
        let mut c = Context::new(NodeId(5), Time(0), 0);
        r.start_read(&mut c);
        let mut c2 = Context::new(NodeId(5), Time(9), 100);
        assert!(r.resend_round(&mut c2));
        assert_eq!(c2.sent().len(), 5);
        match &c2.sent()[0].1 {
            StorageMsg::Rd { read_no, rnd } => assert_eq!((*read_no, *rnd), (1, 1)),
            other => panic!("{other:?}"),
        }
        assert!(c2.armed_timers().is_empty(), "resend arms no timer");
        let State::Phase1(p1) = &r.state else {
            panic!("still in phase 1");
        };
        assert_eq!(p1.read_rnd, 1, "resend must not advance the round");
    }

    #[test]
    fn eager_read_settles_at_all_n_acks() {
        use rqs_sim::Time;
        let rqs = Arc::new(ThresholdConfig::crash_fast(5, 1).build().unwrap());
        let servers: Vec<NodeId> = (0..5).map(NodeId).collect();
        let mut r = Reader::new(rqs, servers);
        r.set_eager_completion(true);
        let mut c = Context::new(NodeId(5), Time(0), 0);
        r.start_read(&mut c);
        let timer = c.armed_timers()[0].1;
        let ack = || StorageMsg::RdAck {
            read_no: 1,
            rnd: 1,
            history: Arc::new(History::new()),
        };
        for i in 0..4 {
            let mut c2 = Context::new(NodeId(5), Time(2), 1);
            r.on_message(NodeId(i), ack(), &mut c2);
            assert!(r.outcomes().is_empty(), "n−1 acks must await the timer");
        }
        // The nth ack settles phase 1 at ack time and cancels the timer;
        // the unwritten register resolves to ⟨0,⊥⟩ in one round.
        let mut c2 = Context::new(NodeId(5), Time(3), 2);
        r.on_message(NodeId(4), ack(), &mut c2);
        assert_eq!(c2.cancelled_timers(), &[timer]);
        let out = &r.outcomes()[0];
        assert!(out.returned.is_initial());
        assert_eq!(out.rounds, 1);
        assert_eq!(out.completed_at, Time(3));
    }

    #[test]
    fn resend_during_writeback_repeats_writeback() {
        use rqs_sim::Time;
        let mut r = {
            let rqs = Arc::new(ThresholdConfig::crash_fast(5, 1).build().unwrap());
            let servers: Vec<NodeId> = (0..5).map(NodeId).collect();
            Reader::new(rqs, servers)
        };
        let mut c = Context::new(NodeId(5), Time(0), 0);
        r.read_no = 1;
        r.start_writeback(
            TsVal::new(4, Value::from(9u64)),
            WbKind::FinalRound2,
            1,
            Time(0),
            &mut c,
        );
        let mut c2 = Context::new(NodeId(5), Time(7), 50);
        assert!(r.resend_round(&mut c2));
        assert_eq!(c2.sent().len(), 5);
        match &c2.sent()[0].1 {
            StorageMsg::Wr { ts, rnd, .. } => assert_eq!((*ts, *rnd), (4, 2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "read already in progress")]
    fn overlapping_reads_rejected() {
        let (mut world, _s, _w, reader) = build_world();
        world.invoke::<Reader>(reader, |r, ctx| {
            r.start_read(ctx);
            r.start_read(ctx);
        });
    }

    #[test]
    fn repeated_reads_increment_read_no() {
        let (mut world, _s, _w, reader) = build_world();
        for _ in 0..3 {
            world.invoke::<Reader>(reader, |r, ctx| r.start_read(ctx));
            world.run_to_quiescence();
        }
        let outs = world.node_as::<Reader>(reader).outcomes();
        assert_eq!(outs.len(), 3);
        assert_eq!(
            outs.iter().map(|o| o.read_no).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }
}
