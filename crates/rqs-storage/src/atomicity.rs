//! Atomicity (linearizability) checking for SWMR register histories.
//!
//! Because the writer attaches a unique, strictly increasing timestamp to
//! every write, checking atomicity of a complete execution reduces to
//! three timestamp conditions (the standard SWMR characterization):
//!
//! 1. **No fabrication** — every read returns `⟨0,⊥⟩` or the pair of a
//!    write that was *invoked* before the read responded;
//! 2. **Real-time order** — if operation `o1` responds before `o2` is
//!    invoked, then `ts(o2) ≥ ts(o1)` (with `ts(write)` the written
//!    timestamp and `ts(read)` the returned one); this covers both
//!    read-after-write freshness and read-after-read (no read inversion);
//! 3. **Unique associations** — no two writes share a timestamp, and a
//!    read's returned value matches the write with that timestamp.

use crate::value::{Timestamp, TsVal};
use core::fmt;
use rqs_sim::Time;

/// Kind of a recorded operation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpKind {
    /// A write (by the single writer).
    Write,
    /// A read (any reader).
    Read,
}

/// One completed operation of an execution.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Write or read.
    pub kind: OpKind,
    /// Identifies the invoking client (for error messages only).
    pub client: usize,
    /// The written pair (for writes) or returned pair (for reads).
    pub pair: TsVal,
    /// Invocation time.
    pub invoked_at: Time,
    /// Response time.
    pub completed_at: Time,
}

impl OpRecord {
    /// The operation's timestamp (written or returned).
    pub fn ts(&self) -> Timestamp {
        self.pair.ts
    }

    /// Human-readable one-liner used in violation reports.
    pub fn describe(&self) -> String {
        let what = match self.kind {
            OpKind::Write => "write",
            OpKind::Read => "read",
        };
        format!(
            "{}(client {}, {} @[{},{}])",
            what, self.client, self.pair, self.invoked_at, self.completed_at
        )
    }
}

/// A detected atomicity violation.
#[derive(Clone, Debug)]
pub enum AtomicityViolation {
    /// A read returned a pair no write produced (or a write from the
    /// future).
    Fabricated {
        /// Description of the offending read.
        read: String,
    },
    /// Two operations violate real-time timestamp order.
    StaleRead {
        /// Description of the earlier operation.
        earlier: String,
        /// Description of the later operation that went backwards.
        later: String,
    },
    /// Two writes share a timestamp, or a read's value mismatches the
    /// write with its timestamp.
    Inconsistent {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicityViolation::Fabricated { read } => {
                write!(f, "fabricated value: {read} returned a never-written pair")
            }
            AtomicityViolation::StaleRead { earlier, later } => {
                write!(
                    f,
                    "stale result: {later} follows {earlier} but has a lower timestamp"
                )
            }
            AtomicityViolation::Inconsistent { detail } => write!(f, "inconsistent: {detail}"),
        }
    }
}

impl std::error::Error for AtomicityViolation {}

/// Checks a complete execution history for SWMR atomicity.
///
/// A thin wrapper over the incremental
/// [`AtomicityChecker`](crate::checker::AtomicityChecker): every record is
/// streamed into the sink and the history is then declared complete. Costs
/// ~O(n log n) over the whole history where the reference pass is O(n²);
/// [`check_atomicity_reference`] keeps the quadratic executable
/// specification for differential testing.
///
/// # Errors
///
/// Returns the first violation found, in stream order.
pub fn check_atomicity(ops: &[OpRecord]) -> Result<(), AtomicityViolation> {
    let mut sink = crate::checker::AtomicityChecker::new();
    for op in ops {
        sink.observe(op);
    }
    sink.finish()
}

/// The original O(n²) whole-history checker, kept verbatim as the
/// executable specification the streaming sink is tested against: three
/// full passes (unique write timestamps, read sourcing, pairwise real-time
/// order). Verdicts (`Ok`/`Err`) always agree with [`check_atomicity`];
/// on histories with *multiple* violations the reported one may differ,
/// because the sink reports in arrival order and this pass by rule.
///
/// # Errors
///
/// Returns the first violation found (fabrication, then consistency, then
/// real-time order).
pub fn check_atomicity_reference(ops: &[OpRecord]) -> Result<(), AtomicityViolation> {
    let writes: Vec<&OpRecord> = ops.iter().filter(|o| o.kind == OpKind::Write).collect();

    // Unique timestamps across writes + value agreement.
    for (i, w1) in writes.iter().enumerate() {
        for w2 in &writes[i + 1..] {
            if w1.ts() == w2.ts() {
                return Err(AtomicityViolation::Inconsistent {
                    detail: format!(
                        "{} and {} share timestamp {}",
                        w1.describe(),
                        w2.describe(),
                        w1.ts()
                    ),
                });
            }
        }
    }

    // Reads return existing pairs from non-future writes.
    for read in ops.iter().filter(|o| o.kind == OpKind::Read) {
        if read.pair.is_initial() {
            continue;
        }
        let source = writes.iter().find(|w| w.ts() == read.ts());
        match source {
            None => {
                return Err(AtomicityViolation::Fabricated {
                    read: read.describe(),
                });
            }
            Some(w) => {
                if w.pair.val != read.pair.val {
                    return Err(AtomicityViolation::Inconsistent {
                        detail: format!(
                            "{} returned {} but the write with that timestamp wrote {}",
                            read.describe(),
                            read.pair,
                            w.pair
                        ),
                    });
                }
                if w.invoked_at > read.completed_at {
                    return Err(AtomicityViolation::Fabricated {
                        read: read.describe(),
                    });
                }
            }
        }
    }

    // Real-time order: completed-before implies timestamp order.
    for o1 in ops {
        for o2 in ops {
            if o1.completed_at < o2.invoked_at && o1.ts() > o2.ts() {
                return Err(AtomicityViolation::StaleRead {
                    earlier: o1.describe(),
                    later: o2.describe(),
                });
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn write(ts: Timestamp, v: u64, inv: u64, resp: u64) -> OpRecord {
        OpRecord {
            kind: OpKind::Write,
            client: 0,
            pair: TsVal::new(ts, Value::from(v)),
            invoked_at: Time(inv),
            completed_at: Time(resp),
        }
    }

    fn read(client: usize, ts: Timestamp, v: u64, inv: u64, resp: u64) -> OpRecord {
        let pair = if ts == 0 {
            TsVal::initial()
        } else {
            TsVal::new(ts, Value::from(v))
        };
        OpRecord {
            kind: OpKind::Read,
            client,
            pair,
            invoked_at: Time(inv),
            completed_at: Time(resp),
        }
    }

    #[test]
    fn sequential_history_is_atomic() {
        let ops = vec![
            write(1, 10, 0, 5),
            read(1, 1, 10, 6, 8),
            write(2, 20, 9, 12),
            read(2, 2, 20, 13, 15),
        ];
        assert!(check_atomicity(&ops).is_ok());
    }

    #[test]
    fn initial_read_before_writes_ok() {
        let ops = vec![read(1, 0, 0, 0, 2), write(1, 10, 3, 6)];
        assert!(check_atomicity(&ops).is_ok());
    }

    #[test]
    fn concurrent_read_may_return_old_or_new() {
        // Read overlaps the write: either outcome is atomic.
        let old = vec![write(1, 10, 5, 9), read(1, 0, 0, 4, 8)];
        assert!(check_atomicity(&old).is_ok());
        let new = vec![write(1, 10, 5, 9), read(1, 1, 10, 4, 8)];
        assert!(check_atomicity(&new).is_ok());
    }

    #[test]
    fn stale_read_after_write_detected() {
        let ops = vec![write(1, 10, 0, 5), read(1, 0, 0, 6, 8)];
        let err = check_atomicity(&ops).unwrap_err();
        assert!(matches!(err, AtomicityViolation::StaleRead { .. }), "{err}");
    }

    #[test]
    fn read_inversion_detected() {
        // rd1 returns ts2, then rd2 (after rd1) returns ts1: inversion.
        let ops = vec![
            write(1, 10, 0, 3),
            write(2, 20, 4, 20),
            read(1, 2, 20, 5, 7),
            read(2, 1, 10, 8, 10),
        ];
        let err = check_atomicity(&ops).unwrap_err();
        assert!(matches!(err, AtomicityViolation::StaleRead { .. }), "{err}");
    }

    #[test]
    fn fabricated_value_detected() {
        let ops = vec![write(1, 10, 0, 5), read(1, 7, 99, 6, 8)];
        let err = check_atomicity(&ops).unwrap_err();
        assert!(
            matches!(err, AtomicityViolation::Fabricated { .. }),
            "{err}"
        );
    }

    #[test]
    fn read_from_future_write_detected() {
        // Read completes before the write is even invoked.
        let ops = vec![read(1, 1, 10, 0, 2), write(1, 10, 5, 9)];
        let err = check_atomicity(&ops).unwrap_err();
        assert!(
            matches!(err, AtomicityViolation::Fabricated { .. }),
            "{err}"
        );
    }

    #[test]
    fn wrong_value_for_timestamp_detected() {
        let ops = vec![write(1, 10, 0, 5), read(1, 1, 11, 6, 8)];
        let err = check_atomicity(&ops).unwrap_err();
        assert!(
            matches!(err, AtomicityViolation::Inconsistent { .. }),
            "{err}"
        );
    }

    #[test]
    fn duplicate_write_timestamps_detected() {
        let ops = vec![write(1, 10, 0, 5), write(1, 11, 6, 9)];
        let err = check_atomicity(&ops).unwrap_err();
        assert!(
            matches!(err, AtomicityViolation::Inconsistent { .. }),
            "{err}"
        );
    }

    #[test]
    fn new_old_inversion_across_three_readers_detected() {
        // w2 is concurrent with all three reads; r1 sees the new value,
        // r2 (strictly after r1) sees the old one — inversion — and r3
        // sees the new one again. The oracle must flag the r1/r2 pair.
        let ops = vec![
            write(1, 10, 0, 2),
            write(2, 20, 3, 30), // long write, concurrent with every read
            read(1, 2, 20, 4, 6),
            read(2, 1, 10, 7, 9), // after r1 but older timestamp
            read(3, 2, 20, 10, 12),
        ];
        let err = check_atomicity(&ops).unwrap_err();
        match &err {
            AtomicityViolation::StaleRead { earlier, later } => {
                assert!(earlier.contains("client 1"), "{err}");
                assert!(later.contains("client 2"), "{err}");
            }
            other => panic!("expected StaleRead, got {other:?}"),
        }
        // Without the inverted read the same history is atomic.
        let fixed = vec![
            ops[0].clone(),
            ops[1].clone(),
            ops[2].clone(),
            read(2, 2, 20, 7, 9),
            ops[4].clone(),
        ];
        assert!(check_atomicity(&fixed).is_ok());
    }

    #[test]
    fn read_overlapping_two_writes_may_return_either_but_not_older() {
        // The read overlaps w3 and w4. Returning w2 (completed before the
        // read was invoked) would be fine; returning w1 — superseded by
        // w2 before the read began — is stale.
        let w1 = write(1, 10, 0, 3);
        let w2 = write(2, 20, 5, 8);
        let w3 = write(3, 30, 9, 15);
        let w4 = write(4, 40, 16, 20);
        for ts in [2u64, 3, 4] {
            let ops = vec![
                w1.clone(),
                w2.clone(),
                w3.clone(),
                w4.clone(),
                read(1, ts, ts * 10, 10, 17),
            ];
            assert!(
                check_atomicity(&ops).is_ok(),
                "ts {ts} is concurrent-or-current: allowed"
            );
        }
        let stale = vec![w1, w2, w3, w4, read(1, 1, 10, 10, 17)];
        let err = check_atomicity(&stale).unwrap_err();
        assert!(matches!(err, AtomicityViolation::StaleRead { .. }), "{err}");
    }

    #[test]
    fn incomplete_write_value_is_not_fabricated() {
        // A write that never completes (crashed writer) is recorded with a
        // far-future response; a concurrent read returning it is legal.
        let pending = OpRecord {
            kind: OpKind::Write,
            client: 0,
            pair: TsVal::new(1, Value::from(10u64)),
            invoked_at: Time(0),
            completed_at: Time::FAR_FUTURE,
        };
        let ops = vec![pending, read(1, 1, 10, 2, 4)];
        assert!(check_atomicity(&ops).is_ok());
    }

    #[test]
    fn violation_displays() {
        let ops = vec![write(1, 10, 0, 5), read(9, 0, 0, 6, 8)];
        let err = check_atomicity(&ops).unwrap_err();
        assert!(err.to_string().contains("stale"));
    }
}
