//! The deterministic event loop driving a set of automata.
//!
//! A [`World`] owns the nodes, the global clock and the event queue.
//! Events (message deliveries, timer expirations, crashes) execute in
//! `(time, sequence)` order, so executions are bit-for-bit reproducible —
//! the property the paper's indistinguishability arguments rely on.

use crate::network::{Envelope, Fate, FatePolicy};
use crate::node::{Automaton, Context, NodeId, TimerToken};
use crate::scenario::CrashMode;
use crate::sched::{fnv1a_fold, PendingEvent, PendingKind, SchedDecision, Scheduler};
use crate::time::Time;
use rqs_obs::{Obs, TraceKind, LANE_SYS};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Events in the queue.
#[derive(Debug)]
enum Event<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, token: TimerToken },
    Crash { node: NodeId, mode: CrashMode },
    Restart { node: NodeId },
}

struct Queued<M> {
    at: Time,
    seq: u64,
    event: Event<M>,
}

impl<M> Queued<M> {
    /// Payload-free view handed to schedulers.
    fn view(&self) -> PendingEvent {
        let kind = match &self.event {
            Event::Deliver { from, to, .. } => PendingKind::Deliver {
                from: *from,
                to: *to,
            },
            Event::Timer { node, token } => PendingKind::Timer {
                node: *node,
                token: token.0,
            },
            Event::Crash { node, .. } => PendingKind::Crash { node: *node },
            Event::Restart { node } => PendingKind::Restart { node: *node },
        };
        PendingEvent {
            at: self.at,
            seq: self.seq,
            kind,
        }
    }
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Drops every pending timer of `node` from a drained pending set (the
/// scheduled-step analogue of [`World::purge_node_timers`]).
fn purge_pending_timers<M>(pending: &mut Vec<Queued<M>>, node: usize) {
    pending.retain(|q| !matches!(&q.event, Event::Timer { node: n, .. } if n.0 == node));
}

/// One line of the execution trace (for debugging and figure rendering).
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// When the event executed.
    pub at: Time,
    /// Human-readable description.
    pub what: String,
}

/// Statistics accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Messages handed to the fate policy.
    pub messages_sent: usize,
    /// Messages actually delivered to a live node.
    pub messages_delivered: usize,
    /// Messages dropped by policy.
    pub messages_dropped: usize,
    /// Timer events fired.
    pub timers_fired: usize,
    /// Steps executed.
    pub steps: usize,
    /// Payload items carried by sent messages, as measured by the sizer
    /// installed with [`World::set_sizer`] (equals `messages_sent` when no
    /// sizer is installed — every message counts as one item).
    pub items_sent: usize,
}

/// The deterministic simulation world.
///
/// # Examples
///
/// ```
/// use rqs_sim::{World, Automaton, Context, NodeId, NetworkScript, TimerToken};
/// use std::any::Any;
///
/// struct Echo { got: Option<u32> }
/// impl Automaton<u32> for Echo {
///     fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
///         self.got = Some(msg);
///         if msg < 3 { ctx.send(from, msg + 1); }
///     }
///     fn as_any(&self) -> &dyn Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn Any { self }
/// }
///
/// let mut world = World::new(NetworkScript::synchronous());
/// let a = world.add_node(Box::new(Echo { got: None }));
/// let b = world.add_node(Box::new(Echo { got: None }));
/// world.post(a, b, 0u32); // kick off: a → b
/// world.run_to_quiescence();
/// assert_eq!(world.node_as::<Echo>(b).got, Some(2));
/// assert_eq!(world.node_as::<Echo>(a).got, Some(3));
/// ```
pub struct World<M> {
    nodes: Vec<Option<Box<dyn Automaton<M>>>>,
    crashed: Vec<bool>,
    crash_modes: Vec<CrashMode>,
    queue: BinaryHeap<Reverse<Queued<M>>>,
    held: Vec<(u32, Envelope<M>)>,
    cancelled_timers: HashSet<(usize, u64)>,
    now: Time,
    seq: u64,
    timer_counter: u64,
    policy: Box<dyn FatePolicy<M>>,
    scheduler: Option<Box<dyn Scheduler>>,
    default_delay: u64,
    sizer: Option<fn(&M) -> u64>,
    stats: WorldStats,
    trace: Option<Vec<TraceEntry>>,
    trace_fmt: Option<fn(&M) -> String>,
    obs: Obs,
}

impl<M: Clone + 'static> World<M> {
    /// Creates a world with the given fate policy.
    pub fn new(policy: impl FatePolicy<M> + 'static) -> Self {
        World {
            nodes: Vec::new(),
            crashed: Vec::new(),
            crash_modes: Vec::new(),
            queue: BinaryHeap::new(),
            held: Vec::new(),
            cancelled_timers: HashSet::new(),
            now: Time::ZERO,
            seq: 0,
            timer_counter: 0,
            policy: Box::new(policy),
            scheduler: None,
            default_delay: 1,
            sizer: None,
            stats: WorldStats::default(),
            trace: None,
            trace_fmt: None,
            obs: Obs::nop(),
        }
    }

    /// Installs a structured-trace observer: the world emits
    /// [`TraceKind::Deliver`] / [`TraceKind::Drop`] /
    /// [`TraceKind::Crash`] / [`TraceKind::Recover`] events for every
    /// dispatched network/fault event. Defaults to the zero-overhead
    /// no-op observer.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The installed structured-trace observer (no-op by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Replaces the fate policy mid-run (e.g. to end a synchronous period).
    pub fn set_policy(&mut self, policy: impl FatePolicy<M> + 'static) {
        self.policy = Box::new(policy);
    }

    /// Installs a [`Scheduler`]: from the next [`World::step`] on, the
    /// scheduler — not the `(time, sequence)` queue order — decides which
    /// pending event executes next (the adversarial-scheduler seam used
    /// by `rqs-check`). Without a scheduler the behaviour is exactly the
    /// historical deterministic order.
    pub fn set_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        self.scheduler = Some(scheduler);
    }

    /// Removes the scheduler, restoring the default deterministic order.
    pub fn clear_scheduler(&mut self) {
        self.scheduler = None;
    }

    /// A logical-state fingerprint for schedule-exploration deduplication:
    /// hashes every node's [`state_digest`](Automaton::state_digest), the
    /// crash flags, and the multiset of pending events — deliveries via
    /// `hash_msg`, timers by `(node, token)` — while deliberately ignoring
    /// delivery *times* and sequence numbers, so two executions that
    /// reached the same protocol state by different schedules collide.
    pub fn digest_with(&self, hash_msg: impl Fn(&M) -> u64) -> u64 {
        let mut events: Vec<u64> = Vec::with_capacity(self.queue.len() + self.held.len());
        for Reverse(q) in self.queue.iter() {
            let h = match &q.event {
                Event::Deliver { from, to, msg } => fnv1a_fold(
                    fnv1a_fold(fnv1a_fold(1, from.0 as u64), to.0 as u64),
                    hash_msg(msg),
                ),
                Event::Timer { node, token } => {
                    if self.cancelled_timers.contains(&(node.0, token.0)) {
                        continue; // semantically already gone
                    }
                    fnv1a_fold(fnv1a_fold(2, node.0 as u64), token.0)
                }
                Event::Crash { node, mode } => {
                    fnv1a_fold(fnv1a_fold(3, node.0 as u64), *mode as u64)
                }
                Event::Restart { node } => fnv1a_fold(4, node.0 as u64),
            };
            events.push(h);
        }
        for (tag, env) in &self.held {
            events.push(fnv1a_fold(
                fnv1a_fold(
                    fnv1a_fold(fnv1a_fold(5, *tag as u64), env.from.0 as u64),
                    env.to.0 as u64,
                ),
                hash_msg(&env.msg),
            ));
        }
        events.sort_unstable();
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for e in events {
            acc = fnv1a_fold(acc, e);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let d = node.as_ref().map_or(0, |n| n.state_digest());
            acc = fnv1a_fold(acc, d);
            acc = fnv1a_fold(acc, self.crashed[i] as u64);
            acc = fnv1a_fold(acc, self.crash_modes[i] as u64);
        }
        acc
    }

    /// Installs a payload sizer: every sent message contributes
    /// `sizer(&msg)` to [`WorldStats::items_sent`] (batched message types
    /// report their inner item count; without a sizer each message counts
    /// as one item). Survives [`World::set_policy`] swaps.
    pub fn set_sizer(&mut self, sizer: fn(&M) -> u64) {
        self.sizer = Some(sizer);
    }

    /// Enables the execution trace; `fmt` renders message payloads.
    pub fn enable_trace(&mut self, fmt: fn(&M) -> String) {
        self.trace = Some(Vec::new());
        self.trace_fmt = Some(fmt);
    }

    /// The trace collected so far (empty when tracing is disabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Registers a node; ids are assigned densely from 0.
    pub fn add_node(&mut self, node: Box<dyn Automaton<M>>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        self.crashed.push(false);
        self.crash_modes.push(CrashMode::Retain);
        id
    }

    /// Replaces the automaton at `id` (Byzantine behaviour injection /
    /// state forging). The new automaton's `on_start` is *not* called.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn replace_node(&mut self, id: NodeId, node: Box<dyn Automaton<M>>) {
        self.nodes[id.0] = Some(node);
        self.log(format!("{id} replaced (byzantine substitution)"));
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Run statistics.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the node crashed (or was crashed by schedule).
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.crashed[id.0]
    }

    /// Immutable, downcast access to a node's concrete state.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the concrete type does not match.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> &T {
        let Some(slot) = self.nodes.get(id.0) else {
            panic!(
                "{id}: unknown node id ({} nodes registered)",
                self.nodes.len()
            );
        };
        slot.as_ref()
            .expect("node is mid-step")
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| {
                panic!(
                    "{id}: expected automaton of type {}, found a different type",
                    std::any::type_name::<T>()
                )
            })
    }

    /// Calls the automaton's `on_start` hooks, in id order.
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            if self.crashed[i] {
                continue;
            }
            self.step_node(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// Schedules a crash: from time `t` the node neither receives nor
    /// sends. (A crash between sends within one step is expressed by a
    /// [`NetworkScript`](crate::NetworkScript) dropping the tail of its
    /// messages instead.) Equivalent to
    /// [`crash_at_mode`](World::crash_at_mode) with [`CrashMode::Retain`].
    pub fn crash_at(&mut self, node: NodeId, t: Time) {
        self.crash_at_mode(node, t, CrashMode::Retain);
    }

    /// Schedules a crash of `node` at `t` with an explicit [`CrashMode`]:
    /// `Retain` restarts with in-memory state intact (the node's state
    /// plays the role of stable storage), `Amnesia` discards all volatile
    /// state at restart and rebuilds the node from its durable store via
    /// [`Automaton::restore_state`]. In both modes the crash purges the
    /// node's pending self-timers — timers are volatile state and must
    /// not survive into the post-restart execution.
    pub fn crash_at_mode(&mut self, node: NodeId, t: Time, mode: CrashMode) {
        self.push(t, Event::Crash { node, mode });
    }

    /// Schedules a restart: from time `t` the node processes messages and
    /// timers again. What state it resumes with depends on the mode of
    /// the crash that took it down ([`CrashMode`]). Messages delivered
    /// while it was crashed stay lost.
    pub fn restart_at(&mut self, node: NodeId, t: Time) {
        self.push(t, Event::Restart { node });
    }

    /// Invokes an operation on a node immediately (at the current time):
    /// the closure plays the role of an external invocation step (e.g.
    /// `write(v)` arriving at a client). Outputs are routed as usual.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the concrete type does not match.
    pub fn invoke<T: 'static>(&mut self, id: NodeId, f: impl FnOnce(&mut T, &mut Context<M>)) {
        assert!(
            id.0 < self.nodes.len(),
            "{id}: unknown node id ({} nodes registered)",
            self.nodes.len()
        );
        self.step_node(id, |node, ctx| {
            let concrete = node.as_any_mut().downcast_mut::<T>().unwrap_or_else(|| {
                panic!(
                    "{id}: expected automaton of type {}, found a different type",
                    std::any::type_name::<T>()
                )
            });
            f(concrete, ctx);
        });
    }

    /// Injects a message from `from` to `to` at the current time, subject
    /// to the fate policy (useful to bootstrap an execution).
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.route(Envelope {
            from,
            to,
            msg,
            sent_at: self.now,
        });
    }

    /// Releases all messages held under `tag`: they are re-routed with the
    /// default delay from the current time.
    pub fn release(&mut self, tag: u32) {
        let mut released = Vec::new();
        self.held.retain(|(t, env)| {
            if *t == tag {
                released.push(env.clone());
                false
            } else {
                true
            }
        });
        for env in released {
            let at = self.now + self.default_delay;
            self.log(format!(
                "release tag {tag}: {} → {} delivered at {at}",
                env.from, env.to
            ));
            self.push(
                at,
                Event::Deliver {
                    from: env.from,
                    to: env.to,
                    msg: env.msg,
                },
            );
        }
    }

    /// Number of messages currently held (all tags).
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Executes a single event; returns `false` when the queue is empty.
    ///
    /// Without a scheduler, events execute in deterministic
    /// `(time, sequence)` order. With one (see [`World::set_scheduler`]),
    /// the scheduler picks among all pending events and the clock only
    /// moves forward (delivering a "late" event early keeps the current
    /// time — the adversarial asynchronous semantics).
    pub fn step(&mut self) -> bool {
        if self.scheduler.is_some() {
            return self.step_scheduled();
        }
        let Some(Reverse(q)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(q.at >= self.now, "time went backwards");
        self.now = q.at;
        self.stats.steps += 1;
        self.dispatch(q.event);
        true
    }

    /// One scheduler-controlled step: purge no-op events, present the
    /// pending set in canonical order, apply the scheduler's decision.
    fn step_scheduled(&mut self) -> bool {
        // Drain the heap: pops come out in (time, sequence) order, which
        // is exactly the canonical order schedulers index into.
        let mut pending: Vec<Queued<M>> = Vec::with_capacity(self.queue.len());
        while let Some(Reverse(q)) = self.queue.pop() {
            pending.push(q);
        }
        // Purge events that would be no-ops anyway (cancelled timers,
        // timers of crashed nodes, deliveries to crashed nodes) so the
        // explorer does not branch over them.
        let crashed = &self.crashed;
        let cancelled = &mut self.cancelled_timers;
        pending.retain(|q| match &q.event {
            Event::Timer { node, token } => {
                !crashed[node.0] && !cancelled.remove(&(node.0, token.0))
            }
            Event::Deliver { to, .. } => !crashed[to.0],
            _ => true,
        });
        if pending.is_empty() {
            return false;
        }
        let views: Vec<PendingEvent> = pending.iter().map(Queued::view).collect();
        let mut decision = self
            .scheduler
            .as_mut()
            .expect("scheduler present")
            .choose(&views);
        // Only deliveries may be dropped; degrade to Deliver.
        if let SchedDecision::Drop(i) = decision {
            if !views[i.min(views.len() - 1)].kind.is_deliver() {
                decision = SchedDecision::Deliver(i);
            }
        }
        self.stats.steps += 1;
        match decision {
            SchedDecision::Deliver(i) => {
                let q = pending.swap_remove(i.min(views.len() - 1));
                self.requeue(pending);
                if q.at > self.now {
                    self.now = q.at;
                }
                self.dispatch(q.event);
            }
            SchedDecision::Drop(i) => {
                let q = pending.swap_remove(i.min(views.len() - 1));
                self.requeue(pending);
                if let Event::Deliver { from, to, .. } = q.event {
                    self.stats.messages_dropped += 1;
                    self.obs.emit(
                        TraceKind::Drop,
                        self.now.ticks(),
                        to.0 as u64,
                        LANE_SYS,
                        from.0 as u64,
                        0,
                    );
                    self.log(format!("{from} → {to}: dropped by scheduler"));
                }
            }
            SchedDecision::Crash(node) => {
                if node < self.crashed.len() {
                    self.crashed[node] = true;
                    self.crash_modes[node] = CrashMode::Retain;
                    purge_pending_timers(&mut pending, node);
                    self.cancelled_timers.retain(|(n, _)| *n != node);
                    self.log(format!("n{node} crashed by scheduler"));
                }
                self.requeue(pending);
            }
            SchedDecision::CrashRecover(node) => {
                if node < self.crashed.len() && !self.crashed[node] {
                    purge_pending_timers(&mut pending, node);
                    self.cancelled_timers.retain(|(n, _)| *n != node);
                    let replayed = self.nodes[node].as_mut().map_or(0, |n| n.restore_state());
                    self.log(format!(
                        "n{node} amnesia-crashed and recovered by scheduler \
                         ({replayed} log records replayed)"
                    ));
                }
                self.requeue(pending);
            }
        }
        true
    }

    fn requeue(&mut self, pending: Vec<Queued<M>>) {
        for q in pending {
            self.queue.push(Reverse(q));
        }
    }

    /// Executes one dequeued event at the current time.
    fn dispatch(&mut self, event: Event<M>) {
        match event {
            Event::Crash { node, mode } => {
                self.crashed[node.0] = true;
                self.crash_modes[node.0] = mode;
                // Timers are volatile state: a timer armed before the
                // crash must not fire after a restart (in either mode).
                self.purge_node_timers(node.0);
                self.obs.emit(
                    TraceKind::Crash,
                    self.now.ticks(),
                    node.0 as u64,
                    LANE_SYS,
                    mode as u64,
                    0,
                );
                self.log(format!("{node} crashed ({})", mode.label()));
            }
            Event::Restart { node } => {
                self.crashed[node.0] = false;
                if self.crash_modes[node.0] == CrashMode::Amnesia {
                    self.crash_modes[node.0] = CrashMode::Retain;
                    let replayed = self.nodes[node.0].as_mut().map_or(0, |n| n.restore_state());
                    self.obs.emit(
                        TraceKind::Recover,
                        self.now.ticks(),
                        node.0 as u64,
                        LANE_SYS,
                        replayed as u64,
                        1,
                    );
                    self.log(format!(
                        "{node} restarted (amnesia: {replayed} log records replayed)"
                    ));
                } else {
                    self.obs.emit(
                        TraceKind::Recover,
                        self.now.ticks(),
                        node.0 as u64,
                        LANE_SYS,
                        0,
                        0,
                    );
                    self.log(format!("{node} restarted"));
                }
            }
            Event::Deliver { from, to, msg } => {
                if self.crashed[to.0] {
                    self.obs.emit(
                        TraceKind::Drop,
                        self.now.ticks(),
                        to.0 as u64,
                        LANE_SYS,
                        from.0 as u64,
                        1,
                    );
                    self.log(format!("{from} → {to}: dropped (receiver crashed)"));
                    return;
                }
                self.stats.messages_delivered += 1;
                self.obs.emit(
                    TraceKind::Deliver,
                    self.now.ticks(),
                    to.0 as u64,
                    LANE_SYS,
                    from.0 as u64,
                    0,
                );
                if let Some(fmt) = self.trace_fmt {
                    self.log(format!("{from} → {to}: {}", fmt(&msg)));
                }
                self.step_node(to, |node, ctx| node.on_message(from, msg, ctx));
            }
            Event::Timer { node, token } => {
                if self.crashed[node.0] || self.cancelled_timers.remove(&(node.0, token.0)) {
                    return;
                }
                self.stats.timers_fired += 1;
                self.log(format!("{node}: timer {} fired", token.0));
                self.step_node(node, |node, ctx| node.on_timer(token, ctx));
            }
        }
    }

    /// Runs until the queue is empty or `max_steps` events executed;
    /// returns the number of steps taken.
    ///
    /// # Panics
    ///
    /// Panics if `max_steps` is exhausted — quiescence was expected.
    pub fn run_to_quiescence_bounded(&mut self, max_steps: usize) -> usize {
        for taken in 0..max_steps {
            if !self.step() {
                return taken;
            }
        }
        panic!("no quiescence after {max_steps} steps");
    }

    /// Runs until the queue is empty (bounded at 10 million steps).
    pub fn run_to_quiescence(&mut self) -> usize {
        self.run_to_quiescence_bounded(10_000_000)
    }

    /// Runs until `pred(self)` holds, checking after every step.
    ///
    /// Returns `true` if the predicate held, `false` if the queue drained
    /// first.
    ///
    /// # Panics
    ///
    /// Panics after 10 million steps.
    pub fn run_until(&mut self, mut pred: impl FnMut(&World<M>) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        for _ in 0..10_000_000usize {
            if !self.step() {
                return pred(self);
            }
            if pred(self) {
                return true;
            }
        }
        panic!("run_until: no progress after 10M steps");
    }

    /// Runs until `pred(self)` holds or `max_steps` events executed;
    /// returns whether the predicate held. Unlike [`World::run_until`],
    /// exhausting the budget is not an error — use this when the predicate
    /// may be unreachable (e.g. waiting for termination that faults might
    /// prevent).
    pub fn run_until_bounded(
        &mut self,
        mut pred: impl FnMut(&World<M>) -> bool,
        max_steps: usize,
    ) -> bool {
        if pred(self) {
            return true;
        }
        for _ in 0..max_steps {
            if !self.step() {
                return pred(self);
            }
            if pred(self) {
                return true;
            }
        }
        false
    }

    /// Runs all events scheduled strictly before `deadline`.
    pub fn run_before(&mut self, deadline: Time) {
        loop {
            match self.queue.peek() {
                Some(Reverse(q)) if q.at < deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    // ---- internals ----------------------------------------------------

    fn push(&mut self, at: Time, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, event }));
    }

    /// Removes every queued timer of `node` (and its stale cancellation
    /// marks): called at crash time so no pre-crash timer leaks into the
    /// post-restart execution.
    fn purge_node_timers(&mut self, node: usize) {
        let had_timers = self
            .queue
            .iter()
            .any(|Reverse(q)| matches!(&q.event, Event::Timer { node: n, .. } if n.0 == node));
        if had_timers {
            let drained = std::mem::take(&mut self.queue);
            self.queue = drained
                .into_iter()
                .filter(
                    |Reverse(q)| !matches!(&q.event, Event::Timer { node: n, .. } if n.0 == node),
                )
                .collect();
        }
        self.cancelled_timers.retain(|(n, _)| *n != node);
    }

    fn log(&mut self, what: String) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry { at: self.now, what });
        }
    }

    fn step_node(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Automaton<M>, &mut Context<M>)) {
        if self.crashed[id.0] {
            return;
        }
        let mut node = self.nodes[id.0].take().expect("re-entrant step on node");
        let mut ctx = Context::new(id, self.now, self.timer_counter);
        f(node.as_mut(), &mut ctx);
        self.timer_counter = ctx.timer_counter;
        self.nodes[id.0] = Some(node);
        // Route outputs.
        for (to, msg) in ctx.outbox {
            self.route(Envelope {
                from: id,
                to,
                msg,
                sent_at: self.now,
            });
        }
        for (delay, token) in ctx.timers {
            let at = self.now + delay.max(1);
            self.push(at, Event::Timer { node: id, token });
        }
        for token in ctx.cancelled {
            self.cancelled_timers.insert((id.0, token.0));
        }
    }

    fn route(&mut self, env: Envelope<M>) {
        self.stats.messages_sent += 1;
        self.stats.items_sent += self.sizer.map_or(1, |s| s(&env.msg)) as usize;
        match self.policy.fate(&env) {
            Fate::Deliver { delay } => {
                let at = self.now + delay.max(1);
                self.push(
                    at,
                    Event::Deliver {
                        from: env.from,
                        to: env.to,
                        msg: env.msg,
                    },
                );
            }
            Fate::DeliverAt(t) => {
                let at = if t <= self.now { self.now + 1 } else { t };
                self.push(
                    at,
                    Event::Deliver {
                        from: env.from,
                        to: env.to,
                        msg: env.msg,
                    },
                );
            }
            Fate::Duplicate { first, second } => {
                let copy = Event::Deliver {
                    from: env.from,
                    to: env.to,
                    msg: env.msg.clone(),
                };
                self.push(self.now + first.max(1), copy);
                self.log(format!("{} → {}: duplicated", env.from, env.to));
                self.push(
                    self.now + second.max(1),
                    Event::Deliver {
                        from: env.from,
                        to: env.to,
                        msg: env.msg,
                    },
                );
            }
            Fate::Hold(tag) => {
                self.log(format!("{} → {}: held (tag {tag})", env.from, env.to));
                self.held.push((tag, env));
            }
            Fate::Drop => {
                self.stats.messages_dropped += 1;
                self.obs.emit(
                    TraceKind::Drop,
                    self.now.ticks(),
                    env.to.0 as u64,
                    LANE_SYS,
                    env.from.0 as u64,
                    0,
                );
                self.log(format!("{} → {}: dropped by policy", env.from, env.to));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetworkScript, Rule, Selector};
    use std::any::Any;

    /// Test automaton: counts pings, pongs back until a limit.
    struct PingPong {
        limit: u32,
        received: Vec<u32>,
        timer_fired: bool,
    }

    impl PingPong {
        fn new(limit: u32) -> Self {
            PingPong {
                limit,
                received: Vec::new(),
                timer_fired: false,
            }
        }
    }

    impl Automaton<u32> for PingPong {
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.received.push(msg);
            if msg < self.limit {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, _t: TimerToken, _ctx: &mut Context<u32>) {
            self.timer_fired = true;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_world() -> (World<u32>, NodeId, NodeId) {
        let mut w = World::new(NetworkScript::synchronous());
        let a = w.add_node(Box::new(PingPong::new(4)));
        let b = w.add_node(Box::new(PingPong::new(4)));
        (w, a, b)
    }

    #[test]
    fn ping_pong_runs_to_quiescence() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, 0);
        let steps = w.run_to_quiescence();
        assert!(steps > 0);
        assert_eq!(w.node_as::<PingPong>(b).received, vec![0, 2, 4]);
        assert_eq!(w.node_as::<PingPong>(a).received, vec![1, 3]);
        // 5 deliveries at times 1..=5
        assert_eq!(w.now(), Time(5));
        assert_eq!(w.stats().messages_delivered, 5);
    }

    #[test]
    fn determinism() {
        let run = || {
            let (mut w, a, b) = two_node_world();
            w.post(a, b, 0);
            w.run_to_quiescence();
            (
                w.now(),
                w.stats(),
                w.node_as::<PingPong>(a).received.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_stops_processing() {
        let (mut w, a, b) = two_node_world();
        w.crash_at(b, Time(2));
        w.post(a, b, 0);
        w.run_to_quiescence();
        // b receives at t1 (msg 0), replies; a receives at t2 (msg 1),
        // replies; b crashed at t2 so the t3 delivery is dropped.
        assert_eq!(w.node_as::<PingPong>(b).received, vec![0]);
        assert_eq!(w.node_as::<PingPong>(a).received, vec![1]);
        assert!(w.is_crashed(b));
        assert!(!w.is_crashed(a));
    }

    #[test]
    fn restart_resumes_processing_with_retained_state() {
        let (mut w, a, b) = two_node_world();
        w.crash_at(b, Time(2));
        w.restart_at(b, Time(10));
        w.post(a, b, 0);
        w.run_to_quiescence();
        // b got msg 0 before crashing; the t3 delivery was lost.
        assert_eq!(w.node_as::<PingPong>(b).received, vec![0]);
        assert!(!w.is_crashed(b));
        // After restart, b processes again — state intact.
        w.post(a, b, 7);
        w.run_to_quiescence();
        assert_eq!(w.node_as::<PingPong>(b).received, vec![0, 7]);
    }

    /// Arms a 5-tick timer on every message; restore_state clears the
    /// volatile payload (simulating a node whose durable store is empty).
    struct TimerHolder {
        fired: usize,
        volatile: u32,
        restores: usize,
    }

    impl Automaton<u32> for TimerHolder {
        fn on_message(&mut self, _f: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.volatile = msg;
            ctx.set_timer(5);
        }
        fn on_timer(&mut self, _t: TimerToken, _ctx: &mut Context<u32>) {
            self.fired += 1;
        }
        fn restore_state(&mut self) -> usize {
            self.volatile = 0;
            self.restores += 1;
            0
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn crash_purges_pending_self_timers_in_both_modes() {
        // Regression: a timer armed before a crash used to survive the
        // crash and fire after a retain-restart. Timers are volatile
        // state and must die with the node in either crash mode.
        for mode in [CrashMode::Retain, CrashMode::Amnesia] {
            let mut w = World::new(NetworkScript::synchronous());
            let a = w.add_node(Box::new(TimerHolder {
                fired: 0,
                volatile: 0,
                restores: 0,
            }));
            w.post(a, a, 42); // delivered at t1, arms a timer for t6
            w.crash_at_mode(a, Time(2), mode);
            w.restart_at(a, Time(3)); // restart well before the timer's t6
            w.run_to_quiescence();
            let n = w.node_as::<TimerHolder>(a);
            assert_eq!(
                n.fired,
                0,
                "pre-crash timer fired after a {} restart",
                mode.label()
            );
            match mode {
                CrashMode::Retain => {
                    assert_eq!(n.volatile, 42, "retain restart must keep state");
                    assert_eq!(n.restores, 0);
                }
                CrashMode::Amnesia => {
                    assert_eq!(n.volatile, 0, "amnesia restart must drop volatile state");
                    assert_eq!(n.restores, 1, "amnesia restart must call restore_state");
                }
            }
            assert!(!w.is_crashed(a));
        }
    }

    #[test]
    fn scheduler_crash_purges_timers_and_crash_recover_restores() {
        let mut w = World::new(NetworkScript::synchronous());
        let a = w.add_node(Box::new(TimerHolder {
            fired: 0,
            volatile: 0,
            restores: 0,
        }));
        let b = w.add_node(Box::new(TimerHolder {
            fired: 0,
            volatile: 0,
            restores: 0,
        }));
        w.post(a, a, 7); // arms a's timer at t1
        w.post(b, b, 9); // arms b's timer at t1
                         // Choice 1: deliver a's message (arms timer). Choice 2: deliver
                         // b's message. Choice 3: amnesia-crash-recover a (atomic), which
                         // must purge a's pending timer and call restore_state. Choice 4:
                         // retain-crash b by scheduler, purging b's timer.
        w.set_scheduler(Box::new(Scripted {
            script: vec![
                SchedDecision::Deliver(0),
                SchedDecision::Deliver(0),
                SchedDecision::CrashRecover(0),
                SchedDecision::Crash(1),
            ],
            pos: 0,
            seen: vec![],
        }));
        w.run_to_quiescence();
        let na = w.node_as::<TimerHolder>(a);
        assert_eq!(na.fired, 0, "crash-recover must purge pending self-timers");
        assert_eq!(na.restores, 1, "crash-recover must rebuild from the store");
        assert_eq!(na.volatile, 0);
        assert!(!w.is_crashed(a), "crash-recover leaves the node live");
        let nb = w.node_as::<TimerHolder>(b);
        assert_eq!(
            nb.fired, 0,
            "scheduler crash must purge pending self-timers"
        );
        assert_eq!(nb.restores, 0);
        assert!(w.is_crashed(b));
    }

    #[test]
    fn duplicate_fate_delivers_twice() {
        let mut w: World<u32> = World::new(|_e: &Envelope<u32>| Fate::Duplicate {
            first: 1,
            second: 3,
        });
        let a = w.add_node(Box::new(PingPong::new(0)));
        let b = w.add_node(Box::new(PingPong::new(0)));
        w.post(a, b, 9);
        w.run_to_quiescence();
        assert_eq!(w.node_as::<PingPong>(b).received, vec![9, 9]);
        assert_eq!(w.stats().messages_sent, 1);
        assert_eq!(w.stats().messages_delivered, 2);
    }

    #[test]
    fn sizer_counts_payload_items() {
        let (mut w, a, b) = two_node_world();
        w.set_sizer(|m| (*m as u64) + 1);
        w.post(a, b, 3); // b replies 4, which hits the limit
        w.run_to_quiescence();
        // two messages: sizes 4 and 5 → 9 items
        assert_eq!(w.stats().messages_sent, 2);
        assert_eq!(w.stats().items_sent, 9);
    }

    #[test]
    fn drop_rule() {
        let mut w = World::new(
            NetworkScript::synchronous().rule(Rule::always(Fate::Drop).to(Selector::Is(NodeId(0)))),
        );
        let a = w.add_node(Box::new(PingPong::new(9)));
        let b = w.add_node(Box::new(PingPong::new(9)));
        w.post(a, b, 0);
        w.run_to_quiescence();
        assert_eq!(w.node_as::<PingPong>(b).received, vec![0]);
        assert!(w.node_as::<PingPong>(a).received.is_empty());
        assert_eq!(w.stats().messages_dropped, 1);
    }

    #[test]
    fn hold_and_release() {
        let mut w = World::new(
            NetworkScript::synchronous()
                .rule(Rule::always(Fate::Hold(7)).between(Time(0), Time(1))),
        );
        let a = w.add_node(Box::new(PingPong::new(0)));
        let b = w.add_node(Box::new(PingPong::new(0)));
        w.post(a, b, 42);
        w.run_to_quiescence();
        assert!(w.node_as::<PingPong>(b).received.is_empty());
        assert_eq!(w.held_count(), 1);
        w.release(7);
        w.run_to_quiescence();
        assert_eq!(w.node_as::<PingPong>(b).received, vec![42]);
        assert_eq!(w.held_count(), 0);
    }

    #[test]
    fn deliver_at_absolute_time() {
        let mut w: World<u32> = World::new(|_e: &Envelope<u32>| Fate::DeliverAt(Time(50)));
        let a = w.add_node(Box::new(PingPong::new(0)));
        let b = w.add_node(Box::new(PingPong::new(0)));
        w.post(a, b, 1);
        w.run_to_quiescence();
        assert_eq!(w.now(), Time(50));
        assert_eq!(w.node_as::<PingPong>(b).received, vec![1]);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Automaton<u32> for TimerNode {
            fn on_message(&mut self, _f: NodeId, msg: u32, ctx: &mut Context<u32>) {
                let keep = ctx.set_timer(5);
                let drop_me = ctx.set_timer(5);
                ctx.cancel_timer(drop_me);
                if msg == 99 {
                    ctx.cancel_timer(keep);
                }
            }
            fn on_timer(&mut self, t: TimerToken, _ctx: &mut Context<u32>) {
                self.fired.push(t.0);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(NetworkScript::synchronous());
        let a = w.add_node(Box::new(TimerNode { fired: vec![] }));
        let ext = w.add_node(Box::new(PingPong::new(0)));
        w.post(ext, a, 1);
        w.run_to_quiescence();
        assert_eq!(w.node_as::<TimerNode>(a).fired.len(), 1);
        assert_eq!(w.stats().timers_fired, 1);
    }

    #[test]
    fn invoke_drives_operations() {
        let (mut w, a, b) = two_node_world();
        w.invoke::<PingPong>(a, |_node, ctx| {
            ctx.send(NodeId(1), 3);
        });
        w.run_to_quiescence();
        assert_eq!(w.node_as::<PingPong>(b).received, vec![3]);
        let _ = a;
    }

    #[test]
    fn run_until_predicate() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, 0);
        let reached = w.run_until(|w| w.now() >= Time(3));
        assert!(reached);
        assert!(w.now() >= Time(3));
        // Predicate never satisfied: drains queue, returns false.
        let reached = w.run_until(|w| w.now() >= Time(1000));
        assert!(!reached);
    }

    #[test]
    fn run_before_advances_clock() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, 0);
        w.run_before(Time(3));
        assert_eq!(w.now(), Time(3));
        // deliveries at t1, t2 done; t3+ pending
        assert_eq!(w.stats().messages_delivered, 2);
    }

    #[test]
    fn replace_node_swaps_behaviour() {
        let (mut w, a, b) = two_node_world();
        w.replace_node(b, Box::new(PingPong::new(0))); // never replies
        w.post(a, b, 0);
        w.run_to_quiescence();
        assert_eq!(w.node_as::<PingPong>(b).received, vec![0]);
        assert!(w.node_as::<PingPong>(a).received.is_empty());
    }

    #[test]
    fn trace_records_events() {
        let (mut w, a, b) = two_node_world();
        w.enable_trace(|m| format!("ping({m})"));
        w.post(a, b, 0);
        w.run_to_quiescence();
        let trace = w.trace();
        assert!(!trace.is_empty());
        assert!(trace.iter().any(|e| e.what.contains("ping(0)")));
    }

    #[test]
    #[should_panic(expected = "n1: expected automaton of type")]
    fn node_as_panic_names_node_and_type() {
        struct Other;
        impl Automaton<u32> for Other {
            fn on_message(&mut self, _f: NodeId, _m: u32, _c: &mut Context<u32>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let (mut w, _a, b) = two_node_world();
        w.replace_node(b, Box::new(Other));
        let _ = w.node_as::<PingPong>(b);
    }

    #[test]
    #[should_panic(expected = "n7: unknown node id (2 nodes registered)")]
    fn node_as_panic_names_unknown_id() {
        let (w, _a, _b) = two_node_world();
        let _ = w.node_as::<PingPong>(NodeId(7));
    }

    #[test]
    #[should_panic(expected = "n0: expected automaton of type")]
    fn invoke_panic_names_node_and_type() {
        struct Other;
        impl Automaton<u32> for Other {
            fn on_message(&mut self, _f: NodeId, _m: u32, _c: &mut Context<u32>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w: World<u32> = World::new(NetworkScript::synchronous());
        let a = w.add_node(Box::new(Other));
        w.invoke::<PingPong>(a, |_n, _c| {});
    }

    /// A scheduler driven by a scripted decision list, canonical beyond it.
    struct Scripted {
        script: Vec<SchedDecision>,
        pos: usize,
        seen: Vec<usize>,
    }

    impl Scheduler for Scripted {
        fn choose(&mut self, pending: &[PendingEvent]) -> SchedDecision {
            self.seen.push(pending.len());
            let d = self
                .script
                .get(self.pos)
                .copied()
                .unwrap_or(SchedDecision::CANONICAL);
            self.pos += 1;
            d
        }
    }

    #[test]
    fn canonical_scheduler_reproduces_default_run() {
        let run_default = || {
            let (mut w, a, b) = two_node_world();
            w.enable_trace(|m| format!("{m}"));
            w.post(a, b, 0);
            w.run_to_quiescence();
            let trace: Vec<String> = w.trace().iter().map(|e| format!("{e:?}")).collect();
            (w.now(), w.stats().messages_delivered, trace)
        };
        let run_scheduled = || {
            let (mut w, a, b) = two_node_world();
            w.enable_trace(|m| format!("{m}"));
            w.set_scheduler(Box::new(Scripted {
                script: vec![],
                pos: 0,
                seen: vec![],
            }));
            w.post(a, b, 0);
            w.run_to_quiescence();
            let trace: Vec<String> = w.trace().iter().map(|e| format!("{e:?}")).collect();
            (w.now(), w.stats().messages_delivered, trace)
        };
        assert_eq!(run_default(), run_scheduled());
    }

    #[test]
    fn scheduler_reorders_pending_events() {
        // a sends two messages to b in one invoke; the scheduler delivers
        // the second first.
        let (mut w, a, b) = two_node_world();
        w.invoke::<PingPong>(a, |_n, ctx| {
            ctx.send(NodeId(1), 10);
            ctx.send(NodeId(1), 20);
        });
        w.set_scheduler(Box::new(Scripted {
            script: vec![SchedDecision::Deliver(1)],
            pos: 0,
            seen: vec![],
        }));
        w.run_to_quiescence();
        assert_eq!(w.node_as::<PingPong>(b).received, vec![20, 10]);
        let _ = a;
    }

    #[test]
    fn scheduler_drop_and_crash_decisions() {
        let (mut w, a, b) = two_node_world();
        w.invoke::<PingPong>(a, |_n, ctx| {
            ctx.send(NodeId(1), 10);
            ctx.send(NodeId(1), 20);
        });
        // Drop the first message, then crash node 0 (the sender), then
        // deliver the rest canonically.
        w.set_scheduler(Box::new(Scripted {
            script: vec![SchedDecision::Drop(0), SchedDecision::Crash(0)],
            pos: 0,
            seen: vec![],
        }));
        w.run_to_quiescence();
        assert_eq!(w.node_as::<PingPong>(b).received, vec![20]);
        assert!(w.is_crashed(a));
        assert_eq!(w.stats().messages_dropped, 1);
        // b's reply (21) to the crashed a was purged, not delivered.
        assert!(w.node_as::<PingPong>(a).received.is_empty());
    }

    #[test]
    fn scheduler_deliver_index_clamped() {
        let (mut w, a, b) = two_node_world();
        w.post(a, b, 3);
        w.set_scheduler(Box::new(Scripted {
            script: vec![SchedDecision::Deliver(99)],
            pos: 0,
            seen: vec![],
        }));
        w.run_to_quiescence();
        assert_eq!(w.node_as::<PingPong>(b).received, vec![3]);
    }

    #[test]
    fn clock_never_goes_backwards_under_scheduler() {
        let mut w: World<u32> = World::new(NetworkScript::with_delay(1));
        let a = w.add_node(Box::new(PingPong::new(0)));
        let b = w.add_node(Box::new(PingPong::new(0)));
        // Two posts; deliver the later-sequenced one first, then the other.
        w.post(a, b, 1);
        w.post(a, b, 2);
        w.set_scheduler(Box::new(Scripted {
            script: vec![SchedDecision::Deliver(1), SchedDecision::Deliver(0)],
            pos: 0,
            seen: vec![],
        }));
        let t_before = w.now();
        w.run_to_quiescence();
        assert!(w.now() >= t_before);
        assert_eq!(w.node_as::<PingPong>(b).received, vec![2, 1]);
    }

    #[test]
    fn digest_ignores_schedule_but_sees_state() {
        let hash = |m: &u32| *m as u64;
        let (mut w1, a1, b1) = two_node_world();
        w1.post(a1, b1, 0);
        let (mut w2, a2, b2) = two_node_world();
        w2.post(a2, b2, 0);
        assert_eq!(w1.digest_with(hash), w2.digest_with(hash));
        // Executing the pending delivery changes the digest (message is
        // consumed, a reply becomes pending).
        let before = w1.digest_with(hash);
        w1.step();
        assert_ne!(before, w1.digest_with(hash));
        // Crashing a node changes the digest too.
        let before = w2.digest_with(hash);
        let now = w2.now();
        w2.crash_at(b2, now);
        w2.step();
        assert_ne!(before, w2.digest_with(hash));
    }

    #[test]
    fn start_calls_on_start() {
        struct Starter {
            started: bool,
        }
        impl Automaton<u32> for Starter {
            fn on_start(&mut self, _ctx: &mut Context<u32>) {
                self.started = true;
            }
            fn on_message(&mut self, _f: NodeId, _m: u32, _c: &mut Context<u32>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut w = World::new(NetworkScript::synchronous());
        let a = w.add_node(Box::new(Starter { started: false }));
        w.start();
        assert!(w.node_as::<Starter>(a).started);
    }
}
