//! Network modelling: delivery fates, scripted schedules, synchrony.
//!
//! The paper's executions are defined by *when* (and whether) each message
//! is delivered. The simulator routes every sent message through a
//! [`FatePolicy`], which decides its [`Fate`]:
//!
//! - `Deliver { delay }` — arrives after `delay` ticks (synchrony means
//!   `delay ≤ Δ`);
//! - `DeliverAt(t)` — arrives at an absolute time (used for "remains in
//!   transit until after round K" constructions);
//! - `Hold(tag)` — parked until the harness releases the tag (used for
//!   "delayed until some condition" constructions);
//! - `Drop` — never delivered (lossy channels of the consensus model, or
//!   messages a crashing process never sent).
//!
//! [`NetworkScript`] is a declarative rule list covering the schedules of
//! Figures 1, 4, 8 and 16; fully-custom policies can be provided as
//! closures.

use crate::node::NodeId;
use crate::time::Time;

/// A message in flight, as seen by fate policies.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
    /// Time the send substep executed.
    pub sent_at: Time,
}

/// The routing decision for one message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fate {
    /// Deliver after a relative delay (in ticks).
    Deliver {
        /// Ticks from the send time to the receive time; `0` is normalized
        /// to `1` (a message cannot arrive in the sending step).
        delay: u64,
    },
    /// Deliver at an absolute time (clamped to be after the send).
    DeliverAt(Time),
    /// Park until [`World::release`](crate::World::release) is called with
    /// the same tag, then deliver with the default delay.
    Hold(u32),
    /// Never deliver.
    Drop,
    /// Deliver two copies, after `first` and `second` ticks respectively
    /// (each normalized to at least 1). Models duplicating channels; the
    /// quorum automata are idempotent, so duplicates must be harmless.
    Duplicate {
        /// Delay of the first copy, in ticks.
        first: u64,
        /// Delay of the second copy, in ticks.
        second: u64,
    },
}

impl Fate {
    /// Deliver with the default synchronous delay (`Δ = 1`).
    pub const DEFAULT: Fate = Fate::Deliver { delay: 1 };
}

/// Decides the fate of every message. Implemented by [`NetworkScript`] and
/// by arbitrary closures.
pub trait FatePolicy<M> {
    /// Routing decision for `env` sent at time `env.sent_at`.
    fn fate(&mut self, env: &Envelope<M>) -> Fate;
}

impl<M, F> FatePolicy<M> for F
where
    F: FnMut(&Envelope<M>) -> Fate,
{
    fn fate(&mut self, env: &Envelope<M>) -> Fate {
        self(env)
    }
}

/// Matches a set of nodes in a [`Rule`].
#[derive(Clone, Debug, Default)]
pub enum Selector {
    /// Matches every node.
    #[default]
    Any,
    /// Matches exactly one node.
    Is(NodeId),
    /// Matches any node in the list.
    In(Vec<NodeId>),
    /// Matches any node *not* in the list.
    NotIn(Vec<NodeId>),
}

impl Selector {
    /// Does this selector match `node`?
    pub fn matches(&self, node: NodeId) -> bool {
        match self {
            Selector::Any => true,
            Selector::Is(n) => *n == node,
            Selector::In(v) => v.contains(&node),
            Selector::NotIn(v) => !v.contains(&node),
        }
    }
}

/// One scripted delivery rule: the first matching rule decides a message's
/// fate.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Sender filter.
    pub from: Selector,
    /// Receiver filter.
    pub to: Selector,
    /// Send-time window `[start, end)`; `end = None` means forever.
    pub window: (Time, Option<Time>),
    /// Fate applied when the rule matches.
    pub fate: Fate,
}

impl Rule {
    /// A rule matching all messages forever with the given fate.
    pub fn always(fate: Fate) -> Self {
        Rule {
            from: Selector::Any,
            to: Selector::Any,
            window: (Time::ZERO, None),
            fate,
        }
    }

    /// Restricts the sender.
    pub fn from(mut self, sel: Selector) -> Self {
        self.from = sel;
        self
    }

    /// Restricts the receiver.
    pub fn to(mut self, sel: Selector) -> Self {
        self.to = sel;
        self
    }

    /// Restricts the send-time window to `[start, end)`.
    pub fn between(mut self, start: Time, end: Time) -> Self {
        self.window = (start, Some(end));
        self
    }

    /// Restricts the send-time window to `[start, ∞)`.
    pub fn starting(mut self, start: Time) -> Self {
        self.window = (start, None);
        self
    }

    fn matches<M>(&self, env: &Envelope<M>) -> bool {
        let (start, end) = self.window;
        env.sent_at >= start
            && end.is_none_or(|e| env.sent_at < e)
            && self.from.matches(env.from)
            && self.to.matches(env.to)
    }
}

/// Ordered rule list with a default fate; the declarative fate policy used
/// by the figure reproductions.
///
/// # Examples
///
/// Drop everything from node 0 to nodes 3 and 4 from time 10 on, deliver
/// the rest synchronously:
///
/// ```
/// use rqs_sim::{NetworkScript, Rule, Fate, Selector, NodeId, Time};
/// let script = NetworkScript::synchronous()
///     .rule(
///         Rule::always(Fate::Drop)
///             .from(Selector::Is(NodeId(0)))
///             .to(Selector::In(vec![NodeId(3), NodeId(4)]))
///             .starting(Time(10)),
///     );
/// ```
#[derive(Clone, Debug)]
pub struct NetworkScript {
    rules: Vec<Rule>,
    default: Fate,
}

impl NetworkScript {
    /// All messages delivered with delay 1 (a fully synchronous network
    /// with `Δ = 1`).
    pub fn synchronous() -> Self {
        NetworkScript {
            rules: Vec::new(),
            default: Fate::DEFAULT,
        }
    }

    /// All messages delivered with a fixed delay.
    pub fn with_delay(delay: u64) -> Self {
        NetworkScript {
            rules: Vec::new(),
            default: Fate::Deliver { delay },
        }
    }

    /// Appends a rule (earlier rules win).
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Changes the default fate for unmatched messages.
    pub fn default_fate(mut self, fate: Fate) -> Self {
        self.default = fate;
        self
    }

    /// Convenience: drop every message sent by `node` from time `t` on —
    /// the observable effect of a crash at `t` (the node also stops
    /// processing; pair with [`World::crash_at`](crate::World::crash_at)).
    pub fn silence_from(self, node: NodeId, t: Time) -> Self {
        self.rule(
            Rule::always(Fate::Drop)
                .from(Selector::Is(node))
                .starting(t),
        )
    }

    /// Convenience: partition `group_a` from `group_b` during
    /// `[start, end)` (messages in both directions dropped).
    pub fn partition(
        self,
        group_a: Vec<NodeId>,
        group_b: Vec<NodeId>,
        start: Time,
        end: Option<Time>,
    ) -> Self {
        let mk = |from: Vec<NodeId>, to: Vec<NodeId>| {
            let mut r = Rule::always(Fate::Drop)
                .from(Selector::In(from))
                .to(Selector::In(to));
            r.window = (start, end);
            r
        };
        self.rule(mk(group_a.clone(), group_b.clone()))
            .rule(mk(group_b, group_a))
    }
}

impl<M> FatePolicy<M> for NetworkScript {
    fn fate(&mut self, env: &Envelope<M>) -> Fate {
        for rule in &self.rules {
            if rule.matches(env) {
                return rule.fate;
            }
        }
        self.default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: usize, to: usize, at: u64) -> Envelope<u8> {
        Envelope {
            from: NodeId(from),
            to: NodeId(to),
            msg: 0,
            sent_at: Time(at),
        }
    }

    #[test]
    fn selector_matching() {
        assert!(Selector::Any.matches(NodeId(3)));
        assert!(Selector::Is(NodeId(3)).matches(NodeId(3)));
        assert!(!Selector::Is(NodeId(3)).matches(NodeId(4)));
        assert!(Selector::In(vec![NodeId(1), NodeId(2)]).matches(NodeId(2)));
        assert!(!Selector::In(vec![NodeId(1)]).matches(NodeId(2)));
        assert!(Selector::NotIn(vec![NodeId(1)]).matches(NodeId(2)));
        assert!(!Selector::NotIn(vec![NodeId(2)]).matches(NodeId(2)));
    }

    #[test]
    fn default_synchronous() {
        let mut s = NetworkScript::synchronous();
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(0, 1, 0)), Fate::DEFAULT);
    }

    #[test]
    fn first_rule_wins() {
        let mut s = NetworkScript::synchronous()
            .rule(Rule::always(Fate::Drop).from(Selector::Is(NodeId(0))))
            .rule(Rule::always(Fate::Deliver { delay: 9 }));
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(0, 1, 0)), Fate::Drop);
        assert_eq!(
            FatePolicy::<u8>::fate(&mut s, &env(2, 1, 0)),
            Fate::Deliver { delay: 9 }
        );
    }

    #[test]
    fn window_filtering() {
        let mut s =
            NetworkScript::synchronous().rule(Rule::always(Fate::Drop).between(Time(5), Time(10)));
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(0, 1, 4)), Fate::DEFAULT);
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(0, 1, 5)), Fate::Drop);
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(0, 1, 9)), Fate::Drop);
        assert_eq!(
            FatePolicy::<u8>::fate(&mut s, &env(0, 1, 10)),
            Fate::DEFAULT
        );
    }

    #[test]
    fn silence_from_helper() {
        let mut s = NetworkScript::synchronous().silence_from(NodeId(2), Time(3));
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(2, 1, 2)), Fate::DEFAULT);
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(2, 1, 3)), Fate::Drop);
    }

    #[test]
    fn partition_helper() {
        let mut s = NetworkScript::synchronous().partition(
            vec![NodeId(0)],
            vec![NodeId(1)],
            Time(0),
            Some(Time(5)),
        );
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(0, 1, 1)), Fate::Drop);
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(1, 0, 1)), Fate::Drop);
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(0, 1, 6)), Fate::DEFAULT);
        assert_eq!(FatePolicy::<u8>::fate(&mut s, &env(0, 2, 1)), Fate::DEFAULT);
    }

    #[test]
    fn closure_policy() {
        let mut calls = 0;
        {
            let mut policy = |e: &Envelope<u8>| {
                calls += 1;
                if e.to == NodeId(9) {
                    Fate::Hold(1)
                } else {
                    Fate::DEFAULT
                }
            };
            assert_eq!(policy.fate(&env(0, 9, 0)), Fate::Hold(1));
            assert_eq!(policy.fate(&env(0, 1, 0)), Fate::DEFAULT);
        }
        assert_eq!(calls, 2);
    }
}
