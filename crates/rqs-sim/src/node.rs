//! Node identities, the automaton trait, and the per-step context.
//!
//! Processes are deterministic I/O automata (paper §3.1): a step receives
//! a set of messages, applies them to the current state, and emits output
//! messages. We deliver one message (or timer) per step — a refinement of
//! the paper's step that preserves all behaviours, since the paper permits
//! `M` to be any subset of pending messages, including singletons.

use crate::time::Time;
use core::any::Any;
use core::fmt;

/// Identifier of a simulated node (server, client, proposer, acceptor,
/// learner — any participant).
///
/// Protocol crates conventionally map the quorum universe `S` to node ids
/// `0..n` (so `NodeId(i)` is `rqs_core::ProcessId(i)` for servers) and give
/// clients ids `≥ n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Zero-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<rqs_core::ProcessId> for NodeId {
    fn from(p: rqs_core::ProcessId) -> NodeId {
        NodeId(p.0)
    }
}

/// Handle for a pending timer, returned by [`Context::set_timer`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerToken(pub u64);

/// A deterministic I/O automaton driven by the [`World`](crate::World).
///
/// `M` is the protocol's message type. Implementations must be
/// deterministic: identical inputs in identical order produce identical
/// outputs, which is what makes the scripted indistinguishability
/// executions of the paper reproducible.
pub trait Automaton<M>: Any {
    /// Called once when the world starts (the paper's `Init` state is the
    /// state before this call).
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Delivers one message from `from`.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<M>);

    /// Fires a timer previously set through [`Context::set_timer`].
    fn on_timer(&mut self, _timer: TimerToken, _ctx: &mut Context<M>) {}

    /// A hash of the automaton's protocol-relevant state, used by
    /// [`World::digest_with`](crate::World::digest_with) to deduplicate
    /// logically identical states during schedule exploration. Any
    /// violation found under deduplication is real regardless of this
    /// digest, but the default (`0`) makes states differing only in this
    /// node collide, so the explorer may *prune schedules it should have
    /// run* (an "exhausted" claim then only covers the deduplicated
    /// space). Protocol automata that participate in model checking
    /// should override it with a deterministic digest of their state
    /// (see `rqs_sim::sched::fnv1a`); for automata that cannot (e.g.
    /// closure-scripted Byzantine nodes with hidden state), disable
    /// deduplication in the explorer instead.
    fn state_digest(&self) -> u64 {
        0
    }

    /// Persists a full snapshot of the automaton's durable state into its
    /// attached store (compacting the write-ahead log). Automata without
    /// durable state ignore it.
    fn save_state(&mut self) {}

    /// Rebuilds the automaton from its durable store after an **amnesia**
    /// crash: discard all volatile state, then replay the store's
    /// snapshot + log. Returns the number of log records replayed.
    ///
    /// The default keeps the in-memory state untouched — correct for
    /// automata with no crash-surviving obligations (clients, scripted
    /// adversaries). Automata that promise durability (`Server`,
    /// `KvServer`, `Acceptor`, `Learner`) must override it; forgetting to
    /// is exactly the bug the amnesia fault mode exists to expose.
    fn restore_state(&mut self) -> usize {
        0
    }

    /// Upcast for harness-side state inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for harness-side operation invocation.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Output collector handed to every automaton step.
///
/// Sends are buffered and routed by the world after the step completes,
/// matching the paper's atomic receive/compute/send step structure.
#[derive(Debug)]
pub struct Context<M> {
    node: NodeId,
    now: Time,
    pub(crate) outbox: Vec<(NodeId, M)>,
    pub(crate) timers: Vec<(u64, TimerToken)>,
    pub(crate) cancelled: Vec<TimerToken>,
    pub(crate) timer_counter: u64,
}

impl<M> Context<M> {
    /// Creates a free-standing context. The [`World`](crate::World) calls
    /// this internally; it is public so protocol crates can unit-test
    /// automatons step-by-step without a world.
    pub fn new(node: NodeId, now: Time, timer_counter: u64) -> Self {
        Context {
            node,
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            cancelled: Vec::new(),
            timer_counter,
        }
    }

    /// Messages buffered by this step, in send order (test inspection).
    pub fn sent(&self) -> &[(NodeId, M)] {
        &self.outbox
    }

    /// Timers armed by this step as `(delay, token)` pairs (test
    /// inspection).
    pub fn armed_timers(&self) -> &[(u64, TimerToken)] {
        &self.timers
    }

    /// Timers cancelled by this step (test inspection).
    pub fn cancelled_timers(&self) -> &[TimerToken] {
        &self.cancelled
    }

    /// The timer-token counter after this step (for external executors
    /// that thread it through successive contexts, like the real-time
    /// runtime).
    pub fn timer_counter_snapshot(&self) -> u64 {
        self.timer_counter
    }

    /// Decomposes the context into its buffered outputs:
    /// `(messages, armed timers, cancelled timers)`. Used by external
    /// executors; the simulator world consumes the fields directly.
    #[allow(clippy::type_complexity)]
    pub fn into_outputs(self) -> (Vec<(NodeId, M)>, Vec<(u64, TimerToken)>, Vec<TimerToken>) {
        (self.outbox, self.timers, self.cancelled)
    }

    /// The id of the node taking this step.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.node
    }

    /// Current simulated time (the global clock — exposed for latency
    /// accounting; protocol decisions must not branch on absolute time, per
    /// the paper's inaccessible-clock assumption, only on timer expiry).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to` (buffered; routed after the step).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Sends a clone of `msg` to every node in `targets`.
    pub fn broadcast<I>(&mut self, targets: I, msg: M)
    where
        M: Clone,
        I: IntoIterator<Item = NodeId>,
    {
        for to in targets {
            self.outbox.push((to, msg.clone()));
        }
    }

    /// Arms a timer that fires after `delay` ticks; returns its token.
    pub fn set_timer(&mut self, delay: u64) -> TimerToken {
        let token = TimerToken(self.timer_counter);
        self.timer_counter += 1;
        self.timers.push((delay, token));
        token
    }

    /// Cancels a pending timer (no-op if already fired).
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.cancelled.push(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_outputs() {
        let mut ctx: Context<&'static str> = Context::new(NodeId(7), Time(3), 0);
        assert_eq!(ctx.me(), NodeId(7));
        assert_eq!(ctx.now(), Time(3));
        ctx.send(NodeId(1), "hello");
        ctx.broadcast([NodeId(2), NodeId(3)], "all");
        assert_eq!(ctx.outbox.len(), 3);
        let t1 = ctx.set_timer(5);
        let t2 = ctx.set_timer(5);
        assert_ne!(t1, t2);
        ctx.cancel_timer(t1);
        assert_eq!(ctx.timers.len(), 2);
        assert_eq!(ctx.cancelled, vec![t1]);
    }

    #[test]
    fn node_id_from_process_id() {
        let n: NodeId = rqs_core::ProcessId(4).into();
        assert_eq!(n, NodeId(4));
        assert_eq!(n.to_string(), "n4");
        assert_eq!(n.index(), 4);
    }
}
