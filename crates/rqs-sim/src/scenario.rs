//! Declarative fault scenarios, portable across substrates.
//!
//! A [`Scenario`] describes *what goes wrong* in an execution — link
//! partitions with heal times, per-link delay/jitter/drop/duplication
//! schedules, crash-and-restart plans, Byzantine swap-ins — without
//! committing to an execution substrate. The same description drives both
//! deployments:
//!
//! - on the deterministic simulator it compiles to a fate policy
//!   ([`ScenarioNet`] implements [`FatePolicy`]), and crash plans become
//!   scheduled [`crash_at`](crate::World::crash_at) /
//!   [`restart_at`](crate::World::restart_at) events;
//! - on the threaded runtime the very same [`ScenarioNet::decide`] core
//!   runs inside an interposed message-filter thread, and crash plans
//!   become a wall-clock fault scheduler.
//!
//! All times are protocol ticks: one tick is one synchronous message
//! delay on the simulator, one configured tick length on the runtime.

use crate::network::{Envelope, Fate, FatePolicy, Selector};
use crate::node::NodeId;
use crate::time::Time;

/// One scripted link effect: what happens to messages matching the
/// selectors inside the tick window.
#[derive(Clone, Debug)]
pub struct LinkRule {
    /// Sender filter.
    pub from: Selector,
    /// Receiver filter.
    pub to: Selector,
    /// First tick (inclusive) the rule applies to.
    pub from_tick: u64,
    /// First tick the rule no longer applies to (`None` = forever).
    pub until_tick: Option<u64>,
    /// The effect applied to matching messages.
    pub effect: LinkEffect,
}

impl LinkRule {
    /// A rule applying `effect` to every message, forever.
    pub fn every(effect: LinkEffect) -> Self {
        LinkRule {
            from: Selector::Any,
            to: Selector::Any,
            from_tick: 0,
            until_tick: None,
            effect,
        }
    }

    /// Restricts the sender.
    pub fn from(mut self, sel: Selector) -> Self {
        self.from = sel;
        self
    }

    /// Restricts the receiver.
    pub fn to(mut self, sel: Selector) -> Self {
        self.to = sel;
        self
    }

    /// Restricts the send-tick window to `[start, end)`.
    pub fn during(mut self, start: u64, end: u64) -> Self {
        self.from_tick = start;
        self.until_tick = Some(end);
        self
    }

    fn matches(&self, from: NodeId, to: NodeId, sent_tick: u64) -> bool {
        sent_tick >= self.from_tick
            && self.until_tick.is_none_or(|e| sent_tick < e)
            && self.from.matches(from)
            && self.to.matches(to)
    }
}

/// What a matching [`LinkRule`] does to a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkEffect {
    /// Drop every matching message (a hard partition).
    Drop,
    /// Drop every `n`-th matching message; the rest *fall through* to
    /// later rules, so lossiness composes with delay/duplication.
    DropEvery(u64),
    /// Add a fixed extra delivery delay, in ticks.
    Delay(u64),
    /// Deterministic jitter: extra delay cycles through
    /// `base ..= base + spread` per matching message.
    Jitter {
        /// Minimum extra delay.
        base: u64,
        /// Peak-to-peak jitter width.
        spread: u64,
    },
    /// Deliver the message twice; the second copy lags by `lag` ticks.
    Duplicate {
        /// Extra delay of the duplicate copy.
        lag: u64,
    },
    /// Park matching messages until the rule's window closes, then
    /// deliver them (a partition whose in-flight traffic survives the
    /// heal). With no window end this is equivalent to [`Drop`].
    ///
    /// [`Drop`]: LinkEffect::Drop
    HoldUntilHeal,
}

/// What a crash does to the node's volatile state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CrashMode {
    /// Pause/resume: the node restarts with its in-memory state intact
    /// (the only crash the substrates modelled before durable recovery
    /// existed — kept as the back-compat default).
    #[default]
    Retain,
    /// A real crash: all volatile state is lost, and the restart rebuilds
    /// the node from its `rqs_store::Durable` store only (via
    /// [`Automaton::restore_state`](crate::Automaton::restore_state)).
    Amnesia,
}

impl CrashMode {
    /// Short label for experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            CrashMode::Retain => "retain",
            CrashMode::Amnesia => "amnesia",
        }
    }
}

/// A scheduled crash (and optional restart), in ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// Node index (deployments place servers first, at `0..n`).
    pub node: usize,
    /// Tick at which the node stops processing.
    pub at: u64,
    /// Tick at which it resumes (`None` = never).
    pub restart_at: Option<u64>,
    /// Whether the restart retains in-memory state or rebuilds from the
    /// durable store.
    pub crash_mode: CrashMode,
}

/// A declarative, substrate-independent fault scenario.
///
/// # Examples
///
/// ```
/// use rqs_sim::{LinkEffect, LinkRule, Scenario, Selector, NodeId};
///
/// // Partition server 3 for the first 30 ticks, duplicate all traffic,
/// // and crash-restart server 0.
/// let scenario = Scenario::named("demo")
///     .partition(vec![3], 0, 30)
///     .link(LinkRule::every(LinkEffect::Duplicate { lag: 2 }))
///     .crash_restart(0, 10, 60);
/// assert_eq!(scenario.crashes.len(), 1);
/// assert!(!scenario.is_benign());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Scenario {
    /// Human-readable name (experiment tables, traces).
    pub name: String,
    /// Link effects, in priority order (first terminal match wins;
    /// [`LinkEffect::DropEvery`] falls through when it does not drop).
    pub links: Vec<LinkRule>,
    /// Crash / crash-restart plans.
    pub crashes: Vec<CrashPlan>,
    /// Node indices to replace with the deployment's canonical forging
    /// Byzantine automaton before the run starts.
    pub byzantine: Vec<usize>,
}

impl Scenario {
    /// An empty (fault-free) scenario with a name.
    pub fn named(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            ..Default::default()
        }
    }

    /// `true` iff the scenario injects no faults at all.
    pub fn is_benign(&self) -> bool {
        self.links.is_empty() && self.crashes.is_empty() && self.byzantine.is_empty()
    }

    /// Appends a link rule (earlier rules win).
    pub fn link(mut self, rule: LinkRule) -> Self {
        self.links.push(rule);
        self
    }

    /// Schedules a permanent crash of `node` at tick `at`.
    pub fn crash(mut self, node: usize, at: u64) -> Self {
        self.crashes.push(CrashPlan {
            node,
            at,
            restart_at: None,
            crash_mode: CrashMode::Retain,
        });
        self
    }

    /// Schedules a crash of `node` at `at` and a restart at `restart`
    /// (retain mode: in-memory state survives).
    pub fn crash_restart(mut self, node: usize, at: u64, restart: u64) -> Self {
        assert!(restart > at, "restart must follow the crash");
        self.crashes.push(CrashPlan {
            node,
            at,
            restart_at: Some(restart),
            crash_mode: CrashMode::Retain,
        });
        self
    }

    /// Schedules an **amnesia** crash of `node` at `at` and a restart at
    /// `restart`: the node comes back with volatile state lost, rebuilt
    /// from its durable store only.
    pub fn crash_restart_amnesia(mut self, node: usize, at: u64, restart: u64) -> Self {
        assert!(restart > at, "restart must follow the crash");
        self.crashes.push(CrashPlan {
            node,
            at,
            restart_at: Some(restart),
            crash_mode: CrashMode::Amnesia,
        });
        self
    }

    /// Rewrites every crash plan to use `mode` (sweeping one scenario
    /// across both crash modes).
    pub fn with_crash_mode(mut self, mode: CrashMode) -> Self {
        for plan in &mut self.crashes {
            plan.crash_mode = mode;
        }
        self
    }

    /// Marks `node` for Byzantine substitution at deployment time.
    pub fn with_byzantine(mut self, node: usize) -> Self {
        self.byzantine.push(node);
        self
    }

    /// Cuts `group` off from the rest of the system (messages dropped in
    /// both directions) during `[start, heal)`.
    pub fn partition(self, group: Vec<usize>, start: u64, heal: u64) -> Self {
        let ids: Vec<NodeId> = group.into_iter().map(NodeId).collect();
        self.link(
            LinkRule::every(LinkEffect::Drop)
                .from(Selector::In(ids.clone()))
                .to(Selector::NotIn(ids.clone()))
                .during(start, heal),
        )
        .link(
            LinkRule::every(LinkEffect::Drop)
                .from(Selector::NotIn(ids.clone()))
                .to(Selector::In(ids))
                .during(start, heal),
        )
    }

    /// Makes every link touching `targets` lossy (every `drop_every`-th
    /// message lost); messages that survive fall through to later rules.
    pub fn lossy_towards(self, targets: Vec<usize>, drop_every: u64) -> Self {
        assert!(drop_every >= 2, "DropEvery(1) would drop everything");
        let ids: Vec<NodeId> = targets.into_iter().map(NodeId).collect();
        self.link(
            LinkRule::every(LinkEffect::DropEvery(drop_every)).from(Selector::In(ids.clone())),
        )
        .link(LinkRule::every(LinkEffect::DropEvery(drop_every)).to(Selector::In(ids)))
    }

    /// Compiles the link rules into their shared decision engine.
    pub fn network(&self) -> ScenarioNet {
        ScenarioNet::new(self)
    }
}

/// The routing decision shared by both substrate compilations; all delays
/// are *extra* ticks on top of the substrate's base delivery latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkDecision {
    /// Deliver after `extra` additional ticks (0 = promptly).
    Deliver {
        /// Extra delay beyond the base latency.
        extra: u64,
    },
    /// Deliver at an absolute tick (partition heal).
    DeliverAtTick(u64),
    /// Never deliver.
    Drop,
    /// Deliver promptly and again after `lag` extra ticks.
    Duplicate {
        /// Extra delay of the duplicate.
        lag: u64,
    },
}

/// The compiled link schedule: [`Scenario::links`] plus per-rule counters
/// (for `DropEvery` / `Jitter` determinism). Implements [`FatePolicy`] so
/// a [`World`](crate::World) can route through it directly; the threaded
/// runtime calls [`ScenarioNet::decide`] from its interposer thread.
#[derive(Clone, Debug)]
pub struct ScenarioNet {
    rules: Vec<(LinkRule, u64)>,
}

impl ScenarioNet {
    /// Compiles `scenario`'s link rules.
    pub fn new(scenario: &Scenario) -> Self {
        ScenarioNet {
            rules: scenario.links.iter().map(|r| (r.clone(), 0)).collect(),
        }
    }

    /// An empty schedule (every message delivered promptly).
    pub fn benign() -> Self {
        ScenarioNet { rules: Vec::new() }
    }

    /// Decides the fate of one message sent from `from` to `to` at
    /// `sent_tick`. Deterministic given the sequence of calls.
    pub fn decide(&mut self, from: NodeId, to: NodeId, sent_tick: u64) -> LinkDecision {
        for (rule, counter) in &mut self.rules {
            if !rule.matches(from, to, sent_tick) {
                continue;
            }
            match rule.effect {
                LinkEffect::Drop => return LinkDecision::Drop,
                LinkEffect::DropEvery(n) => {
                    *counter += 1;
                    if *counter % n.max(1) == 0 {
                        return LinkDecision::Drop;
                    }
                    // else: fall through to later rules
                }
                LinkEffect::Delay(extra) => return LinkDecision::Deliver { extra },
                LinkEffect::Jitter { base, spread } => {
                    *counter += 1;
                    return LinkDecision::Deliver {
                        extra: base + *counter % (spread + 1),
                    };
                }
                LinkEffect::Duplicate { lag } => return LinkDecision::Duplicate { lag },
                LinkEffect::HoldUntilHeal => {
                    return match rule.until_tick {
                        Some(heal) => LinkDecision::DeliverAtTick(heal),
                        None => LinkDecision::Drop,
                    };
                }
            }
        }
        LinkDecision::Deliver { extra: 0 }
    }
}

impl<M> FatePolicy<M> for ScenarioNet {
    fn fate(&mut self, env: &Envelope<M>) -> Fate {
        match self.decide(env.from, env.to, env.sent_at.ticks()) {
            LinkDecision::Deliver { extra } => Fate::Deliver { delay: 1 + extra },
            LinkDecision::DeliverAtTick(t) => Fate::DeliverAt(Time(t)),
            LinkDecision::Drop => Fate::Drop,
            LinkDecision::Duplicate { lag } => Fate::Duplicate {
                first: 1,
                second: 1 + lag,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_scenario_delivers_everything() {
        let mut net = Scenario::named("clean").network();
        assert_eq!(
            net.decide(NodeId(0), NodeId(1), 5),
            LinkDecision::Deliver { extra: 0 }
        );
    }

    #[test]
    fn partition_drops_both_directions_until_heal() {
        let mut net = Scenario::named("p").partition(vec![2], 10, 20).network();
        assert_eq!(net.decide(NodeId(2), NodeId(0), 15), LinkDecision::Drop);
        assert_eq!(net.decide(NodeId(0), NodeId(2), 15), LinkDecision::Drop);
        // inside the group, outside the window, unrelated links: delivered
        assert_eq!(
            net.decide(NodeId(0), NodeId(1), 15),
            LinkDecision::Deliver { extra: 0 }
        );
        assert_eq!(
            net.decide(NodeId(2), NodeId(0), 20),
            LinkDecision::Deliver { extra: 0 }
        );
        assert_eq!(
            net.decide(NodeId(2), NodeId(0), 9),
            LinkDecision::Deliver { extra: 0 }
        );
    }

    #[test]
    fn drop_every_is_periodic_and_falls_through() {
        let scenario = Scenario::named("lossy+dup")
            .lossy_towards(vec![1], 3)
            .link(LinkRule::every(LinkEffect::Duplicate { lag: 2 }));
        let mut net = scenario.network();
        let mut fates = Vec::new();
        for _ in 0..6 {
            fates.push(net.decide(NodeId(0), NodeId(1), 0));
        }
        let drops = fates.iter().filter(|f| **f == LinkDecision::Drop).count();
        assert_eq!(drops, 2, "every 3rd of 6 messages dropped");
        // Survivors fell through to the duplication rule.
        assert!(fates
            .iter()
            .all(|f| *f == LinkDecision::Drop || *f == LinkDecision::Duplicate { lag: 2 }));
        // Messages not touching node 1 are duplicated only.
        assert_eq!(
            net.decide(NodeId(0), NodeId(2), 0),
            LinkDecision::Duplicate { lag: 2 }
        );
    }

    #[test]
    fn jitter_cycles_deterministically() {
        let mut net = Scenario::named("j")
            .link(LinkRule::every(LinkEffect::Jitter { base: 1, spread: 2 }))
            .network();
        let extras: Vec<u64> = (0..6)
            .map(|_| match net.decide(NodeId(0), NodeId(1), 0) {
                LinkDecision::Deliver { extra } => extra,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(extras, vec![2, 3, 1, 2, 3, 1]);
    }

    #[test]
    fn hold_until_heal_parks_until_window_close() {
        let mut net = Scenario::named("h")
            .link(
                LinkRule::every(LinkEffect::HoldUntilHeal)
                    .to(Selector::Is(NodeId(1)))
                    .during(0, 25),
            )
            .network();
        assert_eq!(
            net.decide(NodeId(0), NodeId(1), 3),
            LinkDecision::DeliverAtTick(25)
        );
        assert_eq!(
            net.decide(NodeId(0), NodeId(1), 30),
            LinkDecision::Deliver { extra: 0 }
        );
    }

    #[test]
    fn fate_policy_compilation() {
        let mut net = Scenario::named("d")
            .link(LinkRule::every(LinkEffect::Delay(4)))
            .network();
        let env = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            msg: 0u8,
            sent_at: Time(2),
        };
        assert_eq!(net.fate(&env), Fate::Deliver { delay: 5 });
    }

    #[test]
    fn crash_restart_builder_validates() {
        let s = Scenario::named("cr").crash_restart(0, 10, 60).crash(1, 5);
        assert_eq!(s.crashes[0].restart_at, Some(60));
        assert_eq!(s.crashes[0].crash_mode, CrashMode::Retain);
        assert_eq!(s.crashes[1].restart_at, None);
    }

    #[test]
    fn crash_mode_builders() {
        let s = Scenario::named("am").crash_restart_amnesia(2, 10, 60);
        assert_eq!(s.crashes[0].crash_mode, CrashMode::Amnesia);
        let swept = Scenario::named("cr")
            .crash_restart(0, 10, 60)
            .crash(1, 5)
            .with_crash_mode(CrashMode::Amnesia);
        assert!(swept
            .crashes
            .iter()
            .all(|p| p.crash_mode == CrashMode::Amnesia));
        assert_eq!(CrashMode::Amnesia.label(), "amnesia");
        assert_eq!(CrashMode::default(), CrashMode::Retain);
    }

    #[test]
    #[should_panic(expected = "restart must follow")]
    fn restart_before_crash_rejected() {
        let _ = Scenario::named("bad").crash_restart(0, 10, 10);
    }
}
