//! Simulated time.
//!
//! The paper assumes a global clock not accessible to processes; the
//! simulator owns that clock. Time is discrete: one unit is one message
//! delay under synchrony, so the synchrony bound is `Δ = 1` by default and
//! the paper's `2Δ` timeouts are 2 units.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Time(pub u64);

impl Time {
    /// The start of every execution.
    pub const ZERO: Time = Time(0);

    /// A time later than any event horizon used in practice.
    pub const FAR_FUTURE: Time = Time(u64::MAX / 2);

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Time) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + 5;
        assert_eq!(t.ticks(), 5);
        assert_eq!(t - Time(2), 3);
        assert_eq!(t.since(Time(10)), 0);
        assert_eq!(Time(10).since(t), 5);
        let mut u = t;
        u += 1;
        assert_eq!(u, Time(6));
        assert_eq!(u.to_string(), "t6");
    }

    #[test]
    fn ordering() {
        assert!(Time(1) < Time(2));
        assert!(Time::FAR_FUTURE > Time(1_000_000));
    }
}
