//! The scheduler seam: pluggable control over event-delivery order.
//!
//! By default the [`World`](crate::World) executes events in deterministic
//! `(time, sequence)` order — one schedule per scenario. A [`Scheduler`]
//! installed with [`World::set_scheduler`](crate::World::set_scheduler)
//! instead sees *every* pending event at each step and picks which one
//! executes next, which turns the simulator into the adversarial scheduler
//! of the asynchronous model: any pending message may be delivered next,
//! regardless of when it was sent. Model checkers (`rqs-check`) drive this
//! seam to enumerate delivery interleavings; they may additionally inject
//! faults at choice points ([`SchedDecision::Drop`],
//! [`SchedDecision::Crash`], [`SchedDecision::CrashRecover`]).
//!
//! Schedulers are payload-agnostic: they see [`PendingEvent`] views
//! (endpoints and kinds, not message contents), so one scheduler
//! implementation drives every protocol and a recorded choice list replays
//! against a rebuilt world.

use crate::node::NodeId;
use crate::time::Time;

/// What kind of event a pending queue entry is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PendingKind {
    /// A message delivery.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
    },
    /// A timer expiration.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// The timer token (for display/diagnostics).
        token: u64,
    },
    /// A scheduled crash.
    Crash {
        /// The node that crashes.
        node: NodeId,
    },
    /// A scheduled restart.
    Restart {
        /// The node that restarts.
        node: NodeId,
    },
}

impl PendingKind {
    /// `true` iff this is a message delivery (the only kind a scheduler
    /// may drop).
    pub fn is_deliver(&self) -> bool {
        matches!(self, PendingKind::Deliver { .. })
    }
}

/// A scheduler's view of one pending event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PendingEvent {
    /// When the event would execute under the default schedule.
    pub at: Time,
    /// Enqueue sequence number (the default-order tiebreak).
    pub seq: u64,
    /// What the event is.
    pub kind: PendingKind,
}

/// A scheduler's decision at one choice point.
///
/// Indices refer to the `pending` slice passed to [`Scheduler::choose`],
/// which is sorted in canonical `(time, sequence)` order — so
/// `Deliver(0)` always reproduces the default deterministic schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedDecision {
    /// Execute pending event `i` next. Out-of-range indices are clamped
    /// to the last pending event (robust replay of shrunk schedules).
    Deliver(usize),
    /// Discard pending event `i` — a message loss injected by the
    /// scheduler. Non-delivery events cannot be dropped; the decision
    /// degrades to `Deliver(i)`.
    Drop(usize),
    /// Crash node `i` (a raw node index) at this choice point, without
    /// consuming a pending event. Unknown indices are ignored. The
    /// node's pending self-timers are purged (they were volatile state).
    Crash(usize),
    /// Amnesia-crash node `i` and immediately recover it, as one atomic
    /// action: volatile state and pending self-timers are discarded,
    /// then [`Automaton::restore_state`](crate::Automaton::restore_state)
    /// rebuilds the node from its durable store and it keeps processing.
    /// Does not consume a pending event. Unknown indices are ignored.
    /// This is the choice-point form of the `CrashMode::Amnesia` fault:
    /// it exposes exactly the state a node is entitled to forget.
    CrashRecover(usize),
}

impl SchedDecision {
    /// The canonical decision: execute the earliest pending event, i.e.
    /// exactly what the default scheduler-less world would do.
    pub const CANONICAL: SchedDecision = SchedDecision::Deliver(0);
}

/// Chooses which pending event executes next.
///
/// Installed with [`World::set_scheduler`](crate::World::set_scheduler);
/// the world calls [`Scheduler::choose`] once per [`step`](crate::World::step)
/// with the canonically-sorted pending events (no-op events — cancelled
/// timers, deliveries to crashed nodes — are purged first).
pub trait Scheduler {
    /// Pick the next decision given the pending events (never empty).
    fn choose(&mut self, pending: &[PendingEvent]) -> SchedDecision;
}

impl<F> Scheduler for F
where
    F: FnMut(&[PendingEvent]) -> SchedDecision,
{
    fn choose(&mut self, pending: &[PendingEvent]) -> SchedDecision {
        self(pending)
    }
}

/// 64-bit FNV-1a over a byte slice: the stable, dependency-free hash used
/// for state fingerprinting (deduplication in schedule exploration).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds a word into an FNV-1a accumulator (order-sensitive combine).
pub fn fnv1a_fold(acc: u64, word: u64) -> u64 {
    let mut h = acc;
    for &b in &word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_deliver_zero() {
        assert_eq!(SchedDecision::CANONICAL, SchedDecision::Deliver(0));
    }

    #[test]
    fn pending_kind_deliver_query() {
        let d = PendingKind::Deliver {
            from: NodeId(0),
            to: NodeId(1),
        };
        assert!(d.is_deliver());
        assert!(!PendingKind::Timer {
            node: NodeId(0),
            token: 3
        }
        .is_deliver());
        assert!(!PendingKind::Crash { node: NodeId(0) }.is_deliver());
        assert!(!PendingKind::Restart { node: NodeId(0) }.is_deliver());
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a_fold(fnv1a(b"x"), 1), fnv1a_fold(fnv1a(b"x"), 2));
    }

    #[test]
    fn closures_implement_scheduler() {
        let mut s = |pending: &[PendingEvent]| SchedDecision::Deliver(pending.len() - 1);
        let events = [PendingEvent {
            at: Time(1),
            seq: 0,
            kind: PendingKind::Crash { node: NodeId(2) },
        }];
        assert_eq!(s.choose(&events), SchedDecision::Deliver(0));
    }
}
