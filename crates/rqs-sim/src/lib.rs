//! # Deterministic simulation substrate for RQS protocols
//!
//! This crate implements the execution model of *Refined Quorum Systems*
//! (Guerraoui & Vukolić): deterministic I/O automata connected by
//! point-to-point channels under a global clock, with
//!
//! - configurable synchrony (`Δ`-bounded delivery) and asynchrony
//!   (arbitrary delay, holds, drops),
//! - crash fault injection at arbitrary times,
//! - Byzantine fault injection by automaton substitution,
//! - scripted network schedules ([`NetworkScript`]) expressive enough to
//!   reproduce the executions of the paper's Figures 1, 4, 8 and 16,
//! - deterministic `(time, sequence)` event ordering, so every execution
//!   is exactly reproducible,
//! - a pluggable [`Scheduler`] seam over the pending-event set, turning
//!   the same world into an adversarial scheduler for systematic schedule
//!   exploration (see the `rqs-check` crate).
//!
//! One tick of simulated time is one synchronous message delay (`Δ = 1`),
//! so consensus "message delays" are read directly off the clock and
//! storage "rounds" are counted by the client automata.
//!
//! ## Quick start
//!
//! ```
//! use rqs_sim::{World, Automaton, Context, NodeId, NetworkScript};
//! use std::any::Any;
//!
//! #[derive(Default)]
//! struct Counter { seen: usize }
//! impl Automaton<&'static str> for Counter {
//!     fn on_message(&mut self, _f: NodeId, _m: &'static str, _c: &mut Context<&'static str>) {
//!         self.seen += 1;
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut world = World::new(NetworkScript::synchronous());
//! let a = world.add_node(Box::new(Counter::default()));
//! let b = world.add_node(Box::new(Counter::default()));
//! world.post(a, b, "hello");
//! world.run_to_quiescence();
//! assert_eq!(world.node_as::<Counter>(b).seen, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod network;
pub mod node;
pub mod scenario;
pub mod sched;
pub mod substrate;
pub mod time;
pub mod world;

pub use network::{Envelope, Fate, FatePolicy, NetworkScript, Rule, Selector};
pub use node::{Automaton, Context, NodeId, TimerToken};
pub use scenario::{
    CrashMode, CrashPlan, LinkDecision, LinkEffect, LinkRule, Scenario, ScenarioNet,
};
pub use sched::{fnv1a, fnv1a_fold, PendingEvent, PendingKind, SchedDecision, Scheduler};
pub use substrate::{
    Substrate, SubstrateConfig, SubstrateStats, DEFAULT_AWAIT_STEPS, DEFAULT_OP_TIMEOUT,
    DEFAULT_TICK,
};
pub use time::Time;
pub use world::{TraceEntry, World, WorldStats};

/// The synchrony bound `Δ` in ticks: one tick per message delay.
pub const DELTA: u64 = 1;
