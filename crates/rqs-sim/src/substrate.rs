//! The substrate abstraction: one deployment API over both executors.
//!
//! The paper's algorithms are substrate-agnostic automata; what differs
//! between the deterministic simulator and the threaded runtime is only
//! *how* automata are hosted: where messages travel, how timers map to
//! time, and how a driver waits for an operation to finish. [`Substrate`]
//! captures exactly that surface — node registration, message posting,
//! `invoke`/`inspect`, await-with-deadline, crash/restart and Byzantine
//! substitution — so the storage, consensus and KV deployment drivers can
//! be written once, generically, and run unchanged on either executor:
//!
//! - [`World`](crate::World) implements it with deterministic discrete
//!   events ([`Substrate::await_on`] is `run_until` with a step budget);
//! - `rqs_runtime::Runtime` implements it with node-per-thread execution
//!   (`await_on` is the blocking `wait_for` poll with a wall-clock
//!   timeout).
//!
//! Fault injection plugs in at the same seam: a declarative
//! [`Scenario`] handed to [`SubstrateConfig`] compiles to a fate policy
//! on the simulator and to an interposed message-filter thread plus a
//! fault scheduler on the runtime.

use crate::node::{Automaton, Context, NodeId};
use crate::scenario::{CrashMode, Scenario};
use crate::time::Time;
use crate::world::World;
use rqs_obs::{NopTracer, Obs, ObsHandle};
use std::sync::Arc;
use std::time::Duration;

/// Default wall-clock length of one protocol tick on wall-clock
/// substrates (ignored by the simulator).
pub const DEFAULT_TICK: Duration = Duration::from_millis(2);

/// Default operation timeout for wall-clock substrates (ignored by the
/// simulator, which bounds awaits in steps instead).
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(60);

/// Default step budget for simulator awaits — the step-count analogue of
/// [`DEFAULT_OP_TIMEOUT`], used by the deployment drivers when no
/// tighter budget applies (wall-clock substrates ignore it).
pub const DEFAULT_AWAIT_STEPS: usize = 10_000_000;

/// Everything needed to stand up a deployment on any substrate.
pub struct SubstrateConfig<M> {
    /// The automata, in node-id order (ids are assigned densely from 0).
    pub nodes: Vec<Box<dyn Automaton<M> + Send>>,
    /// Fault scenario (link effects and crash plans; Byzantine swap-ins
    /// are applied by the deployment layer, which knows the automaton).
    pub scenario: Scenario,
    /// Payload sizer for message statistics: batched message types report
    /// their inner item count. Defaults to one item per message.
    pub sizer: fn(&M) -> u64,
    /// Wall-clock tick length (wall-clock substrates only).
    pub tick: Duration,
    /// Await timeout (wall-clock substrates only).
    pub op_timeout: Duration,
    /// Structured-trace sink: the substrate emits deliver/drop and
    /// crash/recover [`rqs_obs::TraceEvent`]s into it. Defaults to the
    /// zero-overhead [`NopTracer`].
    pub tracer: ObsHandle,
}

impl<M> SubstrateConfig<M> {
    /// A fault-free configuration with default tick and timeout.
    pub fn new(nodes: Vec<Box<dyn Automaton<M> + Send>>) -> Self {
        SubstrateConfig {
            nodes,
            scenario: Scenario::default(),
            sizer: |_| 1,
            tick: DEFAULT_TICK,
            op_timeout: DEFAULT_OP_TIMEOUT,
            tracer: Arc::new(NopTracer),
        }
    }

    /// Sets the fault scenario.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the payload sizer.
    pub fn sizer(mut self, sizer: fn(&M) -> u64) -> Self {
        self.sizer = sizer;
        self
    }

    /// Sets the wall-clock tick length.
    pub fn tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Sets the await timeout for wall-clock substrates.
    pub fn op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Installs a structured-trace sink (e.g. a
    /// [`FlightRecorder`](rqs_obs::FlightRecorder)).
    pub fn tracer(mut self, tracer: ObsHandle) -> Self {
        self.tracer = tracer;
        self
    }
}

/// Aggregate message statistics every substrate can report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubstrateStats {
    /// Network envelopes sent.
    pub envelopes: u64,
    /// Payload items carried inside those envelopes (per the configured
    /// sizer; equals `envelopes` without one).
    pub items: u64,
}

/// An execution substrate hosting a set of protocol automata.
///
/// Drivers generic over `Substrate` get both deployments for free; see
/// the crate-level docs of `rqs_storage`, `rqs_consensus` and `rqs_kv`.
pub trait Substrate<M: Clone + Send + 'static>: Sized {
    /// Short substrate name for reports ("sim", "threaded").
    const NAME: &'static str;

    /// `true` iff executions are bit-for-bit reproducible.
    const DETERMINISTIC: bool;

    /// Builds and starts the substrate: registers `config.nodes` with ids
    /// `0..n`, installs the scenario's link schedule and crash plans, and
    /// runs every automaton's `on_start` hook.
    fn build(config: SubstrateConfig<M>) -> Self;

    /// Injects a message into `to`'s inbox, attributed to `from`,
    /// subject to the scenario's link schedule.
    fn post(&mut self, from: NodeId, to: NodeId, msg: M);

    /// Runs a closure against the node's concrete automaton state, with a
    /// context whose outputs are routed as usual (an external invocation
    /// step, e.g. `write(v)` arriving at a client). Asynchronous on
    /// threaded substrates.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the concrete type does not match.
    fn invoke_on<T: 'static>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<M>) + Send + 'static,
    );

    /// Computes a value from the node's concrete state; blocks until the
    /// node processes the request on threaded substrates. Works on
    /// crashed nodes (inspection reads surviving state).
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the concrete type does not match.
    fn inspect_on<T: 'static, R: Send + 'static>(
        &self,
        id: NodeId,
        f: impl Fn(&T) -> R + Send + Sync + 'static,
    ) -> R;

    /// Drives the substrate until `pred` holds over the node's state;
    /// returns whether it did. On the simulator this steps the event loop
    /// (at most `max_steps` events, returning early if the queue drains);
    /// on threaded substrates it polls until the configured timeout —
    /// the blocking analogue of `run_until`.
    fn await_on<T: 'static>(
        &mut self,
        id: NodeId,
        pred: impl Fn(&T) -> bool + Send + Sync + 'static,
        max_steps: usize,
    ) -> bool;

    /// Crashes the node now: it stops processing and sending until
    /// [`Substrate::restart`]. Messages arriving meanwhile are lost.
    /// Equivalent to [`Substrate::crash_with`] in [`CrashMode::Retain`].
    fn crash(&mut self, id: NodeId);

    /// Crashes the node now with an explicit [`CrashMode`]: `Retain`
    /// behaves like [`Substrate::crash`]; `Amnesia` makes the eventual
    /// [`Substrate::restart`] discard all volatile state and rebuild the
    /// node from its durable store (via
    /// [`Automaton::restore_state`](crate::Automaton::restore_state)).
    fn crash_with(&mut self, id: NodeId, mode: CrashMode);

    /// Restarts a crashed node: with its retained state after a
    /// [`CrashMode::Retain`] crash, from its durable store after a
    /// [`CrashMode::Amnesia`] crash.
    fn restart(&mut self, id: NodeId);

    /// Replaces the automaton at `id` (Byzantine behaviour injection).
    /// The new automaton's `on_start` is *not* called.
    fn replace_node(&mut self, id: NodeId, node: Box<dyn Automaton<M> + Send>);

    /// Message statistics since construction.
    fn stats(&self) -> SubstrateStats;

    /// The current protocol tick (simulated clock, or elapsed wall-clock
    /// divided by the tick length).
    fn now_ticks(&self) -> Time;

    /// Elapsed run duration in the substrate's natural unit: simulated
    /// ticks, or wall-clock microseconds.
    fn elapsed_units(&self) -> u64;

    /// Stops the substrate (a no-op on the simulator).
    fn shutdown(&mut self);
}

impl<M: Clone + Send + 'static> Substrate<M> for World<M> {
    const NAME: &'static str = "sim";
    const DETERMINISTIC: bool = true;

    fn build(config: SubstrateConfig<M>) -> Self {
        let mut world = World::new(config.scenario.network());
        world.set_sizer(config.sizer);
        world.set_obs(Obs::new(config.tracer, 0));
        for node in config.nodes {
            world.add_node(node);
        }
        for plan in &config.scenario.crashes {
            world.crash_at_mode(NodeId(plan.node), Time(plan.at), plan.crash_mode);
            if let Some(t) = plan.restart_at {
                world.restart_at(NodeId(plan.node), Time(t));
            }
        }
        world.start();
        world
    }

    fn post(&mut self, from: NodeId, to: NodeId, msg: M) {
        World::post(self, from, to, msg);
    }

    fn invoke_on<T: 'static>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Context<M>) + Send + 'static,
    ) {
        self.invoke::<T>(id, f);
    }

    fn inspect_on<T: 'static, R: Send + 'static>(
        &self,
        id: NodeId,
        f: impl Fn(&T) -> R + Send + Sync + 'static,
    ) -> R {
        f(self.node_as::<T>(id))
    }

    fn await_on<T: 'static>(
        &mut self,
        id: NodeId,
        pred: impl Fn(&T) -> bool + Send + Sync + 'static,
        max_steps: usize,
    ) -> bool {
        self.run_until_bounded(|w| pred(w.node_as::<T>(id)), max_steps)
    }

    fn crash(&mut self, id: NodeId) {
        self.crash_with(id, CrashMode::Retain);
    }

    fn crash_with(&mut self, id: NodeId, mode: CrashMode) {
        // Scheduled at the current tick but processed lazily by the next
        // drive: the clock does not advance, so crashing a *set* of
        // nodes crashes them all at the same instant, and the crash
        // still sorts before anything sent afterwards (later sequence
        // numbers, later delivery ticks).
        let now = self.now();
        self.crash_at_mode(id, now, mode);
    }

    fn restart(&mut self, id: NodeId) {
        let now = self.now();
        self.restart_at(id, now);
    }

    fn replace_node(&mut self, id: NodeId, node: Box<dyn Automaton<M> + Send>) {
        World::replace_node(self, id, node);
    }

    fn stats(&self) -> SubstrateStats {
        let s = World::stats(self);
        SubstrateStats {
            envelopes: s.messages_sent as u64,
            items: s.items_sent as u64,
        }
    }

    fn now_ticks(&self) -> Time {
        self.now()
    }

    fn elapsed_units(&self) -> u64 {
        self.now().ticks()
    }

    fn shutdown(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Selector;
    use crate::scenario::{LinkEffect, LinkRule};
    use std::any::Any;

    #[derive(Default)]
    struct Echo {
        got: Vec<u32>,
    }

    impl Automaton<u32> for Echo {
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.got.push(msg);
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn drive<S: Substrate<u32>>() -> (usize, u64) {
        let cfg = SubstrateConfig::new(vec![Box::new(Echo::default()), Box::new(Echo::default())]);
        let mut sub = S::build(cfg);
        sub.post(NodeId(0), NodeId(1), 4);
        let done = sub.await_on::<Echo>(NodeId(1), |e| e.got.len() >= 3, 1_000_000);
        assert!(done, "{} must converge", S::NAME);
        let len = sub.inspect_on::<Echo, usize>(NodeId(1), |e| e.got.len());
        let stats = sub.stats();
        sub.shutdown();
        (len, stats.envelopes)
    }

    #[test]
    fn world_drives_generically() {
        let (len, envelopes) = drive::<World<u32>>();
        assert_eq!(len, 3); // 4, 2, 0
        assert_eq!(envelopes, 5); // the post plus replies 3, 2, 1, 0
    }

    #[test]
    fn world_crash_and_restart_via_trait() {
        let cfg = SubstrateConfig::new(vec![Box::new(Echo::default()), Box::new(Echo::default())]);
        let mut sub: World<u32> = Substrate::build(cfg);
        Substrate::crash(&mut sub, NodeId(1));
        Substrate::post(&mut sub, NodeId(0), NodeId(1), 3);
        assert!(!sub.await_on::<Echo>(NodeId(1), |e| !e.got.is_empty(), 10_000));
        Substrate::restart(&mut sub, NodeId(1));
        Substrate::post(&mut sub, NodeId(0), NodeId(1), 0);
        assert!(sub.await_on::<Echo>(NodeId(1), |e| !e.got.is_empty(), 10_000));
    }

    #[test]
    fn scenario_crash_plans_fire_on_build() {
        let scenario = Scenario::named("crash1").crash_restart(1, 2, 8);
        let nodes: Vec<Box<dyn Automaton<u32> + Send>> =
            vec![Box::new(Echo::default()), Box::new(Echo::default())];
        let cfg = SubstrateConfig::new(nodes).scenario(scenario);
        let mut sub: World<u32> = Substrate::build(cfg);
        // Delivered at t1 < crash at t2: processed.
        Substrate::post(&mut sub, NodeId(0), NodeId(1), 0);
        assert!(sub.await_on::<Echo>(NodeId(1), |e| e.got.len() == 1, 10_000));
        // Next message arrives while crashed (t3): lost.
        Substrate::post(&mut sub, NodeId(0), NodeId(1), 0);
        assert!(!sub.await_on::<Echo>(NodeId(1), |e| e.got.len() == 2, 10_000));
        // After the scheduled restart the node processes again.
        sub.run_before(Time(9));
        Substrate::post(&mut sub, NodeId(0), NodeId(1), 0);
        assert!(sub.await_on::<Echo>(NodeId(1), |e| e.got.len() == 2, 10_000));
    }

    #[test]
    fn crashing_a_set_is_simultaneous_and_clock_neutral() {
        let nodes: Vec<Box<dyn Automaton<u32> + Send>> = vec![
            Box::new(Echo::default()),
            Box::new(Echo::default()),
            Box::new(Echo::default()),
        ];
        let mut sub: World<u32> = Substrate::build(SubstrateConfig::new(nodes));
        let t0 = sub.now();
        Substrate::crash(&mut sub, NodeId(1));
        Substrate::crash(&mut sub, NodeId(2));
        // Crashing must not drive the clock: both crash events are
        // scheduled at the same tick, so the set dies simultaneously.
        assert_eq!(sub.now(), t0);
        Substrate::post(&mut sub, NodeId(0), NodeId(1), 0);
        Substrate::post(&mut sub, NodeId(0), NodeId(2), 0);
        assert!(!sub.await_on::<Echo>(NodeId(1), |e| !e.got.is_empty(), 10_000));
        assert!(!sub.await_on::<Echo>(NodeId(2), |e| !e.got.is_empty(), 10_000));
        assert!(sub.is_crashed(NodeId(1)) && sub.is_crashed(NodeId(2)));
    }

    #[test]
    fn scenario_links_shape_delivery() {
        let scenario = Scenario::named("cut")
            .link(LinkRule::every(LinkEffect::Drop).to(Selector::Is(NodeId(1))));
        let nodes: Vec<Box<dyn Automaton<u32> + Send>> =
            vec![Box::new(Echo::default()), Box::new(Echo::default())];
        let cfg = SubstrateConfig::new(nodes).scenario(scenario);
        let mut sub: World<u32> = Substrate::build(cfg);
        Substrate::post(&mut sub, NodeId(0), NodeId(1), 5);
        assert!(!sub.await_on::<Echo>(NodeId(1), |e| !e.got.is_empty(), 10_000));
    }
}
