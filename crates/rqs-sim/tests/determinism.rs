//! Property-based determinism tests: identical configurations must yield
//! bit-identical executions — the foundation of the paper-figure replays.

use proptest::prelude::*;
use rqs_sim::{Automaton, Context, Envelope, Fate, NetworkScript, NodeId, Time, TimerToken, World};
use std::any::Any;

/// A small chaotic automaton: relays messages around a ring, arms timers,
/// and records everything it sees.
struct RingNode {
    n: usize,
    hops_left: u32,
    log: Vec<(u64, usize, u32)>, // (time, from, payload)
}

impl Automaton<u32> for RingNode {
    fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
        self.log.push((ctx.now().ticks(), from.0, msg));
        if msg > 0 && self.hops_left > 0 {
            self.hops_left -= 1;
            let next = NodeId((ctx.me().0 + 1) % self.n);
            ctx.send(next, msg - 1);
            if msg.is_multiple_of(3) {
                ctx.set_timer(2);
            }
        }
    }
    fn on_timer(&mut self, t: TimerToken, ctx: &mut Context<u32>) {
        self.log.push((ctx.now().ticks(), usize::MAX, t.0 as u32));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn run_once(
    n: usize,
    payloads: &[u32],
    drop_mod: u64,
    delay_mod: u64,
) -> Vec<Vec<(u64, usize, u32)>> {
    let mut world = World::new(move |env: &Envelope<u32>| {
        // A deterministic pseudo-random policy derived from the message.
        let h = env.sent_at.ticks()
            + env.from.0 as u64 * 7
            + env.to.0 as u64 * 13
            + env.msg as u64 * 31;
        if drop_mod > 0 && h.is_multiple_of(drop_mod) {
            Fate::Drop
        } else {
            Fate::Deliver {
                delay: 1 + (h % delay_mod.max(1)),
            }
        }
    });
    let nodes: Vec<NodeId> = (0..n)
        .map(|_| {
            world.add_node(Box::new(RingNode {
                n,
                hops_left: 64,
                log: Vec::new(),
            }))
        })
        .collect();
    for (i, &p) in payloads.iter().enumerate() {
        world.post(nodes[i % n], nodes[(i + 1) % n], p);
    }
    world.run_to_quiescence_bounded(1_000_000);
    nodes
        .iter()
        .map(|&id| world.node_as::<RingNode>(id).log.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn identical_runs_identical_logs(
        n in 2usize..6,
        payloads in prop::collection::vec(0u32..20, 1..6),
        drop_mod in 0u64..7,
        delay_mod in 1u64..5,
    ) {
        let a = run_once(n, &payloads, drop_mod, delay_mod);
        let b = run_once(n, &payloads, drop_mod, delay_mod);
        prop_assert_eq!(a, b, "two identical configurations must replay identically");
    }

    #[test]
    fn crash_time_monotone_in_delivered_messages(
        n in 2usize..5,
        payloads in prop::collection::vec(1u32..20, 1..4),
        crash_at in 1u64..10,
    ) {
        // Crashing a node earlier can only reduce the set of events it
        // logs (prefix property of crashes).
        let full = run_once(n, &payloads, 0, 1);
        let mut world = World::new(NetworkScript::synchronous());
        let nodes: Vec<NodeId> = (0..n)
            .map(|_| {
                world.add_node(Box::new(RingNode { n, hops_left: 64, log: Vec::new() }))
            })
            .collect();
        world.crash_at(nodes[0], Time(crash_at));
        for (i, &p) in payloads.iter().enumerate() {
            world.post(nodes[i % n], nodes[(i + 1) % n], p);
        }
        world.run_to_quiescence_bounded(1_000_000);
        let crashed_log = world.node_as::<RingNode>(nodes[0]).log.clone();
        // Every event the crashed node saw happened before the crash and
        // is a prefix of the fault-free log.
        for e in &crashed_log {
            prop_assert!(e.0 <= crash_at);
        }
        prop_assert!(crashed_log.len() <= full[0].len());
        let prefix = &full[0][..crashed_log.len()];
        prop_assert_eq!(&crashed_log[..], prefix, "crash must truncate, not reorder");
    }
}
