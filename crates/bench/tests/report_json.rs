//! Round-trip and escaping tests for `Report::to_json`.
//!
//! The emitter is hand-rolled (no serde in the offline build), so these
//! tests drive it through a minimal strict JSON reader: every emitted
//! document must parse, and every string must un-escape back to the
//! original cell content — including keys with quotes and backslashes,
//! control characters, and nested tables of rows.

use bench::Report;

// ---- a minimal strict JSON reader (objects of string/array values) ----

#[derive(Debug, PartialEq)]
enum Json {
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Self {
        Reader {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> u8 {
        self.bytes[self.pos]
    }

    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        b
    }

    fn expect(&mut self, b: u8) {
        assert_eq!(self.bump(), b, "malformed JSON at byte {}", self.pos - 1);
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'"' => Json::Str(self.string()),
            b'[' => {
                self.expect(b'[');
                let mut items = Vec::new();
                if self.peek() != b']' {
                    loop {
                        items.push(self.value());
                        if self.peek() == b',' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(b']');
                Json::Arr(items)
            }
            b'{' => {
                self.expect(b'{');
                let mut fields = Vec::new();
                if self.peek() != b'}' {
                    loop {
                        let key = self.string();
                        self.expect(b':');
                        fields.push((key, self.value()));
                        if self.peek() == b',' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(b'}');
                Json::Obj(fields)
            }
            other => panic!("unexpected byte {other:?} at {}", self.pos),
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bump() {
                b'"' => return out,
                b'\\' => match self.bump() {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex: String = (0..4).map(|_| self.bump() as char).collect();
                        let code = u32::from_str_radix(&hex, 16).expect("hex escape");
                        out.push(char::from_u32(code).expect("scalar value"));
                    }
                    other => panic!("bad escape \\{}", other as char),
                },
                c if c < 0x20 => panic!("raw control character {c:#x} in JSON string"),
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble multi-byte UTF-8 (the emitter passes
                    // non-ASCII through verbatim).
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }
}

fn parse(s: &str) -> Json {
    let mut r = Reader::new(s);
    let v = r.value();
    assert_eq!(r.pos, r.bytes.len(), "trailing garbage after JSON value");
    v
}

fn field<'a>(obj: &'a Json, name: &str) -> &'a Json {
    match obj {
        Json::Obj(fields) => {
            &fields
                .iter()
                .find(|(k, _)| k == name)
                .unwrap_or_else(|| panic!("missing field {name:?}"))
                .1
        }
        other => panic!("expected object, got {other:?}"),
    }
}

fn strings(v: &Json) -> Vec<String> {
    match v {
        Json::Arr(items) => items
            .iter()
            .map(|i| match i {
                Json::Str(s) => s.clone(),
                other => panic!("expected string, got {other:?}"),
            })
            .collect(),
        other => panic!("expected array, got {other:?}"),
    }
}

// ---- the round-trip tests --------------------------------------------

#[test]
fn quotes_and_backslashes_round_trip() {
    let mut r = Report::new(r#"E0 "quoted\title" with \\ stuff"#);
    r.note(r#"path C:\tmp\"data""#)
        .headers([r#"k"ey"#, r"v\alue"])
        .row([r#"""#, r"\"])
        .row([r#"a"b\c"d"#, r"\\\\"]);
    let json = parse(&r.to_json());
    match field(&json, "title") {
        Json::Str(s) => assert_eq!(s, r#"E0 "quoted\title" with \\ stuff"#),
        other => panic!("{other:?}"),
    }
    assert_eq!(
        strings(field(&json, "commentary")),
        vec![r#"path C:\tmp\"data""#]
    );
    assert_eq!(strings(field(&json, "headers")), vec![r#"k"ey"#, r"v\alue"]);
    match field(&json, "rows") {
        Json::Arr(rows) => {
            assert_eq!(
                strings(&rows[0]),
                vec![r#"""#.to_string(), r"\".to_string()]
            );
            assert_eq!(
                strings(&rows[1]),
                vec![r#"a"b\c"d"#.to_string(), r"\\\\".to_string()]
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn control_characters_and_unicode_round_trip() {
    let mut r = Report::new("E∞ (unicode ⟨τ⟩)");
    r.note("line\none\ttabbed\rreturned")
        .headers(["α", "b\u{1}c"])
        .row(["δ→ε", "\u{7f} del is not escaped but ok"]);
    let emitted = r.to_json();
    // No raw control characters may survive in the emitted text.
    assert!(
        emitted.bytes().all(|b| b >= 0x20),
        "raw control byte emitted"
    );
    let json = parse(&emitted);
    assert_eq!(
        strings(field(&json, "commentary")),
        vec!["line\none\ttabbed\rreturned"]
    );
    assert_eq!(strings(field(&json, "headers")), vec!["α", "b\u{1}c"]);
}

#[test]
fn nested_tables_preserve_shape() {
    let mut r = Report::new("E16 (nested)");
    r.headers(["a", "b", "c"]);
    for i in 0..4 {
        r.row([format!("r{i}a"), format!("r{i}b"), format!("r{i}c")]);
    }
    let json = parse(&r.to_json());
    match field(&json, "rows") {
        Json::Arr(rows) => {
            assert_eq!(rows.len(), 4);
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(
                    strings(row),
                    vec![format!("r{i}a"), format!("r{i}b"), format!("r{i}c")]
                );
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn empty_report_is_valid_json() {
    let r = Report::new("");
    let json = parse(&r.to_json());
    assert_eq!(field(&json, "title"), &Json::Str(String::new()));
    assert_eq!(field(&json, "rows"), &Json::Arr(vec![]));
}

#[test]
fn float_cells_are_nan_free_plain_strings() {
    // Reports carry pre-formatted cells; the convention across the
    // experiment modules is `format!("{:.2}", x)` over NaN-free helpers
    // (the metrics module defines 0-denominators to return 0.0). Check
    // that the emitter passes such cells through untouched and that the
    // zero-guarded helpers never emit "NaN".
    let stats = rqs_kv::KvRunStats::default();
    let cells = [
        format!("{:.2}", stats.throughput()),
        format!("{:.2}", stats.envelopes_per_op()),
        format!("{:.2}", stats.batching_factor()),
        format!("{:.2}", rqs_kv::RoundHistogram::new().fast_path_ratio()),
    ];
    let mut r = Report::new("floats");
    r.headers(["v"]);
    for c in &cells {
        assert!(!c.contains("NaN"), "zero-guarded metric emitted NaN");
        r.row([c.clone()]);
    }
    let json = parse(&r.to_json());
    match field(&json, "rows") {
        Json::Arr(rows) => {
            for (row, cell) in rows.iter().zip(&cells) {
                assert_eq!(strings(row), vec![cell.clone()]);
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn every_experiment_report_emits_parseable_json() {
    for report in bench::all_reports_seeded(7, true) {
        let json = parse(&report.to_json());
        match field(&json, "title") {
            Json::Str(s) => assert!(!s.is_empty(), "every report is titled"),
            other => panic!("{other:?}"),
        }
    }
}
