//! Microbenchmarks of the core abstractions: property verification,
//! quorum lookups — the per-message costs of the protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rqs_core::threshold::ThresholdConfig;
use rqs_core::{ProcessSet, Rqs};

fn graded(n: usize, t: usize, k: usize) -> Rqs {
    ThresholdConfig::new(n, t, k)
        .with_class1(0)
        .with_class2(if t > 0 { t - 1 } else { 0 })
        .build_unchecked()
        .unwrap()
}

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_verify");
    for (n, t, k) in [(7usize, 2usize, 1usize), (10, 3, 1), (12, 3, 2)] {
        group.bench_with_input(
            BenchmarkId::new("verify", format!("n{n}t{t}k{k}")),
            &(n, t, k),
            |b, &(n, t, k)| {
                let rqs = graded(n, t, k);
                b.iter(|| rqs.verify().is_ok());
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("core_lookup");
    for n in [7usize, 10, 12] {
        group.bench_with_input(BenchmarkId::new("quorums_within", n), &n, |b, &n| {
            let rqs = graded(n, 3.min(n / 3), 1);
            let responded =
                ProcessSet::universe(n).difference(ProcessSet::singleton(rqs_core::ProcessId(0)));
            b.iter(|| rqs.quorums_within(responded).len());
        });
        group.bench_with_input(BenchmarkId::new("best_available_class", n), &n, |b, &n| {
            let rqs = graded(n, 3.min(n / 3), 1);
            let faulty = ProcessSet::from_indices([0]);
            b.iter(|| rqs.best_available_class(faulty));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_core);
criterion_main!(benches);
