//! E11 criterion bench: wall-clock latency of the protocols on the
//! threaded runtime (real channels, real timers).
//!
//! Absolute numbers depend on the host; the shape to check is that the
//! class-1 fast path beats the degraded paths (which must wait for real
//! `2Δ` timeouts and extra round-trips).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rqs_core::threshold::ThresholdConfig;
use rqs_runtime::{RtConsensus, RtStorage};
use rqs_storage::Value;
use std::time::Duration;

const TICK: Duration = Duration::from_millis(2);

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_wallclock");
    group.sample_size(20);

    for n_t in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("storage_write_read", format!("n={}", 3 * n_t + 1)),
            &n_t,
            |b, &t| {
                let rqs = ThresholdConfig::byzantine_fast(t).build().unwrap();
                let mut st = RtStorage::with_tick(rqs, 1, TICK);
                let mut v = 0u64;
                b.iter(|| {
                    v += 1;
                    let (w, _) = st.write(Value::from(v));
                    // Under scheduler noise an ack can miss the real-time
                    // 2Δ window; record rather than assert the fast path.
                    debug_assert!(w.rounds <= 3);
                    let (r, _) = st.read(0);
                    assert_eq!(r.returned.val, Value::from(v));
                    (w.rounds, r.rounds)
                });
            },
        );
    }

    group.bench_function("consensus_propose_learn_n4", |b| {
        b.iter(|| {
            let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
            let mut cons = RtConsensus::with_tick(rqs, 1, 1, TICK);
            let wall = cons.propose_and_learn(0, 42);
            cons.shutdown();
            wall
        });
    });

    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
