//! E4 criterion bench: simulated storage operations per configuration and
//! fault level — measures harness throughput and reasserts the round
//! counts of Theorem 9 on every sample.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rqs_core::threshold::ThresholdConfig;
use rqs_core::{ProcessSet, Rqs};
use rqs_storage::{StorageHarness, Value};

fn graded() -> Rqs {
    ThresholdConfig::new(7, 2, 1)
        .with_class1(0)
        .with_class2(1)
        .build()
        .unwrap()
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_rounds");
    for (label, crashes, expect_write_rounds) in [
        ("class1", 0usize, 1usize),
        ("class2", 1, 2),
        ("class3", 2, 3),
    ] {
        group.bench_with_input(
            BenchmarkId::new("write_read_n7", label),
            &crashes,
            |b, &crashes| {
                b.iter(|| {
                    let rqs = graded();
                    let n = rqs.universe_size();
                    let mut h = StorageHarness::new(rqs, 1);
                    if crashes > 0 {
                        let faulty: ProcessSet = (n - crashes..n).collect();
                        h.crash_servers(faulty);
                    }
                    let w = h.write(Value::from(7u64));
                    assert_eq!(w.rounds, expect_write_rounds);
                    let r = h.read(0);
                    assert_eq!(r.returned.val, Value::from(7u64));
                    r.rounds
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("storage_scale");
    for t in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("byzantine_3t1_roundtrip", t),
            &t,
            |b, &t| {
                b.iter(|| {
                    let rqs = ThresholdConfig::byzantine_fast(t).build().unwrap();
                    let mut h = StorageHarness::new(rqs, 1);
                    h.write(Value::from(1u64));
                    h.read(0).rounds
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
