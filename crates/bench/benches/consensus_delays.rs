//! E6 criterion bench: simulated consensus instances per configuration —
//! reasserts the 2/3/4 message-delay results of Definition 4 on every
//! sample.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rqs_consensus::ConsensusHarness;
use rqs_core::threshold::ThresholdConfig;
use rqs_core::{ProcessSet, Rqs};

fn graded() -> Rqs {
    ThresholdConfig::new(7, 2, 1)
        .with_class1(0)
        .with_class2(1)
        .build()
        .unwrap()
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_delays");
    for (label, crashes, expect_delays) in
        [("class1", 0usize, 2u64), ("class2", 1, 3), ("class3", 2, 4)]
    {
        group.bench_with_input(
            BenchmarkId::new("propose_learn_n7", label),
            &crashes,
            |b, &crashes| {
                b.iter(|| {
                    let rqs = graded();
                    let n = rqs.universe_size();
                    let mut h = ConsensusHarness::new(rqs, 2, 2);
                    if crashes > 0 {
                        let faulty: ProcessSet = (n - crashes..n).collect();
                        h.crash_acceptors(faulty);
                    }
                    h.propose(0, 7);
                    assert!(h.run_until_learned(400_000));
                    let max = h.learner_delays().into_iter().flatten().max().unwrap();
                    assert_eq!(max, expect_delays);
                    max
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("consensus_baseline");
    group.bench_function("classic_byzantine_n4_slow_path", |b| {
        b.iter(|| {
            let rqs = ThresholdConfig::classic_byzantine(4).build().unwrap();
            let mut h = ConsensusHarness::new(rqs, 1, 1);
            h.propose(0, 3);
            assert!(h.run_until_learned(200_000));
            h.learner_delays()[0].unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
