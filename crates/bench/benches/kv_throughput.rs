//! E15 criterion bench: KV service throughput on the deterministic
//! simulator across batch sizes, plus one threaded-runtime sample.
//!
//! The shape to check: larger per-client batches complete the same
//! workload with fewer envelopes, so simulated-workload wall time drops
//! (less queue churn) and the threaded deployment keeps up with the
//! single-register baseline despite multiplexing 16 objects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rqs_core::threshold::ThresholdConfig;
use rqs_kv::{workload, KvSim, RtKv, WorkloadConfig};
use std::time::Duration;

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_throughput");
    group.sample_size(10);

    let cfg = WorkloadConfig::mixed(16, 4, 160, 42);
    let ops = workload::generate(&cfg);

    for batch in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sim_mixed_160ops", format!("batch={batch}")),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
                    let mut sim = KvSim::new(rqs, 16, 4);
                    let stats = sim.run_workload(&ops, batch);
                    assert_eq!(stats.ops, 160);
                    stats.envelopes
                });
            },
        );
    }

    group.bench_function("threaded_mixed_24ops_batch4", |b| {
        let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
        let mut kv = RtKv::with_tick(rqs, 8, 2, Duration::from_millis(1));
        let small = WorkloadConfig::mixed(8, 2, 24, 42);
        let small_ops = workload::generate(&small);
        b.iter(|| {
            let stats = kv.run_workload(&small_ops, 4);
            assert_eq!(stats.ops, 24);
            stats.duration_units
        });
    });

    group.finish();
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);
