//! Tabular reports printed by the experiment binaries and asserted by the
//! integration tests.

use std::fmt;

/// A printable table with a title, commentary, headers and rows.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Experiment id + paper artifact, e.g. "E1 (Figure 1)".
    pub title: String,
    /// What the paper claims / what to look for.
    pub commentary: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Adds a commentary line.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.commentary.push(line.into());
        self
    }

    /// Sets the headers.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a row.
    pub fn row<I, S>(&mut self, row: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
        self
    }

    /// Finds a cell by row predicate and column header (test helper).
    pub fn cell(&self, col: &str, pred: impl Fn(&[String]) -> bool) -> Option<&str> {
        let idx = self.headers.iter().position(|h| h == col)?;
        self.rows
            .iter()
            .find(|r| pred(r))
            .and_then(|r| r.get(idx))
            .map(String::as_str)
    }

    /// Serializes the report as one JSON object
    /// (`{"title", "commentary", "headers", "rows"}`), for mechanical
    /// capture of experiment trajectories (`exp_* --json`).
    pub fn to_json(&self) -> String {
        let arr = |items: &[String]| -> String {
            let quoted: Vec<String> = items.iter().map(|s| json_string(s)).collect();
            format!("[{}]", quoted.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"title\":{},\"commentary\":{},\"headers\":{},\"rows\":[{}]}}",
            json_string(&self.title),
            arr(&self.commentary),
            arr(&self.headers),
            rows.join(",")
        )
    }

    /// Parses a report back from the [`to_json`](Self::to_json) shape —
    /// the round-trip that lets recorded `BENCH_*.json` artifacts be
    /// re-loaded and asserted on mechanically.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error or unknown key.
    pub fn from_json(s: &str) -> Result<Report, String> {
        let mut p = JsonParser::new(s);
        let mut report = Report::default();
        p.expect('{')?;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "title" => report.title = p.string()?,
                "commentary" => report.commentary = p.string_array()?,
                "headers" => report.headers = p.string_array()?,
                "rows" => {
                    p.expect('[')?;
                    if !p.peek_is(']') {
                        loop {
                            report.rows.push(p.string_array()?);
                            if !p.comma_or(']')? {
                                break;
                            }
                        }
                    } else {
                        p.expect(']')?;
                    }
                }
                other => return Err(format!("unknown report key {other:?}")),
            }
            if !p.comma_or('}')? {
                break;
            }
        }
        p.end()?;
        Ok(report)
    }
}

/// Minimal JSON reader for the exact grammar [`Report::to_json`] emits
/// (objects of strings and string arrays) — no external parser needed.
struct JsonParser<'a> {
    rest: &'a str,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser { rest: s }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.rest.starts_with(c)
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(format!(
                "expected {c:?} at {:?}",
                &self.rest[..self.rest.len().min(16)]
            )),
        }
    }

    /// Consumes `,` and returns `true`, or consumes `close` and returns
    /// `false`.
    fn comma_or(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix(',') {
            self.rest = rest;
            Ok(true)
        } else if let Some(rest) = self.rest.strip_prefix(close) {
            self.rest = rest;
            Ok(false)
        } else {
            Err(format!(
                "expected ',' or {close:?} at {:?}",
                &self.rest[..self.rest.len().min(16)]
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((j, 'u')) => {
                        let hex = self.rest.get(j + 1..j + 5).ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn string_array(&mut self) -> Result<Vec<String>, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        if self.peek_is(']') {
            self.expect(']')?;
            return Ok(out);
        }
        loop {
            out.push(self.string()?);
            if !self.comma_or(']')? {
                return Ok(out);
            }
        }
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "trailing input: {:?}",
                &self.rest[..self.rest.len().min(16)]
            ))
        }
    }
}

/// Escapes a string per the JSON grammar (quotes, backslashes, control
/// characters; everything else passes through as UTF-8).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        for line in &self.commentary {
            writeln!(f, "   {line}")?;
        }
        if self.headers.is_empty() {
            return Ok(());
        }
        // Column widths.
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, cell) in cells.iter().enumerate().take(cols) {
                write!(f, "| {cell:width$} ", width = widths[i])?;
            }
            writeln!(f, "|")
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_formats() {
        let mut r = Report::new("E0 (smoke)");
        r.note("a note")
            .headers(["a", "b"])
            .row(["1", "22"])
            .row(["333", "4"]);
        let s = r.to_string();
        assert!(s.contains("== E0 (smoke) =="));
        assert!(s.contains("a note"));
        assert!(s.contains("| 333 | 4"));
    }

    #[test]
    fn cell_lookup() {
        let mut r = Report::new("t");
        r.headers(["k", "v"]).row(["x", "1"]).row(["y", "2"]);
        assert_eq!(r.cell("v", |row| row[0] == "y"), Some("2"));
        assert_eq!(r.cell("v", |row| row[0] == "z"), None);
        assert_eq!(r.cell("nope", |_| true), None);
    }

    #[test]
    fn json_emission() {
        let mut r = Report::new("E0 \"quoted\"");
        r.note("line\none").headers(["a", "b"]).row(["1", "x\\y"]);
        assert_eq!(
            r.to_json(),
            "{\"title\":\"E0 \\\"quoted\\\"\",\
             \"commentary\":[\"line\\none\"],\
             \"headers\":[\"a\",\"b\"],\
             \"rows\":[[\"1\",\"x\\\\y\"]]}"
        );
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("t\tn\n"), "\"t\\tn\\n\"");
    }

    #[test]
    fn json_round_trips() {
        let mut r = Report::new("E19 \"chaos\"");
        r.note("line\none")
            .note("tab\there")
            .headers(["metric", "value"])
            .row(["wal appends", "123"])
            .row(["path", "a\\b\u{3}"]);
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back.title, r.title);
        assert_eq!(back.commentary, r.commentary);
        assert_eq!(back.headers, r.headers);
        assert_eq!(back.rows, r.rows);
        // And the re-serialization is byte-identical.
        assert_eq!(back.to_json(), r.to_json());
    }

    #[test]
    fn from_json_round_trips_empty_report() {
        let r = Report::new("empty");
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back.to_json(), r.to_json());
        assert!(back.rows.is_empty());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json("{\"title\":\"x\"").is_err());
        assert!(Report::from_json("{\"bogus\":\"x\"}").is_err());
        assert!(Report::from_json("{\"title\":\"x\"} trailing").is_err());
        assert!(Report::from_json("{\"title\":\"unterminated}").is_err());
    }
}
