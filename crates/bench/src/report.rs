//! Tabular reports printed by the experiment binaries and asserted by the
//! integration tests.

use std::fmt;

/// A printable table with a title, commentary, headers and rows.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Experiment id + paper artifact, e.g. "E1 (Figure 1)".
    pub title: String,
    /// What the paper claims / what to look for.
    pub commentary: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Adds a commentary line.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.commentary.push(line.into());
        self
    }

    /// Sets the headers.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a row.
    pub fn row<I, S>(&mut self, row: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
        self
    }

    /// Finds a cell by row predicate and column header (test helper).
    pub fn cell(&self, col: &str, pred: impl Fn(&[String]) -> bool) -> Option<&str> {
        let idx = self.headers.iter().position(|h| h == col)?;
        self.rows
            .iter()
            .find(|r| pred(r))
            .and_then(|r| r.get(idx))
            .map(String::as_str)
    }

    /// Serializes the report as one JSON object
    /// (`{"title", "commentary", "headers", "rows"}`), for mechanical
    /// capture of experiment trajectories (`exp_* --json`).
    pub fn to_json(&self) -> String {
        let arr = |items: &[String]| -> String {
            let quoted: Vec<String> = items.iter().map(|s| json_string(s)).collect();
            format!("[{}]", quoted.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"title\":{},\"commentary\":{},\"headers\":{},\"rows\":[{}]}}",
            json_string(&self.title),
            arr(&self.commentary),
            arr(&self.headers),
            rows.join(",")
        )
    }
}

/// Escapes a string per the JSON grammar (quotes, backslashes, control
/// characters; everything else passes through as UTF-8).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        for line in &self.commentary {
            writeln!(f, "   {line}")?;
        }
        if self.headers.is_empty() {
            return Ok(());
        }
        // Column widths.
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, cell) in cells.iter().enumerate().take(cols) {
                write!(f, "| {cell:width$} ", width = widths[i])?;
            }
            writeln!(f, "|")
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_formats() {
        let mut r = Report::new("E0 (smoke)");
        r.note("a note")
            .headers(["a", "b"])
            .row(["1", "22"])
            .row(["333", "4"]);
        let s = r.to_string();
        assert!(s.contains("== E0 (smoke) =="));
        assert!(s.contains("a note"));
        assert!(s.contains("| 333 | 4"));
    }

    #[test]
    fn cell_lookup() {
        let mut r = Report::new("t");
        r.headers(["k", "v"]).row(["x", "1"]).row(["y", "2"]);
        assert_eq!(r.cell("v", |row| row[0] == "y"), Some("2"));
        assert_eq!(r.cell("v", |row| row[0] == "z"), None);
        assert_eq!(r.cell("nope", |_| true), None);
    }

    #[test]
    fn json_emission() {
        let mut r = Report::new("E0 \"quoted\"");
        r.note("line\none").headers(["a", "b"]).row(["1", "x\\y"]);
        assert_eq!(
            r.to_json(),
            "{\"title\":\"E0 \\\"quoted\\\"\",\
             \"commentary\":[\"line\\none\"],\
             \"headers\":[\"a\",\"b\"],\
             \"rows\":[[\"1\",\"x\\\\y\"]]}"
        );
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("t\tn\n"), "\"t\\tn\\n\"");
    }
}
