//! **E3 (Figure 4, Example 7)** — the intuition behind Property 3, on the
//! 6-server general (non-threshold) adversary.
//!
//! System: `S = {s1..s6}`, adversary maximal sets `{s1,s2}, {s3,s4},
//! {s2,s4}`; quorums `Q1 = {s2,s4,s5,s6}` (class 1), `Q2 = {s1..s5}` and
//! `Q2' = {s1..s4,s6}` (class 2).
//!
//! Reproduced executions (against the real storage implementation):
//!
//! - **ex1** — synchronous write with `Q1` correct completes in 1 round;
//! - **ex2/ex3** — a slow, incomplete write concurrent with a read: the
//!   read completes in 2 rounds via the `BCD(c,2,1)` write-back that
//!   stamps class-2 quorum ids into slot 1;
//! - **ex4** — `s5` crashes, `B12 = {s1,s2}` turn Byzantine and "forget"
//!   the read's write-back: a second reader touching only `Q2'` must
//!   still return 1 — possible exactly because Property 3(b) put a
//!   class-1 member inside `Q2 ∩ Q2'` stamped in round 1;
//! - **ex6** — no write at all, `{s1,s2}` fabricate the value: the reader
//!   must *not* return it (`safe` fails on a non-basic reporter set).

use crate::report::Report;
use rqs_core::{Adversary, ProcessSet, Rqs};
use rqs_sim::{Fate, NetworkScript, Rule, Selector};
use rqs_storage::byzantine::ForgedServer;
use rqs_storage::{StorageHarness, TsVal, Value};

/// Builds the Example 7 refined quorum system (0-based indices).
pub fn example7_rqs() -> Rqs {
    let b = Adversary::general(
        6,
        [
            ProcessSet::from_indices([0, 1]), // {s1,s2}
            ProcessSet::from_indices([2, 3]), // {s3,s4}
            ProcessSet::from_indices([1, 3]), // {s2,s4}
        ],
    )
    .expect("example 7 adversary");
    let q1 = ProcessSet::from_indices([1, 3, 4, 5]); // Q1  = {s2,s4,s5,s6}
    let q2 = ProcessSet::from_indices([0, 1, 2, 3, 4]); // Q2  = {s1..s5}
    let q2p = ProcessSet::from_indices([0, 1, 2, 3, 5]); // Q2' = {s1..s4,s6}
    Rqs::new(b, vec![q1, q2, q2p], vec![0], vec![0, 1, 2]).expect("example 7 verifies")
}

/// Results of the four reproduced executions.
#[derive(Clone, Debug)]
pub struct Fig4Outcome {
    /// ex1: rounds of the unobstructed write.
    pub ex1_write_rounds: usize,
    /// ex2/ex3: rounds and value of the read concurrent with the slow
    /// write.
    pub ex3_read: (usize, String),
    /// ex4: rounds and value of the read after crash + Byzantine
    /// forgetting.
    pub ex4_read: (usize, String),
    /// ex4 returned the written value (the paper's "rd′ must return 1").
    pub ex4_returns_written: bool,
    /// ex6: the fabricated-value read returns the initial value.
    pub ex6_returns_bottom: bool,
}

/// Runs ex1 standalone: best case, one-round write.
pub fn run_ex1() -> usize {
    let mut h = StorageHarness::new(example7_rqs(), 1);
    h.write(Value::from(1u64)).rounds
}

/// Runs the ex2→ex4 chain in one world.
pub fn run_chain() -> Fig4Outcome {
    let ex1_write_rounds = run_ex1();

    let mut h = StorageHarness::new(example7_rqs(), 2);
    let writer = h.writer_id();
    let s5 = h.servers()[5];
    let r1 = h.reader_id(0);

    // ex3: slow, incomplete write — round-1 wr messages reach s1..s5 but
    // not s6; all acks to the writer are lost, so the write stays open.
    h.world_mut().set_policy(
        NetworkScript::synchronous()
            .rule(
                Rule::always(Fate::Drop)
                    .from(Selector::Is(writer))
                    .to(Selector::Is(s5)),
            )
            .rule(Rule::always(Fate::Drop).to(Selector::Is(writer))),
    );
    h.start_write(Value::from(1u64));
    h.world_mut().run_to_quiescence();

    // rd by r1: r1 and s6 cannot talk — r1 sees exactly Q2 = {s1..s5}.
    h.world_mut().set_policy(
        NetworkScript::synchronous()
            .rule(
                Rule::always(Fate::Drop)
                    .from(Selector::Is(s5))
                    .to(Selector::Is(r1)),
            )
            .rule(
                Rule::always(Fate::Drop)
                    .from(Selector::Is(r1))
                    .to(Selector::Is(s5)),
            )
            .rule(Rule::always(Fate::Drop).to(Selector::Is(writer))),
    );
    let rd1 = h.read(0);
    let ex3_read = (rd1.rounds, rd1.returned.to_string());

    // ex4: s5 crashes; B12 = {s1,s2} forget the write-back (present the
    // pre-write-back state: the pair without quorum ids).
    h.world_mut().set_policy(NetworkScript::synchronous());
    h.crash_servers(ProcessSet::from_indices([4]));
    let forged = TsVal::new(1, Value::from(1u64));
    h.make_byzantine(0, Box::new(ForgedServer::with_slot1(&forged)));
    h.make_byzantine(1, Box::new(ForgedServer::with_slot1(&forged)));
    let rd2 = h.read(1);
    let ex4_read = (rd2.rounds, rd2.returned.to_string());
    let ex4_returns_written = rd2.returned == forged;

    // ex6: fresh world, no write; {s1,s2} fabricate the pair.
    let mut h6 = StorageHarness::new(example7_rqs(), 1);
    h6.crash_servers(ProcessSet::from_indices([4]));
    h6.make_byzantine(0, Box::new(ForgedServer::with_slot1(&forged)));
    h6.make_byzantine(1, Box::new(ForgedServer::with_slot1(&forged)));
    let rd6 = h6.read(0);
    let ex6_returns_bottom = rd6.returned.is_initial();

    Fig4Outcome {
        ex1_write_rounds,
        ex3_read,
        ex4_read,
        ex4_returns_written,
        ex6_returns_bottom,
    }
}

/// Builds the E3 report.
pub fn report() -> Report {
    let out = run_chain();
    let mut r = Report::new("E3 (Figure 4, Example 7): Property 3 on a general adversary");
    r.note("S = {s1..s6}; B maximal = {s1,s2},{s3,s4},{s2,s4};");
    r.note("Q1 = {s2,s4,s5,s6} class 1; Q2 = {s1..s5}, Q2' = {s1..s4,s6} class 2.");
    r.note("ex4 is the paper's punchline: after s5 crashes and {s1,s2} 'forget'");
    r.note("the write-back, the reader on Q2' can still return 1 only because");
    r.note("P3b guarantees a stamped class-1 witness inside Q2 ∩ Q2'.");
    r.headers([
        "execution",
        "operation",
        "rounds",
        "returned",
        "paper expectation",
    ]);
    r.row([
        "ex1".to_string(),
        "write(1), Q1 correct".to_string(),
        out.ex1_write_rounds.to_string(),
        "-".to_string(),
        "1 round".to_string(),
    ]);
    r.row([
        "ex2/ex3".to_string(),
        "read ∥ slow write, sees Q2".to_string(),
        out.ex3_read.0.to_string(),
        out.ex3_read.1.clone(),
        "2 rounds, returns 1".to_string(),
    ]);
    r.row([
        "ex4".to_string(),
        "read after crash+forge, sees Q2'".to_string(),
        out.ex4_read.0.to_string(),
        out.ex4_read.1.clone(),
        "returns 1".to_string(),
    ]);
    r.row([
        "ex6".to_string(),
        "read of fabricated value".to_string(),
        "-".to_string(),
        if out.ex6_returns_bottom {
            "⊥".to_string()
        } else {
            "FABRICATED".to_string()
        },
        "must return ⊥".to_string(),
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example7_verifies() {
        let rqs = example7_rqs();
        assert!(rqs.verify().is_ok());
        assert_eq!(rqs.class1_ids().len(), 1);
        assert_eq!(rqs.class2_ids().len(), 3);
    }

    #[test]
    fn chain_matches_paper() {
        let out = run_chain();
        assert_eq!(out.ex1_write_rounds, 1, "ex1: class-1 write is 1 round");
        assert_eq!(out.ex3_read.0, 2, "ex2: read over Q2 takes 2 rounds");
        assert!(
            out.ex3_read.1.contains("1"),
            "read returns the written value"
        );
        assert!(out.ex4_returns_written, "ex4: rd' must return 1");
        assert!(out.ex6_returns_bottom, "ex6: fabricated value rejected");
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.cell("returned", |row| row[0] == "ex6"), Some("⊥"));
    }
}
