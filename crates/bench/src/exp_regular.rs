//! **E12 (§6 concluding remarks)** — the regular-semantics extension:
//! with regular (non-atomic) guarantees, reads skip the write-back part
//! entirely and complete in one round at *every* quorum class, matching
//! the paper's observation that Properties 1 and 3a suffice for
//! non-atomic best-case-efficient storage.
//!
//! The flip side is also measured: regular reads permit read inversion
//! (two sequential reads going backwards), which the atomic algorithm's
//! write-back exists to prevent.

use crate::report::Report;
use rqs_core::threshold::ThresholdConfig;
use rqs_core::Rqs;
use rqs_sim::{NetworkScript, NodeId, World};
use rqs_storage::regular::RegularReader;
use rqs_storage::{Server, Value, Writer};
use std::sync::Arc;

fn graded() -> Rqs {
    ThresholdConfig::new(7, 2, 1)
        .with_class1(0)
        .with_class2(1)
        .build()
        .unwrap()
}

/// Measures a regular read with `f` servers crashed *after* a fast write.
pub fn measure_regular_read(f: usize) -> (usize, bool) {
    let rqs = Arc::new(graded());
    let n = rqs.universe_size();
    let mut world = World::new(NetworkScript::synchronous());
    let servers: Vec<NodeId> = (0..n)
        .map(|_| world.add_node(Box::new(Server::new())))
        .collect();
    let writer = world.add_node(Box::new(Writer::new(rqs.clone(), servers.clone())));
    let reader = world.add_node(Box::new(RegularReader::new(rqs, servers.clone())));

    world.invoke::<Writer>(writer, |w, ctx| w.start_write(Value::from(9u64), ctx));
    world.run_to_quiescence();
    let now = world.now();
    for &s in servers.iter().rev().take(f) {
        world.crash_at(s, now);
    }
    world.run_before(now + 1);
    world.invoke::<RegularReader>(reader, |r, ctx| r.start_read(ctx));
    world.run_to_quiescence();
    let out = &world.node_as::<RegularReader>(reader).outcomes()[0];
    (out.rounds, out.returned.val == Value::from(9u64))
}

/// Builds the E12 report, contrasting atomic and regular read latency.
pub fn report() -> Report {
    let mut r = Report::new("E12 (§6): regular semantics — 1-round reads at every class");
    r.note("Same system (graded n=7), crash AFTER a fast write. The atomic");
    r.note("reader must write back (1/2/3 rounds by class); the regular");
    r.note("reader returns immediately — the paper's observation that");
    r.note("Properties 1 + 3a suffice for non-atomic fast reads.");
    r.note("Cost: regular reads permit read inversion (see rqs-storage");
    r.note("regular::tests::regularity_checker_accepts_inversion).");
    r.headers([
        "crashes",
        "best class",
        "atomic read rounds",
        "regular read rounds",
    ]);
    for f in 0..=2usize {
        let atomic = crate::exp_latency::measure_degraded_read(graded(), f);
        let (regular_rounds, correct) = measure_regular_read(f);
        assert!(correct, "regular read must return the written value");
        r.row([
            f.to_string(),
            atomic.class.map(|c| c.to_string()).unwrap_or_default(),
            atomic.read_rounds.to_string(),
            regular_rounds.to_string(),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_reads_always_one_round() {
        for f in 0..=2 {
            let (rounds, correct) = measure_regular_read(f);
            assert_eq!(rounds, 1, "regular read at {f} crashes");
            assert!(correct);
        }
    }

    #[test]
    fn report_contrasts_atomic_and_regular() {
        let r = report();
        assert_eq!(r.rows.len(), 3);
        // Atomic degrades 1/2/3; regular stays at 1.
        assert_eq!(r.cell("atomic read rounds", |row| row[0] == "2"), Some("3"));
        assert_eq!(
            r.cell("regular read rounds", |row| row[0] == "2"),
            Some("1")
        );
    }
}
