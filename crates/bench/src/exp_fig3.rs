//! **E2 (Figure 3, §2.2)** — the worked refined-quorum-system example for
//! the 1-bounded threshold adversary over 8 elements.
//!
//! Verifies Properties 1–3 hold, reproduces every intersection cardinality
//! the caption states, and confirms the headline observation that quorum
//! *class* is about intersections, not cardinality (`Q'` has 6 elements
//! yet is class 3; `Q1` has 5 and is class 1).

use crate::report::Report;
use rqs_core::{Adversary, ProcessSet, Rqs};

/// The Figure 3 system. `Q'`, `Q2`, `Q1` are as printed in the paper;
/// `Q` is reconstructed as `{1,5,6,8}` (1-based) so that all the
/// caption's cardinality claims hold simultaneously (the published figure
/// text is ambiguous about `Q`).
pub fn figure3() -> Rqs {
    let b = Adversary::threshold(8, 1);
    let q = ProcessSet::from_indices([0, 4, 5, 7]); // Q   = {1,5,6,8}
    let qp = ProcessSet::from_indices([0, 1, 2, 3, 6, 7]); // Q'  = {1,2,3,4,7,8}
    let q2 = ProcessSet::from_indices([2, 3, 4, 5, 6]); // Q2  = {3,4,5,6,7}
    let q1 = ProcessSet::from_indices([0, 1, 2, 4, 5]); // Q1  = {1,2,3,5,6}
    Rqs::new(b, vec![q, qp, q2, q1], vec![3], vec![2, 3]).expect("figure 3 verifies")
}

/// Builds the E2 report.
pub fn report() -> Report {
    let rqs = figure3();
    let mut r = Report::new("E2 (Figure 3): example RQS for B_1 over 8 elements");
    r.note("Caption claims: every pair intersects in ≥ k+1 = 2 elements (Property 1);");
    r.note("Q1 meets every quorum in ≥ 2k+1 = 3 (Property 2); |Q2∩Q'| = |Q2∩Q1| = 3");
    r.note("(P3a) and |Q2∩Q∩Q1| = 2 = k+1 (P3b). Class is not cardinality:");
    r.note("|Q'| = 6 but class 3; |Q1| = 5 and class 1.");
    r.headers(["pair", "intersection", "size", "claim"]);
    let names = ["Q", "Q'", "Q2", "Q1"];
    let quorums = rqs.quorums().to_vec();
    for i in 0..quorums.len() {
        for j in i + 1..quorums.len() {
            let inter = quorums[i].intersection(quorums[j]);
            let claim = if names[i] == "Q1" || names[j] == "Q1" {
                "≥ 2k+1 (Property 2 via Q1)"
            } else {
                "≥ k+1 (Property 1)"
            };
            r.row([
                format!("{} ∩ {}", names[i], names[j]),
                inter.to_string(),
                inter.len().to_string(),
                claim.to_string(),
            ]);
        }
    }
    r.row([
        "verify()".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:?}", rqs.verify().is_ok()),
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqs_core::QuorumClass;

    #[test]
    fn figure3_matches_caption_cardinalities() {
        let rqs = figure3();
        let q = rqs.quorum(rqs.all_ids()[0]);
        let qp = rqs.quorum(rqs.all_ids()[1]);
        let q2 = rqs.quorum(rqs.all_ids()[2]);
        let q1 = rqs.quorum(rqs.all_ids()[3]);
        assert_eq!(q2.intersection(qp).len(), 3); // |Q2 ∩ Q'| = 2k+1
        assert_eq!(q2.intersection(q1).len(), 3); // |Q2 ∩ Q1| = 2k+1
        assert_eq!(q2.intersection(q).intersection(q1).len(), 2); // k+1
                                                                  // Property 2 via Q1: Q1 meets everything in ≥ 3.
        for other in [q, qp, q2, q1] {
            assert!(q1.intersection(other).len() >= 3);
        }
        // Every pair ≥ 2 (Property 1).
        for a in [q, qp, q2, q1] {
            for b in [q, qp, q2, q1] {
                assert!(a.intersection(b).len() >= 2);
            }
        }
    }

    #[test]
    fn class_is_not_cardinality() {
        let rqs = figure3();
        let ids = rqs.all_ids();
        assert_eq!(rqs.quorum(ids[1]).len(), 6);
        assert_eq!(rqs.class_of(ids[1]), QuorumClass::Class3);
        assert_eq!(rqs.quorum(ids[3]).len(), 5);
        assert_eq!(rqs.class_of(ids[3]), QuorumClass::Class1);
    }

    #[test]
    fn report_includes_all_pairs() {
        let r = report();
        assert_eq!(r.rows.len(), 6 + 1); // C(4,2) pairs + verify row
        assert_eq!(r.cell("claim", |row| row[0] == "verify()"), Some("true"));
    }
}
