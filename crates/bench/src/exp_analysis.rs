//! **E10 (§6 open questions)** — quantitative structure of refined quorum
//! systems: Naor–Wool load, per-class availability, and how many valid
//! class assignments an adversary admits over a fixed quorum family.

use crate::report::Report;
use rqs_core::analysis::{availability, class_availability, count_class_assignments, load};
use rqs_core::threshold::ThresholdConfig;
use rqs_core::{Adversary, ProcessSet, QuorumClass};

/// Builds the load/availability report.
pub fn load_availability_report() -> Report {
    let mut r = Report::new("E10a (§6): load and availability of threshold RQS");
    r.note("Load = minimax access probability (lower is better); availability");
    r.note("= P[some fully-correct quorum of the class] at per-process failure");
    r.note("probability p = 0.1. Fast classes trade availability for latency.");
    r.headers([
        "system",
        "load",
        "avail class1",
        "avail class2",
        "avail class3",
    ]);
    let systems: Vec<(String, rqs_core::Rqs)> = vec![
        (
            "majorities n=5".into(),
            ThresholdConfig::classic_crash(5).build().unwrap(),
        ),
        (
            "§1.2 n=5 fast@4".into(),
            ThresholdConfig::crash_fast(5, 1).build().unwrap(),
        ),
        (
            "byzantine n=4".into(),
            ThresholdConfig::byzantine_fast(1).build().unwrap(),
        ),
        (
            "graded n=7".into(),
            ThresholdConfig::new(7, 2, 1)
                .with_class1(0)
                .with_class2(1)
                .build()
                .unwrap(),
        ),
    ];
    let p = 0.1;
    for (name, rqs) in systems {
        let l = load(rqs.quorums(), rqs.universe_size());
        let a1 = class_availability(&rqs, QuorumClass::Class1, p);
        let a2 = class_availability(&rqs, QuorumClass::Class2, p);
        let a3 = availability(rqs.quorums(), rqs.universe_size(), p);
        r.row([
            name,
            format!("{l:.3}"),
            format!("{a1:.4}"),
            format!("{a2:.4}"),
            format!("{a3:.4}"),
        ]);
    }
    r
}

/// Builds the class-assignment counting report ("how many RQS given an
/// adversary", for fixed small families).
pub fn counting_report() -> Report {
    let mut r = Report::new("E10b (§6): valid class assignments over fixed families");
    r.note("For each family, the number of (QC1, QC2) assignments that");
    r.note("satisfy Properties 1-3 — the paper's 'how many RQS' question");
    r.note("restricted to a family.");
    r.headers([
        "family",
        "assignments",
        "with class-1",
        "fully refined (∅≠QC1≠QC2)",
    ]);

    // The Figure 3 family.
    let fig3_adversary = Adversary::threshold(8, 1);
    let fig3 = vec![
        ProcessSet::from_indices([0, 4, 5, 7]),
        ProcessSet::from_indices([0, 1, 2, 3, 6, 7]),
        ProcessSet::from_indices([2, 3, 4, 5, 6]),
        ProcessSet::from_indices([0, 1, 2, 4, 5]),
    ];
    let c = count_class_assignments(&fig3_adversary, &fig3).expect("fig3 family");
    r.row([
        "Figure 3 (4 quorums, B_1 over 8)".to_string(),
        c.total.to_string(),
        c.with_class1.to_string(),
        c.fully_refined.to_string(),
    ]);

    // The Example 7 family under its general adversary.
    let ex7_adversary = Adversary::general(
        6,
        [
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([2, 3]),
            ProcessSet::from_indices([1, 3]),
        ],
    )
    .unwrap();
    let ex7 = vec![
        ProcessSet::from_indices([1, 3, 4, 5]),
        ProcessSet::from_indices([0, 1, 2, 3, 4]),
        ProcessSet::from_indices([0, 1, 2, 3, 5]),
    ];
    let c = count_class_assignments(&ex7_adversary, &ex7).expect("ex7 family");
    r.row([
        "Example 7 (3 quorums, general B)".to_string(),
        c.total.to_string(),
        c.with_class1.to_string(),
        c.fully_refined.to_string(),
    ]);

    // Byzantine n = 4 minimal family.
    let byz = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let c = count_class_assignments(byz.adversary(), byz.quorums()).expect("byz family");
    r.row([
        "byzantine n=4 (5 quorums, B_1)".to_string(),
        c.total.to_string(),
        c.with_class1.to_string(),
        c.fully_refined.to_string(),
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_ordering_holds() {
        let r = load_availability_report();
        for row in &r.rows {
            let a1: f64 = row[2].parse().unwrap();
            let a2: f64 = row[3].parse().unwrap();
            let a3: f64 = row[4].parse().unwrap();
            // a1 ≤ a2 ≤ a3 (fast classes are harder to hit), except rows
            // with no class-1/2 quorums where availability reads 0.
            if a1 > 0.0 {
                assert!(a1 <= a2 + 1e-9, "{row:?}");
            }
            if a2 > 0.0 {
                assert!(a2 <= a3 + 1e-9, "{row:?}");
            }
        }
    }

    #[test]
    fn counting_includes_paper_assignments() {
        let r = counting_report();
        // Figure 3's published assignment is fully refined, so the count
        // must be ≥ 1; Example 7's likewise.
        for row in &r.rows {
            let fully: usize = row[3].parse().unwrap();
            if row[0].starts_with("Figure 3") || row[0].starts_with("Example 7") {
                assert!(fully >= 1, "{row:?}");
            }
        }
    }
}
