//! **E15 (KV service)** — the sharded, batched multi-object KV layer:
//!
//! - **batching**: for a fixed seeded workload, envelopes per operation
//!   must *decrease* as the per-client batch size grows (the whole point
//!   of coalescing per-destination traffic);
//! - **substrates**: the same workload runs deterministically on the
//!   simulator (with per-object atomicity checked, including under a
//!   forging Byzantine server) and on the threaded runtime, reporting
//!   throughput, fast-path ratio and the round histogram on both.

use crate::report::Report;
use rqs_core::threshold::ThresholdConfig;
use rqs_kv::{workload, ByzantineMode, KvRunStats, KvSim, RtKv, WorkloadConfig};
use rqs_obs::{NopTracer, ObsHandle};
use rqs_sim::Scenario;
use std::sync::Arc;
use std::time::Duration;

/// Workload dimensions for the E15 runs.
#[derive(Clone, Copy, Debug)]
pub struct KvParams {
    /// Objects in the key space.
    pub objects: usize,
    /// Clients (each owns `objects / clients` objects).
    pub clients: usize,
    /// Total operations.
    pub ops: usize,
    /// Per-lane client pipeline depth (≥ 1). The recorded experiment
    /// keeps depth 1 so the sim rows stay comparable with the
    /// pre-pipelining trajectory; override with `--pipeline`.
    pub pipeline: usize,
    /// Shard workers per server on the threaded-runtime row (0 = node
    /// thread); the simulator rows ignore it.
    pub workers: usize,
}

impl KvParams {
    /// Full-size parameters (the recorded experiment).
    pub fn full() -> Self {
        KvParams {
            objects: 16,
            clients: 4,
            ops: 240,
            pipeline: 1,
            workers: 0,
        }
    }

    /// Small parameters for CI smoke runs (`--quick`).
    pub fn quick() -> Self {
        KvParams {
            objects: 8,
            clients: 2,
            ops: 40,
            pipeline: 1,
            workers: 0,
        }
    }

    /// Picks full or quick parameters.
    pub fn for_mode(quick: bool) -> Self {
        if quick {
            Self::quick()
        } else {
            Self::full()
        }
    }

    /// Applies `--pipeline` / `--workers` command-line overrides.
    pub fn with_overrides(mut self, pipeline: Option<usize>, workers: Option<usize>) -> Self {
        if let Some(depth) = pipeline {
            self.pipeline = depth;
        }
        if let Some(workers) = workers {
            self.workers = workers;
        }
        self
    }

    fn workload_config(&self, seed: u64) -> WorkloadConfig {
        WorkloadConfig::mixed(self.objects, self.clients, self.ops, seed)
    }
}

/// Runs the fixed workload at each batch size on a fresh sim deployment;
/// returns `(batch, stats)` rows. Every run is atomicity-checked.
pub fn run_batching(
    seed: u64,
    params: KvParams,
    batch_sizes: &[usize],
) -> Vec<(usize, KvRunStats)> {
    let cfg = params.workload_config(seed);
    let ops = workload::generate(&cfg);
    batch_sizes
        .iter()
        .map(|&batch| {
            let rqs = ThresholdConfig::byzantine_fast(1)
                .build()
                .expect("valid rqs");
            let mut sim = KvSim::new(rqs, params.objects, params.clients);
            if params.pipeline > 1 {
                sim.set_pipeline(params.pipeline);
            }
            let stats = sim.run_workload(&ops, batch);
            sim.check_atomicity().expect("per-object atomicity");
            (batch, stats)
        })
        .collect()
}

/// Runs the workload on the simulator, optionally with one forging
/// Byzantine server, checking per-object atomicity.
pub fn run_sim(seed: u64, params: KvParams, batch: usize, byzantine: bool) -> KvRunStats {
    run_sim_traced(seed, params, batch, byzantine, Arc::new(NopTracer))
}

/// [`run_sim`] with a structured-trace sink threaded through every
/// layer (substrate, servers, client lanes) — what `exp_kv --trace`
/// uses to produce a Chrome trace-event export.
pub fn run_sim_traced(
    seed: u64,
    params: KvParams,
    batch: usize,
    byzantine: bool,
    tracer: ObsHandle,
) -> KvRunStats {
    let rqs = ThresholdConfig::byzantine_fast(1)
        .build()
        .expect("valid rqs");
    let mut sim = KvSim::with_setup_traced(
        rqs,
        params.objects,
        params.clients,
        Scenario::default(),
        rqs_sim::DEFAULT_TICK,
        Vec::new(),
        tracer,
    );
    if byzantine {
        sim.make_byzantine(0, ByzantineMode::Forge);
    }
    if params.pipeline > 1 {
        sim.set_pipeline(params.pipeline);
    }
    let cfg = params.workload_config(seed);
    let stats = sim.run_workload(&workload::generate(&cfg), batch);
    sim.check_atomicity().expect("per-object atomicity");
    stats
}

/// Runs the workload on the threaded runtime (1 ms ticks).
pub fn run_threaded(seed: u64, params: KvParams, batch: usize) -> KvRunStats {
    let rqs = ThresholdConfig::byzantine_fast(1)
        .build()
        .expect("valid rqs");
    let mut kv = RtKv::with_tick(
        rqs,
        params.objects,
        params.clients,
        Duration::from_millis(1),
    );
    if params.pipeline > 1 {
        kv.set_pipeline(params.pipeline);
    }
    if params.workers > 0 {
        kv.enable_worker_pool(params.workers);
    }
    let cfg = params.workload_config(seed);
    let stats = kv.run_workload(&workload::generate(&cfg), batch);
    kv.shutdown();
    stats
}

/// The batching table: envelopes/op must decrease with batch size.
pub fn batching_report(seed: u64, quick: bool) -> Report {
    batching_report_params(seed, KvParams::for_mode(quick))
}

/// [`batching_report`] with explicit (possibly CLI-overridden)
/// parameters.
pub fn batching_report_params(seed: u64, params: KvParams) -> Report {
    let rows = run_batching(seed, params, &[1, 2, 4, 8]);
    let mut r = Report::new("E15a (rqs-kv batching)");
    r.note(format!(
        "{} objects, {} clients, {} mixed ops over n=4 byzantine_fast(1), seed {seed}",
        params.objects, params.clients, params.ops
    ));
    r.note("envelopes/op must DECREASE as the per-client batch size grows");
    r.headers([
        "batch",
        "envelopes",
        "env/op",
        "msgs/env",
        "ticks",
        "ops/tick",
        "fast-path",
    ]);
    for (batch, stats) in &rows {
        r.row([
            batch.to_string(),
            stats.envelopes.to_string(),
            format!("{:.2}", stats.envelopes_per_op()),
            format!("{:.2}", stats.batching_factor()),
            stats.duration_units.to_string(),
            format!("{:.2}", stats.throughput()),
            format!("{:.2}", stats.rounds.fast_path_ratio()),
        ]);
    }
    let decreasing = rows
        .windows(2)
        .all(|w| w[1].1.envelopes_per_op() < w[0].1.envelopes_per_op());
    r.note(format!(
        "envelopes/op strictly decreasing across batch sizes: {decreasing}"
    ));
    r
}

/// The substrate table: sim (correct and Byzantine) vs threaded runtime.
pub fn substrate_report(seed: u64, quick: bool) -> Report {
    substrate_report_inner(seed, KvParams::for_mode(quick), true, Arc::new(NopTracer))
}

/// [`substrate_report`] with a trace sink and explicit (possibly
/// CLI-overridden) parameters: the all-correct sim run is instrumented
/// end to end (the other rows stay untraced so the ring buffer holds
/// one coherent run).
pub fn substrate_report_traced(seed: u64, params: KvParams, tracer: ObsHandle) -> Report {
    substrate_report_inner(seed, params, true, tracer)
}

/// The substrate table without the threaded-runtime row: fully
/// deterministic, no OS threads — what [`crate::all_reports_seeded`]
/// uses so test suites over the report set stay timing-independent.
pub fn substrate_report_sim(seed: u64, quick: bool) -> Report {
    substrate_report_inner(seed, KvParams::for_mode(quick), false, Arc::new(NopTracer))
}

fn substrate_report_inner(
    seed: u64,
    params: KvParams,
    threaded: bool,
    tracer: ObsHandle,
) -> Report {
    let batch = 4;
    let sim = run_sim_traced(seed, params, batch, false, tracer);
    let byz = run_sim(seed, params, batch, true);
    let mut r = Report::new("E15b (rqs-kv substrates)");
    r.note(format!(
        "{} objects, {} clients, {} mixed ops, batch {batch}, pipeline {}, \
         {} workers/server (threaded row), seed {seed}",
        params.objects, params.clients, params.ops, params.pipeline, params.workers
    ));
    r.note("sim rows are atomicity-checked per object (incl. 1 forging Byzantine server)");
    r.note("slow-path column attributes off-fast-path ops to the paper's degradation causes");
    r.headers([
        "substrate",
        "ops",
        "throughput",
        "fast-path",
        "rounds",
        "slow-path",
    ]);
    r.row([
        "sim (all correct)".to_string(),
        sim.ops.to_string(),
        format!("{:.2} ops/tick", sim.throughput()),
        format!("{:.2}", sim.rounds.fast_path_ratio()),
        sim.rounds.render(),
        sim.attribution.slow_summary(),
    ]);
    r.row([
        "sim (1 Byzantine)".to_string(),
        byz.ops.to_string(),
        format!("{:.2} ops/tick", byz.throughput()),
        format!("{:.2}", byz.rounds.fast_path_ratio()),
        byz.rounds.render(),
        byz.attribution.slow_summary(),
    ]);
    if threaded {
        let rt = run_threaded(seed, params, batch);
        r.row([
            "threaded (1ms tick)".to_string(),
            rt.ops.to_string(),
            format!("{:.0} ops/s", rt.throughput() * 1e6),
            format!("{:.2}", rt.rounds.fast_path_ratio()),
            rt.rounds.render(),
            rt.attribution.slow_summary(),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_strictly_reduces_envelopes_per_op() {
        let rows = run_batching(3, KvParams::quick(), &[1, 2, 4, 8]);
        for w in rows.windows(2) {
            assert!(
                w[1].1.envelopes_per_op() < w[0].1.envelopes_per_op(),
                "batch {} ({:.2} env/op) must beat batch {} ({:.2} env/op)",
                w[1].0,
                w[1].1.envelopes_per_op(),
                w[0].0,
                w[0].1.envelopes_per_op(),
            );
        }
    }

    #[test]
    fn sim_runs_report_fast_path() {
        let stats = run_sim(5, KvParams::quick(), 4, false);
        assert_eq!(stats.ops, KvParams::quick().ops);
        assert!(stats.rounds.fast_path_ratio() > 0.5);
    }

    #[test]
    fn byzantine_sim_completes_all_ops() {
        let stats = run_sim(5, KvParams::quick(), 4, true);
        assert_eq!(stats.ops, KvParams::quick().ops);
    }

    #[test]
    fn reports_render() {
        let r = batching_report(1, true);
        assert!(r.to_string().contains("E15a"));
        assert!(r.cell("batch", |row| row[0] == "8").is_some());
    }

    #[test]
    fn traced_sim_fills_the_flight_recorder() {
        use rqs_obs::Tracer;
        let rec = rqs_obs::FlightRecorder::for_export();
        let tracer: ObsHandle = rec.clone();
        let stats = run_sim_traced(5, KvParams::quick(), 4, false, tracer);
        assert_eq!(stats.ops, KvParams::quick().ops);
        let events = rec.snapshot();
        assert!(!events.is_empty(), "traced run must record events");
        let json = rqs_obs::chrome_trace(&events);
        let (chrome, round_trip) = rqs_obs::parse_chrome_trace(&json).expect("valid export");
        assert!(!chrome.is_empty());
        assert_eq!(round_trip, events);
    }
}
