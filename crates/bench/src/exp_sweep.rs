//! **E8 (Examples 5–6)** — the closed-form feasibility inequalities of
//! threshold refined quorum systems, validated against full property
//! verification:
//!
//! - Property 1 ⇔ `n > 2t + k`
//! - Property 2 ⇔ `n > t + 2k + 2q`
//! - Property 3 ⇔ `n > t + r + k + min(k, q)`
//!
//! The sweep builds every parameter combination, runs [`Rqs::verify`],
//! and reports any disagreement (there must be none), plus the minimal-`n`
//! table `n = t + k + max(t, k+2q, r+min(k,q)) + 1`.

use crate::report::Report;
use rqs_core::threshold::ThresholdConfig;

/// Result of the exhaustive sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepResult {
    /// Combinations checked.
    pub checked: usize,
    /// Combinations where the closed form and verification agree.
    pub agreements: usize,
    /// Disagreeing combinations (must be empty).
    pub mismatches: Vec<String>,
}

/// Sweeps all `(n, t, k, q, r)` with `n ≤ max_n`.
pub fn sweep(max_n: usize) -> SweepResult {
    let mut res = SweepResult::default();
    for n in 3..=max_n {
        for t in 1..n {
            for k in 0..=t {
                for q in 0..=t {
                    for r in q..=t {
                        let cfg = ThresholdConfig::new(n, t, k).with_class1(q).with_class2(r);
                        let verified = cfg
                            .build_unchecked()
                            .expect("structurally valid")
                            .verify()
                            .is_ok();
                        res.checked += 1;
                        if verified == cfg.is_feasible() {
                            res.agreements += 1;
                        } else {
                            res.mismatches.push(format!(
                                "{cfg}: closed-form={} verify={}",
                                cfg.is_feasible(),
                                verified
                            ));
                        }
                    }
                }
            }
        }
    }
    res
}

/// Builds the E8 report.
pub fn report(max_n: usize) -> Report {
    let res = sweep(max_n);
    let mut r = Report::new("E8 (Examples 5-6): threshold feasibility inequalities");
    r.note(format!(
        "Exhaustive sweep over n ≤ {max_n}: {} combinations, {} agree, {} mismatch.",
        res.checked,
        res.agreements,
        res.mismatches.len()
    ));
    r.note("Minimal universe sizes n(t, r, q, k) = t + k + max(t, k+2q, r+min(k,q)) + 1:");
    r.headers(["t", "r", "q", "k", "minimal n", "spot-check verify"]);
    for (t, r_, q, k) in [
        (1usize, 1usize, 0usize, 0usize),
        (2, 2, 1, 0), // the §1.2 system → n = 5
        (1, 1, 0, 1), // byzantine_fast(1) → n = 4
        (2, 2, 0, 2), // byzantine_fast(2) → n = 7
        (2, 1, 0, 1), // the graded E4/E6 system → n = 7… check
        (3, 3, 0, 3),
        (3, 2, 1, 1),
        (4, 2, 2, 0),
    ] {
        let n = ThresholdConfig::minimal_n(t, r_, q, k);
        let ok = if n <= 14 {
            ThresholdConfig::new(n, t, k)
                .with_class1(q)
                .with_class2(r_)
                .build()
                .is_ok()
        } else {
            true
        };
        r.row([
            t.to_string(),
            r_.to_string(),
            q.to_string(),
            k.to_string(),
            n.to_string(),
            ok.to_string(),
        ]);
    }
    for m in &res.mismatches {
        r.note(format!("MISMATCH: {m}"));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_no_mismatches() {
        let res = sweep(8);
        assert!(res.checked > 200);
        assert!(
            res.mismatches.is_empty(),
            "closed form must match verification: {:?}",
            res.mismatches
        );
        assert_eq!(res.agreements, res.checked);
    }

    #[test]
    fn known_minimal_sizes() {
        assert_eq!(ThresholdConfig::minimal_n(2, 2, 1, 0), 5);
        assert_eq!(ThresholdConfig::minimal_n(1, 1, 0, 1), 4);
        assert_eq!(ThresholdConfig::minimal_n(2, 2, 0, 2), 7);
    }

    #[test]
    fn report_renders() {
        let r = report(6);
        assert!(r.to_string().contains("minimal n"));
        assert!(!r.commentary.iter().any(|l| l.contains("MISMATCH")));
    }
}
