//! E3: the Figure 4 / Example 7 executions.
fn main() {
    println!("{}", bench::exp_fig4::report());
}
