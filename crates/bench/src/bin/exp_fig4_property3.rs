//! E3: the Figure 4 / Example 7 executions.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[bench::exp_fig4::report()]);
}
