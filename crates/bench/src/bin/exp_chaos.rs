//! E19: crash-recovery chaos soak — KV load on the threaded runtime
//! with file-backed write-ahead stores, flaky links, and repeated
//! amnesia crash/restart cycles, every operation validated by the
//! checker sidecar. Exits non-zero on an atomicity violation, an
//! unrecovered restart, or an op-count mismatch, so CI can run
//! `exp_chaos --quick --json` as a smoke step.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    let params = bench::exp_chaos::ChaosParams::for_mode(args.quick)
        .with_overrides(args.pipeline, args.workers);
    let run = bench::exp_chaos::run_chaos(args.seed, params);
    let ok = bench::exp_chaos::passed(params, &run);
    args.emit(&[bench::exp_chaos::render(args.seed, params, &run)]);
    if !ok {
        std::process::exit(1);
    }
}
