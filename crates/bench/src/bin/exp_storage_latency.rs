//! E4: storage (m, QCm)-fast latency table.
fn main() {
    println!("{}", bench::exp_latency::storage_report());
}
