//! E4: storage (m, QCm)-fast latency table.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[bench::exp_latency::storage_report()]);
}
