//! E16: the scenario engine — partition+heal, flaky (lossy+duplicating)
//! links, crash+restart (retain and amnesia) and the compound
//! flaky+crash, each run on both the deterministic simulator and the
//! threaded runtime, for storage and the KV service. `--trace PATH`
//! exports the flaky+crash sim run as Chrome trace-event JSON.

use bench::cli::ExpArgs;
use bench::exp_scenarios;
use rqs_obs::{FlightRecorder, NopTracer, ObsHandle, Tracer};
use std::sync::Arc;

fn main() {
    let args = ExpArgs::parse();
    let rec = args.tracing().then(FlightRecorder::for_export);
    let tracer: ObsHandle = match &rec {
        Some(r) => r.clone(),
        None => Arc::new(NopTracer),
    };
    let reports = [exp_scenarios::report_traced(args.seed, args.quick, tracer)];
    let events = rec.map(|r| r.snapshot()).unwrap_or_default();
    args.emit_traced(&reports, &events);
}
