//! E16: the scenario engine — partition+heal, flaky (lossy+duplicating)
//! links and crash+restart, each run on both the deterministic simulator
//! and the threaded runtime, for storage and the KV service.

use bench::cli::ExpArgs;
use bench::exp_scenarios;

fn main() {
    let args = ExpArgs::parse();
    args.emit(&[exp_scenarios::report(args.seed, args.quick)]);
}
