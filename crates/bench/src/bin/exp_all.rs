//! Prints every experiment table (E1–E10).
fn main() {
    for report in bench::all_reports() {
        println!("{report}");
    }
}
