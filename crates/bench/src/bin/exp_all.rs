//! Prints every experiment table (E1–E15).
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&bench::all_reports_seeded(args.seed, args.quick));
}
