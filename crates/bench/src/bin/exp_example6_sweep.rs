//! E8: threshold feasibility sweep (Examples 5-6).
fn main() {
    println!("{}", bench::exp_sweep::report(8));
}
