//! E8: threshold feasibility sweep (Examples 5-6).
fn main() {
    let args = bench::cli::ExpArgs::parse();
    let max_n = if args.quick { 6 } else { 8 };
    args.emit(&[bench::exp_sweep::report(max_n)]);
}
