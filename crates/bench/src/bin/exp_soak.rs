//! E18: streaming-validation soak — a long KV workload on the threaded
//! runtime with the checker sidecar validating every operation as it
//! completes. Exits non-zero if the sidecar reports an atomicity
//! violation, so CI can run `exp_soak --quick --json` as a smoke step.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    let params = bench::exp_soak::SoakParams::for_mode(args.quick);
    let run = bench::exp_soak::run_soak(args.seed, params);
    let violated = run.sidecar.verdict.is_err();
    args.emit(&[bench::exp_soak::render(args.seed, params, &run)]);
    if violated {
        std::process::exit(1);
    }
}
