//! E18: streaming-validation soak — a long KV workload on the threaded
//! runtime with the checker sidecar validating every operation as it
//! completes. Exits non-zero if the sidecar reports an atomicity
//! violation, so CI can run `exp_soak --quick --json` as a smoke step.
//! `--trace PATH` exports the (tail of the) run as Chrome trace-event
//! JSON.

use rqs_obs::{FlightRecorder, NopTracer, ObsHandle, Tracer};
use std::sync::Arc;

fn main() {
    let args = bench::cli::ExpArgs::parse();
    let rec = args.tracing().then(FlightRecorder::for_export);
    let tracer: ObsHandle = match &rec {
        Some(r) => r.clone(),
        None => Arc::new(NopTracer),
    };
    let params = bench::exp_soak::SoakParams::for_mode(args.quick)
        .with_overrides(args.pipeline, args.workers);
    let run = bench::exp_soak::run_soak_traced(args.seed, params, tracer);
    let violated = run.sidecar.verdict.is_err();
    let events = rec.map(|r| r.snapshot()).unwrap_or_default();
    args.emit_traced(&[bench::exp_soak::render(args.seed, params, &run)], &events);
    if violated {
        std::process::exit(1);
    }
}
