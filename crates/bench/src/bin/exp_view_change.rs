//! E9: election module under leader failure.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[bench::exp_latency::view_change_report()]);
}
