//! E9: election module under leader failure.
fn main() {
    println!("{}", bench::exp_latency::view_change_report());
}
