//! E20: hot-path throughput sweep — client pipeline depth × server
//! shard workers on the threaded runtime, every cell's operations
//! validated by the checker sidecar. `--pipeline N` / `--workers N`
//! pin an axis of the grid. Exits non-zero if any cell reports an
//! atomicity violation, so CI can run `exp_pipeline --quick --json`
//! as a smoke step.

fn main() {
    let args = bench::cli::ExpArgs::parse();
    let params = bench::exp_pipeline::PipelineParams::for_mode(args.quick)
        .with_overrides(args.pipeline, args.workers);
    let cells = bench::exp_pipeline::run_sweep(args.seed, params);
    let ok = bench::exp_pipeline::passed(&cells);
    args.emit(&[bench::exp_pipeline::render(args.seed, params, &cells)]);
    if !ok {
        std::process::exit(1);
    }
}
