//! E10: load, availability and class-assignment counting.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[
        bench::exp_analysis::load_availability_report(),
        bench::exp_analysis::counting_report(),
    ]);
}
