//! E10: load, availability and class-assignment counting.
fn main() {
    println!("{}", bench::exp_analysis::load_availability_report());
    println!("{}", bench::exp_analysis::counting_report());
}
