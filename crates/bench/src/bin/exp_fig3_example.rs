//! E2: the Figure 3 refined quorum system.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[bench::exp_fig3::report()]);
}
