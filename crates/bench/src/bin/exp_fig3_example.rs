//! E2: the Figure 3 refined quorum system.
fn main() {
    println!("{}", bench::exp_fig3::report());
}
