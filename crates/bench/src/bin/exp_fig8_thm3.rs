//! E5: the Theorem 3 counterexample executions (Figure 8).
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[bench::exp_fig8::report()]);
}
