//! E5: the Theorem 3 counterexample executions (Figure 8).
fn main() {
    println!("{}", bench::exp_fig8::report());
}
