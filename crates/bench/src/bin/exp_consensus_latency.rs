//! E6: consensus message-delay table.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[bench::exp_latency::consensus_report()]);
}
