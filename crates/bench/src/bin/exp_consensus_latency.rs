//! E6: consensus message-delay table.
fn main() {
    println!("{}", bench::exp_latency::consensus_report());
}
