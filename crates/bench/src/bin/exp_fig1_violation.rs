//! E1: the Figure 1 atomicity violation and its RQS fix.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[bench::exp_fig1::report()]);
}
