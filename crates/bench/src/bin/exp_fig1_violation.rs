//! E1: the Figure 1 atomicity violation and its RQS fix.
fn main() {
    println!("{}", bench::exp_fig1::report());
}
