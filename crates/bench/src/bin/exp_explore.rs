//! E17: schedule exploration (model checking) over the deterministic
//! world. Exits non-zero if any exploration reports a violation, so CI
//! can use it as a safety smoke check.

use bench::cli::ExpArgs;
use bench::exp_explore;

fn main() {
    let args = ExpArgs::parse();
    let report = exp_explore::report(args.seed, args.quick);
    let violations = exp_explore::violation_count(&report);
    args.emit(&[report]);
    if violations > 0 {
        eprintln!("error: exploration found {violations} violation(s)");
        std::process::exit(1);
    }
}
