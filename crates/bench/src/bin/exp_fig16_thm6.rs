//! E7: the Theorem 6 counterexample (Figure 16) at the choose() level.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[bench::exp_fig16::report()]);
}
