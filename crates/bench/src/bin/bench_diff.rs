//! Benchmark regression gate for CI: re-runs `exp_kv` and `exp_soak` in
//! quick mode and compares throughput against the committed
//! `BENCH_kv.json` / `BENCH_soak.json` baselines. Exits non-zero when a
//! deterministic (`ops/tick`) entry drops more than the tolerance below
//! its baseline or a baseline entry disappears; wall-clock entries are
//! advisory (machine-dependent).

use bench::bench_diff::{diff, parse_report_array, render, DEFAULT_TOLERANCE};
use bench::cli::DEFAULT_SEED;
use bench::Report;

struct Args {
    kv: String,
    soak: String,
    tolerance: f64,
    strict_wall: bool,
    seed: u64,
}

const USAGE: &str = "usage: bench_diff [--kv PATH] [--soak PATH] [--tolerance FRACTION] \
     [--strict-wall] [--seed N] [--help]

Re-runs exp_kv and exp_soak with --quick and compares throughput against
the committed baselines (default BENCH_kv.json / BENCH_soak.json,
recorded with --quick --json on seed 42). Deterministic ops/tick entries
gate at the tolerance (default 0.30); wall-clock ops/s entries are
advisory unless --strict-wall.";

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        kv: "BENCH_kv.json".into(),
        soak: "BENCH_soak.json".into(),
        tolerance: DEFAULT_TOLERANCE,
        strict_wall: false,
        seed: DEFAULT_SEED,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--kv" => args.kv = value("--kv"),
            "--soak" => args.soak = value("--soak"),
            "--tolerance" => {
                let v = value("--tolerance");
                args.tolerance = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--tolerance: not a number: {v:?}")));
            }
            "--strict-wall" => args.strict_wall = true,
            "--seed" => {
                let v = value("--seed");
                args.seed = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--seed: not a u64: {v:?}")));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(format!("unknown argument {other:?}")),
        }
    }
    args
}

fn load_baseline(path: &str) -> Vec<Report> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("error: cannot read baseline {path}: {err}");
        std::process::exit(2);
    });
    parse_report_array(&text).unwrap_or_else(|err| {
        eprintln!("error: baseline {path}: {err}");
        std::process::exit(2);
    })
}

fn main() {
    let args = parse_args();
    let mut baseline = load_baseline(&args.kv);
    baseline.extend(load_baseline(&args.soak));

    eprintln!("bench_diff: running quick exp_kv (seed {})...", args.seed);
    let mut fresh = vec![
        bench::exp_kv::batching_report(args.seed, true),
        bench::exp_kv::substrate_report(args.seed, true),
    ];
    eprintln!("bench_diff: running quick exp_soak (seed {})...", args.seed);
    let soak_params = bench::exp_soak::SoakParams::quick();
    let run = bench::exp_soak::run_soak(args.seed, soak_params);
    if run.sidecar.verdict.is_err() {
        eprintln!("bench_diff: soak reported an atomicity violation");
        std::process::exit(1);
    }
    fresh.push(bench::exp_soak::render(args.seed, soak_params, &run));

    let outcome = diff(&baseline, &fresh, args.tolerance, args.strict_wall);
    println!("{}", render(&outcome, args.tolerance));
    if !outcome.ok() {
        eprintln!(
            "bench_diff: FAIL ({} regressed, {} missing)",
            outcome.regressions.len(),
            outcome.missing.len()
        );
        std::process::exit(1);
    }
    eprintln!("bench_diff: ok ({} entries compared)", outcome.lines.len());
}
