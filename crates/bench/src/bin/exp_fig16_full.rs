//! E7b: the full-system, live Byzantine Theorem 6 attack.
fn main() {
    println!("{}", bench::exp_fig16_full::report());
}
