//! E7b: the full-system, live Byzantine Theorem 6 attack.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[bench::exp_fig16_full::report()]);
}
