//! E15: the sharded, batched multi-object KV service — batching effect
//! and sim-vs-threaded substrate comparison. `--trace PATH` exports the
//! all-correct sim run as Chrome trace-event JSON.

use rqs_obs::{FlightRecorder, NopTracer, ObsHandle, Tracer};
use std::sync::Arc;

fn main() {
    let args = bench::cli::ExpArgs::parse();
    let rec = args.tracing().then(FlightRecorder::for_export);
    let tracer: ObsHandle = match &rec {
        Some(r) => r.clone(),
        None => Arc::new(NopTracer),
    };
    let params =
        bench::exp_kv::KvParams::for_mode(args.quick).with_overrides(args.pipeline, args.workers);
    let reports = [
        bench::exp_kv::batching_report_params(args.seed, params),
        bench::exp_kv::substrate_report_traced(args.seed, params, tracer),
    ];
    let events = rec.map(|r| r.snapshot()).unwrap_or_default();
    args.emit_traced(&reports, &events);
}
