//! E15: the sharded, batched multi-object KV service — batching effect
//! and sim-vs-threaded substrate comparison.
fn main() {
    let args = bench::cli::ExpArgs::parse();
    args.emit(&[
        bench::exp_kv::batching_report(args.seed, args.quick),
        bench::exp_kv::substrate_report(args.seed, args.quick),
    ]);
}
