//! E15: the sharded, batched multi-object KV service — batching effect
//! and sim-vs-threaded substrate comparison. `--trace PATH` exports the
//! all-correct sim run as Chrome trace-event JSON.

use rqs_obs::{FlightRecorder, NopTracer, ObsHandle, Tracer};
use std::sync::Arc;

fn main() {
    let args = bench::cli::ExpArgs::parse();
    let rec = args.tracing().then(FlightRecorder::for_export);
    let tracer: ObsHandle = match &rec {
        Some(r) => r.clone(),
        None => Arc::new(NopTracer),
    };
    let reports = [
        bench::exp_kv::batching_report(args.seed, args.quick),
        bench::exp_kv::substrate_report_traced(args.seed, args.quick, tracer),
    ];
    let events = rec.map(|r| r.snapshot()).unwrap_or_default();
    args.emit_traced(&reports, &events);
}
