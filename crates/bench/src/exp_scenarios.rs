//! **E16 (scenario engine)** — the same declarative fault scenarios run
//! on **both** substrates, for both the single-register storage and the
//! multi-object KV service:
//!
//! - **partition+heal** — a minority server group is cut off for a
//!   window, then heals: operations degrade to the slow quorum paths and
//!   recover;
//! - **flaky links** — every n-th message touching one server is
//!   dropped and *all* traffic is duplicated: quorum idempotence keeps
//!   every history atomic;
//! - **crash+restart** — a server crashes mid-run and later restarts
//!   with its retained state;
//! - **crash+restart amnesia** — the same crash window, but the server
//!   loses its memory and must rebuild every object by replaying its
//!   write-ahead store ([`CrashMode::Amnesia`]); the row pair shows the
//!   retain-vs-amnesia delta under identical schedules.
//! - **flaky+crash** — the flaky-link treatment *and* a crash+restart
//!   window at once: the compound scenario whose slow-path attribution
//!   must show both `retry` (drops nudging the client watchdog) and
//!   `recovery` (ops overlapping the healed crash window).
//!
//! Every KV run is atomicity-checked per object — on the deterministic
//! simulator *and* on the threaded runtime (the generic driver made the
//! checker substrate-independent). The scenarios deliberately touch at
//! most the fault tolerance `t` of the quorum system, so no run can
//! deadlock: a full correct quorum always stays connected.

use crate::report::Report;
use rqs_core::threshold::ThresholdConfig;
use rqs_kv::{workload, KvBatch, KvDeployment, KvRunStats, WorkloadConfig};
use rqs_obs::{NopTracer, ObsHandle};
use rqs_sim::{CrashMode, LinkEffect, LinkRule, Scenario, Substrate, World};
use rqs_storage::{StorageDeployment, StorageMsg, Value};
use rqs_store::StoreHandle;
use std::sync::Arc;
use std::time::Duration;

/// Wall-clock tick used for the threaded rows.
const RT_TICK: Duration = Duration::from_millis(1);

/// The canonical scenario suite for a deployment with `n` servers that
/// tolerates cutting off `cut` of them (`cut ≤ t`): the cut/lossy/crashed
/// servers are always the *last*/*first* indices, so a full correct
/// quorum stays connected and every run terminates.
pub fn suite(n: usize, cut: usize) -> Vec<Scenario> {
    assert!(cut >= 1 && cut < n);
    let cut_group: Vec<usize> = (n - cut..n).collect();
    vec![
        Scenario::named("partition+heal").partition(cut_group.clone(), 0, 30),
        Scenario::named("flaky links")
            .lossy_towards(vec![n - 1], 4)
            .link(LinkRule::every(LinkEffect::Duplicate { lag: 2 })),
        Scenario::named("crash+restart").crash_restart(0, 10, 60),
        Scenario::named("crash+restart amnesia").crash_restart_amnesia(0, 10, 60),
        Scenario::named("flaky+crash")
            .lossy_towards(vec![n - 1], 4)
            .link(LinkRule::every(LinkEffect::Duplicate { lag: 2 }))
            .crash_restart(0, 10, 60),
    ]
}

/// One fresh in-memory durable store per server when the scenario
/// contains an amnesia crash plan (recovery needs a write-ahead log to
/// replay); retain-mode scenarios stay volatile.
fn scenario_stores(n: usize, scenario: &Scenario) -> Vec<StoreHandle> {
    let amnesia = scenario
        .crashes
        .iter()
        .any(|c| matches!(c.crash_mode, CrashMode::Amnesia));
    if amnesia {
        (0..n).map(|_| StoreHandle::mem()).collect()
    } else {
        Vec::new()
    }
}

/// KV workload dimensions for the E16 runs.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioParams {
    /// Objects in the key space.
    pub objects: usize,
    /// Clients.
    pub clients: usize,
    /// Total KV operations.
    pub ops: usize,
    /// Storage writes (each followed by a read).
    pub storage_ops: usize,
}

impl ScenarioParams {
    /// Full-size parameters (the recorded experiment).
    pub fn full() -> Self {
        ScenarioParams {
            objects: 16,
            clients: 4,
            ops: 160,
            storage_ops: 20,
        }
    }

    /// Small parameters for CI smoke runs (`--quick`).
    pub fn quick() -> Self {
        ScenarioParams {
            objects: 8,
            clients: 2,
            ops: 40,
            storage_ops: 8,
        }
    }

    /// Picks full or quick parameters.
    pub fn for_mode(quick: bool) -> Self {
        if quick {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// Runs the seeded KV workload under `scenario` on substrate `S`,
/// checking per-object atomicity; returns run metrics.
pub fn run_kv_on<S: Substrate<KvBatch>>(
    seed: u64,
    params: ScenarioParams,
    scenario: Scenario,
) -> KvRunStats {
    run_kv_on_traced::<S>(seed, params, scenario, Arc::new(NopTracer))
}

/// [`run_kv_on`] with a structured-trace sink threaded through the
/// substrate, the servers' stores and every client lane — what
/// `exp_scenarios --trace` uses for its Chrome trace-event export.
pub fn run_kv_on_traced<S: Substrate<KvBatch>>(
    seed: u64,
    params: ScenarioParams,
    scenario: Scenario,
    tracer: ObsHandle,
) -> KvRunStats {
    let rqs = ThresholdConfig::byzantine_fast(1)
        .build()
        .expect("valid rqs");
    let stores = scenario_stores(rqs.universe_size(), &scenario);
    let mut kv = KvDeployment::<S>::with_setup_traced(
        rqs,
        params.objects,
        params.clients,
        scenario,
        RT_TICK,
        stores,
        tracer,
    );
    let cfg = WorkloadConfig::mixed(params.objects, params.clients, params.ops, seed);
    let stats = kv.run_workload(&workload::generate(&cfg), 4);
    kv.check_atomicity()
        .unwrap_or_else(|v| panic!("atomicity violated on {}: {v}", S::NAME));
    kv.shutdown();
    stats
}

/// Storage run outcome: `(mean write rounds, mean read rounds)` over the
/// scenario'd run (all reads must return the latest written value).
pub fn run_storage_on<S: Substrate<StorageMsg>>(
    params: ScenarioParams,
    scenario: Scenario,
) -> (f64, f64) {
    // crash_fast(5,1): n = 5, t = 2 — tolerates the 2-server partition.
    let rqs = ThresholdConfig::crash_fast(5, 1)
        .build()
        .expect("valid rqs");
    let stores = scenario_stores(rqs.universe_size(), &scenario);
    let mut st = StorageDeployment::<S>::with_setup_stores(rqs, 1, scenario, RT_TICK, stores);
    let (mut w_rounds, mut r_rounds) = (0usize, 0usize);
    for v in 1..=params.storage_ops as u64 {
        w_rounds += st.write(Value::from(v)).rounds;
        let r = st.read(0);
        r_rounds += r.rounds;
        assert_eq!(r.returned.val, Value::from(v), "read the latest write");
    }
    st.check_atomicity()
        .unwrap_or_else(|v| panic!("storage atomicity violated on {}: {v}", S::NAME));
    st.shutdown();
    let n = params.storage_ops as f64;
    (w_rounds as f64 / n, r_rounds as f64 / n)
}

/// The E16 table over both substrates.
pub fn report(seed: u64, quick: bool) -> Report {
    report_inner(seed, quick, true, Arc::new(NopTracer))
}

/// [`report`] with a trace sink: the compound `flaky+crash` sim run is
/// the instrumented one (a single coherent run in the ring buffer, and
/// the one whose trace shows drops, retries, the crash and the
/// recovery).
pub fn report_traced(seed: u64, quick: bool, tracer: ObsHandle) -> Report {
    report_inner(seed, quick, true, tracer)
}

/// The E16 table with simulator rows only: fully deterministic, no OS
/// threads — what [`crate::all_reports_seeded`] uses so test suites over
/// the report set stay timing-independent.
pub fn report_sim(seed: u64, quick: bool) -> Report {
    report_inner(seed, quick, false, Arc::new(NopTracer))
}

fn report_inner(seed: u64, quick: bool, threaded: bool, tracer: ObsHandle) -> Report {
    let params = ScenarioParams::for_mode(quick);
    let mut r = Report::new("E16 (scenario engine × substrates)");
    r.note(format!(
        "one declarative Scenario per row, compiled to a fate policy (sim) and an \
         interposer thread (threaded); kv: {} objects / {} clients / {} ops, seed {seed}; \
         storage: {} write+read pairs over crash_fast(5,1)",
        params.objects, params.clients, params.ops, params.storage_ops
    ));
    r.note("every kv run is atomicity-checked per object on its substrate");
    r.note(
        "crash+restart rows sweep both crash modes: retain keeps the server's state, \
         amnesia wipes it and recovers by replaying a write-ahead store",
    );
    r.note("slow-path column attributes off-fast-path ops to the paper's degradation causes");
    r.headers([
        "workload",
        "scenario",
        "substrate",
        "ops",
        "fast-path",
        "env/op",
        "rounds",
        "slow-path",
    ]);

    // KV rows: scenarios sized for the n = 4 byzantine_fast(1) universe
    // (t = 1 → cut exactly one server).
    for scenario in suite(4, 1) {
        let name = scenario.name.clone();
        let sink = if name == "flaky+crash" {
            tracer.clone()
        } else {
            Arc::new(NopTracer)
        };
        let stats = run_kv_on_traced::<World<KvBatch>>(seed, params, scenario.clone(), sink);
        push_kv_row(&mut r, &name, "sim", &stats);
        if threaded {
            let stats = run_kv_on::<RtSub>(seed, params, scenario);
            push_kv_row(&mut r, &name, "threaded", &stats);
        }
    }

    // Storage rows: n = 5, t = 2 → the partition may cut two servers.
    for scenario in suite(5, 2) {
        let name = scenario.name.clone();
        let (w, rd) = run_storage_on::<World<StorageMsg>>(params, scenario.clone());
        push_storage_row(&mut r, &name, "sim", params, w, rd);
        if threaded {
            let (w, rd) = run_storage_on::<RtSubStorage>(params, scenario);
            push_storage_row(&mut r, &name, "threaded", params, w, rd);
        }
    }
    r
}

type RtSub = rqs_runtime::Runtime<KvBatch>;
type RtSubStorage = rqs_runtime::Runtime<StorageMsg>;

fn push_kv_row(r: &mut Report, scenario: &str, substrate: &str, stats: &KvRunStats) {
    r.row([
        "kv".to_string(),
        scenario.to_string(),
        substrate.to_string(),
        stats.ops.to_string(),
        format!("{:.2}", stats.rounds.fast_path_ratio()),
        format!("{:.2}", stats.envelopes_per_op()),
        stats.rounds.render(),
        stats.attribution.slow_summary(),
    ]);
}

fn push_storage_row(
    r: &mut Report,
    scenario: &str,
    substrate: &str,
    params: ScenarioParams,
    w_rounds: f64,
    r_rounds: f64,
) {
    r.row([
        "storage".to_string(),
        scenario.to_string(),
        substrate.to_string(),
        (2 * params.storage_ops).to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("W {w_rounds:.2} / R {r_rounds:.2} mean"),
        "-".to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_canonical_scenarios() {
        let s = suite(4, 1);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].name, "partition+heal");
        assert_eq!(s[1].name, "flaky links");
        assert_eq!(s[2].name, "crash+restart");
        assert_eq!(s[3].name, "crash+restart amnesia");
        assert_eq!(s[4].name, "flaky+crash");
        assert!(s.iter().all(|sc| !sc.is_benign()));
        // The two crash scenarios differ only in crash mode.
        assert!(matches!(s[2].crashes[0].crash_mode, CrashMode::Retain));
        assert!(matches!(s[3].crashes[0].crash_mode, CrashMode::Amnesia));
        assert_eq!(s[2].crashes[0].at, s[3].crashes[0].at);
        assert_eq!(s[2].crashes[0].restart_at, s[3].crashes[0].restart_at);
        // The compound scenario carries both the link faults and a crash.
        assert!(!s[4].links.is_empty());
        assert_eq!(s[4].crashes.len(), 1);
    }

    #[test]
    fn amnesia_scenario_gets_durable_stores_and_retain_stays_volatile() {
        let s = suite(4, 1);
        assert_eq!(scenario_stores(4, &s[2]).len(), 0);
        assert_eq!(scenario_stores(4, &s[3]).len(), 4);
    }

    #[test]
    fn every_scenario_green_on_sim_kv() {
        for scenario in suite(4, 1) {
            let stats = run_kv_on::<World<KvBatch>>(3, ScenarioParams::quick(), scenario);
            assert_eq!(stats.ops, ScenarioParams::quick().ops);
        }
    }

    #[test]
    fn partition_degrades_fast_path_on_sim() {
        let params = ScenarioParams::quick();
        let clean = run_kv_on::<World<KvBatch>>(3, params, Scenario::named("clean"));
        let cut = run_kv_on::<World<KvBatch>>(
            3,
            params,
            Scenario::named("partition").partition(vec![3], 0, 30),
        );
        assert!(
            cut.rounds.fast_path_ratio() < clean.rounds.fast_path_ratio(),
            "a partitioned class-1 quorum must cost fast-path completions \
             ({:.2} !< {:.2})",
            cut.rounds.fast_path_ratio(),
            clean.rounds.fast_path_ratio()
        );
    }

    #[test]
    fn sim_report_renders_all_rows() {
        let r = report_sim(3, true);
        assert!(r.to_string().contains("E16"));
        // 5 scenarios × {kv, storage} on sim only.
        assert_eq!(r.rows.len(), 10);
        assert!(r.cell("rounds", |row| row[1] == "crash+restart").is_some());
        assert!(r
            .cell("rounds", |row| row[1] == "crash+restart amnesia")
            .is_some());
        assert!(r.cell("slow-path", |row| row[1] == "flaky+crash").is_some());
    }

    #[test]
    fn traced_compound_run_records_events() {
        use rqs_obs::Tracer;
        let rec = rqs_obs::FlightRecorder::for_export();
        let tracer: ObsHandle = rec.clone();
        let scenario = suite(4, 1).pop().expect("flaky+crash");
        let stats =
            run_kv_on_traced::<World<KvBatch>>(3, ScenarioParams::quick(), scenario, tracer);
        assert_eq!(stats.ops, ScenarioParams::quick().ops);
        assert!(!rec.snapshot().is_empty());
    }
}
