//! # Experiment harness for the RQS paper reproduction
//!
//! One module per paper artifact; every module exposes `report()` (and
//! raw `run_*` functions used by the integration tests). The `exp_all`
//! binary prints every table; `EXPERIMENTS.md` records paper-vs-measured.
//!
//! | Experiment | Paper artifact | Module |
//! |------------|----------------|--------|
//! | E1 | Figures 1–2, §1.2 | [`exp_fig1`] |
//! | E2 | Figure 3 | [`exp_fig3`] |
//! | E3 | Figure 4 / Example 7 | [`exp_fig4`] |
//! | E4 | §3.2 / Theorem 9 | [`exp_latency::storage_report`] |
//! | E5 | Figure 8 / Theorem 3 | [`exp_fig8`] |
//! | E6 | §4.2 / Definition 4 | [`exp_latency::consensus_report`] |
//! | E7 | Figure 16 / Theorem 6 (choose-level) | [`exp_fig16`] |
//! | E7b | Figure 16 / Theorem 6 (full system, live Byzantine) | [`exp_fig16_full`] |
//! | E8 | Examples 5–6 | [`exp_sweep`] |
//! | E9 | Fig. 14 election | [`exp_latency::view_change_report`] |
//! | E10 | §6 open questions | [`exp_analysis`] |
//! | E11 | wall-clock (threaded) | criterion benches |
//! | E12 | §6 regular-semantics extension | [`exp_regular`] |
//! | E13 | Example 4 dissemination/masking systems | [`exp_classic`] |
//! | E14 | §5 best-case message complexity | [`exp_scale`] |
//! | E15 | multi-object KV service (batching + substrates) | [`exp_kv`] |
//! | E16 | scenario engine × substrates | [`exp_scenarios`] |
//! | E17 | schedule exploration (model checking) | [`exp_explore`] |
//! | E18 | streaming-validation soak (threaded + sidecar) | [`exp_soak`] |
//! | E19 | crash-recovery chaos soak (WAL + amnesia + retries) | [`exp_chaos`] |
//! | E20 | hot-path throughput sweep (pipelining × sharding) | [`exp_pipeline`] |
//!
//! Every binary accepts `--seed N`, `--json`, `--quick`, and the
//! KV-relevant `--pipeline N` / `--workers N` (see [`cli::ExpArgs`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench_diff;
pub mod cli;
pub mod exp_analysis;
pub mod exp_chaos;
pub mod exp_classic;
pub mod exp_explore;
pub mod exp_fig1;
pub mod exp_fig16;
pub mod exp_fig16_full;
pub mod exp_fig3;
pub mod exp_fig4;
pub mod exp_fig8;
pub mod exp_kv;
pub mod exp_latency;
pub mod exp_pipeline;
pub mod exp_regular;
pub mod exp_scale;
pub mod exp_scenarios;
pub mod exp_soak;
pub mod exp_sweep;
pub mod report;

pub use report::Report;

/// Every experiment report, in order (the `exp_all` binary and
/// `EXPERIMENTS.md` regeneration), with the default seed and quick KV
/// parameters.
pub fn all_reports() -> Vec<Report> {
    all_reports_seeded(cli::DEFAULT_SEED, true)
}

/// Every experiment report; `seed` and `quick` parameterize the
/// stochastic E15 runs (the other experiments are deterministic). The
/// E15b substrate table is the sim-only variant here, so the whole
/// report set stays deterministic and thread-free; the `exp_kv` binary
/// adds the threaded-runtime row.
pub fn all_reports_seeded(seed: u64, quick: bool) -> Vec<Report> {
    let mut reports = vec![
        exp_fig1::report(),
        exp_fig3::report(),
        exp_fig4::report(),
        exp_latency::storage_report(),
        exp_fig8::report(),
        exp_latency::consensus_report(),
        exp_fig16::report(),
        exp_fig16_full::report(),
        exp_sweep::report(7),
        exp_latency::view_change_report(),
        exp_analysis::load_availability_report(),
        exp_analysis::counting_report(),
        exp_regular::report(),
        exp_classic::report(),
        exp_scale::report(),
    ];
    reports.push(exp_kv::batching_report(seed, quick));
    reports.push(exp_kv::substrate_report_sim(seed, quick));
    reports.push(exp_scenarios::report_sim(seed, quick));
    reports.push(exp_explore::report(seed, quick));
    reports
}
