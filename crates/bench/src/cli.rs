//! Command-line argument handling shared by every `exp_*` binary.
//!
//! Every experiment binary accepts:
//!
//! - `--seed N` — RNG seed for experiments with a stochastic component
//!   (workload generation in `exp_kv`); purely deterministic experiments
//!   accept and ignore it. Defaults to [`DEFAULT_SEED`], so a bare run
//!   reproduces the numbers recorded in `EXPERIMENTS.md`.
//! - `--json` — emit the report(s) as a JSON array (see
//!   [`Report::to_json`](crate::Report::to_json)) instead of tables, for
//!   mechanical capture of benchmark trajectories.
//! - `--quick` — shrink workload parameters for CI smoke runs.
//! - `--pipeline N` — per-lane client pipeline depth for the KV-driving
//!   experiments (depth 1 = classic one-op-per-lane waves); experiments
//!   without a KV workload accept and ignore it.
//! - `--workers N` — shard workers per KV server on the threaded runtime
//!   (0 = process batches on the node thread); simulator-only
//!   experiments accept and ignore it.
//! - `--trace PATH` — write a Chrome `trace_event` JSON export of the
//!   run's flight-recorder events to `PATH` (load it in
//!   `chrome://tracing` / Perfetto). Binaries without an instrumented
//!   run emit a valid empty trace.
//! - `--help` / `-h` — print usage and the available flags, then exit.

use crate::report::Report;
use rqs_obs::TraceEvent;

/// The seed used when `--seed` is not given (the historical fixed seed).
pub const DEFAULT_SEED: u64 = 42;

/// Parsed experiment-binary arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpArgs {
    /// Workload/RNG seed (`--seed N`, default [`DEFAULT_SEED`]).
    pub seed: u64,
    /// Emit JSON instead of tables (`--json`).
    pub json: bool,
    /// Use small smoke-run parameters (`--quick`).
    pub quick: bool,
    /// Per-lane client pipeline depth override (`--pipeline N`); `None`
    /// keeps the experiment's default.
    pub pipeline: Option<usize>,
    /// Shard workers per KV server override (`--workers N`); `None`
    /// keeps the experiment's default.
    pub workers: Option<usize>,
    /// Chrome trace-event export path (`--trace PATH`), if requested.
    pub trace: Option<String>,
    /// Usage was requested (`--help` / `-h`).
    pub help: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            seed: DEFAULT_SEED,
            json: false,
            quick: false,
            pipeline: None,
            workers: None,
            trace: None,
            help: false,
        }
    }
}

impl ExpArgs {
    /// The usage text shared by every `exp_*` binary: one line per
    /// available flag.
    pub fn usage() -> String {
        [
            "usage: exp_* [--seed N] [--json] [--quick] [--pipeline N] [--workers N]",
            "             [--trace PATH] [--help]",
            "",
            "options:",
            "  --seed N, --seed=N  workload/RNG seed (default 42); purely",
            "                      deterministic experiments accept and ignore it",
            "  --json              emit the report(s) as a JSON array instead of tables",
            "  --quick             shrink workload parameters for CI smoke runs",
            "  --pipeline N        per-lane client pipeline depth for KV workloads",
            "                      (1 = classic one-op-per-lane waves); experiments",
            "                      without a KV workload accept and ignore it",
            "  --workers N         shard workers per KV server on the threaded runtime",
            "                      (0 = process batches on the node thread); ignored",
            "                      by simulator-only experiments",
            "  --trace PATH        write a Chrome trace-event JSON export of the run's",
            "                      flight-recorder events to PATH (chrome://tracing)",
            "  -h, --help          print this help and exit",
        ]
        .join("\n")
    }

    /// Parses `std::env::args()`.
    ///
    /// Prints usage and exits with status 0 on `--help`/`-h`, or with
    /// status 2 on malformed or unknown arguments.
    pub fn parse() -> Self {
        match Self::try_from_iter(std::env::args().skip(1)) {
            Ok(args) if args.help => {
                println!("{}", Self::usage());
                std::process::exit(0);
            }
            Ok(args) => args,
            Err(err) => {
                eprintln!("error: {err}");
                eprintln!("{}", Self::usage());
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`Self::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed or unknown
    /// argument.
    pub fn try_from_iter<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter().map(Into::into);
        while let Some(arg) = it.next() {
            let seed_val = if arg == "--seed" {
                Some(it.next().ok_or("--seed requires a value")?)
            } else {
                arg.strip_prefix("--seed=").map(str::to_owned)
            };
            let trace_val = if arg == "--trace" {
                Some(it.next().ok_or("--trace requires a path")?)
            } else {
                arg.strip_prefix("--trace=").map(str::to_owned)
            };
            let pipeline_val = if arg == "--pipeline" {
                Some(it.next().ok_or("--pipeline requires a value")?)
            } else {
                arg.strip_prefix("--pipeline=").map(str::to_owned)
            };
            let workers_val = if arg == "--workers" {
                Some(it.next().ok_or("--workers requires a value")?)
            } else {
                arg.strip_prefix("--workers=").map(str::to_owned)
            };
            if let Some(val) = seed_val {
                out.seed = val
                    .parse()
                    .map_err(|_| format!("--seed: not a u64: {val:?}"))?;
            } else if let Some(val) = pipeline_val {
                let depth: usize = val
                    .parse()
                    .map_err(|_| format!("--pipeline: not a usize: {val:?}"))?;
                if depth == 0 {
                    return Err("--pipeline: depth must be at least 1".to_string());
                }
                out.pipeline = Some(depth);
            } else if let Some(val) = workers_val {
                out.workers = Some(
                    val.parse()
                        .map_err(|_| format!("--workers: not a usize: {val:?}"))?,
                );
            } else if let Some(path) = trace_val {
                if path.is_empty() {
                    return Err("--trace requires a non-empty path".to_string());
                }
                out.trace = Some(path);
            } else if arg == "--json" {
                out.json = true;
            } else if arg == "--quick" {
                out.quick = true;
            } else if arg == "--help" || arg == "-h" {
                out.help = true;
            } else {
                return Err(format!("unknown argument {arg:?}"));
            }
        }
        Ok(out)
    }

    /// Whether a trace export was requested — binaries use this to gate
    /// flight-recorder construction so untraced runs keep the no-op
    /// tracer (and its near-zero overhead).
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Prints the reports in the selected format: a JSON array with
    /// `--json`, the usual tables otherwise.
    pub fn emit(&self, reports: &[Report]) {
        self.emit_traced(reports, &[]);
    }

    /// [`Self::emit`], plus — when `--trace PATH` was given — a Chrome
    /// trace-event export of `events` written to the path. Exits with
    /// status 2 when the file cannot be written.
    pub fn emit_traced(&self, reports: &[Report], events: &[TraceEvent]) {
        if self.json {
            let items: Vec<String> = reports.iter().map(Report::to_json).collect();
            println!("[{}]", items.join(","));
        } else {
            for report in reports {
                println!("{report}");
            }
        }
        if let Some(path) = &self.trace {
            if let Err(err) = std::fs::write(path, rqs_obs::chrome_trace(events)) {
                eprintln!("error: --trace {path}: {err}");
                std::process::exit(2);
            }
            eprintln!("trace: wrote {} events to {path}", events.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let args = ExpArgs::try_from_iter(Vec::<String>::new()).unwrap();
        assert_eq!(args, ExpArgs::default());
        assert_eq!(args.seed, DEFAULT_SEED);
    }

    #[test]
    fn seed_both_spellings() {
        let a = ExpArgs::try_from_iter(["--seed", "7"]).unwrap();
        assert_eq!(a.seed, 7);
        let b = ExpArgs::try_from_iter(["--seed=9"]).unwrap();
        assert_eq!(b.seed, 9);
    }

    #[test]
    fn flags() {
        let a = ExpArgs::try_from_iter(["--json", "--quick"]).unwrap();
        assert!(a.json);
        assert!(a.quick);
    }

    #[test]
    fn rejects_garbage() {
        assert!(ExpArgs::try_from_iter(["--seed"]).is_err());
        assert!(ExpArgs::try_from_iter(["--seed", "x"]).is_err());
        assert!(ExpArgs::try_from_iter(["--frobnicate"]).is_err());
        assert!(ExpArgs::try_from_iter(["--trace"]).is_err());
        assert!(ExpArgs::try_from_iter(["--trace="]).is_err());
        assert!(ExpArgs::try_from_iter(["--pipeline"]).is_err());
        assert!(ExpArgs::try_from_iter(["--pipeline", "x"]).is_err());
        assert!(ExpArgs::try_from_iter(["--pipeline", "0"]).is_err());
        assert!(ExpArgs::try_from_iter(["--workers", "many"]).is_err());
    }

    #[test]
    fn pipeline_and_workers_both_spellings() {
        let a = ExpArgs::try_from_iter(["--pipeline", "4", "--workers", "2"]).unwrap();
        assert_eq!(a.pipeline, Some(4));
        assert_eq!(a.workers, Some(2));
        let b = ExpArgs::try_from_iter(["--pipeline=8", "--workers=0"]).unwrap();
        assert_eq!(b.pipeline, Some(8));
        assert_eq!(b.workers, Some(0), "0 explicitly disables the pool");
        let d = ExpArgs::default();
        assert_eq!((d.pipeline, d.workers), (None, None));
    }

    #[test]
    fn trace_both_spellings() {
        let a = ExpArgs::try_from_iter(["--trace", "out.json"]).unwrap();
        assert_eq!(a.trace.as_deref(), Some("out.json"));
        assert!(a.tracing());
        let b = ExpArgs::try_from_iter(["--trace=t.json"]).unwrap();
        assert_eq!(b.trace.as_deref(), Some("t.json"));
        assert!(!ExpArgs::default().tracing());
    }

    #[test]
    fn help_is_recognized_both_spellings() {
        assert!(ExpArgs::try_from_iter(["--help"]).unwrap().help);
        assert!(ExpArgs::try_from_iter(["-h"]).unwrap().help);
        assert!(!ExpArgs::try_from_iter(["--quick"]).unwrap().help);
    }

    #[test]
    fn usage_names_every_flag() {
        let usage = ExpArgs::usage();
        for flag in [
            "--seed",
            "--json",
            "--quick",
            "--pipeline",
            "--workers",
            "--trace",
            "--help",
        ] {
            assert!(usage.contains(flag), "usage must document {flag}");
        }
    }
}
