//! Command-line argument handling shared by every `exp_*` binary.
//!
//! Every experiment binary accepts:
//!
//! - `--seed N` — RNG seed for experiments with a stochastic component
//!   (workload generation in `exp_kv`); purely deterministic experiments
//!   accept and ignore it. Defaults to [`DEFAULT_SEED`], so a bare run
//!   reproduces the numbers recorded in `EXPERIMENTS.md`.
//! - `--json` — emit the report(s) as a JSON array (see
//!   [`Report::to_json`](crate::Report::to_json)) instead of tables, for
//!   mechanical capture of benchmark trajectories.
//! - `--quick` — shrink workload parameters for CI smoke runs.
//! - `--help` / `-h` — print usage and the available flags, then exit.

use crate::report::Report;

/// The seed used when `--seed` is not given (the historical fixed seed).
pub const DEFAULT_SEED: u64 = 42;

/// Parsed experiment-binary arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpArgs {
    /// Workload/RNG seed (`--seed N`, default [`DEFAULT_SEED`]).
    pub seed: u64,
    /// Emit JSON instead of tables (`--json`).
    pub json: bool,
    /// Use small smoke-run parameters (`--quick`).
    pub quick: bool,
    /// Usage was requested (`--help` / `-h`).
    pub help: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            seed: DEFAULT_SEED,
            json: false,
            quick: false,
            help: false,
        }
    }
}

impl ExpArgs {
    /// The usage text shared by every `exp_*` binary: one line per
    /// available flag.
    pub fn usage() -> String {
        [
            "usage: exp_* [--seed N] [--json] [--quick] [--help]",
            "",
            "options:",
            "  --seed N, --seed=N  workload/RNG seed (default 42); purely",
            "                      deterministic experiments accept and ignore it",
            "  --json              emit the report(s) as a JSON array instead of tables",
            "  --quick             shrink workload parameters for CI smoke runs",
            "  -h, --help          print this help and exit",
        ]
        .join("\n")
    }

    /// Parses `std::env::args()`.
    ///
    /// Prints usage and exits with status 0 on `--help`/`-h`, or with
    /// status 2 on malformed or unknown arguments.
    pub fn parse() -> Self {
        match Self::try_from_iter(std::env::args().skip(1)) {
            Ok(args) if args.help => {
                println!("{}", Self::usage());
                std::process::exit(0);
            }
            Ok(args) => args,
            Err(err) => {
                eprintln!("error: {err}");
                eprintln!("{}", Self::usage());
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`Self::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed or unknown
    /// argument.
    pub fn try_from_iter<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter().map(Into::into);
        while let Some(arg) = it.next() {
            let seed_val = if arg == "--seed" {
                Some(it.next().ok_or("--seed requires a value")?)
            } else {
                arg.strip_prefix("--seed=").map(str::to_owned)
            };
            if let Some(val) = seed_val {
                out.seed = val
                    .parse()
                    .map_err(|_| format!("--seed: not a u64: {val:?}"))?;
            } else if arg == "--json" {
                out.json = true;
            } else if arg == "--quick" {
                out.quick = true;
            } else if arg == "--help" || arg == "-h" {
                out.help = true;
            } else {
                return Err(format!("unknown argument {arg:?}"));
            }
        }
        Ok(out)
    }

    /// Prints the reports in the selected format: a JSON array with
    /// `--json`, the usual tables otherwise.
    pub fn emit(&self, reports: &[Report]) {
        if self.json {
            let items: Vec<String> = reports.iter().map(Report::to_json).collect();
            println!("[{}]", items.join(","));
        } else {
            for report in reports {
                println!("{report}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let args = ExpArgs::try_from_iter(Vec::<String>::new()).unwrap();
        assert_eq!(args, ExpArgs::default());
        assert_eq!(args.seed, DEFAULT_SEED);
    }

    #[test]
    fn seed_both_spellings() {
        let a = ExpArgs::try_from_iter(["--seed", "7"]).unwrap();
        assert_eq!(a.seed, 7);
        let b = ExpArgs::try_from_iter(["--seed=9"]).unwrap();
        assert_eq!(b.seed, 9);
    }

    #[test]
    fn flags() {
        let a = ExpArgs::try_from_iter(["--json", "--quick"]).unwrap();
        assert!(a.json);
        assert!(a.quick);
    }

    #[test]
    fn rejects_garbage() {
        assert!(ExpArgs::try_from_iter(["--seed"]).is_err());
        assert!(ExpArgs::try_from_iter(["--seed", "x"]).is_err());
        assert!(ExpArgs::try_from_iter(["--frobnicate"]).is_err());
    }

    #[test]
    fn help_is_recognized_both_spellings() {
        assert!(ExpArgs::try_from_iter(["--help"]).unwrap().help);
        assert!(ExpArgs::try_from_iter(["-h"]).unwrap().help);
        assert!(!ExpArgs::try_from_iter(["--quick"]).unwrap().help);
    }

    #[test]
    fn usage_names_every_flag() {
        let usage = ExpArgs::usage();
        for flag in ["--seed", "--json", "--quick", "--help"] {
            assert!(usage.contains(flag), "usage must document {flag}");
        }
    }
}
