//! **E4, E6, E9** — the headline latency results:
//!
//! - E4 (§3.2, Theorem 9): the storage algorithm is `(m, QCm)`-fast —
//!   synchronous uncontended reads and writes take 1 / 2 / 3 rounds when
//!   the best fully-correct quorum is class 1 / 2 / 3, against the ABD
//!   baseline whose reads are always 2 rounds (and which tolerates no
//!   Byzantine servers);
//! - E6 (§4.2, Definition 4): consensus learns in 2 / 3 / 4 message
//!   delays for class 1 / 2 / 3 correct quorums, against the classic
//!   Byzantine-quorum baseline that always needs 4;
//! - E9 (Fig. 14): leader crash → exponential-backoff view change →
//!   decision.

use crate::report::Report;
use rqs_consensus::ConsensusHarness;
use rqs_core::threshold::ThresholdConfig;
use rqs_core::{ProcessSet, QuorumClass, Rqs};
use rqs_sim::{NetworkScript, NodeId, Time, World};
use rqs_storage::abd::{AbdClient, AbdServer};
use rqs_storage::{StorageHarness, Value};

/// One row of the storage latency table.
#[derive(Clone, Debug)]
pub struct StorageLatencyRow {
    /// Configuration description.
    pub config: String,
    /// Number of crashed servers.
    pub crashes: usize,
    /// Best class among surviving quorums.
    pub class: Option<QuorumClass>,
    /// Measured write rounds.
    pub write_rounds: usize,
    /// Measured read rounds.
    pub read_rounds: usize,
}

/// Measures write/read rounds for a configuration with `f` crashed
/// servers (the highest-indexed ones).
pub fn measure_storage(rqs: Rqs, f: usize) -> StorageLatencyRow {
    let n = rqs.universe_size();
    let faulty: ProcessSet = (n - f..n).collect();
    let class = rqs.best_available_class(faulty);
    let config = format!("n={n}");
    let mut h = StorageHarness::new(rqs, 1);
    if f > 0 {
        h.crash_servers(faulty);
    }
    let w = h.write(Value::from(42u64));
    let r = h.read(0);
    assert_eq!(r.returned.val, Value::from(42u64));
    h.check_atomicity().expect("atomic");
    StorageLatencyRow {
        config,
        crashes: f,
        class,
        write_rounds: w.rounds,
        read_rounds: r.rounds,
    }
}

/// Measures the ABD baseline (crash-only majorities).
pub fn measure_abd(n: usize, f: usize) -> (usize, usize) {
    let mut world = World::new(NetworkScript::synchronous());
    let servers: Vec<NodeId> = (0..n)
        .map(|_| world.add_node(Box::new(AbdServer::new())))
        .collect();
    let writer = world.add_node(Box::new(AbdClient::new(servers.clone())));
    let reader = world.add_node(Box::new(AbdClient::new(servers.clone())));
    for &s in servers.iter().rev().take(f) {
        world.crash_at(s, Time::ZERO);
    }
    world.run_before(Time(1));
    world.invoke::<AbdClient>(writer, |c, ctx| c.start_write(Value::from(1u64), ctx));
    world.run_to_quiescence();
    let w = world.node_as::<AbdClient>(writer).outcomes()[0].rounds;
    world.invoke::<AbdClient>(reader, |c, ctx| c.start_read(ctx));
    world.run_to_quiescence();
    let r = world.node_as::<AbdClient>(reader).outcomes()[0].rounds;
    (w, r)
}

/// The three-class storage configuration used in the graded sweeps:
/// `n = 7, t = 2, k = 1, q = 0, r = 1`.
pub fn graded_storage_rqs() -> Rqs {
    ThresholdConfig::new(7, 2, 1)
        .with_class1(0)
        .with_class2(1)
        .build()
        .expect("graded config is feasible")
}

/// The degraded-read scenario: a fast (1-round) write completes with all
/// servers alive, `f` servers then crash, and a read runs against the
/// surviving class. This is where the paper's 1/2/3-round *read* grading
/// shows: the read must re-establish enough evidence by writing back.
pub fn measure_degraded_read(rqs: Rqs, f: usize) -> StorageLatencyRow {
    let n = rqs.universe_size();
    let faulty: ProcessSet = (n - f..n).collect();
    let class = rqs.best_available_class(faulty);
    let config = format!("n={n}");
    let mut h = StorageHarness::new(rqs, 1);
    let w = h.write(Value::from(42u64));
    if f > 0 {
        h.crash_servers(faulty);
    }
    let r = h.read(0);
    assert_eq!(r.returned.val, Value::from(42u64));
    h.check_atomicity().expect("atomic");
    StorageLatencyRow {
        config,
        crashes: f,
        class,
        write_rounds: w.rounds,
        read_rounds: r.rounds,
    }
}

/// Builds the E4 report.
pub fn storage_report() -> Report {
    let mut r = Report::new("E4 (Theorem 9): storage is (m, QCm)-fast");
    r.note("Synchronous, uncontended operations; crashes knock out the fast");
    r.note("quorum classes one by one. Paper: 1/2/3 rounds for class 1/2/3.");
    r.note("ABD baseline: reads always 2 rounds, crash faults only.");
    r.headers([
        "system",
        "crashes",
        "best class",
        "write rounds",
        "read rounds",
    ]);
    // §1.2 crash system: n=5, t=2, fast at 4.
    for f in 0..=2 {
        let row = measure_storage(ThresholdConfig::crash_fast(5, 1).build().unwrap(), f);
        r.row([
            "crash n=5 t=2 (§1.2)".to_string(),
            row.crashes.to_string(),
            row.class.map(|c| c.to_string()).unwrap_or_default(),
            row.write_rounds.to_string(),
            row.read_rounds.to_string(),
        ]);
    }
    // Byzantine n = 3t+1 instantiations.
    for t in [1usize, 2] {
        for f in 0..=t {
            let row = measure_storage(ThresholdConfig::byzantine_fast(t).build().unwrap(), f);
            r.row([
                format!("byzantine n={} t=k={t}", 3 * t + 1),
                row.crashes.to_string(),
                row.class.map(|c| c.to_string()).unwrap_or_default(),
                row.write_rounds.to_string(),
                row.read_rounds.to_string(),
            ]);
        }
    }
    // Graded n=7 with all three classes distinct.
    for f in 0..=2 {
        let row = measure_storage(graded_storage_rqs(), f);
        r.row([
            "graded n=7 t=2 k=1 q=0 r=1".to_string(),
            row.crashes.to_string(),
            row.class.map(|c| c.to_string()).unwrap_or_default(),
            row.write_rounds.to_string(),
            row.read_rounds.to_string(),
        ]);
    }
    // Degraded reads: fast write first, then crashes, then the read.
    for f in 0..=2 {
        let row = measure_degraded_read(graded_storage_rqs(), f);
        r.row([
            "graded n=7, crash AFTER fast write".to_string(),
            row.crashes.to_string(),
            row.class.map(|c| c.to_string()).unwrap_or_default(),
            format!("{} (before crashes)", row.write_rounds),
            row.read_rounds.to_string(),
        ]);
    }
    // ABD baseline.
    for f in 0..=2 {
        let (w, rr) = measure_abd(5, f);
        r.row([
            "ABD baseline n=5 (crash-only)".to_string(),
            f.to_string(),
            "-".to_string(),
            w.to_string(),
            rr.to_string(),
        ]);
    }
    r
}

/// One row of the consensus latency table.
#[derive(Clone, Debug)]
pub struct ConsensusLatencyRow {
    /// Configuration description.
    pub config: String,
    /// Crashed acceptors.
    pub crashes: usize,
    /// Best class among surviving quorums.
    pub class: Option<QuorumClass>,
    /// Message delays until every learner learned.
    pub delays: u64,
}

/// Measures learning delays with `f` crashed acceptors.
pub fn measure_consensus(rqs: Rqs, f: usize) -> ConsensusLatencyRow {
    let n = rqs.universe_size();
    let faulty: ProcessSet = (n - f..n).collect();
    let class = rqs.best_available_class(faulty);
    let config = format!("n={n}");
    let mut h = ConsensusHarness::new(rqs, 2, 2);
    if f > 0 {
        h.crash_acceptors(faulty);
    }
    h.propose(0, 7);
    assert!(h.run_until_learned(400_000), "must learn");
    assert_eq!(h.agreed_value(), Some(7));
    let delays = h
        .learner_delays()
        .into_iter()
        .map(|d| d.expect("learned"))
        .max()
        .unwrap();
    ConsensusLatencyRow {
        config,
        crashes: f,
        class,
        delays,
    }
}

/// Builds the E6 report.
pub fn consensus_report() -> Report {
    let mut r = Report::new("E6 (Definition 4): consensus learns in m+1 message delays");
    r.note("Best-case executions (single proposer, synchrony). Paper: 2/3/4");
    r.note("message delays when a class-1/2/3 quorum of acceptors is correct;");
    r.note("classic Byzantine quorums (no fast classes) always need 4.");
    r.headers(["system", "crashes", "best class", "message delays"]);
    let graded = || {
        ThresholdConfig::new(7, 2, 1)
            .with_class1(0)
            .with_class2(1)
            .build()
            .unwrap()
    };
    for f in 0..=2 {
        let row = measure_consensus(graded(), f);
        r.row([
            "graded n=7 t=2 k=1 q=0 r=1".to_string(),
            row.crashes.to_string(),
            row.class.map(|c| c.to_string()).unwrap_or_default(),
            row.delays.to_string(),
        ]);
    }
    for t in [1usize] {
        for f in 0..=t {
            let row = measure_consensus(ThresholdConfig::byzantine_fast(t).build().unwrap(), f);
            r.row([
                format!("byzantine n={} t=k={t}", 3 * t + 1),
                row.crashes.to_string(),
                row.class.map(|c| c.to_string()).unwrap_or_default(),
                row.delays.to_string(),
            ]);
        }
    }
    let row = measure_consensus(ThresholdConfig::classic_byzantine(4).build().unwrap(), 0);
    r.row([
        "baseline n=4 (no fast classes)".to_string(),
        "0".to_string(),
        row.class.map(|c| c.to_string()).unwrap_or_default(),
        row.delays.to_string(),
    ]);
    r
}

/// E9: crash the initial leader(s); measure delays until learning and the
/// view in which the decision lands.
pub fn measure_view_change(leader_crashes: usize) -> (u64, bool) {
    let rqs = ThresholdConfig::byzantine_fast(1).build().unwrap();
    let proposers = leader_crashes + 1;
    let mut h = ConsensusHarness::new(rqs, proposers, 1);
    for i in 0..leader_crashes {
        h.crash_proposer_at(i, Time::ZERO);
    }
    // All proposers propose (the dead ones' invocations are lost).
    for i in 0..proposers {
        if i >= leader_crashes {
            h.propose(i, 5 + i as u64);
        }
    }
    let learned = h.run_until_learned(2_000_000);
    let delays = h.learner_delays().into_iter().flatten().max().unwrap_or(0);
    (delays, learned)
}

/// Builds the E9 report.
pub fn view_change_report() -> Report {
    let mut r = Report::new("E9 (Fig. 14): election module under leader failure");
    r.note("Byzantine n=4 system; the lowest-id proposers crash before");
    r.note("proposing; a surviving proposer's value must still be learned");
    r.note("(in the initial view directly, or after view changes).");
    r.headers(["crashed leaders", "learned", "message delays"]);
    for crashes in 0..=2 {
        let (delays, learned) = measure_view_change(crashes);
        r.row([crashes.to_string(), learned.to_string(), delays.to_string()]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_latency_matches_theorem9() {
        // Graded config: 1/2/3 rounds as crashes mount.
        let r0 = measure_storage(graded_storage_rqs(), 0);
        assert_eq!((r0.write_rounds, r0.read_rounds), (1, 1));
        assert_eq!(r0.class, Some(QuorumClass::Class1));
        let r1 = measure_storage(graded_storage_rqs(), 1);
        assert_eq!(r1.write_rounds, 2);
        assert_eq!(r1.class, Some(QuorumClass::Class2));
        let r2 = measure_storage(graded_storage_rqs(), 2);
        assert_eq!(r2.write_rounds, 3);
        assert_eq!(r2.class, Some(QuorumClass::Class3));
    }

    #[test]
    fn degraded_reads_grade_one_two_three() {
        let r0 = measure_degraded_read(graded_storage_rqs(), 0);
        assert_eq!(r0.read_rounds, 1, "class 1 intact: 1-round read");
        let r1 = measure_degraded_read(graded_storage_rqs(), 1);
        assert_eq!(r1.read_rounds, 2, "class 2 left: 2-round read");
        let r2 = measure_degraded_read(graded_storage_rqs(), 2);
        assert_eq!(r2.read_rounds, 3, "class 3 left: 3-round read");
    }

    #[test]
    fn abd_baseline_reads_two_rounds() {
        let (w, r) = measure_abd(5, 0);
        assert_eq!((w, r), (1, 2));
        let (w, r) = measure_abd(5, 2);
        assert_eq!((w, r), (1, 2));
    }

    #[test]
    fn consensus_latency_matches_definition4() {
        let graded = || {
            ThresholdConfig::new(7, 2, 1)
                .with_class1(0)
                .with_class2(1)
                .build()
                .unwrap()
        };
        assert_eq!(measure_consensus(graded(), 0).delays, 2);
        assert_eq!(measure_consensus(graded(), 1).delays, 3);
        assert_eq!(measure_consensus(graded(), 2).delays, 4);
    }

    #[test]
    fn baseline_consensus_always_four() {
        let row = measure_consensus(ThresholdConfig::classic_byzantine(4).build().unwrap(), 0);
        assert_eq!(row.delays, 4);
    }

    #[test]
    fn view_change_recovers() {
        let (_, learned) = measure_view_change(1);
        assert!(learned, "a surviving proposer must get its value learned");
    }
}
