//! Benchmark regression gate: re-runs the quick KV and soak experiments
//! and compares their throughput against the committed `BENCH_kv.json` /
//! `BENCH_soak.json` baselines (recorded with `--quick --json` on the
//! default seed).
//!
//! Two kinds of throughput cells appear in the reports:
//!
//! - **`ops/tick`** (simulator) — deterministic: same seed ⇒ same
//!   number on every machine. A regression here is a real protocol or
//!   batching regression, so it *fails* the gate.
//! - **`ops/s` / `ops/sec`** (threaded runtime, wall clock) — machine-
//!   and load-dependent, so cross-machine comparison against a committed
//!   number is advisory: reported in the table, never failing unless
//!   `strict_wall` is set.
//!
//! The `bench_diff` binary exits non-zero when any deterministic entry
//! drops more than the tolerance (default 30%) below its baseline, or
//! when a baseline entry disappears from the fresh run.

use crate::report::Report;
use std::collections::BTreeMap;

/// Relative drop that fails the gate (30%).
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// One extracted throughput number.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputEntry {
    /// The numeric value (ops per tick or ops per second).
    pub value: f64,
    /// Whether the number is wall-clock (`ops/s`, advisory) rather than
    /// deterministic (`ops/tick`, gating).
    pub wall_clock: bool,
}

/// Splits a JSON array of report objects (the `exp_* --json` output)
/// into its elements and parses each with [`Report::from_json`].
///
/// # Errors
///
/// Returns a description of the first malformed element or any array
/// syntax error.
pub fn parse_report_array(s: &str) -> Result<Vec<Report>, String> {
    let t = s.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or("expected a JSON array of reports")?;
    let mut reports = Vec::new();
    let (mut depth, mut in_string, mut escaped) = (0usize, false, false);
    let mut start = None;
    for (i, c) in inner.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1).ok_or("unbalanced '}'")?;
                if depth == 0 {
                    let obj = &inner[start.take().ok_or("unbalanced '}'")?..=i];
                    reports.push(Report::from_json(obj)?);
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return Err("truncated report array".into());
    }
    Ok(reports)
}

/// Extracts every throughput cell from `reports`, keyed by
/// `"<title> / <row label>"`. Three shapes are recognized: a column
/// whose header is `ops/tick`, a `throughput` column whose cells carry
/// an `ops/tick` or `ops/s` suffix, and `metric`/`value` tables with an
/// `ops/sec` row.
pub fn throughputs(reports: &[Report]) -> BTreeMap<String, ThroughputEntry> {
    let mut out = BTreeMap::new();
    for r in reports {
        let label = |row: &[String]| -> String {
            let first = row.first().map(String::as_str).unwrap_or("?");
            format!("{} / {first}", r.title)
        };
        if let Some(ci) = r.headers.iter().position(|h| h == "ops/tick") {
            for row in &r.rows {
                if let Some(v) = row.get(ci).and_then(|c| c.parse::<f64>().ok()) {
                    out.insert(
                        label(row),
                        ThroughputEntry {
                            value: v,
                            wall_clock: false,
                        },
                    );
                }
            }
        }
        if let Some(ci) = r.headers.iter().position(|h| h == "throughput") {
            for row in &r.rows {
                let Some(cell) = row.get(ci) else { continue };
                let entry = if let Some(n) = cell.strip_suffix(" ops/tick") {
                    n.parse::<f64>().ok().map(|value| ThroughputEntry {
                        value,
                        wall_clock: false,
                    })
                } else if let Some(n) = cell.strip_suffix(" ops/s") {
                    n.parse::<f64>().ok().map(|value| ThroughputEntry {
                        value,
                        wall_clock: true,
                    })
                } else {
                    None
                };
                if let Some(e) = entry {
                    out.insert(label(row), e);
                }
            }
        }
        if r.headers == ["metric", "value"] {
            for row in &r.rows {
                if row.first().map(String::as_str) == Some("ops/sec") {
                    if let Some(v) = row.get(1).and_then(|c| c.parse::<f64>().ok()) {
                        out.insert(
                            label(row),
                            ThroughputEntry {
                                value: v,
                                wall_clock: true,
                            },
                        );
                    }
                }
            }
        }
    }
    out
}

/// One compared entry: key, baseline, fresh, relative change
/// (`fresh/baseline - 1`), and whether it is advisory (wall-clock).
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// `"<report title> / <row label>"`.
    pub key: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub fresh: f64,
    /// Relative change: negative means the fresh run is slower.
    pub change: f64,
    /// Wall-clock entries never gate (unless `strict_wall`).
    pub wall_clock: bool,
}

/// The outcome of a baseline-vs-fresh comparison.
#[derive(Clone, Debug, Default)]
pub struct DiffOutcome {
    /// Every matched throughput entry.
    pub lines: Vec<DiffLine>,
    /// Keys of gating entries that regressed beyond the tolerance.
    pub regressions: Vec<String>,
    /// Baseline keys absent from the fresh run (always failures: a
    /// vanished row hides whatever number it used to carry).
    pub missing: Vec<String>,
}

impl DiffOutcome {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares fresh reports against a committed baseline. Gating entries
/// (deterministic `ops/tick`; plus wall-clock ones iff `strict_wall`)
/// regress when they drop more than `tolerance` (e.g. `0.30`) below the
/// baseline. Entries new in `fresh` are ignored — adding rows is fine.
pub fn diff(
    baseline: &[Report],
    fresh: &[Report],
    tolerance: f64,
    strict_wall: bool,
) -> DiffOutcome {
    let base = throughputs(baseline);
    let new = throughputs(fresh);
    let mut out = DiffOutcome::default();
    for (key, b) in &base {
        let Some(f) = new.get(key) else {
            out.missing.push(key.clone());
            continue;
        };
        let change = if b.value == 0.0 {
            0.0
        } else {
            f.value / b.value - 1.0
        };
        let gates = !b.wall_clock || strict_wall;
        if gates && change < -tolerance {
            out.regressions.push(key.clone());
        }
        out.lines.push(DiffLine {
            key: key.clone(),
            baseline: b.value,
            fresh: f.value,
            change,
            wall_clock: b.wall_clock,
        });
    }
    out
}

/// Renders the comparison as a report table.
pub fn render(outcome: &DiffOutcome, tolerance: f64) -> Report {
    let mut r = Report::new("bench_diff (throughput gate)");
    r.note(format!(
        "fresh --quick runs vs committed BENCH_*.json; gate: deterministic \
         ops/tick entries must stay within {:.0}% of baseline",
        tolerance * 100.0
    ));
    r.note("wall-clock entries (ops/s) are advisory: machine-dependent");
    r.headers(["entry", "baseline", "fresh", "change", "verdict"]);
    for l in &outcome.lines {
        let regressed = outcome.regressions.contains(&l.key);
        let verdict = match (regressed, l.wall_clock) {
            (true, _) => "REGRESSED",
            (false, true) => "advisory",
            (false, false) => "ok",
        };
        r.row([
            l.key.clone(),
            format!("{:.2}", l.baseline),
            format!("{:.2}", l.fresh),
            format!("{:+.1}%", l.change * 100.0),
            verdict.to_string(),
        ]);
    }
    for key in &outcome.missing {
        r.row([
            key.clone(),
            "-".into(),
            "MISSING".into(),
            "-".into(),
            "REGRESSED".into(),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_like(tp: &str) -> Report {
        let mut r = Report::new("E15b (rqs-kv substrates)");
        r.headers(["substrate", "ops", "throughput", "fast-path"]);
        r.row(["sim (all correct)", "40", tp, "0.95"]);
        r.row(["threaded (1ms tick)", "40", "2500 ops/s", "0.90"]);
        r
    }

    fn soak_like(ops_sec: &str) -> Report {
        let mut r = Report::new("E18 (streaming-validation soak)");
        r.headers(["metric", "value"]);
        r.row(["ops", "4000"]);
        r.row(["ops/sec", ops_sec]);
        r
    }

    fn batching_like(tp: &str) -> Report {
        let mut r = Report::new("E15a (rqs-kv batching)");
        r.headers(["batch", "envelopes", "ops/tick"]);
        r.row(["1", "100", tp]);
        r
    }

    #[test]
    fn array_round_trips() {
        let a = kv_like("3.00 ops/tick");
        let b = soak_like("4000");
        let json = format!("[{},{}]", a.to_json(), b.to_json());
        let back = parse_report_array(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].title, a.title);
        assert_eq!(back[1].rows, b.rows);
        assert_eq!(parse_report_array("[]").unwrap().len(), 0);
        assert!(parse_report_array("{}").is_err());
        assert!(parse_report_array("[{").is_err());
    }

    #[test]
    fn extracts_all_three_shapes() {
        let t = throughputs(&[
            kv_like("3.00 ops/tick"),
            soak_like("4400"),
            batching_like("1.50"),
        ]);
        assert_eq!(t.len(), 4);
        let sim = &t["E15b (rqs-kv substrates) / sim (all correct)"];
        assert!(!sim.wall_clock);
        assert!((sim.value - 3.0).abs() < 1e-9);
        assert!(t["E15b (rqs-kv substrates) / threaded (1ms tick)"].wall_clock);
        assert!(t["E18 (streaming-validation soak) / ops/sec"].wall_clock);
        assert!(!t["E15a (rqs-kv batching) / 1"].wall_clock);
    }

    #[test]
    fn gate_fails_on_deterministic_regression_only() {
        let base = [kv_like("3.00 ops/tick"), soak_like("4000")];
        // Deterministic throughput down 50%: fail.
        let slow = [kv_like("1.50 ops/tick"), soak_like("4000")];
        let out = diff(&base, &slow, DEFAULT_TOLERANCE, false);
        assert!(!out.ok());
        assert_eq!(out.regressions.len(), 1);
        // Wall-clock down 50%: advisory, gate passes.
        let wall = [kv_like("3.00 ops/tick"), soak_like("2000")];
        let out = diff(&base, &wall, DEFAULT_TOLERANCE, false);
        assert!(out.ok(), "{:?}", out.regressions);
        // ... unless strict.
        assert!(!diff(&base, &wall, DEFAULT_TOLERANCE, true).ok());
        // Within tolerance: pass.
        let near = [kv_like("2.40 ops/tick"), soak_like("4000")];
        assert!(diff(&base, &near, DEFAULT_TOLERANCE, false).ok());
    }

    #[test]
    fn missing_baseline_entries_fail() {
        let base = [kv_like("3.00 ops/tick"), soak_like("4000")];
        let fresh = [kv_like("3.00 ops/tick")];
        let out = diff(&base, &fresh, DEFAULT_TOLERANCE, false);
        assert!(!out.ok());
        assert_eq!(out.missing.len(), 1);
        let table = render(&out, DEFAULT_TOLERANCE).to_string();
        assert!(table.contains("MISSING"));
    }

    #[test]
    fn render_marks_verdicts() {
        let base = [kv_like("3.00 ops/tick")];
        let fresh = [kv_like("1.00 ops/tick")];
        let out = diff(&base, &fresh, DEFAULT_TOLERANCE, false);
        let table = render(&out, DEFAULT_TOLERANCE).to_string();
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("advisory"));
    }
}
