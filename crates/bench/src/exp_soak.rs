//! **E18 (streaming-validation soak)** — a long KV workload on the
//! threaded runtime with the checker sidecar validating every operation
//! *while the workload runs*:
//!
//! - the driver keeps O(wave) memory (`retain_outcomes(false)`: no
//!   completed-op log) and the per-object checkers retire settled
//!   prefixes at every wave boundary, so validation memory tracks
//!   concurrency, not history length;
//! - the report records throughput, p50/p99 latency, envelopes/op,
//!   fast-path ratio and the sidecar's checker counters (ops checked,
//!   retirement watermark, peak frontier) — the numbers committed as
//!   `BENCH_soak.json`.

use crate::report::Report;
use rqs_core::threshold::ThresholdConfig;
use rqs_kv::{workload, KvRunStats, RetryPolicy, RtKv, WorkloadConfig};
use rqs_obs::{NopTracer, ObsHandle};
use rqs_runtime::SidecarReport;
use rqs_sim::Scenario;
use std::sync::Arc;
use std::time::Duration;

/// Soak dimensions.
#[derive(Clone, Copy, Debug)]
pub struct SoakParams {
    /// Objects in the key space.
    pub objects: usize,
    /// Clients (each owns `objects / clients` objects).
    pub clients: usize,
    /// Total operations.
    pub ops: usize,
    /// Per-client wave size.
    pub batch: usize,
    /// Per-lane client pipeline depth (≥ 1; 1 = classic one-op-per-lane
    /// waves).
    pub pipeline: usize,
    /// Shard workers per KV server (0 = process batches on the node
    /// thread).
    pub workers: usize,
    /// Wall-clock tick length of the threaded runtime, in microseconds.
    pub tick_us: u64,
}

impl SoakParams {
    /// Full-size soak: ≥1M operations (the recorded experiment).
    ///
    /// The keyspace is deliberately wide: a benign server answers every
    /// read with its full per-object history (the paper's unbounded
    /// history, §5), so read cost grows with the writes an object has
    /// absorbed. Spreading 1M operations over 4096 objects keeps every
    /// history — and thus per-read cost — small, which is also the
    /// realistic shape for a KV soak.
    pub fn full() -> Self {
        SoakParams {
            objects: 4096,
            clients: 4,
            ops: 1_000_000,
            batch: 16,
            pipeline: 8,
            workers: 2,
            tick_us: 50,
        }
    }

    /// Small parameters for CI smoke runs (`--quick`).
    pub fn quick() -> Self {
        SoakParams {
            objects: 64,
            clients: 4,
            ops: 4000,
            batch: 16,
            pipeline: 8,
            workers: 2,
            tick_us: 50,
        }
    }

    /// Picks full or quick parameters.
    pub fn for_mode(quick: bool) -> Self {
        if quick {
            Self::quick()
        } else {
            Self::full()
        }
    }

    /// Applies `--pipeline` / `--workers` command-line overrides.
    pub fn with_overrides(mut self, pipeline: Option<usize>, workers: Option<usize>) -> Self {
        if let Some(depth) = pipeline {
            self.pipeline = depth;
        }
        if let Some(workers) = workers {
            self.workers = workers;
        }
        self
    }
}

/// One soak run: metrics, the sidecar's verdict and counters, and the
/// wall-clock duration of the workload phase.
pub struct SoakRun {
    /// Run metrics (`duration_units` is wall-clock microseconds).
    pub stats: KvRunStats,
    /// The checker sidecar's verdict and aggregated counters.
    pub sidecar: SidecarReport,
    /// Wall-clock time of the workload (including harvest/feed, not
    /// including deployment setup or the final sidecar join).
    pub wall: Duration,
}

/// Runs the soak: threaded runtime, sidecar validation, O(wave) driver
/// memory.
pub fn run_soak(seed: u64, params: SoakParams) -> SoakRun {
    run_soak_traced(seed, params, Arc::new(NopTracer))
}

/// [`run_soak`] with a structured-trace sink — what `exp_soak --trace`
/// uses. The flight recorder is a bounded ring, so on a million-op soak
/// the export holds the *tail* of the run.
pub fn run_soak_traced(seed: u64, params: SoakParams, tracer: ObsHandle) -> SoakRun {
    let rqs = ThresholdConfig::byzantine_fast(1)
        .build()
        .expect("valid rqs");
    let mut kv = RtKv::with_setup_traced(
        rqs,
        params.objects,
        params.clients,
        Scenario::default(),
        Duration::from_micros(params.tick_us),
        Vec::new(),
        tracer,
    );
    kv.retain_outcomes(false);
    kv.enable_checker_sidecar();
    if params.pipeline > 1 {
        kv.set_pipeline(params.pipeline);
    }
    if params.workers > 0 {
        kv.enable_worker_pool(params.workers);
    }
    // Nothing is lost on the soak's fault-free links, so a nudge can
    // only ever be congestion misread as loss. The default watchdog is
    // calibrated for simulator ticks; on the threaded runtime,
    // scheduler jitter alone pushes past it and every spurious nudge
    // re-broadcasts a round to all servers — a storm that feeds the
    // queueing it reacts to (same calibration note as `exp_chaos`,
    // which sets its own policy above fsync latency).
    kv.set_retry_policy(RetryPolicy {
        max_retries: 8,
        base_backoff: 1000,
        max_backoff: 16_000,
        deadline: 1 << 22,
    });
    let cfg = WorkloadConfig::mixed(params.objects, params.clients, params.ops, seed);
    let ops = workload::generate(&cfg);
    let t0 = std::time::Instant::now();
    let stats = kv.run_workload(&ops, params.batch);
    let wall = t0.elapsed();
    let sidecar = kv.finish_sidecar().expect("sidecar was enabled");
    kv.shutdown();
    SoakRun {
        stats,
        sidecar,
        wall,
    }
}

/// The E18 table.
pub fn report(seed: u64, quick: bool) -> Report {
    let params = SoakParams::for_mode(quick);
    let run = run_soak(seed, params);
    render(seed, params, &run)
}

/// Renders an already-executed soak as the E18 table (the binary checks
/// the run's verdict for its exit status, so it runs the soak itself).
pub fn render(seed: u64, params: SoakParams, run: &SoakRun) -> Report {
    let mut r = Report::new("E18 (streaming-validation soak)");
    r.note(format!(
        "{} ops, {} objects, {} clients, batch {}, pipeline {}, {} workers/server, \
         {}us tick, seed {seed}, threaded runtime",
        params.ops,
        params.objects,
        params.clients,
        params.batch,
        params.pipeline,
        params.workers,
        params.tick_us
    ));
    r.note(
        "every op is atomicity-checked by the sidecar while the workload runs; \
         driver memory is O(wave), checker memory is O(concurrency)",
    );
    let stats = &run.stats;
    let checker = &run.sidecar.stats;
    let wall_s = run.wall.as_secs_f64().max(1e-9);
    let verdict = match &run.sidecar.verdict {
        Ok(()) => "ok".to_string(),
        Err((object, v)) => format!("VIOLATION object {object}: {v}"),
    };
    r.headers(["metric", "value"]);
    r.row(["ops", &stats.ops.to_string()]);
    r.row(["ops/sec", &format!("{:.0}", stats.ops as f64 / wall_s)]);
    r.row([
        "p50 latency",
        &format!("{} ticks", stats.latency_percentile(50.0)),
    ]);
    r.row([
        "p99 latency",
        &format!("{} ticks", stats.latency_percentile(99.0)),
    ]);
    r.row(["envelopes/op", &format!("{:.2}", stats.envelopes_per_op())]);
    r.row([
        "fast-path ratio",
        &format!("{:.3}", stats.rounds.fast_path_ratio()),
    ]);
    r.row(["slow-path attribution", &stats.attribution.slow_summary()]);
    r.row([
        "checker ops/sec",
        &format!("{:.0}", checker.ops_checked as f64 / wall_s),
    ]);
    r.row(["checker ops_checked", &checker.ops_checked.to_string()]);
    r.row([
        "checker retired_watermark",
        &format!("{} ticks", checker.retired_watermark),
    ]);
    r.row(["checker retired_ops", &checker.retired_ops.to_string()]);
    r.row(["checker max_frontier", &checker.max_frontier.to_string()]);
    r.row(["checker objects", &run.sidecar.objects.to_string()]);
    r.row(["atomicity", &verdict]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick soak validates every op off-thread with retirement
    /// keeping the frontier bounded by concurrency, not history: the
    /// whole point of E18.
    #[test]
    fn quick_soak_validates_all_ops_with_bounded_frontier() {
        let params = SoakParams::quick();
        let run = run_soak(11, params);
        assert!(run.sidecar.verdict.is_ok(), "{:?}", run.sidecar.verdict);
        assert_eq!(run.stats.ops, params.ops);
        assert_eq!(run.sidecar.stats.ops_checked, params.ops as u64);
        assert!(run.sidecar.stats.retired_ops > 0, "retirement must engage");
        // In-flight ops per object are bounded by clients × batch ×
        // pipeline depth; each resident op occupies up to 3 index
        // entries, plus anchor and boundary context per object.
        let bound = 3 * params.clients * params.batch * params.pipeline + 8 * params.objects;
        assert!(
            run.sidecar.stats.max_frontier <= bound,
            "frontier {} exceeds concurrency bound {bound}",
            run.sidecar.stats.max_frontier
        );
        // Sidecar mode leaves the in-line checkers empty.
        assert_eq!(run.stats.checker.ops_checked, 0);
    }

    #[test]
    fn report_renders_checker_rows() {
        // A tiny run (not `quick()`): this test only exercises rendering.
        let params = SoakParams {
            objects: 16,
            clients: 2,
            ops: 200,
            batch: 8,
            pipeline: 2,
            workers: 1,
            tick_us: 50,
        };
        let run = run_soak(11, params);
        let r = render(11, params, &run);
        assert!(r.to_string().contains("E18"));
        assert_eq!(r.cell("value", |row| row[0] == "atomicity"), Some("ok"));
        assert!(r
            .cell("value", |row| row[0] == "checker max_frontier")
            .is_some());
        let json = r.to_json();
        assert!(json.contains("checker ops/sec"));
        assert!(json.contains("retired_watermark"));
    }
}
