//! **E13 (Example 4)** — dissemination and masking quorum systems as
//! degenerate refined quorum systems, with their Malkhi–Reiter existence
//! boundaries (`Q3`: no three adversary elements cover `S`; `Q4`: no
//! four), checked for threshold and general adversaries.

use crate::report::Report;
use rqs_core::classic::{
    dissemination, dissemination_threshold, masking, masking_threshold, q_condition,
};
use rqs_core::{Adversary, ProcessSet};

/// Builds the E13 report.
pub fn report() -> Report {
    let mut r = Report::new("E13 (Example 4): dissemination & masking quorum systems");
    r.note("Dissemination = RQS with QC1 = QC2 = ∅ (Property 1 only, for");
    r.note("self-verifying data); masking = QC1 = ∅, QC2 = RQS (Property 3");
    r.note("degenerates to M-Consistency). Existence: Q3 / Q4 conditions;");
    r.note("threshold boundaries n > 3k and n > 4k.");
    r.headers(["adversary", "Q3", "dissemination", "Q4", "masking"]);

    for (n, k) in [(3usize, 1usize), (4, 1), (5, 1), (6, 2), (7, 2), (9, 2)] {
        let b = Adversary::threshold(n, k);
        r.row([
            format!("B_{k} over n={n}"),
            q_condition(&b, 3).to_string(),
            match dissemination_threshold(n, k) {
                Ok(rqs) => format!("{} quorums", rqs.len()),
                Err(_) => "none".to_string(),
            },
            q_condition(&b, 4).to_string(),
            match masking_threshold(n, k) {
                Ok(rqs) => format!("{} quorums", rqs.len()),
                Err(_) => "none".to_string(),
            },
        ]);
    }

    // A general (correlated) adversary: racks {0,1} and {2,3} over 6.
    let racks = Adversary::general(
        6,
        [
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([2, 3]),
        ],
    )
    .unwrap();
    r.row([
        "racks {s1,s2},{s3,s4} over 6".to_string(),
        q_condition(&racks, 3).to_string(),
        match dissemination(&racks) {
            Ok(rqs) => format!("{} quorums", rqs.len()),
            Err(_) => "none".to_string(),
        },
        q_condition(&racks, 4).to_string(),
        match masking(&racks) {
            Ok(rqs) => format!("{} quorums", rqs.len()),
            Err(_) => "none".to_string(),
        },
    ]);

    // Three racks covering everything: Q3 fails.
    let covered = Adversary::general(
        6,
        [
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([2, 3]),
            ProcessSet::from_indices([4, 5]),
        ],
    )
    .unwrap();
    r.row([
        "three racks covering S".to_string(),
        q_condition(&covered, 3).to_string(),
        match dissemination(&covered) {
            Ok(rqs) => format!("{} quorums", rqs.len()),
            Err(_) => "none".to_string(),
        },
        q_condition(&covered, 4).to_string(),
        match masking(&covered) {
            Ok(rqs) => format!("{} quorums", rqs.len()),
            Err(_) => "none".to_string(),
        },
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_malkhi_reiter_bounds() {
        let r = report();
        // n = 3k boundary: B_1 over 3 has no dissemination system.
        assert_eq!(
            r.cell("dissemination", |row| row[0] == "B_1 over n=3"),
            Some("none")
        );
        assert_ne!(
            r.cell("dissemination", |row| row[0] == "B_1 over n=4"),
            Some("none")
        );
        // n = 4k boundary: B_1 over 4 has no masking system.
        assert_eq!(
            r.cell("masking", |row| row[0] == "B_1 over n=4"),
            Some("none")
        );
        assert_ne!(
            r.cell("masking", |row| row[0] == "B_1 over n=5"),
            Some("none")
        );
    }

    #[test]
    fn general_adversary_rows_consistent() {
        let r = report();
        // Two racks: both exist; three covering racks: neither.
        assert_ne!(
            r.cell("dissemination", |row| row[0].starts_with("racks")),
            Some("none")
        );
        assert_eq!(
            r.cell("dissemination", |row| row[0].starts_with("three racks")),
            Some("none")
        );
    }
}
