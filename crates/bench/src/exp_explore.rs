//! E17: systematic schedule exploration (model checking) over the
//! deterministic world.
//!
//! Runs the `rqs-check` explorer over the canonical small models: bounded
//! DFS (with state-hash deduplication, and fault branching on one row)
//! and a seeded random walk. Columns report states visited, unique state
//! hashes, maximum depth and violations — the paper's safety claims mean
//! the violations column must read 0 everywhere; the `exp_explore` binary
//! exits non-zero otherwise, which is what the CI smoke step checks.

use crate::report::Report;
use rqs_check::explore::{dfs, random_walks, Bounds, ExploreOutcome};
use rqs_check::model::{builtin_model, Model};
use rqs_check::WalkOpts;

struct Row {
    model: String,
    mode: String,
    outcome: ExploreOutcome,
}

fn run_dfs(model: &str, bounds: Bounds, mode: String) -> Row {
    let m: Box<dyn Model> = builtin_model(model).expect("known model");
    Row {
        model: model.to_string(),
        mode,
        outcome: dfs(m.as_ref(), &bounds, true),
    }
}

/// Total violations found by the report's explorations (the binary's
/// exit status).
pub fn violation_count(report: &Report) -> usize {
    let idx = report
        .headers
        .iter()
        .position(|h| h == "violations")
        .expect("violations column");
    report
        .rows
        .iter()
        .map(|r| r[idx].parse::<usize>().unwrap_or(0))
        .sum()
}

/// The E17 report.
pub fn report(seed: u64, quick: bool) -> Report {
    let (depth, branch, walks) = if quick { (6, 3, 40) } else { (8, 3, 200) };
    let mut rows = vec![
        run_dfs(
            "storage-byz4-w2r",
            Bounds::delivery(depth, branch),
            format!("dfs d={depth} b={branch}"),
        ),
        run_dfs(
            "storage-crash5-seq",
            Bounds::delivery(4, 2),
            "dfs d=4 b=2 (fast path)".into(),
        ),
        run_dfs(
            "storage-crash5-w2r",
            Bounds::delivery(4, 2)
                .with_drops(2)
                .with_crashes(1)
                .with_crash_candidates(vec![0]),
            "dfs d=4 b=2 +2 drops +1 crash".into(),
        ),
        run_dfs(
            "consensus-byz4-contention",
            Bounds::delivery(4, 2),
            "dfs d=4 b=2".into(),
        ),
    ];
    {
        let m = builtin_model("storage-crash5-w2r").expect("known model");
        rows.push(Row {
            model: "storage-crash5-w2r".to_string(),
            mode: format!("walk n={walks} seed={seed}"),
            outcome: random_walks(
                m.as_ref(),
                &Bounds::delivery(0, 1),
                walks,
                seed,
                WalkOpts::default(),
            ),
        });
    }

    let mut report = Report::new("E17 (model checking): schedule exploration over World");
    report
        .note("Bounded DFS over delivery choices (stateless, state-hash dedup) and a")
        .note("seeded random walk; the safety claims hold over every explored schedule,")
        .note("so `violations` must be 0 in every row. `exhausted` marks a complete")
        .note("enumeration of the bounded space (walks sample, so they never exhaust).")
        .headers([
            "model",
            "mode",
            "runs",
            "choice points",
            "unique states",
            "max depth",
            "exhausted",
            "violations",
        ]);
    for row in &rows {
        let s = row.outcome.stats;
        report.row([
            row.model.clone(),
            row.mode.clone(),
            s.runs.to_string(),
            s.choice_points.to_string(),
            s.unique_states.to_string(),
            s.max_depth.to_string(),
            if s.exhausted { "yes" } else { "no" }.to_string(),
            row.outcome.violations.len().to_string(),
        ]);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_zero_violations() {
        let r = report(42, true);
        assert_eq!(violation_count(&r), 0);
        assert_eq!(r.rows.len(), 5);
        // DFS rows of the bounded models exhaust their spaces.
        assert_eq!(
            r.cell("exhausted", |row| row[1].starts_with("dfs d=6")),
            Some("yes")
        );
    }
}
