//! **E20 (hot-path throughput sweep)** — the client-pipelining ×
//! server-sharding grid on the threaded runtime:
//!
//! - each cell runs the same seeded mixed workload with a per-lane
//!   client pipeline depth and a per-server shard-worker count, every
//!   operation validated by the checker sidecar while the workload
//!   runs;
//! - the report records ops/sec per cell and the speedup over the
//!   depth-1 / unsharded baseline cell — the tentpole claim is that
//!   depth ≥ 4 with ≥ 2 workers at least doubles soak throughput;
//! - atomicity is non-negotiable: the binary exits non-zero if *any*
//!   cell's sidecar reports a violation, so CI can run
//!   `exp_pipeline --quick --json` as a smoke step.
//!
//! Per-object SWMR order is preserved at any depth because a lane
//! issues its pipelined ops in program order and the per-object
//! sequence tags keep retries from reordering them; the sweep
//! demonstrates the throughput side of that bargain.

use crate::report::Report;
use rqs_core::threshold::ThresholdConfig;
use rqs_kv::{workload, RetryPolicy, RtKv, WorkloadConfig};
use rqs_sim::Scenario;
use std::time::Duration;

/// Sweep dimensions (the workload shape; the grid is
/// [`PipelineParams::grid`]).
#[derive(Clone, Copy, Debug)]
pub struct PipelineParams {
    /// Objects in the key space.
    pub objects: usize,
    /// Clients (each owns `objects / clients` objects).
    pub clients: usize,
    /// Operations per grid cell.
    pub ops: usize,
    /// Per-client wave size.
    pub batch: usize,
    /// Wall-clock tick length of the threaded runtime, in microseconds.
    pub tick_us: u64,
    /// `--pipeline N` override: sweep only this depth.
    pub pipeline: Option<usize>,
    /// `--workers N` override: sweep only this worker count.
    pub workers: Option<usize>,
}

impl PipelineParams {
    /// Full-size sweep (the recorded experiment).
    pub fn full() -> Self {
        PipelineParams {
            objects: 1024,
            clients: 4,
            ops: 50_000,
            batch: 16,
            tick_us: 50,
            pipeline: None,
            workers: None,
        }
    }

    /// Small parameters for CI smoke runs (`--quick`).
    pub fn quick() -> Self {
        PipelineParams {
            objects: 64,
            clients: 4,
            ops: 2000,
            batch: 16,
            tick_us: 50,
            pipeline: None,
            workers: None,
        }
    }

    /// Picks full or quick parameters.
    pub fn for_mode(quick: bool) -> Self {
        if quick {
            Self::quick()
        } else {
            Self::full()
        }
    }

    /// Applies `--pipeline` / `--workers` command-line overrides: each
    /// pins its axis of the grid to the single given value.
    pub fn with_overrides(mut self, pipeline: Option<usize>, workers: Option<usize>) -> Self {
        self.pipeline = pipeline.or(self.pipeline);
        self.workers = workers.or(self.workers);
        self
    }

    /// The `(depth, workers)` grid: the depth-1/unsharded baseline
    /// first, then each axis alone, then the combined cells. CLI
    /// overrides pin an axis to one value (the baseline cell is kept so
    /// speedups stay anchored).
    pub fn grid(&self) -> Vec<(usize, usize)> {
        let depths: Vec<usize> = match self.pipeline {
            Some(d) => vec![d],
            None => vec![1, 4, 8],
        };
        let workers: Vec<usize> = match self.workers {
            Some(w) => vec![w],
            None => vec![0, 2],
        };
        let mut cells = vec![(1, 0)];
        for &w in &workers {
            for &d in &depths {
                if !cells.contains(&(d, w)) {
                    cells.push((d, w));
                }
            }
        }
        cells
    }
}

/// One grid cell's outcome.
pub struct PipelineCell {
    /// Client pipeline depth of the cell.
    pub depth: usize,
    /// Shard workers per server (0 = node thread).
    pub workers: usize,
    /// Wall-clock ops/sec of the workload phase.
    pub ops_per_sec: f64,
    /// p50 operation latency in ticks.
    pub p50: u64,
    /// p99 operation latency in ticks.
    pub p99: u64,
    /// Network envelopes per operation.
    pub envelopes_per_op: f64,
    /// Fraction of ops completing in the paper's fast path.
    pub fast_ratio: f64,
    /// The sidecar verdict (`None` = atomic).
    pub violation: Option<String>,
}

/// Runs one `(depth, workers)` cell: threaded runtime, sidecar
/// validation, fresh deployment.
pub fn run_cell(seed: u64, params: PipelineParams, depth: usize, workers: usize) -> PipelineCell {
    let rqs = ThresholdConfig::byzantine_fast(1)
        .build()
        .expect("valid rqs");
    let mut kv = RtKv::with_setup(
        rqs,
        params.objects,
        params.clients,
        Scenario::default(),
        Duration::from_micros(params.tick_us),
    );
    kv.retain_outcomes(false);
    kv.enable_checker_sidecar();
    if depth > 1 {
        kv.set_pipeline(depth);
    }
    if workers > 0 {
        kv.enable_worker_pool(workers);
    }
    // Fault-free links: calibrate the watchdog above scheduler jitter
    // so the sweep measures pipelining/sharding, not nudge storms (see
    // the calibration note in `exp_soak`).
    kv.set_retry_policy(RetryPolicy {
        max_retries: 8,
        base_backoff: 1000,
        max_backoff: 16_000,
        deadline: 1 << 22,
    });
    let cfg = WorkloadConfig::mixed(params.objects, params.clients, params.ops, seed);
    let ops = workload::generate(&cfg);
    let t0 = std::time::Instant::now();
    let stats = kv.run_workload(&ops, params.batch);
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let sidecar = kv.finish_sidecar().expect("sidecar was enabled");
    kv.shutdown();
    PipelineCell {
        depth,
        workers,
        ops_per_sec: stats.ops as f64 / wall,
        p50: stats.latency_percentile(50.0),
        p99: stats.latency_percentile(99.0),
        envelopes_per_op: stats.envelopes_per_op(),
        fast_ratio: stats.rounds.fast_path_ratio(),
        violation: sidecar
            .verdict
            .err()
            .map(|(object, v)| format!("object {object}: {v}")),
    }
}

/// Runs the whole grid.
pub fn run_sweep(seed: u64, params: PipelineParams) -> Vec<PipelineCell> {
    params
        .grid()
        .into_iter()
        .map(|(depth, workers)| run_cell(seed, params, depth, workers))
        .collect()
}

/// `true` iff every cell validated atomic.
pub fn passed(cells: &[PipelineCell]) -> bool {
    cells.iter().all(|c| c.violation.is_none())
}

/// The E20 table.
pub fn report(seed: u64, quick: bool) -> Report {
    let params = PipelineParams::for_mode(quick);
    let cells = run_sweep(seed, params);
    render(seed, params, &cells)
}

/// Renders an already-executed sweep as the E20 table (the binary
/// checks [`passed`] for its exit status, so it runs the sweep itself).
pub fn render(seed: u64, params: PipelineParams, cells: &[PipelineCell]) -> Report {
    let mut r = Report::new("E20 (hot-path throughput sweep)");
    r.note(format!(
        "{} ops/cell, {} objects, {} clients, batch {}, {}us tick, seed {seed}, \
         threaded runtime, sidecar-validated",
        params.ops, params.objects, params.clients, params.batch, params.tick_us
    ));
    r.note(
        "speedup is relative to the depth-1/unsharded baseline cell; \
         per-object SWMR order holds at every depth",
    );
    let baseline = cells.first().map_or(0.0, |c| c.ops_per_sec).max(1e-9);
    r.headers([
        "pipeline",
        "workers",
        "ops/sec",
        "speedup",
        "p50",
        "p99",
        "env/op",
        "fast-path",
        "atomicity",
    ]);
    for c in cells {
        r.row([
            c.depth.to_string(),
            c.workers.to_string(),
            format!("{:.0}", c.ops_per_sec),
            format!("{:.2}x", c.ops_per_sec / baseline),
            format!("{} ticks", c.p50),
            format!("{} ticks", c.p99),
            format!("{:.2}", c.envelopes_per_op),
            format!("{:.2}", c.fast_ratio),
            c.violation
                .clone()
                .map_or("ok".to_string(), |v| format!("VIOLATION {v}")),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_always_anchors_the_baseline_cell() {
        let grid = PipelineParams::quick().grid();
        assert_eq!(grid[0], (1, 0), "baseline first");
        assert!(grid.contains(&(4, 2)), "acceptance cell present");
        assert_eq!(
            grid.iter().collect::<std::collections::BTreeSet<_>>().len(),
            grid.len(),
            "no duplicate cells"
        );
        // Overrides pin an axis but keep the baseline anchor.
        let pinned = PipelineParams::quick()
            .with_overrides(Some(4), Some(2))
            .grid();
        assert_eq!(pinned, vec![(1, 0), (4, 2)]);
    }

    /// A tiny two-cell sweep: every cell validates atomic and the
    /// render wires cells into rows (perf ratios are asserted by the
    /// bench gate, not unit tests — wall-clock is too noisy here).
    #[test]
    fn tiny_sweep_is_atomic_and_renders() {
        let params = PipelineParams {
            objects: 16,
            clients: 2,
            ops: 120,
            batch: 8,
            tick_us: 50,
            pipeline: Some(4),
            workers: Some(2),
        };
        let cells = run_sweep(11, params);
        assert_eq!(cells.len(), 2);
        assert!(passed(&cells), "all cells atomic");
        let r = render(11, params, &cells);
        let text = r.to_string();
        assert!(text.contains("E20"));
        assert_eq!(r.cell("atomicity", |row| row[0] == "4"), Some("ok"));
        assert!(r
            .cell("speedup", |row| row[0] == "1" && row[1] == "0")
            .is_some());
    }
}
