//! **E7 (Figure 16, Theorem 6)** — consensus over a Property-3-violating
//! configuration loses Agreement: the `choose()` function can be driven
//! to return a value conflicting with an already-decided one, using only
//! `new_view_ack`s that pass every signature and proof check.
//!
//! The reproduction follows the proof's ex5 state: value 0 was decided in
//! view 0 through the class-1 quorum `Q1` (so every benign member of `Q1`
//! prepared 0), while proposer `p1`'s value 1 reached the acceptors of
//! `Q2 ∩ Q` — the benign ones among them prepared 1 and *sent*
//! `update1⟨1,0⟩`, which lets the Byzantine acceptors assemble a fully
//! *valid-looking* proof that 1 was 1-updated over `Q2`.
//!
//! On the invalid configuration `choose()` returns **1** (Cand3-'b' +
//! Valid3 pass because no class-1 witness survives in
//! `Q2 ∩ Q \ B`); on the valid Example-7 configuration the same attack
//! yields `M ∉ B` — no `C3` witness exists — and `choose()` returns the
//! decided **0**.

use crate::report::Report;
use rqs_consensus::choose::{validate_ack, ChooseInput};
use rqs_consensus::types::{
    encode_new_view_ack, encode_update, NewViewAckBody, SignedNewViewAck, SignedUpdate,
};
use rqs_core::{ProcessId, ProcessSet, QuorumId, Rqs};
use rqs_crypto::{KeyRegistry, SignerId};
use std::collections::BTreeMap;

/// The Property-3-violating configuration (same as E5), acceptors
/// `{a1..a6}`: `Q1 = {a1,a5,a6}` class 1, `Q2 = {a1..a5}` and
/// `Q = {a1..a4,a6}` class 2.
pub fn invalid_rqs() -> Rqs {
    crate::exp_fig8::invalid_rqs()
}

/// The valid Example-7 configuration.
pub fn valid_rqs() -> Rqs {
    crate::exp_fig4::example7_rqs()
}

/// Outcome of the choose()-level attack on one configuration.
#[derive(Clone, Debug)]
pub struct Fig16Outcome {
    /// The value decided in view 0 (always 0 here, via Q1's update1s).
    pub decided: u64,
    /// Whether every forged ack passed `validate_ack`.
    pub acks_validated: bool,
    /// What `choose()` returned for the new view.
    pub chosen: Option<u64>,
    /// Whether `choose()` aborted instead.
    pub aborted: bool,
    /// Agreement verdict: chosen value (if any) must equal the decision.
    pub violated: bool,
}

/// Builds the ex5-state acks over the handover quorum and runs
/// `choose()`.
///
/// Roles (universe indices):
/// - `byz` — Byzantine acceptors claiming they 1-updated 1 over `q2_id`;
/// - `prepared1` — benign acceptors that genuinely prepared 1 (they sent
///   `update1⟨1,0⟩`, so their signatures on the update proof are real);
/// - `prepared0` — benign acceptors of `Q1` that prepared the decided 0.
pub fn run_attack(
    rqs: Rqs,
    handover_quorum: ProcessSet,
    q2_id: QuorumId,
    byz: &[usize],
    prepared1: &[usize],
    prepared0: &[usize],
) -> Fig16Outcome {
    let n = rqs.universe_size();
    let registry = KeyRegistry::new(n, 0xBAD);

    // The update proof: signed update1⟨1,0⟩ echoes. Byzantine acceptors
    // sign freely; the benign `prepared1` acceptors *really sent* that
    // message, so they would answer a sign_req — their signatures are
    // legitimately obtainable.
    let signers: Vec<usize> = byz.iter().chain(prepared1.iter()).copied().collect();
    let proof: Vec<SignedUpdate> = signers
        .iter()
        .map(|&i| SignedUpdate {
            acceptor: ProcessId(i),
            step: 1,
            value: 1,
            view: 0,
            sig: registry.signer(SignerId(i)).sign(&encode_update(1, 1, 0)),
        })
        .collect();

    let mut acks: BTreeMap<ProcessId, NewViewAckBody> = BTreeMap::new();
    let mut signed: Vec<SignedNewViewAck> = Vec::new();
    for p in handover_quorum.iter() {
        let i = p.index();
        let mut body = NewViewAckBody {
            view: 1,
            ..Default::default()
        };
        if byz.contains(&i) {
            body.prep = Some(1);
            body.prep_view.insert(0);
            body.update[0] = Some(1);
            body.update_view[0].insert(0);
            body.update_q[0].entry(0).or_default().insert(q2_id);
            body.update_proof[0].insert(0, proof.clone());
        } else if prepared1.contains(&i) {
            body.prep = Some(1);
            body.prep_view.insert(0);
        } else if prepared0.contains(&i) {
            body.prep = Some(0);
            body.prep_view.insert(0);
        }
        let sig = registry
            .signer(SignerId(i))
            .sign(&encode_new_view_ack(&body));
        signed.push(SignedNewViewAck {
            acceptor: p,
            body: body.clone(),
            sig,
        });
        acks.insert(p, body);
    }
    let acks_validated = signed.iter().all(|a| validate_ack(&rqs, &registry, a));

    let q = rqs
        .id_of(handover_quorum)
        .expect("handover quorum is a quorum");
    let input = ChooseInput {
        rqs: &rqs,
        q,
        acks: &acks,
    };
    let out = input.choose(99); // 99 = the new leader's own value
    let chosen = (!out.abort).then_some(out.value);
    Fig16Outcome {
        decided: 0,
        acks_validated,
        chosen,
        aborted: out.abort,
        violated: matches!(chosen, Some(v) if v != 0),
    }
}

/// The attack on the invalid configuration.
pub fn run_invalid() -> Fig16Outcome {
    let rqs = invalid_rqs();
    let q2_id = rqs
        .id_of(ProcessSet::from_indices([0, 1, 2, 3, 4]))
        .unwrap();
    let handover = ProcessSet::from_indices([0, 1, 2, 3, 5]); // Q
                                                              // Byzantine B1 = {a1,a2} ∈ B; benign {a3,a4} prepared 1; benign a6
                                                              // (∈ Q1) prepared the decided 0.
    run_attack(rqs, handover, q2_id, &[0, 1], &[2, 3], &[5])
}

/// The same attack shape on the valid configuration.
pub fn run_valid() -> Fig16Outcome {
    let rqs = valid_rqs();
    let q2_id = rqs
        .id_of(ProcessSet::from_indices([0, 1, 2, 3, 4]))
        .unwrap();
    let handover = ProcessSet::from_indices([0, 1, 2, 3, 5]); // Q2'
                                                              // Here Q1 = {a2,a4,a5,a6}: the class-1 decision on 0 means benign
                                                              // a2,a4,a6 prepared 0, so the Byzantine set can only be {a1} (∈ B)
                                                              // and only benign a3 prepared 1.
    run_attack(rqs, handover, q2_id, &[0], &[2], &[1, 3, 5])
}

/// Builds the E7 report.
pub fn report() -> Report {
    let bad = run_invalid();
    let good = run_valid();
    let mut r = Report::new("E7 (Figure 16, Theorem 6): Property 3 is necessary for consensus");
    r.note("Value 0 was decided in view 0 via the class-1 quorum; Byzantine");
    r.note("acceptors forge 'we 1-updated 1 over Q2' with cryptographically");
    r.note("valid proofs (the benign preparers of 1 really sent update1⟨1,0⟩).");
    r.note("Without Property 3 no class-1 witness survives in Q2∩Q\\B, and");
    r.note("choose() hands the new view the conflicting value 1.");
    let fmt = |o: &Fig16Outcome| match (o.aborted, o.chosen) {
        (true, _) => "abort (quorum marked faulty)".to_string(),
        (false, Some(v)) => format!("returns {v}"),
        _ => "-".to_string(),
    };
    r.headers([
        "configuration",
        "decided in view 0",
        "acks pass validation",
        "choose()",
        "agreement",
    ]);
    r.row([
        "Property 3 violated".to_string(),
        bad.decided.to_string(),
        bad.acks_validated.to_string(),
        fmt(&bad),
        if bad.violated {
            "VIOLATED".to_string()
        } else {
            "ok".to_string()
        },
    ]);
    r.row([
        "valid RQS (Example 7)".to_string(),
        good.decided.to_string(),
        good.acks_validated.to_string(),
        fmt(&good),
        if good.violated {
            "VIOLATED".to_string()
        } else {
            "ok".to_string()
        },
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem6_violation_reproduced() {
        let bad = run_invalid();
        assert!(bad.acks_validated, "the forgery must be undetectable");
        assert_eq!(bad.chosen, Some(1), "choose() hands over the wrong value");
        assert!(bad.violated);
    }

    #[test]
    fn valid_config_chooses_decided_value() {
        let good = run_valid();
        assert!(good.acks_validated);
        assert!(
            good.chosen == Some(0) || good.aborted,
            "the valid config must protect the decision, got {good:?}"
        );
        assert!(!good.violated);
    }
}
