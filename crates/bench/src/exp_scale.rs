//! **E14 (§5 complexity remarks)** — message complexity and scaling
//! shape of both protocols in best-case executions.
//!
//! The paper notes its storage algorithm (deliberately) has unbounded
//! *worst-case* message complexity; this experiment measures the
//! *best-case* costs, which are small and linear in `n`: a 1-round write
//! is one round-trip to every server (`2n` messages), a 1-round read the
//! same, and a best-case consensus instance is `O(n²)` because acceptors
//! echo updates to each other (the paper's update phase, Fig. 11).

use crate::report::Report;
use rqs_consensus::ConsensusHarness;
use rqs_core::threshold::ThresholdConfig;
use rqs_storage::{StorageHarness, Value};

/// Message counts for one best-case write + read at size `n = 3t + 1`.
pub fn storage_messages(t: usize) -> (usize, usize, usize) {
    let rqs = ThresholdConfig::byzantine_fast(t).build().unwrap();
    let n = rqs.universe_size();
    let mut h = StorageHarness::new(rqs, 1);
    let before = h.world_mut().stats().messages_sent;
    h.write(Value::from(1u64));
    let after_write = h.world_mut().stats().messages_sent;
    h.read(0);
    let after_read = h.world_mut().stats().messages_sent;
    (n, after_write - before, after_read - after_write)
}

/// Message count for one best-case consensus instance at `n = 3t + 1`.
pub fn consensus_messages(t: usize) -> (usize, usize) {
    let rqs = ThresholdConfig::byzantine_fast(t).build().unwrap();
    let n = rqs.universe_size();
    let mut h = ConsensusHarness::new(rqs, 1, 1);
    let before = h.world_mut().stats().messages_sent;
    h.propose(0, 7);
    assert!(h.run_until_learned(400_000));
    let after = h.world_mut().stats().messages_sent;
    (n, after - before)
}

/// Builds the E14 report.
pub fn report() -> Report {
    let mut r = Report::new("E14 (§5): best-case message complexity vs n");
    r.note("Best-case costs are small: writes/reads are round-trips to all");
    r.note("servers (O(n) messages per round); consensus echoes updates");
    r.note("acceptor-to-acceptor (O(n²) per instance). The paper's");
    r.note("unbounded complexity applies to worst-case schedules only.");
    r.headers(["n", "write msgs", "read msgs", "consensus msgs (to learn)"]);
    for t in [1usize, 2, 3] {
        let (n, w, rd) = storage_messages(t);
        let (_, c) = consensus_messages(t);
        r.row([n.to_string(), w.to_string(), rd.to_string(), c.to_string()]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_messages_linear_in_n() {
        let (n1, w1, r1) = storage_messages(1);
        let (n2, w2, r2) = storage_messages(2);
        // One-round ops: exactly 2n messages (n requests + n replies).
        assert_eq!(w1, 2 * n1, "write at n={n1}");
        assert_eq!(w2, 2 * n2, "write at n={n2}");
        assert_eq!(r1, 2 * n1, "read at n={n1}");
        assert_eq!(r2, 2 * n2, "read at n={n2}");
    }

    #[test]
    fn consensus_messages_quadraticish() {
        let (n1, c1) = consensus_messages(1);
        let (n2, c2) = consensus_messages(2);
        assert!(c1 > 2 * n1, "acceptor echo traffic exceeds a round-trip");
        // Growth should be super-linear (quadratic update echoes).
        let per_node_1 = c1 as f64 / n1 as f64;
        let per_node_2 = c2 as f64 / n2 as f64;
        assert!(
            per_node_2 > per_node_1,
            "per-node message cost must grow with n ({per_node_1:.1} vs {per_node_2:.1})"
        );
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert_eq!(r.rows.len(), 3);
    }
}
