//! **E19 (crash-recovery chaos soak)** — a KV workload on the threaded
//! runtime under *compound* faults: flaky links the whole time, plus
//! repeated **amnesia** crash/restart cycles that wipe a server's memory
//! and force it to rebuild every object from its write-ahead store:
//!
//! - servers journal to **file-backed** durable stores
//!   (`StoreHandle::file`, `sync_every = 1`: each append reaches the
//!   medium before the server acks — the write-ahead guarantee);
//! - between workload segments a rotating victim is crashed with
//!   [`CrashMode::Amnesia`] and immediately restarted; recovery must
//!   replay the victim's log (the run records how many restarts actually
//!   replayed records), and the recovered bank is checkpointed into a
//!   compacting snapshot so the next recovery replays only the deltas
//!   since — WAL replay stays bounded across cycles;
//! - retry-hardened clients (bounded nudges, exponential backoff with
//!   deterministic jitter, duplicate-reply suppression) ride out both
//!   the lossy links and the crash windows — the op count must come out
//!   exact, proving retries are not double-counted;
//! - the checker sidecar validates **every** operation's atomicity while
//!   the workload runs.
//!
//! The recorded numbers are committed as `BENCH_chaos.json`.

use crate::report::Report;
use rqs_core::threshold::ThresholdConfig;
use rqs_kv::{workload, KvRunStats, RetryPolicy, RetryStats, RtKv, WorkloadConfig};
use rqs_runtime::SidecarReport;
use rqs_sim::{CrashMode, LinkEffect, LinkRule, Scenario};
use rqs_store::{StoreHandle, StoreStats};
use std::time::Duration;

/// Chaos-soak dimensions.
#[derive(Clone, Copy, Debug)]
pub struct ChaosParams {
    /// Objects in the key space.
    pub objects: usize,
    /// Clients (each owns `objects / clients` objects).
    pub clients: usize,
    /// Total operations (exactly this many must complete).
    pub ops: usize,
    /// Per-client wave size.
    pub batch: usize,
    /// Per-lane client pipeline depth (≥ 1; 1 = classic one-op-per-lane
    /// waves). Kept moderate here: deeper pipelines widen the blast
    /// radius of each crash window.
    pub pipeline: usize,
    /// Shard workers per KV server (0 = process batches on the node
    /// thread). Crash/restart cycles quiesce and respawn the pool.
    pub workers: usize,
    /// Wall-clock tick length of the threaded runtime, in microseconds.
    pub tick_us: u64,
    /// Amnesia crash/restart cycles injected between workload segments.
    pub crash_cycles: usize,
    /// Drop every n-th message towards the flaky server.
    pub drop_every: u64,
    /// Journal to file-backed stores (`false` = deterministic in-memory
    /// stores, used by the unit tests to stay off the filesystem).
    pub file_backed: bool,
}

impl ChaosParams {
    /// Full-size chaos soak: ≥100k operations and ≥20 amnesia
    /// crash/restart cycles (the recorded experiment).
    pub fn full() -> Self {
        ChaosParams {
            objects: 2048,
            clients: 4,
            ops: 100_000,
            batch: 16,
            pipeline: 2,
            workers: 2,
            tick_us: 50,
            crash_cycles: 20,
            drop_every: 6,
            file_backed: true,
        }
    }

    /// Small parameters for CI smoke runs (`--quick`).
    pub fn quick() -> Self {
        ChaosParams {
            objects: 32,
            clients: 2,
            ops: 2000,
            batch: 8,
            pipeline: 2,
            workers: 2,
            tick_us: 50,
            crash_cycles: 4,
            drop_every: 6,
            file_backed: true,
        }
    }

    /// Picks full or quick parameters.
    pub fn for_mode(quick: bool) -> Self {
        if quick {
            Self::quick()
        } else {
            Self::full()
        }
    }

    /// Applies `--pipeline` / `--workers` command-line overrides.
    pub fn with_overrides(mut self, pipeline: Option<usize>, workers: Option<usize>) -> Self {
        if let Some(depth) = pipeline {
            self.pipeline = depth;
        }
        if let Some(workers) = workers {
            self.workers = workers;
        }
        self
    }
}

/// One chaos run: whole-run metrics (folded over the crash-separated
/// segments), the sidecar's verdict, durable-store counters, client
/// retry counters, and the recovery tally.
pub struct ChaosRun {
    /// Folded run metrics (`duration_units` is wall-clock microseconds).
    pub stats: KvRunStats,
    /// The checker sidecar's verdict and aggregated counters.
    pub sidecar: SidecarReport,
    /// Merged durable-store counters across all servers.
    pub store: StoreStats,
    /// Merged client retry counters over the whole run.
    pub retries: RetryStats,
    /// Amnesia crash/restart cycles injected.
    pub cycles: usize,
    /// Cycles whose restart replayed at least one log record from the
    /// victim's durable store — must equal `cycles` for a passing run.
    pub recovered: usize,
    /// Wall-clock time of the workload segments (excluding deployment
    /// setup and the final sidecar join).
    pub wall: Duration,
}

/// Runs the chaos soak: threaded runtime, file-backed write-ahead
/// stores, flaky links, rotating amnesia crash/restart cycles, sidecar
/// validation of every operation.
pub fn run_chaos(seed: u64, params: ChaosParams) -> ChaosRun {
    // crash_fast(5, 1): n = 5, t = 2 — tolerates the lossy server and
    // the crashed-and-recovering victim degrading at the same time.
    let rqs = ThresholdConfig::crash_fast(5, 1)
        .build()
        .expect("valid rqs");
    let n = rqs.universe_size();
    let scenario = Scenario::named("chaos links")
        .lossy_towards(vec![n - 1], params.drop_every)
        .link(LinkRule::every(LinkEffect::Duplicate { lag: 2 }));

    let tmp = params
        .file_backed
        .then(|| std::env::temp_dir().join(format!("rqs-exp-chaos-{seed}-{}", std::process::id())));
    let stores: Vec<StoreHandle> = (0..n)
        .map(|i| match &tmp {
            Some(dir) => {
                StoreHandle::file(dir.join(format!("server-{i}"))).expect("open file store")
            }
            None => StoreHandle::mem(),
        })
        .collect();

    let mut kv = RtKv::with_setup_stores(
        rqs,
        params.objects,
        params.clients,
        scenario,
        Duration::from_micros(params.tick_us),
        stores,
    );
    kv.retain_outcomes(false);
    kv.enable_checker_sidecar();
    if params.pipeline > 1 {
        kv.set_pipeline(params.pipeline);
    }
    if params.workers > 0 {
        kv.enable_worker_pool(params.workers);
    }
    // Generous retry budget, but with backoff calibrated above the p99
    // of the fsync-dominated op latency of the file-backed stores
    // (~2000 ticks): a base below real latency turns the watchdogs into
    // a nudge storm (every op re-broadcasts before its legitimate reply
    // lands) that snowballs into congestion collapse at scale.
    kv.set_retry_policy(RetryPolicy {
        max_retries: 32,
        base_backoff: 2500,
        max_backoff: 20_000,
        deadline: 1 << 22,
    });

    let cfg = WorkloadConfig::mixed(params.objects, params.clients, params.ops, seed);
    let ops = workload::generate(&cfg);
    // Split into crash_cycles + 1 contiguous segments; a rotating victim
    // amnesia-crashes and restarts at every segment boundary.
    let per = ops.len().div_ceil(params.crash_cycles + 1).max(1);

    let t0 = std::time::Instant::now();
    let mut stats = KvRunStats::default();
    let mut recovered = 0usize;
    // On the threaded runtime a restarted node replays its log on its
    // own thread, so the recovery check for cycle `i` settles while
    // segment `i+1` runs (with a short poll as backstop).
    let mut pending_recovery: Option<(usize, usize)> = None;
    for (cycle, chunk) in ops.chunks(per).enumerate() {
        stats.merge(&kv.run_workload(chunk, params.batch));
        if let Some((victim, replayed_before)) = pending_recovery.take() {
            if wait_for_replay(&kv.server_stores()[victim], replayed_before) {
                recovered += 1;
            }
        }
        if cycle < params.crash_cycles {
            let victim = cycle % n;
            let replayed_before = kv.server_stores()[victim].stats().replayed;
            kv.crash_server(victim, CrashMode::Amnesia);
            kv.restart_server(victim);
            // Checkpoint the recovered bank (queued behind the restart on
            // the node's event channel, so it runs after replay): the
            // victim's next recovery replays only the deltas since this
            // snapshot, keeping replay time bounded across cycles.
            kv.checkpoint_server(victim);
            pending_recovery = Some((victim, replayed_before));
        }
    }
    let wall = t0.elapsed();

    let sidecar = kv.finish_sidecar().expect("sidecar was enabled");
    let store = kv.store_stats();
    let retries = kv.retry_stats();
    kv.shutdown();
    if let Some(dir) = tmp {
        let _ = std::fs::remove_dir_all(dir);
    }
    ChaosRun {
        stats,
        sidecar,
        store,
        retries,
        cycles: params.crash_cycles,
        recovered,
        wall,
    }
}

/// Waits (bounded) for a restarted server's store to show log replay
/// beyond `before`; `true` once it does.
fn wait_for_replay(store: &StoreHandle, before: usize) -> bool {
    for _ in 0..500 {
        if store.stats().replayed > before {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// Whether the run meets E19's acceptance bar: zero atomicity
/// violations, every amnesia restart recovered from its durable store,
/// and the exact op count (retries never double-count an operation).
pub fn passed(params: ChaosParams, run: &ChaosRun) -> bool {
    run.sidecar.verdict.is_ok() && run.recovered == run.cycles && run.stats.ops == params.ops
}

/// The E19 table.
pub fn report(seed: u64, quick: bool) -> Report {
    let params = ChaosParams::for_mode(quick);
    let run = run_chaos(seed, params);
    render(seed, params, &run)
}

/// Renders an already-executed chaos run as the E19 table (the binary
/// checks [`passed`] for its exit status, so it runs the soak itself).
pub fn render(seed: u64, params: ChaosParams, run: &ChaosRun) -> Report {
    let mut r = Report::new("E19 (crash-recovery chaos soak)");
    r.note(format!(
        "{} ops, {} objects, {} clients, batch {}, pipeline {}, {} workers/server, \
         {}us tick, seed {seed}, threaded runtime, {} stores",
        params.ops,
        params.objects,
        params.clients,
        params.batch,
        params.pipeline,
        params.workers,
        params.tick_us,
        if params.file_backed {
            "file-backed"
        } else {
            "in-memory"
        },
    ));
    r.note(format!(
        "faults: drop every {}th message towards one server, duplicate all traffic, \
         {} amnesia crash/restart cycles over rotating victims — each restart must \
         replay the victim's write-ahead log",
        params.drop_every, params.crash_cycles,
    ));
    r.note("every op is atomicity-checked by the sidecar while the workload runs");
    let stats = &run.stats;
    let wall_s = run.wall.as_secs_f64().max(1e-9);
    let verdict = match &run.sidecar.verdict {
        Ok(()) => "ok".to_string(),
        Err((object, v)) => format!("VIOLATION object {object}: {v}"),
    };
    r.headers(["metric", "value"]);
    r.row(["ops", &stats.ops.to_string()]);
    r.row(["ops/sec", &format!("{:.0}", stats.ops as f64 / wall_s)]);
    r.row([
        "p50 latency",
        &format!("{} ticks", stats.latency_percentile(50.0)),
    ]);
    r.row([
        "p99 latency",
        &format!("{} ticks", stats.latency_percentile(99.0)),
    ]);
    r.row(["envelopes/op", &format!("{:.2}", stats.envelopes_per_op())]);
    r.row([
        "fast-path ratio",
        &format!("{:.3}", stats.rounds.fast_path_ratio()),
    ]);
    r.row(["crash cycles", &run.cycles.to_string()]);
    r.row(["recovered restarts", &run.recovered.to_string()]);
    r.row(["wal appends", &run.store.appends.to_string()]);
    r.row(["wal syncs", &run.store.syncs.to_string()]);
    r.row(["wal log bytes", &run.store.log_bytes.to_string()]);
    r.row(["snapshots", &run.store.snapshots.to_string()]);
    r.row(["snapshot bytes", &run.store.snapshot_bytes.to_string()]);
    r.row(["replayed records", &run.store.replayed.to_string()]);
    r.row([
        "torn tails discarded",
        &run.store.torn_discarded.to_string(),
    ]);
    r.row([
        "lost unsynced records",
        &run.store.lost_unsynced.to_string(),
    ]);
    r.row(["retries issued", &run.retries.retries_issued.to_string()]);
    r.row(["backoff ticks", &run.retries.backoff_ticks.to_string()]);
    r.row(["retry budget exhausted", &run.retries.exhausted.to_string()]);
    r.row([
        "checker ops_checked",
        &run.sidecar.stats.ops_checked.to_string(),
    ]);
    r.row(["atomicity", &verdict]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick chaos soak is the acceptance criterion in miniature:
    /// exact op count (no double-counting through retries), every
    /// amnesia restart recovers by replaying its write-ahead log, and
    /// the sidecar validates every operation violation-free.
    #[test]
    fn quick_chaos_recovers_every_crash_and_validates_all_ops() {
        let params = ChaosParams::quick();
        let run = run_chaos(11, params);
        assert!(run.sidecar.verdict.is_ok(), "{:?}", run.sidecar.verdict);
        assert_eq!(
            run.stats.ops, params.ops,
            "retried ops must not double-count"
        );
        assert_eq!(run.sidecar.stats.ops_checked, params.ops as u64);
        assert_eq!(
            run.recovered, run.cycles,
            "every amnesia restart must replay from its durable store"
        );
        assert!(run.store.appends > 0, "servers must write-ahead log");
        assert!(run.store.replayed > 0, "recovery must replay records");
        assert_eq!(
            run.store.snapshots, run.cycles,
            "every recovery is followed by a compacting checkpoint"
        );
        assert!(passed(params, &run));
    }

    /// Rendering + the JSON round-trip: the recovery stats must survive
    /// `to_json` → `from_json` intact (the `BENCH_chaos.json` artifact
    /// is mechanically re-loadable).
    #[test]
    fn report_round_trips_recovery_stats_through_json() {
        // A tiny in-memory run: this test exercises reporting, not scale.
        let params = ChaosParams {
            objects: 8,
            clients: 2,
            ops: 120,
            batch: 4,
            pipeline: 1,
            workers: 0,
            tick_us: 50,
            crash_cycles: 2,
            drop_every: 6,
            file_backed: false,
        };
        let run = run_chaos(7, params);
        let r = render(7, params, &run);
        assert!(r.to_string().contains("E19"));
        assert_eq!(r.cell("value", |row| row[0] == "atomicity"), Some("ok"));
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back.to_json(), r.to_json());
        for metric in [
            "wal appends",
            "wal syncs",
            "snapshot bytes",
            "replayed records",
            "retries issued",
            "backoff ticks",
            "recovered restarts",
        ] {
            let cell = back.cell("value", |row| row[0] == metric);
            assert!(cell.is_some(), "missing recovery stat {metric:?}");
            assert_eq!(cell, r.cell("value", |row| row[0] == metric));
        }
        assert_eq!(
            back.cell("value", |row| row[0] == "recovered restarts"),
            Some(run.recovered.to_string().as_str())
        );
    }
}
