//! **E1 (Figure 1 + Figure 2, §1.2)** — the motivating example.
//!
//! Five servers, `t = 2` crash faults. An algorithm that expedites
//! operations at any `n - t = 3` servers violates atomicity under the
//! schedule of Figure 1 (executions ex1–ex4); the refined variant that is
//! fast only at 4 servers (`Q'1 ∩ Q'2 ∩ Q3 ≠ ∅`, Figure 2b) stays atomic
//! on the same schedule.

use crate::report::Report;
use rqs_core::threshold::ThresholdConfig;
use rqs_core::ProcessSet;
use rqs_sim::{Fate, NetworkScript, NodeId, Rule, Selector, World};
use rqs_storage::naive::{NaiveClient, NaiveServer};
use rqs_storage::{StorageHarness, Value};

/// Outcome of running the Figure 1 schedule against one algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig1Outcome {
    /// What the first reader returned.
    pub rd1: String,
    /// Rounds used by the first read.
    pub rd1_rounds: usize,
    /// What the second reader returned.
    pub rd2: String,
    /// Rounds used by the second read.
    pub rd2_rounds: usize,
    /// Whether atomicity was violated (rd2 older than rd1).
    pub violated: bool,
}

/// Runs Figure 1's schedule against the naive 3-of-5-fast algorithm.
pub fn run_naive() -> Fig1Outcome {
    let mut world = World::new(NetworkScript::synchronous());
    let servers: Vec<NodeId> = (0..5)
        .map(|_| world.add_node(Box::new(NaiveServer::new())))
        .collect();
    let writer = world.add_node(Box::new(NaiveClient::new(servers.clone(), 2)));
    let r1 = world.add_node(Box::new(NaiveClient::new(servers.clone(), 2)));
    let r2 = world.add_node(Box::new(NaiveClient::new(servers.clone(), 2)));

    // ex3: the write is incomplete — round-1 messages reach only s3.
    world.set_policy(
        NetworkScript::synchronous()
            .rule(
                Rule::always(Fate::Deliver { delay: 1 })
                    .from(Selector::Is(writer))
                    .to(Selector::Is(servers[2])),
            )
            .rule(Rule::always(Fate::Drop).from(Selector::Is(writer))),
    );
    world.invoke::<NaiveClient>(writer, |c, ctx| c.start_write(Value::from(7u64), ctx));
    world.run_to_quiescence();

    // rd1 accesses {s3, s4, s5} (replies from s1, s2 lost).
    world.set_policy(
        NetworkScript::synchronous().rule(
            Rule::always(Fate::Drop)
                .from(Selector::In(vec![servers[0], servers[1]]))
                .to(Selector::Is(r1)),
        ),
    );
    world.invoke::<NaiveClient>(r1, |c, ctx| c.start_read(ctx));
    world.run_to_quiescence();
    let rd1 = world.node_as::<NaiveClient>(r1).outcomes()[0].clone();

    // ex4: s3 and s5 crash; rd2 accesses {s1, s2, s4}.
    let now = world.now();
    world.crash_at(servers[2], now);
    world.crash_at(servers[4], now);
    world.run_before(now + 1);
    world.set_policy(NetworkScript::synchronous());
    world.invoke::<NaiveClient>(r2, |c, ctx| c.start_read(ctx));
    world.run_to_quiescence();
    let rd2 = world.node_as::<NaiveClient>(r2).outcomes()[0].clone();

    Fig1Outcome {
        rd1: rd1.pair.to_string(),
        rd1_rounds: rd1.rounds,
        rd2: rd2.pair.to_string(),
        rd2_rounds: rd2.rounds,
        violated: rd2.pair.ts < rd1.pair.ts && rd2.invoked_at > rd1.completed_at,
    }
}

/// Runs the same adversarial schedule against the RQS-based algorithm
/// over the §1.2 system (fast at 4 servers).
pub fn run_rqs() -> Fig1Outcome {
    let rqs = ThresholdConfig::crash_fast(5, 1)
        .build()
        .expect("§1.2 system");
    let mut h = StorageHarness::new(rqs, 2);
    let (writer, s2) = (h.writer_id(), h.servers()[2]);

    // Incomplete write: round-1 messages reach only s3; the writer stalls.
    h.world_mut().set_policy(
        NetworkScript::synchronous()
            .rule(
                Rule::always(Fate::Deliver { delay: 1 })
                    .from(Selector::Is(writer))
                    .to(Selector::Is(s2)),
            )
            .rule(Rule::always(Fate::Drop).from(Selector::Is(writer))),
    );
    h.start_write(Value::from(7u64));
    h.world_mut().run_to_quiescence();

    // rd1 sees only {s3, s4, s5}.
    let (s0, s1, r1_node) = (h.servers()[0], h.servers()[1], h.reader_id(0));
    h.world_mut().set_policy(
        NetworkScript::synchronous().rule(
            Rule::always(Fate::Drop)
                .from(Selector::In(vec![s0, s1]))
                .to(Selector::Is(r1_node)),
        ),
    );
    let rd1 = h.read(0);

    // ex4: s3 and s5 crash; rd2 reads from the survivors.
    let now = h.now();
    h.world_mut().set_policy(NetworkScript::synchronous());
    h.crash_servers(ProcessSet::from_indices([2, 4]));
    let _ = now;
    let rd2 = h.read(1);
    let violated = h.check_atomicity().is_err();

    Fig1Outcome {
        rd1: rd1.returned.to_string(),
        rd1_rounds: rd1.rounds,
        rd2: rd2.returned.to_string(),
        rd2_rounds: rd2.rounds,
        violated,
    }
}

/// Builds the E1 report.
pub fn report() -> Report {
    let naive = run_naive();
    let rqs = run_rqs();
    let mut r = Report::new("E1 (Figures 1-2, §1.2): greedy fast storage violates atomicity");
    r.note("Paper claim: expediting ops at any 3 of 5 servers (t=2) breaks atomicity");
    r.note("because Q1 ∩ Q2 ∩ Q3 = ∅; expediting only at 4 servers is safe (Fig. 2b).");
    r.note("Schedule: incomplete write reaches s3 only; rd1 reads {s3,s4,s5};");
    r.note("s3,s5 crash; rd2 reads {s1,s2,s4}.");
    r.headers([
        "algorithm",
        "rd1 returns",
        "rd1 rounds",
        "rd2 returns",
        "rd2 rounds",
        "atomicity",
    ]);
    r.row([
        "naive (fast at 3)".to_string(),
        naive.rd1,
        naive.rd1_rounds.to_string(),
        naive.rd2,
        naive.rd2_rounds.to_string(),
        if naive.violated {
            "VIOLATED".into()
        } else {
            "ok".to_string()
        },
    ]);
    r.row([
        "RQS (fast at 4)".to_string(),
        rqs.rd1,
        rqs.rd1_rounds.to_string(),
        rqs.rd2,
        rqs.rd2_rounds.to_string(),
        if rqs.violated {
            "VIOLATED".into()
        } else {
            "ok".to_string()
        },
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_violates_rqs_does_not() {
        let naive = run_naive();
        assert!(naive.violated, "Figure 1: the naive algorithm must violate");
        assert_eq!(naive.rd1_rounds, 1);
        let rqs = run_rqs();
        assert!(!rqs.violated, "the §1.2 refined variant must stay atomic");
        // The refined reader returns the incomplete write's value and
        // writes it back, so rd2 sees it too.
        assert_eq!(rqs.rd1, rqs.rd2);
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(
            r.cell("atomicity", |row| row[0].starts_with("naive")),
            Some("VIOLATED")
        );
        assert_eq!(
            r.cell("atomicity", |row| row[0].starts_with("RQS")),
            Some("ok")
        );
    }
}
