//! **E5 (Figure 8, Theorem 3)** — storage over a Property-3-violating
//! quorum configuration loses atomicity under the proof's
//! indistinguishability schedule; the valid Example-7 system survives the
//! analogous schedule.
//!
//! Invalid configuration (instantiating the negation of Property 3):
//! universe `{s1..s6}`, adversary maximal sets `{s1,s2}, {s3,s4},
//! {s2,s4}`; `Q1 = {s1,s5,s6}` (class 1), `Q2 = {s1..s5}` and
//! `Q = {s1..s4,s6}` (class 2). Properties 1 and 2 hold — the fast paths
//! are "legitimately" enabled — but for `B'1 = {s1,s2}`:
//! `Q2 ∩ Q \ B'1 = {s3,s4} ∈ B` (P3a fails) and
//! `Q1 ∩ Q2 ∩ Q \ B'1 = ∅` (P3b fails).
//!
//! Schedule (the proof's ex1–ex5 compressed into one run):
//!
//! 1. write(7): round 1 reaches `Q2` only; round 2 reaches only
//!    `Q1 ∩ Q2 = {s1,s5}`; the writer crashes (incomplete 2-round write);
//! 2. `rd1` sees exactly `Q1`: the `BCD(c,1,2)` detector fires on
//!    `Q1 ∩ Q2` and the read returns 7 in **one round** — legitimate
//!    under Property 2;
//! 3. `B'1 = {s1,s2}` turn Byzantine and forge the initial state σ0;
//! 4. `rd2` sees exactly `Q`: every trace of 7 it can observe sits in
//!    `{s3,s4} ∈ B`, so the value is unsafe *and* invalid — the reader
//!    returns ⊥. Atomicity is violated (`rd2` follows `rd1`).

use crate::report::Report;
use rqs_core::{Adversary, ProcessSet, Rqs};
use rqs_sim::{Envelope, Fate, NodeId, Time};
use rqs_storage::byzantine::ForgedServer;
use rqs_storage::{StorageHarness, StorageMsg, Value};

/// The adversary shared by both configurations.
fn adversary() -> Adversary {
    Adversary::general(
        6,
        [
            ProcessSet::from_indices([0, 1]),
            ProcessSet::from_indices([2, 3]),
            ProcessSet::from_indices([1, 3]),
        ],
    )
    .expect("adversary")
}

/// The Property-3-violating configuration (Properties 1–2 hold).
pub fn invalid_rqs() -> Rqs {
    let q1 = ProcessSet::from_indices([0, 4, 5]); // Q1 = {s1,s5,s6}
    let q2 = ProcessSet::from_indices([0, 1, 2, 3, 4]); // Q2 = {s1..s5}
    let q = ProcessSet::from_indices([0, 1, 2, 3, 5]); // Q  = {s1..s4,s6}
    let rqs = Rqs::new_unchecked(adversary(), vec![q1, q2, q], vec![0], vec![0, 1, 2])
        .expect("structurally fine");
    assert!(rqs.check_property1().is_ok(), "Property 1 must hold");
    assert!(rqs.check_property2().is_ok(), "Property 2 must hold");
    assert!(rqs.check_property3().is_err(), "Property 3 must fail");
    rqs
}

/// Outcome of the Theorem-3 schedule.
#[derive(Clone, Debug)]
pub struct Fig8Outcome {
    /// rd1's (rounds, returned).
    pub rd1: (usize, String),
    /// rd2's (rounds, returned) — `None` if it blocked (valid config).
    pub rd2: Option<(usize, String)>,
    /// Atomicity verdict over the collected history.
    pub violated: bool,
}

/// Fate policy implementing the schedule for a given `(q1, q2)` pair of
/// member sets. Round-2 write messages are recognized by send time.
#[allow(clippy::too_many_arguments)] // one parameter per proof role
fn schedule(
    writer: NodeId,
    r1: NodeId,
    r2: NodeId,
    servers: Vec<NodeId>,
    round1_targets: Vec<usize>,
    round2_targets: Vec<usize>,
    rd1_visible: Vec<usize>,
    rd2_visible: Vec<usize>,
) -> impl FnMut(&Envelope<StorageMsg>) -> Fate {
    move |env| {
        let server_idx = servers.iter().position(|&s| s == env.to);
        let from_server = servers.iter().position(|&s| s == env.from);
        if env.from == writer {
            // Writer rounds, keyed by message content.
            if let StorageMsg::Wr { rnd, .. } = &env.msg {
                let idx = server_idx.expect("writer talks to servers");
                let allowed = match rnd {
                    1 => round1_targets.contains(&idx),
                    2 => round2_targets.contains(&idx),
                    _ => false,
                };
                return if allowed { Fate::DEFAULT } else { Fate::Drop };
            }
            return Fate::DEFAULT;
        }
        if env.to == r1 {
            if let Some(i) = from_server {
                return if rd1_visible.contains(&i) {
                    Fate::DEFAULT
                } else {
                    Fate::Drop
                };
            }
        }
        if env.to == r2 {
            if let Some(i) = from_server {
                return if rd2_visible.contains(&i) {
                    Fate::DEFAULT
                } else {
                    Fate::Drop
                };
            }
        }
        if env.from == r1 {
            if let Some(i) = server_idx {
                if !rd1_visible.contains(&i) {
                    return Fate::Drop;
                }
            }
        }
        if env.from == r2 {
            if let Some(i) = server_idx {
                if !rd2_visible.contains(&i) {
                    return Fate::Drop;
                }
            }
        }
        Fate::DEFAULT
    }
}

/// Runs the Theorem-3 schedule over a configuration.
///
/// `q1_members` etc. parameterize the roles so the same schedule drives
/// both the invalid and the valid (Example 7) configurations.
pub fn run(
    rqs: Rqs,
    q1_members: Vec<usize>,
    q2_members: Vec<usize>,
    q_members: Vec<usize>,
) -> Fig8Outcome {
    let mut h = StorageHarness::new(rqs, 2);
    let writer = h.writer_id();
    let (r1, r2) = (h.reader_id(0), h.reader_id(1));
    let servers = h.servers().to_vec();
    let q1_and_q2: Vec<usize> = q1_members
        .iter()
        .copied()
        .filter(|i| q2_members.contains(i))
        .collect();

    h.world_mut().set_policy(schedule(
        writer,
        r1,
        r2,
        servers,
        q2_members.clone(),
        q1_and_q2,
        q1_members.clone(),
        q_members.clone(),
    ));

    // 1. Incomplete 2-round write: round 1 to Q2, round 2 to Q1 ∩ Q2, then
    //    the writer is cut off (it keeps waiting for round-2 acks that
    //    suffice for no quorum).
    h.start_write(Value::from(7u64));
    h.world_mut().run_to_quiescence();

    // 2. rd1 over Q1 — must be fast.
    let rd1 = h.read(0);

    // 3. B'1 = {s1, s2} forge the initial state; advance the clock so rd2
    //    strictly follows rd1 in real time.
    h.make_byzantine(0, Box::new(ForgedServer::initial_state()));
    h.make_byzantine(1, Box::new(ForgedServer::initial_state()));
    let now = h.now();
    h.world_mut().run_before(Time(now.ticks() + 1));

    // 4. rd2 over Q — bounded run, since the valid configuration may
    //    (correctly) block without a correct quorum.
    h.start_read(1);
    let r2_node = r2;
    let completed = h.world_mut().run_until_bounded(
        |w| w.node_as::<rqs_storage::Reader>(r2_node).outcomes().len() == 1,
        500_000,
    );
    h.harvest();
    let rd2 = completed.then(|| {
        let out = &h
            .world_mut()
            .node_as::<rqs_storage::Reader>(r2_node)
            .outcomes()[0];
        (out.rounds, out.returned.to_string())
    });
    let violated = h.check_atomicity().is_err();

    Fig8Outcome {
        rd1: (rd1.rounds, rd1.returned.to_string()),
        rd2,
        violated,
    }
}

/// The invalid configuration under the Theorem-3 schedule.
pub fn run_invalid() -> Fig8Outcome {
    run(
        invalid_rqs(),
        vec![0, 4, 5],
        vec![0, 1, 2, 3, 4],
        vec![0, 1, 2, 3, 5],
    )
}

/// The valid Example-7 configuration under the analogous schedule.
pub fn run_valid() -> Fig8Outcome {
    run(
        crate::exp_fig4::example7_rqs(),
        vec![1, 3, 4, 5],
        vec![0, 1, 2, 3, 4],
        vec![0, 1, 2, 3, 5],
    )
}

/// Builds the E5 report.
pub fn report() -> Report {
    let bad = run_invalid();
    let good = run_valid();
    let mut r =
        Report::new("E5 (Figure 8, Theorem 3): Property 3 is necessary for graceful degradation");
    r.note("Same adversary, same schedule; only the quorum classes differ.");
    r.note("Invalid config: P1,P2 hold, P3 fails (Q2∩Q\\B'1 = {s3,s4} ∈ B and");
    r.note("Q1∩Q2∩Q\\B'1 = ∅). rd1 returns 7 fast; after {s1,s2} forge σ0,");
    r.note("rd2 returns ⊥ — a value older than rd1's: atomicity violated.");
    let fmt_rd2 = |o: &Fig8Outcome| match &o.rd2 {
        Some((rounds, v)) => format!("{v} in {rounds} round(s)"),
        None => "blocks (no correct quorum — safe)".to_string(),
    };
    r.headers(["configuration", "rd1", "rd2", "atomicity"]);
    r.row([
        "Property 3 violated".to_string(),
        format!("{} in {} round(s)", bad.rd1.1, bad.rd1.0),
        fmt_rd2(&bad),
        if bad.violated {
            "VIOLATED".to_string()
        } else {
            "ok".to_string()
        },
    ]);
    r.row([
        "valid RQS (Example 7)".to_string(),
        format!("{} in {} round(s)", good.rd1.1, good.rd1.0),
        fmt_rd2(&good),
        if good.violated {
            "VIOLATED".to_string()
        } else {
            "ok".to_string()
        },
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_config_shape() {
        let _ = invalid_rqs(); // asserts P1 ∧ P2 ∧ ¬P3 internally
    }

    #[test]
    fn theorem3_violation_reproduced() {
        let bad = run_invalid();
        assert_eq!(bad.rd1.0, 1, "rd1 must be a one-round read");
        assert!(bad.rd1.1.contains('7'));
        let rd2 = bad.rd2.expect("rd2 terminates in the invalid config");
        assert!(
            rd2.1.contains('⊥'),
            "rd2 returns the initial value: {rd2:?}"
        );
        assert!(bad.violated, "atomicity must be violated");
    }

    #[test]
    fn valid_config_stays_safe() {
        let good = run_valid();
        assert_eq!(good.rd1.0, 1, "the valid config is equally fast for rd1");
        assert!(!good.violated, "the valid config must stay atomic");
    }
}
