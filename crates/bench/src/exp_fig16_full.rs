//! **E7b (Figure 16, Theorem 6 — full system)** — the live version of the
//! Theorem-6 counterexample: actual Byzantine acceptor automatons execute
//! the forged view-change against the running consensus protocol, and two
//! correct learners end up learning **different values** on the
//! Property-3-violating configuration, while the valid Example-7
//! configuration survives the same attack.
//!
//! The schedule (proof's ex1–ex5 compressed into one run):
//!
//! 1. view 0: `p0` proposes 0, reaching the class-1 quorum `Q1`; `p1`
//!    proposes 1, reaching `Q2`'s benign members. One Byzantine acceptor
//!    inside `Q1` plays 0 **to learner `l1` only** — `l1` decides 0 in
//!    2 message delays via the class-1 rule;
//! 2. the election module promotes view 1 (led by `p1`); the Byzantine
//!    acceptors gather *genuine* signatures over `update1⟨1,0⟩` from the
//!    benign acceptors that really prepared 1 (via `sign_req`), forge
//!    "we 1-updated 1 over `Q2`" acks, and answer the `new_view`;
//! 3. `p1`'s `choose()` over the handover quorum picks a value and
//!    prepares it; the update phase runs; learner `l2` learns it.
//!
//! On the invalid configuration step 3 yields **1** (agreement violated:
//! `l1` has 0, `l2` gets 1); on the valid configuration `choose()` is
//! forced back to **0** and both learners agree.

use crate::report::Report;
use rqs_consensus::byzantine::ScriptedAcceptor;
use rqs_consensus::types::{
    encode_new_view_ack, encode_update, encode_view_change, ConsensusMsg, NewViewAckBody,
    SignedNewViewAck, SignedUpdate, SignedViewChange,
};
use rqs_consensus::ConsensusHarness;
use rqs_core::{ProcessId, ProcessSet, QuorumId, Rqs};
use rqs_crypto::SignerId;
use rqs_sim::{Envelope, Fate, NodeId};

/// Role assignment for the live attack.
#[derive(Clone, Debug)]
pub struct AttackRoles {
    /// The quorum system under attack.
    pub rqs: Rqs,
    /// Universe indices of the Byzantine acceptors (must be in `B`).
    pub byz: Vec<usize>,
    /// The class-1 quorum whose `update1⟨0,0⟩` messages decide 0 at `l1`.
    pub q1_members: Vec<usize>,
    /// Benign acceptors that receive `p1`'s proposal and prepare 1.
    pub prep1: Vec<usize>,
    /// The class-2 quorum id the forged acks claim the 1-update ran over.
    pub q2_id: QuorumId,
    /// The handover quorum: exactly these acceptors' `new_view_ack`s
    /// reach `p1`.
    pub handover: Vec<usize>,
}

/// Outcome of the live attack.
#[derive(Clone, Debug)]
pub struct FullAttackOutcome {
    /// What learner 1 learned (decided in view 0).
    pub l1: Option<u64>,
    /// What learner 2 learned (decided after the view change).
    pub l2: Option<u64>,
    /// Agreement verdict.
    pub violated: bool,
}

/// Runs the live attack.
pub fn run(roles: AttackRoles) -> FullAttackOutcome {
    let n = roles.rqs.universe_size();
    let mut h = ConsensusHarness::new(roles.rqs.clone(), 2, 2);
    let cfg = h.config().clone();
    let (p0, p1) = (cfg.proposers[0], cfg.proposers[1]);
    let (l1, l2) = (cfg.learners[0], cfg.learners[1]);
    let acceptor_nodes = cfg.acceptors.clone();

    // --- network schedule -------------------------------------------------
    let q1_nodes: Vec<NodeId> = roles
        .q1_members
        .iter()
        .map(|&i| acceptor_nodes[i])
        .collect();
    let prep1_nodes: Vec<NodeId> = roles.prep1.iter().map(|&i| acceptor_nodes[i]).collect();
    let byz_nodes: Vec<NodeId> = roles.byz.iter().map(|&i| acceptor_nodes[i]).collect();
    let handover_nodes: Vec<NodeId> = roles.handover.iter().map(|&i| acceptor_nodes[i]).collect();
    let acceptor_nodes_for_policy = acceptor_nodes.clone();
    let policy = move |env: &Envelope<ConsensusMsg>| -> Fate {
        let acceptor_nodes = &acceptor_nodes_for_policy;
        match &env.msg {
            // p0's initial-view proposal reaches Q1 (incl. the Byzantine
            // member); p1's reaches the Byzantine set and the preparers
            // of 1.
            ConsensusMsg::Prepare { view: 0, .. } if env.from == p0 => {
                if q1_nodes.contains(&env.to) {
                    Fate::DEFAULT
                } else {
                    Fate::Drop
                }
            }
            ConsensusMsg::Prepare { view: 0, .. } if env.from == p1 => {
                if prep1_nodes.contains(&env.to) || byz_nodes.contains(&env.to) {
                    Fate::DEFAULT
                } else {
                    Fate::Drop
                }
            }
            // Only the handover quorum's acks reach p1.
            ConsensusMsg::NewViewAck(ack) => {
                if handover_nodes
                    .iter()
                    .any(|&node| node == env.from && node == acceptor_nodes[ack.acceptor.0])
                {
                    Fate::DEFAULT
                } else {
                    Fate::Drop
                }
            }
            _ => Fate::DEFAULT,
        }
    };
    h.world_mut().set_policy(policy);

    // --- Byzantine automatons ---------------------------------------------
    for &b in &roles.byz {
        let me = ProcessId(b);
        let keypair = cfg.registry.signer(SignerId(b));
        let registry = cfg.registry.clone();
        let acceptors = acceptor_nodes.clone();
        let learners = [l1, l2];
        let sign_targets: Vec<NodeId> = roles.prep1.iter().map(|&i| acceptor_nodes[i]).collect();
        let q2_id = roles.q2_id;
        let play0_to_l1 = roles.q1_members.contains(&b);
        let needed_sigs = roles.prep1.clone();
        let mut collected: Vec<SignedUpdate> = Vec::new();
        let mut sent_ack = false;
        let mut sent_vc = false;
        let script =
            move |_from: NodeId, msg: ConsensusMsg, ctx: &mut rqs_sim::Context<ConsensusMsg>| {
                match msg {
                ConsensusMsg::Prepare { value: 0, view: 0, .. }
                    // Play 0 to l1 only: completes Q1's update1 set there.
                    if play0_to_l1 => {
                        ctx.send(
                            learners[0],
                            ConsensusMsg::Update { step: 1, value: 0, view: 0, quorum: None },
                        );
                    }
                ConsensusMsg::Sync
                    // Help elect p1 for view 1 (every quorum contains a
                    // Byzantine acceptor, so their view_change is needed).
                    if !sent_vc => {
                        sent_vc = true;
                        let sig = keypair.sign(&encode_view_change(1));
                        ctx.send(
                            p1,
                            ConsensusMsg::ViewChange(SignedViewChange {
                                acceptor: me,
                                next_view: 1,
                                sig,
                            }),
                        );
                    }
                ConsensusMsg::NewView { view: 1, .. } => {
                    // Gather genuine signatures over update1⟨1,0⟩ from the
                    // benign acceptors that really sent it.
                    collected.push(SignedUpdate {
                        acceptor: me,
                        step: 1,
                        value: 1,
                        view: 0,
                        sig: keypair.sign(&encode_update(1, 1, 0)),
                    });
                    ctx.broadcast(
                        sign_targets.iter().copied(),
                        ConsensusMsg::SignReq { value: 1, view: 0, step: 1 },
                    );
                }
                ConsensusMsg::SignAck(su)
                    if su.step == 1 && su.value == 1 && su.view == 0 =>
                {
                    if !collected.iter().any(|c| c.acceptor == su.acceptor)
                        && registry.verify(
                            SignerId(su.acceptor.0),
                            &encode_update(1, 1, 0),
                            &su.sig,
                        )
                    {
                        collected.push(su);
                    }
                    let have_all = needed_sigs
                        .iter()
                        .all(|&i| collected.iter().any(|c| c.acceptor == ProcessId(i)));
                    if have_all && !sent_ack {
                        sent_ack = true;
                        // The forged "I 1-updated 1 over Q2" ack.
                        let mut body = NewViewAckBody { view: 1, ..Default::default() };
                        body.prep = Some(1);
                        body.prep_view.insert(0);
                        body.update[0] = Some(1);
                        body.update_view[0].insert(0);
                        body.update_q[0].entry(0).or_default().insert(q2_id);
                        body.update_proof[0].insert(0, collected.clone());
                        let sig = keypair.sign(&encode_new_view_ack(&body));
                        ctx.send(
                            p1,
                            ConsensusMsg::NewViewAck(SignedNewViewAck {
                                acceptor: me,
                                body,
                                sig,
                            }),
                        );
                    }
                }
                ConsensusMsg::Prepare { value, view, .. } if view >= 1 => {
                    // Keep the view-1 update phase moving: echo all three
                    // update steps for whatever the leader prepared.
                    let everyone: Vec<NodeId> =
                        acceptors.iter().chain(learners.iter()).copied().collect();
                    for step in 1..=3usize {
                        let quorum = (step > 1).then_some(q2_id);
                        ctx.broadcast(
                            everyone.iter().copied(),
                            ConsensusMsg::Update { step, value, view, quorum },
                        );
                    }
                }
                _ => {}
            }
            };
        h.make_byzantine(b, Box::new(ScriptedAcceptor::new(script)));
    }

    // --- drive -------------------------------------------------------------
    h.propose(0, 0);
    h.propose(1, 1);
    let l2_node = l2;
    let l1_node = l1;
    h.world_mut().run_until_bounded(
        |w| {
            w.node_as::<rqs_consensus::Learner>(l1_node)
                .learned()
                .is_some()
                && w.node_as::<rqs_consensus::Learner>(l2_node)
                    .learned()
                    .is_some()
        },
        3_000_000,
    );
    let l1_learned = h.learned(0);
    let l2_learned = h.learned(1);
    let _ = n;
    FullAttackOutcome {
        l1: l1_learned,
        l2: l2_learned,
        violated: matches!((l1_learned, l2_learned), (Some(a), Some(b)) if a != b),
    }
}

/// The invalid (Property-3-violating) configuration's roles.
pub fn invalid_roles() -> AttackRoles {
    let rqs = crate::exp_fig8::invalid_rqs();
    let q2_id = rqs
        .id_of(ProcessSet::from_indices([0, 1, 2, 3, 4]))
        .unwrap();
    AttackRoles {
        rqs,
        byz: vec![0, 1],           // B'1 = {a1, a2} ∈ B
        q1_members: vec![0, 4, 5], // Q1 (a1 Byzantine, a5/a6 benign)
        prep1: vec![2, 3],         // benign preparers of 1
        q2_id,
        handover: vec![0, 1, 2, 3, 5], // Q
    }
}

/// The valid Example-7 configuration under the same attack shape.
pub fn valid_roles() -> AttackRoles {
    let rqs = crate::exp_fig4::example7_rqs();
    let q2_id = rqs
        .id_of(ProcessSet::from_indices([0, 1, 2, 3, 4]))
        .unwrap();
    AttackRoles {
        rqs,
        byz: vec![0], // only {a1} keeps Q1 = {a2,a4,a5,a6} benign
        q1_members: vec![1, 3, 4, 5],
        prep1: vec![2],
        q2_id,
        handover: vec![0, 1, 2, 3, 5], // Q2'
    }
}

/// Builds the E7b report.
pub fn report() -> Report {
    let bad = run(invalid_roles());
    let good = run(valid_roles());
    let mut r = Report::new("E7b (Theorem 6, full system): live agreement violation");
    r.note("Real Byzantine acceptor automatons run the forged view-change");
    r.note("against the live protocol: l1 decides in view 0 via the class-1");
    r.note("rule, the view changes, and l2 learns whatever choose() selects.");
    let fmt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
    r.headers(["configuration", "l1 learned", "l2 learned", "agreement"]);
    r.row([
        "Property 3 violated".to_string(),
        fmt(bad.l1),
        fmt(bad.l2),
        if bad.violated {
            "VIOLATED".to_string()
        } else {
            "ok".to_string()
        },
    ]);
    r.row([
        "valid RQS (Example 7)".to_string(),
        fmt(good.l1),
        fmt(good.l2),
        if good.violated {
            "VIOLATED".to_string()
        } else {
            "ok".to_string()
        },
    ]);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_attack_violates_invalid_config() {
        let out = run(invalid_roles());
        assert_eq!(out.l1, Some(0), "l1 decides 0 via the class-1 rule");
        assert_eq!(out.l2, Some(1), "l2 learns the conflicting 1");
        assert!(out.violated);
    }

    #[test]
    fn live_attack_fails_on_valid_config() {
        let out = run(valid_roles());
        assert!(!out.violated, "{out:?}");
        if let (Some(a), Some(b)) = (out.l1, out.l2) {
            assert_eq!(a, b);
        }
    }
}
