//! # Simulated digital signatures
//!
//! The consensus algorithm of *Refined Quorum Systems* authenticates
//! messages on its view-change path (`⟨m⟩_σx`), while deliberately avoiding
//! signatures in best-case executions. The only property the proofs use is
//! **unforgeability**: if a Byzantine process sends `⟨m⟩_σp` for a benign
//! `p`, then `p` already sent `⟨m⟩_σp`.
//!
//! This crate provides that property *inside the simulation* without a
//! cryptography dependency (documented substitution in `DESIGN.md`): each
//! signer holds a secret key, signatures are a keyed 64-bit FNV-1a MAC over
//! the message bytes, and verifiers check via a [`KeyRegistry`] that knows
//! every public verification key. Simulated Byzantine processes are simply
//! never given other processes' secrets, so they cannot produce valid tags
//! except by the (2⁻⁶⁴-ish) accident we ignore exactly as real systems
//! ignore MAC forgeries.
//!
//! ```
//! use rqs_crypto::{KeyRegistry, SignerId};
//!
//! let registry = KeyRegistry::new(3, 42);
//! let keypair = registry.signer(SignerId(1));
//! let sig = keypair.sign(b"update1:v=7,view=3");
//! assert!(registry.verify(SignerId(1), b"update1:v=7,view=3", &sig));
//! assert!(!registry.verify(SignerId(1), b"update1:v=8,view=3", &sig));
//! assert!(!registry.verify(SignerId(2), b"update1:v=7,view=3", &sig));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use core::fmt;

/// Identity of a signer (conventionally the node id of an acceptor).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SignerId(pub usize);

impl fmt::Display for SignerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

/// A signature tag over a message.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    tag: u64,
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig:{:016x}", self.tag)
    }
}

/// A signing key held by one process.
///
/// Obtained from [`KeyRegistry::signer`]; a correct simulation hands each
/// process only its own `Keypair`.
#[derive(Clone, Copy, Debug)]
pub struct Keypair {
    id: SignerId,
    secret: u64,
}

impl Keypair {
    /// The signer's identity.
    pub fn id(&self) -> SignerId {
        self.id
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature {
            tag: keyed_fnv(self.secret, message),
        }
    }
}

/// Trusted key directory shared by all verifiers.
///
/// Keys are derived deterministically from a seed, so the registry is
/// cheap to clone into every node.
#[derive(Clone, Debug)]
pub struct KeyRegistry {
    seed: u64,
    signers: usize,
}

impl KeyRegistry {
    /// Creates a registry for `signers` processes from a seed.
    pub fn new(signers: usize, seed: u64) -> Self {
        KeyRegistry { seed, signers }
    }

    /// Number of registered signers.
    pub fn len(&self) -> usize {
        self.signers
    }

    /// `true` iff the registry has no signers.
    pub fn is_empty(&self) -> bool {
        self.signers == 0
    }

    /// The keypair of `id` — only the process with identity `id` should be
    /// handed this value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not registered.
    pub fn signer(&self, id: SignerId) -> Keypair {
        assert!(id.0 < self.signers, "unknown signer {id}");
        Keypair {
            id,
            secret: self.secret_of(id),
        }
    }

    /// Verifies that `sig` is `id`'s signature over `message`.
    ///
    /// Returns `false` for unknown signers rather than panicking, since
    /// Byzantine senders may claim arbitrary identities.
    pub fn verify(&self, id: SignerId, message: &[u8], sig: &Signature) -> bool {
        if id.0 >= self.signers {
            return false;
        }
        keyed_fnv(self.secret_of(id), message) == sig.tag
    }

    fn secret_of(&self, id: SignerId) -> u64 {
        // splitmix64 over (seed, id) — deterministic per-signer secret.
        let mut z = self
            .seed
            .wrapping_add(0x9E3779B97F4A7C15)
            .wrapping_add((id.0 as u64).wrapping_mul(0xBF58476D1CE4E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Keyed 64-bit FNV-1a.
fn keyed_fnv(key: u64, message: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325 ^ key;
    for chunk in key.to_le_bytes().iter().chain(message.iter()) {
        hash ^= u64::from(*chunk);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    // Finalize with the key again so prefix extension cannot preserve tags.
    hash ^= key.rotate_left(32);
    hash = hash.wrapping_mul(0x100000001b3);
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let reg = KeyRegistry::new(4, 7);
        for i in 0..4 {
            let kp = reg.signer(SignerId(i));
            let sig = kp.sign(b"message");
            assert!(reg.verify(SignerId(i), b"message", &sig));
            assert_eq!(kp.id(), SignerId(i));
        }
    }

    #[test]
    fn wrong_message_rejected() {
        let reg = KeyRegistry::new(2, 7);
        let sig = reg.signer(SignerId(0)).sign(b"a");
        assert!(!reg.verify(SignerId(0), b"b", &sig));
    }

    #[test]
    fn wrong_signer_rejected() {
        let reg = KeyRegistry::new(2, 7);
        let sig = reg.signer(SignerId(0)).sign(b"a");
        assert!(!reg.verify(SignerId(1), b"a", &sig));
    }

    #[test]
    fn unknown_signer_rejected_without_panic() {
        let reg = KeyRegistry::new(2, 7);
        let sig = reg.signer(SignerId(0)).sign(b"a");
        assert!(!reg.verify(SignerId(99), b"a", &sig));
    }

    #[test]
    #[should_panic(expected = "unknown signer")]
    fn signer_out_of_range_panics() {
        let reg = KeyRegistry::new(2, 7);
        let _ = reg.signer(SignerId(5));
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = KeyRegistry::new(1, 1).signer(SignerId(0)).sign(b"m");
        let b = KeyRegistry::new(1, 2).signer(SignerId(0)).sign(b"m");
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_across_clones() {
        let reg = KeyRegistry::new(3, 9);
        let reg2 = reg.clone();
        let sig = reg.signer(SignerId(2)).sign(b"x");
        assert!(reg2.verify(SignerId(2), b"x", &sig));
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }

    #[test]
    fn display_forms() {
        let reg = KeyRegistry::new(1, 0);
        let sig = reg.signer(SignerId(0)).sign(b"m");
        assert!(sig.to_string().starts_with("sig:"));
        assert_eq!(SignerId(3).to_string(), "σ3");
    }
}
