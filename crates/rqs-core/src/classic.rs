//! Classical Byzantine quorum systems (the paper's Example 4).
//!
//! A refined quorum system with `QC1 = QC2 = ∅` is a **dissemination**
//! quorum system in the sense of Malkhi–Reiter [40] (for self-verifying
//! data), and one with `QC1 = ∅, QC2 = RQS` is a **masking** quorum
//! system (for unauthenticated data). This module provides their
//! existence conditions and canonical constructions, for both threshold
//! and general adversaries:
//!
//! - dissemination systems exist iff the **Q3 condition** holds (no three
//!   adversary elements cover the universe); the canonical construction
//!   takes the complements of the maximal adversary elements as quorums;
//! - masking systems exist iff the **Q4 condition** holds (no four
//!   elements cover), same construction.
//!
//! Both fall out of the RQS framework: dissemination = Property 1 alone;
//! masking = Properties 1 and 3 with `QC2 = RQS` and empty `QC1`, in
//! which case `P3b` is unavailable and Property 3 *is* the
//! Malkhi–Reiter M-Consistency `∀Q,Q',B1,B2: (Q ∩ Q') \ B1 ⊄ B2`.

use crate::adversary::Adversary;
use crate::process::ProcessSet;
use crate::rqs::{Rqs, RqsViolation};
use core::fmt;

/// Failure to build a classical Byzantine quorum system.
#[derive(Clone, Debug)]
pub enum ClassicError {
    /// A consistency property failed (Q3/Q4 condition violated).
    Consistency(RqsViolation),
    /// No quorum avoids the given adversary element (availability fails:
    /// Malkhi-Reiter require a quorum disjoint from every `B ∈ B`).
    NotAvailable {
        /// The element no quorum avoids.
        b: ProcessSet,
    },
}

impl fmt::Display for ClassicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassicError::Consistency(v) => write!(f, "consistency: {v}"),
            ClassicError::NotAvailable { b } => {
                write!(f, "availability: no quorum avoids {b}")
            }
        }
    }
}

impl std::error::Error for ClassicError {}

impl From<RqsViolation> for ClassicError {
    fn from(v: RqsViolation) -> Self {
        ClassicError::Consistency(v)
    }
}

/// Checks Malkhi-Reiter availability: for every adversary element `B`,
/// some quorum is disjoint from `B`.
fn check_availability(rqs: &Rqs) -> Result<(), ClassicError> {
    for b in rqs.adversary().maximal_elements() {
        if !rqs.quorums().iter().any(|q| q.is_disjoint(b)) {
            return Err(ClassicError::NotAvailable { b });
        }
    }
    Ok(())
}

/// The `Q(m)` condition: no `m` adversary elements cover the universe.
///
/// `q_condition(b, 3)` is the dissemination existence condition,
/// `q_condition(b, 4)` the masking one (Malkhi–Reiter).
pub fn q_condition(adversary: &Adversary, m: usize) -> bool {
    let universe = adversary.universe();
    let maximal = adversary.maximal_elements();
    // Depth-first over m-tuples of maximal elements (with repetition —
    // covering with fewer distinct elements is covered by repetition).
    fn covers(
        maximal: &[ProcessSet],
        universe: ProcessSet,
        acc: ProcessSet,
        remaining: usize,
    ) -> bool {
        if acc.is_superset_of(universe) {
            return true;
        }
        if remaining == 0 {
            return false;
        }
        maximal
            .iter()
            .any(|&b| covers(maximal, universe, acc.union(b), remaining - 1))
    }
    !covers(&maximal, universe, ProcessSet::empty(), m)
}

/// Builds the canonical dissemination quorum system for a general
/// adversary: quorums are the complements of the maximal adversary
/// elements (`QC1 = QC2 = ∅`).
///
/// # Errors
///
/// Returns a consistency violation when the Q3 condition fails (the
/// complement construction is availability-complete by definition).
pub fn dissemination(adversary: &Adversary) -> Result<Rqs, ClassicError> {
    let n = adversary.universe_size();
    let quorums: Vec<ProcessSet> = adversary
        .maximal_elements()
        .into_iter()
        .map(|b| b.complement(n))
        .collect();
    let rqs = Rqs::new(adversary.clone(), quorums, vec![], vec![])?;
    check_availability(&rqs)?;
    Ok(rqs)
}

/// Builds the canonical masking quorum system for a general adversary:
/// complements of maximal elements, all class 2 (`QC1 = ∅`).
///
/// # Errors
///
/// Returns a consistency violation when the Q4 condition fails.
pub fn masking(adversary: &Adversary) -> Result<Rqs, ClassicError> {
    let n = adversary.universe_size();
    let quorums: Vec<ProcessSet> = adversary
        .maximal_elements()
        .into_iter()
        .map(|b| b.complement(n))
        .collect();
    let class2: Vec<usize> = (0..quorums.len()).collect();
    let rqs = Rqs::new(adversary.clone(), quorums, vec![], class2)?;
    check_availability(&rqs)?;
    Ok(rqs)
}

/// Threshold dissemination system: quorums of `⌈(n + k + 1) / 2⌉`
/// processes over the `B_k` adversary; requires `n > 3k`.
///
/// # Errors
///
/// Returns an error when `n ≤ 3k` (consistency or availability fails).
pub fn dissemination_threshold(n: usize, k: usize) -> Result<Rqs, ClassicError> {
    let size = (n + k + 1).div_ceil(2);
    let quorums: Vec<ProcessSet> = if size > n {
        vec![ProcessSet::universe(n)]
    } else {
        ProcessSet::subsets_of_size(n, size).collect()
    };
    let rqs = Rqs::new(Adversary::threshold(n, k), quorums, vec![], vec![])?;
    check_availability(&rqs)?;
    Ok(rqs)
}

/// Threshold masking system: quorums of `⌈(n + 2k + 1) / 2⌉` processes
/// over `B_k`; requires `n > 4k`.
///
/// # Errors
///
/// Returns an error when `n ≤ 4k` (consistency or availability fails).
pub fn masking_threshold(n: usize, k: usize) -> Result<Rqs, ClassicError> {
    let size = (n + 2 * k + 1).div_ceil(2);
    let quorums: Vec<ProcessSet> = if size > n {
        vec![ProcessSet::universe(n)]
    } else {
        ProcessSet::subsets_of_size(n, size).collect()
    };
    let class2: Vec<usize> = (0..quorums.len()).collect();
    let rqs = Rqs::new(Adversary::threshold(n, k), quorums, vec![], class2)?;
    check_availability(&rqs)?;
    Ok(rqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q3_threshold_boundary() {
        // B_k over n: Q3 ⇔ n > 3k.
        assert!(q_condition(&Adversary::threshold(4, 1), 3));
        assert!(!q_condition(&Adversary::threshold(3, 1), 3));
        assert!(q_condition(&Adversary::threshold(7, 2), 3));
        assert!(!q_condition(&Adversary::threshold(6, 2), 3));
    }

    #[test]
    fn q4_threshold_boundary() {
        // Q4 ⇔ n > 4k.
        assert!(q_condition(&Adversary::threshold(5, 1), 4));
        assert!(!q_condition(&Adversary::threshold(4, 1), 4));
        assert!(q_condition(&Adversary::threshold(9, 2), 4));
        assert!(!q_condition(&Adversary::threshold(8, 2), 4));
    }

    #[test]
    fn q_condition_general_adversary() {
        // Maximal sets {0,1}, {2,3} over 6: two cover {0..3}, three cover
        // at most {0..3} — never all of {0..5}: Q3 and even Q4 hold.
        let b = Adversary::general(
            6,
            [
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([2, 3]),
            ],
        )
        .unwrap();
        assert!(q_condition(&b, 3));
        assert!(q_condition(&b, 4));
        // Maximal sets {0,1}, {2,3}, {4,5}: three cover everything.
        let b2 = Adversary::general(
            6,
            [
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([2, 3]),
                ProcessSet::from_indices([4, 5]),
            ],
        )
        .unwrap();
        assert!(!q_condition(&b2, 3));
        assert!(q_condition(&b2, 2));
    }

    #[test]
    fn dissemination_exists_iff_q3() {
        for (n, k) in [(4usize, 1usize), (7, 2), (10, 3)] {
            assert!(dissemination_threshold(n, k).is_ok(), "n={n} k={k}");
            assert!(q_condition(&Adversary::threshold(n, k), 3));
        }
        for (n, k) in [(3usize, 1usize), (6, 2)] {
            assert!(dissemination_threshold(n, k).is_err(), "n={n} k={k}");
        }
    }

    #[test]
    fn masking_exists_iff_q4() {
        for (n, k) in [(5usize, 1usize), (9, 2)] {
            assert!(masking_threshold(n, k).is_ok(), "n={n} k={k}");
        }
        for (n, k) in [(4usize, 1usize), (8, 2)] {
            assert!(masking_threshold(n, k).is_err(), "n={n} k={k}");
        }
    }

    #[test]
    fn general_complement_constructions() {
        let b = Adversary::general(
            6,
            [
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([2, 3]),
            ],
        )
        .unwrap();
        let d = dissemination(&b).expect("Q3 holds");
        assert_eq!(d.len(), 2);
        assert!(d.class1_ids().is_empty());
        assert!(d.class2_ids().is_empty());
        let m = masking(&b).expect("Q4 holds");
        assert_eq!(m.class2_ids().len(), 2);
        assert!(m.class1_ids().is_empty());
        // Masking's Property 3 with empty QC1 degenerates to
        // M-Consistency: (Q ∩ Q') \ B1 ⊄ B2.
        for &q in m.quorums() {
            for &qp in m.quorums() {
                assert!(b.is_large(q.intersection(qp)));
            }
        }
    }

    #[test]
    fn general_masking_fails_without_q4() {
        // Three maximal pairs covering 6 of 7 processes: Q3 holds but a
        // masking system over complements fails (intersection of two
        // complements minus an element lands inside another element).
        let b = Adversary::general(
            5,
            [
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([2, 3]),
                ProcessSet::from_indices([1, 2]),
            ],
        )
        .unwrap();
        assert!(q_condition(&b, 3), "Q3 holds (element 4 never covered)");
        assert!(!q_condition(&b, 4) || masking(&b).is_ok());
        // dissemination works under Q3:
        assert!(dissemination(&b).is_ok());
    }

    #[test]
    fn dissemination_matches_example3_semantics() {
        // For k = ⌊(n-1)/3⌋ the dissemination quorums coincide in spirit
        // with Example 3's two-thirds quorums.
        let d = dissemination_threshold(4, 1).unwrap();
        for &q in d.quorums() {
            assert_eq!(q.len(), 3);
        }
        assert!(d.verify().is_ok());
    }
}
