//! Adversary structures (Definition 1 of the paper).
//!
//! An *adversary* `B` for a universe `S` is a downward-closed family of
//! subsets of `S`: if `B ∈ B` and `B' ⊆ B`, then `B' ∈ B`. In any
//! execution, the set of simultaneously-Byzantine processes is assumed to
//! be an element of `B`.
//!
//! We represent an adversary by its *maximal* elements; downward closure is
//! then implicit (`B ∈ B` iff `B` is a subset of some maximal element).
//! The classical `k`-bounded threshold adversary `B_k` (all subsets of
//! cardinality ≤ `k`) gets a dedicated compact representation.
//!
//! Two derived notions pervade the paper (Definition 5):
//! - a **basic** subset is one *not* in `B` — it always contains at least
//!   one benign process;
//! - a **large** subset is one not covered by the union of any *two*
//!   elements of `B` — it always contains a whole basic subset of benign
//!   processes.

use crate::process::{ProcessId, ProcessSet};
use core::fmt;
use serde::{Deserialize, Serialize};

/// An adversary structure over a universe of `n` processes.
///
/// # Examples
///
/// Threshold adversary `B_1` over 4 processes:
///
/// ```
/// use rqs_core::{Adversary, ProcessSet};
/// let b = Adversary::threshold(4, 1);
/// assert!(b.contains(ProcessSet::from_indices([2])));
/// assert!(!b.contains(ProcessSet::from_indices([1, 2])));
/// assert!(b.is_basic(ProcessSet::from_indices([1, 2])));
/// ```
///
/// The general (non-threshold) adversary of the paper's Example 7:
///
/// ```
/// use rqs_core::{Adversary, ProcessSet};
/// let b = Adversary::general(6, [
///     ProcessSet::from_indices([0, 1]), // {s1,s2}
///     ProcessSet::from_indices([2, 3]), // {s3,s4}
///     ProcessSet::from_indices([1, 3]), // {s2,s4}
/// ]).unwrap();
/// assert!(b.contains(ProcessSet::from_indices([1])));     // downward closure
/// assert!(!b.contains(ProcessSet::from_indices([0, 2]))); // {s1,s3} not covered
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Adversary {
    n: usize,
    kind: AdversaryKind,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
enum AdversaryKind {
    /// `B_k`: all subsets of cardinality at most `k`.
    Threshold { k: usize },
    /// Downward closure of the given maximal sets.
    General { maximal: Vec<ProcessSet> },
}

/// Error returned by [`Adversary::general`] for ill-formed inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdversaryError {
    /// A maximal set mentions a process outside the universe.
    OutOfUniverse {
        /// The offending set.
        set: ProcessSet,
        /// The universe size.
        n: usize,
    },
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryError::OutOfUniverse { set, n } => {
                write!(
                    f,
                    "adversary element {set} mentions processes outside universe of size {n}"
                )
            }
        }
    }
}

impl std::error::Error for AdversaryError {}

impl Adversary {
    /// The `k`-bounded threshold adversary `B_k` over `n` processes: every
    /// subset of at most `k` processes may be simultaneously Byzantine.
    ///
    /// `k = 0` yields the crash-only adversary `B = {∅}` used by the
    /// paper's Examples 2 and 5.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES` or `k > n`.
    pub fn threshold(n: usize, k: usize) -> Self {
        assert!(n <= crate::process::MAX_PROCESSES);
        assert!(k <= n, "threshold k={k} exceeds universe size n={n}");
        Adversary {
            n,
            kind: AdversaryKind::Threshold { k },
        }
    }

    /// The crash-only adversary `B = {∅}` (no Byzantine processes).
    pub fn crash_only(n: usize) -> Self {
        Adversary::threshold(n, 0)
    }

    /// A general adversary given by (a superset of) its maximal elements.
    ///
    /// Redundant elements (subsets of other elements) are removed; the empty
    /// set is always a member by downward closure, so it never needs to be
    /// listed.
    ///
    /// # Errors
    ///
    /// Returns [`AdversaryError::OutOfUniverse`] if any listed set contains
    /// a process index `>= n`.
    pub fn general<I>(n: usize, maximal: I) -> Result<Self, AdversaryError>
    where
        I: IntoIterator<Item = ProcessSet>,
    {
        assert!(n <= crate::process::MAX_PROCESSES);
        let universe = ProcessSet::universe(n);
        let mut sets: Vec<ProcessSet> = Vec::new();
        for s in maximal {
            if !s.is_subset_of(universe) {
                return Err(AdversaryError::OutOfUniverse { set: s, n });
            }
            sets.push(s);
        }
        // Keep only maximal elements.
        let mut maximal_only: Vec<ProcessSet> = Vec::new();
        'outer: for (i, &s) in sets.iter().enumerate() {
            for (j, &t) in sets.iter().enumerate() {
                if i != j && s.is_subset_of(t) && (s != t || i > j) {
                    continue 'outer;
                }
            }
            maximal_only.push(s);
        }
        maximal_only.sort();
        maximal_only.dedup();
        Ok(Adversary {
            n,
            kind: AdversaryKind::General {
                maximal: maximal_only,
            },
        })
    }

    /// Universe size `|S|`.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.n
    }

    /// The universe `S` as a set.
    #[inline]
    pub fn universe(&self) -> ProcessSet {
        ProcessSet::universe(self.n)
    }

    /// `true` iff this is a threshold adversary `B_k`; returns `k`.
    pub fn threshold_k(&self) -> Option<usize> {
        match self.kind {
            AdversaryKind::Threshold { k } => Some(k),
            AdversaryKind::General { .. } => None,
        }
    }

    /// Membership: `set ∈ B`?
    ///
    /// For a threshold adversary this is a cardinality check; for a general
    /// adversary, `set` must be a subset of some maximal element.
    pub fn contains(&self, set: ProcessSet) -> bool {
        match &self.kind {
            AdversaryKind::Threshold { k } => set.len() <= *k,
            AdversaryKind::General { maximal } => {
                set.is_empty() || maximal.iter().any(|m| set.is_subset_of(*m))
            }
        }
    }

    /// A subset is **basic** iff it is *not* an element of the adversary
    /// (Definition 5): it contains at least one benign process in every
    /// execution.
    #[inline]
    pub fn is_basic(&self, set: ProcessSet) -> bool {
        !self.contains(set)
    }

    /// A subset is **large** iff it is not a subset of the union of any two
    /// adversary elements (Definition 5): removing any adversary element
    /// from it leaves a basic subset, i.e. it contains a basic subset of
    /// benign processes in every execution (Lemma 2).
    pub fn is_large(&self, set: ProcessSet) -> bool {
        match &self.kind {
            AdversaryKind::Threshold { k } => set.len() > 2 * k,
            AdversaryKind::General { maximal } => {
                if maximal.is_empty() {
                    return !set.is_empty();
                }
                // set ⊆ B1 ∪ B2 for some (possibly equal) maximal B1, B2?
                for (i, &b1) in maximal.iter().enumerate() {
                    for &b2 in &maximal[i..] {
                        if set.is_subset_of(b1.union(b2)) {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }

    /// The maximal elements of the adversary.
    ///
    /// For a threshold adversary these are all `k`-subsets of the universe,
    /// materialized on demand; for general adversaries they are stored.
    pub fn maximal_elements(&self) -> Vec<ProcessSet> {
        match &self.kind {
            AdversaryKind::Threshold { k } => {
                if *k == 0 {
                    vec![ProcessSet::empty()]
                } else {
                    ProcessSet::subsets_of_size(self.n, *k).collect()
                }
            }
            AdversaryKind::General { maximal } => {
                if maximal.is_empty() {
                    vec![ProcessSet::empty()]
                } else {
                    maximal.clone()
                }
            }
        }
    }

    /// Iterates over *all* elements of the adversary (the full downward
    /// closure), deduplicated.
    ///
    /// The closure can be exponential in the maximal-set sizes; intended
    /// for small universes (tests, verification, search).
    pub fn all_elements(&self) -> Vec<ProcessSet> {
        let mut out: Vec<ProcessSet> = Vec::new();
        match &self.kind {
            AdversaryKind::Threshold { k } => {
                for size in 0..=*k {
                    out.extend(ProcessSet::subsets_of_size(self.n, size));
                }
            }
            AdversaryKind::General { maximal } => {
                for m in maximal {
                    out.extend(m.subsets());
                }
                if maximal.is_empty() {
                    out.push(ProcessSet::empty());
                }
                out.sort();
                out.dedup();
            }
        }
        out
    }

    /// Does this adversary admit the given Byzantine set in an execution?
    ///
    /// Alias of [`Adversary::contains`] with intent-revealing naming used
    /// by the fault-injection layers.
    #[inline]
    pub fn admits_byzantine(&self, byz: ProcessSet) -> bool {
        self.contains(byz)
    }

    /// Smallest basic subset of `within`, if any: a minimal witness that
    /// `within` is basic. Returns `None` when `within ∈ B`.
    ///
    /// Used to produce small "confirmation" sets `T ∉ B` for the storage
    /// `safe(c)` predicate and the consensus signature quorums.
    pub fn minimal_basic_subset(&self, within: ProcessSet) -> Option<ProcessSet> {
        if !self.is_basic(within) {
            return None;
        }
        // Greedy shrink: drop members while the set stays basic.
        let mut current = within;
        for p in within.iter() {
            let mut candidate = current;
            candidate.remove(p);
            if self.is_basic(candidate) {
                current = candidate;
            }
        }
        Some(current)
    }

    /// `true` iff `benign` (the complement of a Byzantine set) intersects
    /// every element of `B` — equivalent to `S \ benign ∈ B`.
    pub fn covers_complement(&self, benign: ProcessSet) -> bool {
        self.contains(self.universe().difference(benign))
    }
}

impl fmt::Display for Adversary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            AdversaryKind::Threshold { k } => write!(f, "B_{k} over |S|={}", self.n),
            AdversaryKind::General { maximal } => {
                write!(
                    f,
                    "general adversary over |S|={} with maximal sets [",
                    self.n
                )?;
                for (i, m) in maximal.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{m}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Partition of processes into benign and Byzantine for one execution.
///
/// The paper denotes the Byzantine set of execution `ex` by `B_ex ∈ B`;
/// crashed processes are *benign* (correct-or-crash). This helper bundles a
/// concrete fault assignment and checks it against an adversary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultAssignment {
    /// Processes that are Byzantine in this execution.
    pub byzantine: ProcessSet,
    /// Processes that crash at some point (still benign in paper terms).
    pub crashed: ProcessSet,
}

impl FaultAssignment {
    /// No faults at all.
    pub fn none() -> Self {
        FaultAssignment {
            byzantine: ProcessSet::empty(),
            crashed: ProcessSet::empty(),
        }
    }

    /// `true` iff the Byzantine set is admissible under `adversary` and no
    /// process is both crashed and Byzantine.
    pub fn is_admissible(&self, adversary: &Adversary) -> bool {
        adversary.contains(self.byzantine) && self.byzantine.is_disjoint(self.crashed)
    }

    /// Processes that are correct (neither Byzantine nor crashed), within a
    /// universe of `n` processes.
    pub fn correct(&self, n: usize) -> ProcessSet {
        ProcessSet::universe(n)
            .difference(self.byzantine)
            .difference(self.crashed)
    }

    /// Benign processes (correct or crashed).
    pub fn benign(&self, n: usize) -> ProcessSet {
        ProcessSet::universe(n).difference(self.byzantine)
    }

    /// Is the given process benign under this assignment?
    pub fn is_benign(&self, p: ProcessId) -> bool {
        !self.byzantine.contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_membership() {
        let b = Adversary::threshold(7, 2);
        assert!(b.contains(ProcessSet::empty()));
        assert!(b.contains(ProcessSet::from_indices([0, 6])));
        assert!(!b.contains(ProcessSet::from_indices([0, 1, 2])));
        assert_eq!(b.threshold_k(), Some(2));
    }

    #[test]
    fn crash_only_adversary() {
        let b = Adversary::crash_only(5);
        assert!(b.contains(ProcessSet::empty()));
        assert!(!b.contains(ProcessSet::from_indices([0])));
        assert!(b.is_basic(ProcessSet::from_indices([0])));
        // With B = {∅} every non-empty set is large.
        assert!(b.is_large(ProcessSet::from_indices([0])));
        assert!(!b.is_large(ProcessSet::empty()));
    }

    #[test]
    fn threshold_basic_and_large() {
        let b = Adversary::threshold(9, 2);
        assert!(!b.is_basic(ProcessSet::from_indices([0, 1])));
        assert!(b.is_basic(ProcessSet::from_indices([0, 1, 2])));
        // large ⇔ |set| ≥ 2k+1 = 5
        assert!(!b.is_large(ProcessSet::from_indices([0, 1, 2, 3])));
        assert!(b.is_large(ProcessSet::from_indices([0, 1, 2, 3, 4])));
    }

    #[test]
    fn general_downward_closure() {
        let b = Adversary::general(
            6,
            [
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([2, 3]),
                ProcessSet::from_indices([1, 3]),
            ],
        )
        .unwrap();
        assert!(b.contains(ProcessSet::empty()));
        assert!(b.contains(ProcessSet::from_indices([0])));
        assert!(b.contains(ProcessSet::from_indices([0, 1])));
        assert!(!b.contains(ProcessSet::from_indices([0, 3])));
        assert!(!b.contains(ProcessSet::from_indices([4])));
    }

    #[test]
    fn general_large_sets() {
        // maximal = {a,b}, {c}; union of two elements covers at most {a,b,c}
        let b = Adversary::general(
            4,
            [
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([2]),
            ],
        )
        .unwrap();
        assert!(!b.is_large(ProcessSet::from_indices([0, 1, 2])));
        assert!(b.is_large(ProcessSet::from_indices([0, 1, 2, 3])));
        // union of an element with itself
        assert!(!b.is_large(ProcessSet::from_indices([0, 1])));
    }

    #[test]
    fn general_redundant_elements_removed() {
        let b = Adversary::general(
            5,
            [
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([0]),
                ProcessSet::from_indices([0, 1]),
            ],
        )
        .unwrap();
        assert_eq!(b.maximal_elements(), vec![ProcessSet::from_indices([0, 1])]);
    }

    #[test]
    fn general_out_of_universe_rejected() {
        let err = Adversary::general(3, [ProcessSet::from_indices([5])]).unwrap_err();
        assert!(matches!(err, AdversaryError::OutOfUniverse { .. }));
        assert!(err.to_string().contains("universe"));
    }

    #[test]
    fn maximal_elements_threshold() {
        let b = Adversary::threshold(4, 1);
        let m = b.maximal_elements();
        assert_eq!(m.len(), 4);
        let b0 = Adversary::threshold(4, 0);
        assert_eq!(b0.maximal_elements(), vec![ProcessSet::empty()]);
    }

    #[test]
    fn all_elements_closure() {
        let b = Adversary::general(4, [ProcessSet::from_indices([0, 1])]).unwrap();
        let all = b.all_elements();
        assert_eq!(all.len(), 4); // ∅, {0}, {1}, {0,1}
        let bt = Adversary::threshold(4, 1);
        assert_eq!(bt.all_elements().len(), 5); // ∅ + 4 singletons
    }

    #[test]
    fn minimal_basic_subset() {
        let b = Adversary::threshold(6, 2);
        let big = ProcessSet::from_indices([0, 1, 2, 3, 4]);
        let min = b.minimal_basic_subset(big).unwrap();
        assert_eq!(min.len(), 3); // smallest basic subset has k+1 members
        assert!(min.is_subset_of(big));
        assert!(b.is_basic(min));
        assert_eq!(
            b.minimal_basic_subset(ProcessSet::from_indices([0, 1])),
            None
        );
    }

    #[test]
    fn fault_assignment() {
        let b = Adversary::threshold(5, 1);
        let fa = FaultAssignment {
            byzantine: ProcessSet::from_indices([0]),
            crashed: ProcessSet::from_indices([1]),
        };
        assert!(fa.is_admissible(&b));
        assert_eq!(fa.correct(5), ProcessSet::from_indices([2, 3, 4]));
        assert_eq!(fa.benign(5), ProcessSet::from_indices([1, 2, 3, 4]));
        assert!(!fa.is_benign(ProcessId(0)));
        assert!(fa.is_benign(ProcessId(1)));
        let bad = FaultAssignment {
            byzantine: ProcessSet::from_indices([0, 1]),
            crashed: ProcessSet::empty(),
        };
        assert!(!bad.is_admissible(&b));
        let overlapping = FaultAssignment {
            byzantine: ProcessSet::from_indices([0]),
            crashed: ProcessSet::from_indices([0]),
        };
        assert!(!overlapping.is_admissible(&b));
        assert!(FaultAssignment::none().is_admissible(&b));
    }

    #[test]
    fn covers_complement() {
        let b = Adversary::threshold(4, 1);
        assert!(b.covers_complement(ProcessSet::from_indices([0, 1, 2])));
        assert!(!b.covers_complement(ProcessSet::from_indices([0, 1])));
    }

    #[test]
    fn display() {
        let b = Adversary::threshold(4, 1);
        assert_eq!(b.to_string(), "B_1 over |S|=4");
        let g = Adversary::general(3, [ProcessSet::from_indices([0])]).unwrap();
        assert!(g.to_string().contains("general adversary"));
    }
}
