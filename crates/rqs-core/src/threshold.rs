//! Threshold refined quorum systems (the paper's Examples 2–6).
//!
//! For a `k`-bounded threshold adversary `B_k` over `n` processes, the
//! canonical RQS family is parameterized by three resilience thresholds
//! `0 ≤ q ≤ r ≤ t`:
//!
//! - plain quorums contain all but at most `t` processes (`Q_t`),
//! - class-2 quorums contain all but at most `r` processes (`Q_r`),
//! - class-1 quorums contain all but at most `q` processes (`Q_q`).
//!
//! Example 6 of the paper gives closed-form feasibility conditions:
//!
//! - **Property 1** ⇔ `n > 2t + k`
//! - **Property 2** ⇔ `n > t + 2k + 2q`
//! - **Property 3** ⇔ `n > t + r + k + min(k, q)`
//!
//! so the family is an RQS iff `n > t + k + max(t, k + 2q, r + min(k, q))`.
//! Experiment **E8** sweeps these inequalities against [`Rqs::verify`].

use crate::adversary::Adversary;
use crate::process::ProcessSet;
use crate::rqs::{Rqs, RqsViolation};
use core::fmt;
use serde::{Deserialize, Serialize};

/// Parameters of a threshold refined quorum system (Example 6).
///
/// # Examples
///
/// The §1.2 motivating configuration — 5 servers, up to `t = 2` crashes,
/// writes fast when 4 servers respond:
///
/// ```
/// use rqs_core::threshold::ThresholdConfig;
/// let cfg = ThresholdConfig::new(5, 2, 0).with_class1(1).with_class2(2);
/// assert!(cfg.is_feasible());
/// let rqs = cfg.build().unwrap();
/// assert_eq!(rqs.class1_quorums().iter().all(|q| q.len() == 4), true);
/// ```
///
/// The "important instantiation": `n = 3t+1` Byzantine servers, all
/// quorums class 2, only the full set class 1:
///
/// ```
/// use rqs_core::threshold::ThresholdConfig;
/// let cfg = ThresholdConfig::byzantine_fast(1); // t = k = 1, n = 4
/// assert!(cfg.is_feasible());
/// assert_eq!(cfg.n(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ThresholdConfig {
    n: usize,
    t: usize,
    k: usize,
    /// `Some(q)`: class-1 quorums are the `(n-q)`-subsets; `None`: `QC1 = ∅`.
    q: Option<usize>,
    /// `Some(r)`: class-2 quorums are the `(n-r)`-subsets; `None`: `QC2 = QC1`.
    r: Option<usize>,
}

/// Error for invalid threshold parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ThresholdConfigError {
    msg: &'static str,
}

impl fmt::Display for ThresholdConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for ThresholdConfigError {}

impl ThresholdConfig {
    /// Plain threshold system: `n` processes, quorums tolerate `t`
    /// failures, `k`-bounded Byzantine adversary, no fast classes
    /// (`QC1 = QC2 = ∅`, Examples 2–3).
    ///
    /// # Panics
    ///
    /// Panics if `t >= n` or `k > n`.
    pub fn new(n: usize, t: usize, k: usize) -> Self {
        assert!(t < n, "t={t} must be < n={n} (quorums must be non-empty)");
        assert!(k <= n, "k={k} must be <= n={n}");
        ThresholdConfig {
            n,
            t,
            k,
            q: None,
            r: None,
        }
    }

    /// Adds class-1 quorums: all subsets with at least `n - q` processes.
    ///
    /// If no class-2 threshold is set, `QC2 = QC1` (Example 5).
    ///
    /// # Panics
    ///
    /// Panics if `q > t`.
    pub fn with_class1(mut self, q: usize) -> Self {
        assert!(q <= self.t, "q={q} must be <= t={}", self.t);
        self.q = Some(q);
        if let Some(r) = self.r {
            assert!(q <= r, "q={q} must be <= r={r}");
        }
        self
    }

    /// Adds class-2 quorums: all subsets with at least `n - r` processes.
    ///
    /// # Panics
    ///
    /// Panics if `r > t`, or if a class-1 threshold `q > r` is set.
    pub fn with_class2(mut self, r: usize) -> Self {
        assert!(r <= self.t, "r={r} must be <= t={}", self.t);
        if let Some(q) = self.q {
            assert!(q <= r, "q={} must be <= r={r}", q);
        }
        self.r = Some(r);
        self
    }

    /// Example 2: crash-tolerant majority quorums over `n` processes
    /// (`B = {∅}`, `t = ⌊(n-1)/2⌋`, no fast classes).
    pub fn classic_crash(n: usize) -> Self {
        ThresholdConfig::new(n, (n - 1) / 2, 0)
    }

    /// Example 3: Byzantine quorums over `n` processes
    /// (`t = k = ⌊(n-1)/3⌋`, quorums of more than two thirds, no fast
    /// classes).
    pub fn classic_byzantine(n: usize) -> Self {
        let t = (n - 1) / 3;
        ThresholdConfig::new(n, t, t)
    }

    /// Example 6's "important instantiation": `n = 3t + 1` processes,
    /// `k = t` Byzantine, all quorums class 2 (`r = t`), only the full set
    /// class 1 (`q = 0`).
    pub fn byzantine_fast(t: usize) -> Self {
        ThresholdConfig::new(3 * t + 1, t, t)
            .with_class1(0)
            .with_class2(t)
    }

    /// The §1.2 motivating example generalized: crash-only (`k = 0`),
    /// optimal resilience `t = ⌊(n-1)/2⌋`, fast operations when all but
    /// `q` servers respond, all quorums class 2.
    ///
    /// For this to be feasible, `q` must satisfy `n > t + 2q`
    /// (Property 2 with `k = 0`).
    pub fn crash_fast(n: usize, q: usize) -> Self {
        let t = (n - 1) / 2;
        ThresholdConfig::new(n, t, 0).with_class1(q).with_class2(t)
    }

    /// Universe size `n = |S|`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Plain-quorum resilience `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Byzantine bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Class-1 threshold `q` (class-1 quorums have `≥ n - q` members).
    pub fn q(&self) -> Option<usize> {
        self.q
    }

    /// Class-2 threshold `r`; defaults to `q` when only a class-1
    /// threshold was given (`QC2 = QC1`, Example 5).
    pub fn r(&self) -> Option<usize> {
        self.r.or(self.q)
    }

    /// Property 1 feasibility: `n > 2t + k`.
    pub fn property1_holds(&self) -> bool {
        self.n > 2 * self.t + self.k
    }

    /// Property 2 feasibility: `n > t + 2k + 2q` (vacuous without class-1
    /// quorums).
    pub fn property2_holds(&self) -> bool {
        match self.q {
            None => true,
            Some(q) => self.n > self.t + 2 * self.k + 2 * q,
        }
    }

    /// Property 3 feasibility: `n > t + r + k + min(k, q)` (vacuous without
    /// class-2 quorums).
    pub fn property3_holds(&self) -> bool {
        match (self.q, self.r()) {
            (Some(q), Some(r)) => self.n > self.t + r + self.k + self.k.min(q),
            _ => true,
        }
    }

    /// All three closed-form conditions of Example 6.
    pub fn is_feasible(&self) -> bool {
        self.property1_holds() && self.property2_holds() && self.property3_holds()
    }

    /// Smallest `n` for which the thresholds `(t, r, q, k)` are feasible:
    /// `n = t + k + max(t, k + 2q, r + min(k, q)) + 1` (Example 6).
    pub fn minimal_n(t: usize, r: usize, q: usize, k: usize) -> usize {
        t + k + t.max(k + 2 * q).max(r + k.min(q)) + 1
    }

    /// The threshold adversary `B_k` of this configuration.
    pub fn adversary(&self) -> Adversary {
        Adversary::threshold(self.n, self.k)
    }

    /// Materializes the refined quorum system, verifying Properties 1–3.
    ///
    /// The family contains every `(n-t)`-subset as a plain quorum, every
    /// `(n-r)`-subset as a class-2 quorum and every `(n-q)`-subset as a
    /// class-1 quorum. Only minimal-cardinality representatives are
    /// enumerated: clients test availability via subset inclusion, so
    /// supersets are implied.
    ///
    /// # Errors
    ///
    /// Returns an [`RqsViolation`] when the parameters are infeasible;
    /// [`ThresholdConfig::is_feasible`] predicts this exactly (experiment
    /// E8 asserts the equivalence).
    ///
    /// # Panics
    ///
    /// Panics if the enumeration would exceed 2,000,000 quorums; keep
    /// `n ≤ ~16` for explicit materialization.
    pub fn build(&self) -> Result<Rqs, RqsViolation> {
        let (quorums, class1, class2) = self.enumerate();
        Rqs::new(self.adversary(), quorums, class1, class2)
    }

    /// Materializes the system *without* verifying Properties 1–3
    /// (used to construct deliberately-broken systems for the
    /// counterexample experiments).
    ///
    /// # Errors
    ///
    /// Returns [`RqsViolation::Structural`] for malformed inputs (cannot
    /// happen for a validated `ThresholdConfig`).
    pub fn build_unchecked(&self) -> Result<Rqs, RqsViolation> {
        let (quorums, class1, class2) = self.enumerate();
        Rqs::new_unchecked(self.adversary(), quorums, class1, class2)
    }

    fn enumerate(&self) -> (Vec<ProcessSet>, Vec<usize>, Vec<usize>) {
        let mut sizes: Vec<usize> = vec![self.n - self.t];
        if let Some(r) = self.r() {
            sizes.push(self.n - r);
        }
        if let Some(q) = self.q {
            sizes.push(self.n - q);
        }
        sizes.sort_unstable();
        sizes.dedup();

        let mut quorums = Vec::new();
        let mut class1 = Vec::new();
        let mut class2 = Vec::new();
        let c1_min = self.q.map(|q| self.n - q);
        let c2_min = self.r().map(|r| self.n - r);
        for &size in &sizes {
            let count_before = quorums.len();
            for s in ProcessSet::subsets_of_size(self.n, size) {
                quorums.push(s);
                assert!(
                    quorums.len() <= 2_000_000,
                    "threshold enumeration too large (n={}); keep n <= ~16",
                    self.n
                );
            }
            for idx in count_before..quorums.len() {
                if c1_min.is_some_and(|m| size >= m) {
                    class1.push(idx);
                }
                if c2_min.is_some_and(|m| size >= m) {
                    class2.push(idx);
                }
            }
        }
        (quorums, class1, class2)
    }
}

impl fmt::Display for ThresholdConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} t={} k={}", self.n, self.t, self.k)?;
        if let Some(q) = self.q {
            write!(f, " q={q}")?;
        }
        if let Some(r) = self.r() {
            write!(f, " r={r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rqs::QuorumClass;

    #[test]
    fn classic_crash_majorities() {
        let cfg = ThresholdConfig::classic_crash(5);
        assert_eq!(cfg.t(), 2);
        assert!(cfg.is_feasible());
        let rqs = cfg.build().unwrap();
        // C(5,3) = 10 quorums, all class 3.
        assert_eq!(rqs.len(), 10);
        assert!(rqs.class1_ids().is_empty());
        assert!(rqs.class2_ids().is_empty());
    }

    #[test]
    fn classic_byzantine() {
        let cfg = ThresholdConfig::classic_byzantine(4);
        assert_eq!((cfg.t(), cfg.k()), (1, 1));
        assert!(cfg.is_feasible());
        let rqs = cfg.build().unwrap();
        assert_eq!(rqs.len(), 4); // C(4,3)
        for &q in rqs.quorums() {
            assert_eq!(q.len(), 3);
        }
    }

    #[test]
    fn section_1_2_example() {
        // 5 servers, t = 2 crash failures, fast path at 4 servers.
        let cfg = ThresholdConfig::crash_fast(5, 1);
        assert!(cfg.is_feasible());
        let rqs = cfg.build().unwrap();
        // quorums: C(5,3) = 10 of size 3 (class 2, since r = t) plus
        // C(5,4) = 5 of size 4 (class 1).
        assert_eq!(rqs.len(), 15);
        assert_eq!(rqs.class1_ids().len(), 5);
        assert_eq!(rqs.class2_ids().len(), 15);
        let q4 = ProcessSet::from_indices([0, 1, 2, 4]);
        assert_eq!(rqs.class_of_set(q4), Some(QuorumClass::Class1));
    }

    #[test]
    fn section_1_2_naive_infeasible() {
        // The paper's Figure 1 argument: expediting at 3 of 5 servers
        // (q = t = 2) violates Property 2: n = 5 ≤ t + 2k + 2q = 6.
        let cfg = ThresholdConfig::new(5, 2, 0).with_class1(2).with_class2(2);
        assert!(!cfg.property2_holds());
        assert!(!cfg.is_feasible());
        let err = cfg.build().unwrap_err();
        assert!(matches!(err, RqsViolation::Property2 { .. }));
    }

    #[test]
    fn byzantine_fast_instantiation() {
        for t in 1..=3 {
            let cfg = ThresholdConfig::byzantine_fast(t);
            assert!(cfg.is_feasible(), "t={t}");
            let rqs = cfg.build().unwrap();
            // Class 1 = only the full set.
            assert_eq!(rqs.class1_quorums(), vec![ProcessSet::universe(3 * t + 1)]);
            // All (n-t)-subsets are class 2.
            for id in rqs.class2_ids() {
                let s = rqs.quorum(id);
                assert!(s.len() > 2 * t);
            }
        }
    }

    #[test]
    fn feasibility_matches_verification_small_sweep() {
        // E8 in miniature: for every parameter combination, the closed-form
        // inequalities agree with full property verification.
        for n in 3..=7 {
            for t in 1..n {
                for k in 0..=t.min(2) {
                    for q in 0..=t {
                        for r in q..=t {
                            let cfg = ThresholdConfig::new(n, t, k).with_class1(q).with_class2(r);
                            let built = cfg.build_unchecked().unwrap();
                            let verified = built.verify().is_ok();
                            assert_eq!(
                                verified,
                                cfg.is_feasible(),
                                "mismatch at {cfg}: verify={verified}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn minimal_n_formula() {
        assert_eq!(ThresholdConfig::minimal_n(2, 2, 1, 0), 5); // §1.2
        assert_eq!(ThresholdConfig::minimal_n(1, 1, 0, 1), 4); // byzantine_fast(1)
        for (t, r, q, k) in [(2, 2, 1, 0), (1, 1, 0, 1), (2, 2, 0, 2), (3, 2, 1, 1)] {
            let n = ThresholdConfig::minimal_n(t, r, q, k);
            let at = ThresholdConfig::new(n, t, k).with_class1(q).with_class2(r);
            assert!(
                at.is_feasible(),
                "minimal n={n} for t={t},r={r},q={q},k={k}"
            );
            if n > t + 1 {
                let below = ThresholdConfig::new(n - 1, t, k)
                    .with_class1(q)
                    .with_class2(r);
                assert!(!below.is_feasible(), "n-1={} must be infeasible", n - 1);
            }
        }
    }

    #[test]
    fn class1_only_implies_class2_equal() {
        // Example 5: QC1 = QC2 when only q given.
        let cfg = ThresholdConfig::new(7, 2, 1).with_class1(0);
        assert_eq!(cfg.r(), Some(0));
        assert!(cfg.is_feasible());
        let rqs = cfg.build().unwrap();
        assert_eq!(rqs.class1_ids(), rqs.class2_ids());
    }

    #[test]
    #[should_panic(expected = "must be <= t")]
    fn q_above_t_rejected() {
        let _ = ThresholdConfig::new(5, 1, 0).with_class1(2);
    }

    #[test]
    #[should_panic(expected = "must be <= r")]
    fn q_above_r_rejected() {
        let _ = ThresholdConfig::new(7, 3, 0).with_class2(1).with_class1(2);
    }

    #[test]
    fn display_format() {
        let cfg = ThresholdConfig::new(7, 2, 1).with_class1(0).with_class2(1);
        assert_eq!(cfg.to_string(), "n=7 t=2 k=1 q=0 r=1");
        assert_eq!(ThresholdConfig::new(5, 2, 0).to_string(), "n=5 t=2 k=0");
    }
}
