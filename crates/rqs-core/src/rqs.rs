//! Refined quorum systems (Definition 2 of the paper).
//!
//! A refined quorum system `RQS` for a universe `S` and adversary `B` is a
//! family of quorums with two nested sub-families `QC1 ⊆ QC2 ⊆ RQS` such
//! that:
//!
//! - **Property 1** — `∀Q,Q' ∈ RQS: Q ∩ Q' ∉ B`;
//! - **Property 2** — `∀Q1,Q1' ∈ QC1, ∀Q ∈ RQS, ∀B1,B2 ∈ B:
//!   Q1 ∩ Q1' ∩ Q ⊄ B1 ∪ B2`;
//! - **Property 3** — `∀Q2 ∈ QC2, ∀Q ∈ RQS, ∀B ∈ B:` either
//!   `P3a(Q2,Q,B)`: `Q2 ∩ Q \ B ∉ B`, or `P3b(Q2,Q,B)`:
//!   `QC1 ≠ ∅ ∧ ∀Q1 ∈ QC1: Q1 ∩ Q2 ∩ Q \ B ≠ ∅`.
//!
//! Elements of `QC1` are *class-1* quorums, elements of `QC2` are *class-2*
//! quorums, and every quorum is a *class-3* quorum (`QC3 = RQS`).
//!
//! Protocol intuition: in synchronous, uncontended conditions an operation
//! completes in the best latency if a class-1 quorum of correct processes
//! responds, in the second-best latency for class 2, and in the third-best
//! for class 3 (which is anyway required for resilience).

use crate::adversary::Adversary;
use crate::process::ProcessSet;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Index of a quorum within a [`Rqs`] (stable identifier).
///
/// The paper's algorithms ship *quorum ids* inside messages (the storage
/// algorithm's `QC'2` sets and the consensus `UpdateQ` fields); `QuorumId`
/// is that identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct QuorumId(pub usize);

impl fmt::Display for QuorumId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// Quorum class (1, 2 or 3). Class 1 ⊆ class 2 ⊆ class 3.
///
/// [`QuorumClass::best`] on a quorum returns the *strongest* class it
/// belongs to; a class-1 quorum is also a class-2 and class-3 quorum.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum QuorumClass {
    /// First-class quorum: enables the best-case latency (1 storage round /
    /// 2 consensus message delays).
    Class1,
    /// Second-class quorum: enables the second-best latency.
    Class2,
    /// Third-class (plain) quorum: the traditional quorum needed for
    /// resilience; third-best latency.
    Class3,
}

impl QuorumClass {
    /// Best-case storage latency in client round-trips for this class
    /// (Theorem 9: the algorithm is `(m, QCm)`-fast).
    pub fn storage_rounds(self) -> usize {
        match self {
            QuorumClass::Class1 => 1,
            QuorumClass::Class2 => 2,
            QuorumClass::Class3 => 3,
        }
    }

    /// Best-case consensus latency in message delays for this class
    /// (Definition 4: learners learn in `m + 1` message delays).
    pub fn consensus_delays(self) -> usize {
        match self {
            QuorumClass::Class1 => 2,
            QuorumClass::Class2 => 3,
            QuorumClass::Class3 => 4,
        }
    }

    /// Numeric class index (1, 2 or 3).
    pub fn index(self) -> usize {
        match self {
            QuorumClass::Class1 => 1,
            QuorumClass::Class2 => 2,
            QuorumClass::Class3 => 3,
        }
    }
}

impl fmt::Display for QuorumClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class {}", self.index())
    }
}

/// A violation of one of the three RQS properties, with witnesses.
///
/// Produced by [`Rqs::verify`]; the witnesses name the exact quorums and
/// adversary elements for which the property fails, which makes the
/// counterexample constructions of Theorems 3 and 6 mechanical.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RqsViolation {
    /// Property 1 fails: `q ∩ q' ∈ B`.
    Property1 {
        /// First quorum.
        q: ProcessSet,
        /// Second quorum.
        q_prime: ProcessSet,
    },
    /// Property 2 fails: `q1 ∩ q1' ∩ q ⊆ b1 ∪ b2`.
    Property2 {
        /// First class-1 quorum.
        q1: ProcessSet,
        /// Second class-1 quorum.
        q1_prime: ProcessSet,
        /// Arbitrary quorum.
        q: ProcessSet,
        /// First adversary element.
        b1: ProcessSet,
        /// Second adversary element.
        b2: ProcessSet,
    },
    /// Property 3 fails: neither `P3a(q2,q,b)` nor `P3b(q2,q,b)` holds; the
    /// witness class-1 quorum `q1` has `q1 ∩ q2 ∩ q \ b = ∅` (or `QC1 = ∅`).
    Property3 {
        /// Class-2 quorum.
        q2: ProcessSet,
        /// Arbitrary quorum.
        q: ProcessSet,
        /// Adversary element.
        b: ProcessSet,
        /// Witness class-1 quorum for the P3b failure (`None` iff `QC1` is
        /// empty).
        q1: Option<ProcessSet>,
    },
    /// Structural problem (not one of the paper's numbered properties).
    Structural(StructuralIssue),
}

/// Structural (well-formedness) issues detected before property checks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StructuralIssue {
    /// The quorum family is empty.
    NoQuorums,
    /// A quorum mentions processes outside the universe.
    OutOfUniverse {
        /// The offending quorum.
        quorum: ProcessSet,
    },
    /// A class-1 index does not also appear as class 2 (`QC1 ⊄ QC2`).
    Class1NotClass2 {
        /// The offending quorum id.
        id: QuorumId,
    },
    /// A class index is out of range of the quorum list.
    BadIndex {
        /// The offending quorum id.
        id: QuorumId,
    },
}

impl fmt::Display for RqsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RqsViolation::Property1 { q, q_prime } => {
                write!(f, "Property 1 violated: {q} ∩ {q_prime} ∈ B")
            }
            RqsViolation::Property2 {
                q1,
                q1_prime,
                q,
                b1,
                b2,
            } => write!(
                f,
                "Property 2 violated: {q1} ∩ {q1_prime} ∩ {q} ⊆ {b1} ∪ {b2}"
            ),
            RqsViolation::Property3 { q2, q, b, q1 } => match q1 {
                Some(q1) => write!(
                    f,
                    "Property 3 violated: P3a({q2},{q},{b}) fails and {q1} ∩ {q2} ∩ {q} \\ {b} = ∅"
                ),
                None => write!(
                    f,
                    "Property 3 violated: P3a({q2},{q},{b}) fails and QC1 is empty"
                ),
            },
            RqsViolation::Structural(s) => write!(f, "structural issue: {s}"),
        }
    }
}

impl fmt::Display for StructuralIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructuralIssue::NoQuorums => write!(f, "quorum family is empty"),
            StructuralIssue::OutOfUniverse { quorum } => {
                write!(f, "quorum {quorum} outside universe")
            }
            StructuralIssue::Class1NotClass2 { id } => {
                write!(f, "{id} is class 1 but not class 2 (QC1 must be ⊆ QC2)")
            }
            StructuralIssue::BadIndex { id } => write!(f, "{id} out of range"),
        }
    }
}

impl std::error::Error for RqsViolation {}

/// A refined quorum system: quorums plus class-1/class-2 membership,
/// relative to an [`Adversary`].
///
/// Use [`RqsBuilder`] (or [`Rqs::new`]) to construct and verify one; the
/// threshold constructions of the paper's Examples 2–6 live in
/// [`crate::threshold`].
///
/// # Examples
///
/// The paper's Figure 3 example (universe of 8, adversary `B_1`; the set
/// `Q` is reconstructed from the caption's cardinality claims, since the
/// published figure text is ambiguous — see `exp_fig3_example`):
///
/// ```
/// use rqs_core::{Adversary, ProcessSet, Rqs, QuorumClass};
///
/// let b = Adversary::threshold(8, 1);
/// // Paper sets (1-based in the paper, 0-based here):
/// let q  = ProcessSet::from_indices([0, 4, 5, 7]);          // Q  = {1,5,6,8}
/// let qp = ProcessSet::from_indices([0, 1, 2, 3, 6, 7]);    // Q' = {1,2,3,4,7,8}
/// let q2 = ProcessSet::from_indices([2, 3, 4, 5, 6]);       // Q2 = {3,4,5,6,7}
/// let q1 = ProcessSet::from_indices([0, 1, 2, 4, 5]);       // Q1 = {1,2,3,5,6}
/// let rqs = Rqs::new(b, vec![q, qp, q2, q1], vec![3], vec![2, 3]).unwrap();
/// assert_eq!(rqs.class_of_set(q1), Some(QuorumClass::Class1));
/// assert_eq!(rqs.class_of_set(qp), Some(QuorumClass::Class3));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Rqs {
    adversary: Adversary,
    quorums: Vec<ProcessSet>,
    /// `class1[i]` ⇒ `quorums[i] ∈ QC1`. Invariant: `class1[i] ⇒ class2[i]`.
    class1: Vec<bool>,
    class2: Vec<bool>,
}

impl Rqs {
    /// Builds and verifies a refined quorum system.
    ///
    /// `class1` and `class2` list the indices (into `quorums`) of class-1
    /// and class-2 quorums. Every class-1 index must also be listed (or is
    /// implicitly added) as class-2, per `QC1 ⊆ QC2`.
    ///
    /// # Errors
    ///
    /// Returns the first detected [`RqsViolation`] — structural issues
    /// first, then Properties 1, 2, 3 in order.
    pub fn new(
        adversary: Adversary,
        quorums: Vec<ProcessSet>,
        class1: Vec<usize>,
        class2: Vec<usize>,
    ) -> Result<Self, RqsViolation> {
        let rqs = Self::new_unchecked(adversary, quorums, class1, class2)?;
        rqs.verify()?;
        Ok(rqs)
    }

    /// Builds a refined quorum system *without* verifying Properties 1–3.
    ///
    /// Structural well-formedness (indices in range, quorums within the
    /// universe, `QC1 ⊆ QC2` auto-completion) is still enforced. This is the
    /// entry point for deliberately-invalid systems used by the
    /// counterexample reproductions (Figures 8 and 16).
    ///
    /// # Errors
    ///
    /// Returns [`RqsViolation::Structural`] for malformed inputs.
    pub fn new_unchecked(
        adversary: Adversary,
        quorums: Vec<ProcessSet>,
        class1: Vec<usize>,
        class2: Vec<usize>,
    ) -> Result<Self, RqsViolation> {
        if quorums.is_empty() {
            return Err(RqsViolation::Structural(StructuralIssue::NoQuorums));
        }
        let universe = adversary.universe();
        for &q in &quorums {
            if !q.is_subset_of(universe) {
                return Err(RqsViolation::Structural(StructuralIssue::OutOfUniverse {
                    quorum: q,
                }));
            }
        }
        let mut c1 = vec![false; quorums.len()];
        let mut c2 = vec![false; quorums.len()];
        for &i in &class2 {
            if i >= quorums.len() {
                return Err(RqsViolation::Structural(StructuralIssue::BadIndex {
                    id: QuorumId(i),
                }));
            }
            c2[i] = true;
        }
        for &i in &class1 {
            if i >= quorums.len() {
                return Err(RqsViolation::Structural(StructuralIssue::BadIndex {
                    id: QuorumId(i),
                }));
            }
            c1[i] = true;
            // QC1 ⊆ QC2 by definition; absorb silently.
            c2[i] = true;
        }
        Ok(Rqs {
            adversary,
            quorums,
            class1: c1,
            class2: c2,
        })
    }

    /// The adversary this system is defined against.
    pub fn adversary(&self) -> &Adversary {
        &self.adversary
    }

    /// Universe size `|S|`.
    pub fn universe_size(&self) -> usize {
        self.adversary.universe_size()
    }

    /// All quorums (class 3 = the whole family).
    pub fn quorums(&self) -> &[ProcessSet] {
        &self.quorums
    }

    /// Number of quorums.
    pub fn len(&self) -> usize {
        self.quorums.len()
    }

    /// `true` iff the quorum family is empty (never true for a constructed
    /// `Rqs`, kept for `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.quorums.is_empty()
    }

    /// The quorum with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn quorum(&self, id: QuorumId) -> ProcessSet {
        self.quorums[id.0]
    }

    /// Looks up the id of a quorum given as a set.
    pub fn id_of(&self, set: ProcessSet) -> Option<QuorumId> {
        self.quorums.iter().position(|&q| q == set).map(QuorumId)
    }

    /// Ids of all class-1 quorums.
    pub fn class1_ids(&self) -> Vec<QuorumId> {
        self.ids_where(&self.class1)
    }

    /// Ids of all class-2 quorums (includes class-1 quorums).
    pub fn class2_ids(&self) -> Vec<QuorumId> {
        self.ids_where(&self.class2)
    }

    /// Ids of all quorums.
    pub fn all_ids(&self) -> Vec<QuorumId> {
        (0..self.quorums.len()).map(QuorumId).collect()
    }

    fn ids_where(&self, flags: &[bool]) -> Vec<QuorumId> {
        flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(QuorumId(i)))
            .collect()
    }

    /// Class-1 quorums as sets.
    pub fn class1_quorums(&self) -> Vec<ProcessSet> {
        self.class1_ids().iter().map(|&i| self.quorum(i)).collect()
    }

    /// Class-2 quorums as sets (includes class-1 quorums).
    pub fn class2_quorums(&self) -> Vec<ProcessSet> {
        self.class2_ids().iter().map(|&i| self.quorum(i)).collect()
    }

    /// `true` iff the id denotes a class-1 quorum.
    pub fn is_class1(&self, id: QuorumId) -> bool {
        self.class1.get(id.0).copied().unwrap_or(false)
    }

    /// `true` iff the id denotes a class-2 quorum.
    pub fn is_class2(&self, id: QuorumId) -> bool {
        self.class2.get(id.0).copied().unwrap_or(false)
    }

    /// Strongest class of the quorum with the given id.
    pub fn class_of(&self, id: QuorumId) -> QuorumClass {
        if self.is_class1(id) {
            QuorumClass::Class1
        } else if self.is_class2(id) {
            QuorumClass::Class2
        } else {
            QuorumClass::Class3
        }
    }

    /// Strongest class of the quorum equal to `set`, or `None` if `set` is
    /// not a quorum of this system.
    pub fn class_of_set(&self, set: ProcessSet) -> Option<QuorumClass> {
        self.id_of(set).map(|id| self.class_of(id))
    }

    /// `P3a(q2, q, b)`: the set difference `q2 ∩ q \ b` is basic
    /// (Property 3, case (a)).
    pub fn p3a(&self, q2: ProcessSet, q: ProcessSet, b: ProcessSet) -> bool {
        self.adversary.is_basic(q2.intersection(q).difference(b))
    }

    /// `P3b(q2, q, b)`: `QC1` is non-empty and every class-1 quorum
    /// intersects `q2 ∩ q \ b` (Property 3, case (b)).
    pub fn p3b(&self, q2: ProcessSet, q: ProcessSet, b: ProcessSet) -> bool {
        let rest = q2.intersection(q).difference(b);
        let c1 = self.class1_ids();
        !c1.is_empty() && c1.iter().all(|&id| self.quorum(id).intersects(rest))
    }

    /// Checks Property 1 over all quorum pairs.
    pub fn check_property1(&self) -> Result<(), RqsViolation> {
        for (i, &q) in self.quorums.iter().enumerate() {
            for &qp in &self.quorums[i..] {
                if self.adversary.contains(q.intersection(qp)) {
                    return Err(RqsViolation::Property1 { q, q_prime: qp });
                }
            }
        }
        Ok(())
    }

    /// Checks Property 2 over all class-1 pairs, quorums and adversary
    /// element pairs.
    ///
    /// For threshold adversaries this reduces to a cardinality check
    /// (`|Q1 ∩ Q1' ∩ Q| ≥ 2k+1`); for general adversaries it iterates over
    /// pairs of maximal elements.
    pub fn check_property2(&self) -> Result<(), RqsViolation> {
        let c1: Vec<ProcessSet> = self.class1_quorums();
        let maximal = self.adversary.maximal_elements();
        for (i, &q1) in c1.iter().enumerate() {
            for &q1p in &c1[i..] {
                let core = q1.intersection(q1p);
                for &q in &self.quorums {
                    let inter = core.intersection(q);
                    if !self.adversary.is_large(inter) {
                        // Find a witness pair (b1, b2) covering it.
                        let (b1, b2) = find_covering_pair(&maximal, inter);
                        return Err(RqsViolation::Property2 {
                            q1,
                            q1_prime: q1p,
                            q,
                            b1,
                            b2,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks Property 3 over all class-2 quorums, quorums, and adversary
    /// elements.
    ///
    /// Iterating over *maximal* adversary elements only is sound: if
    /// `B' ⊆ B`, then `P3a(Q2,Q,B)` implies `P3a(Q2,Q,B')` (a superset of a
    /// basic set is basic) and `P3b(Q2,Q,B)` implies `P3b(Q2,Q,B')`
    /// (removing less leaves more), so the property for all maximal `B`
    /// implies it for every element of the downward closure.
    pub fn check_property3(&self) -> Result<(), RqsViolation> {
        let c1 = self.class1_quorums();
        if let Some(k) = self.adversary.threshold_k() {
            // Threshold fast path (paper §2.1, threshold instantiation):
            // Property 3 ⇔ for all Q2, Q: |Q2 ∩ Q| ≥ 2k+1, or
            // |Q1 ∩ Q2 ∩ Q| ≥ k+1 for every class-1 quorum Q1.
            for &q2 in &self.class2_quorums() {
                for &q in &self.quorums {
                    let inter = q2.intersection(q);
                    if inter.len() > 2 * k {
                        continue;
                    }
                    if c1.is_empty() {
                        let b = threshold_p3_witness(inter, ProcessSet::empty(), k);
                        return Err(RqsViolation::Property3 { q2, q, b, q1: None });
                    }
                    if let Some(&bad_q1) = c1.iter().find(|&&q1| q1.intersection(inter).len() <= k)
                    {
                        let b = threshold_p3_witness(inter, bad_q1.intersection(inter), k);
                        return Err(RqsViolation::Property3 {
                            q2,
                            q,
                            b,
                            q1: Some(bad_q1),
                        });
                    }
                }
            }
            return Ok(());
        }
        for &q2 in &self.class2_quorums() {
            for &q in &self.quorums {
                for b in self.adversary.maximal_elements() {
                    if self.p3a(q2, q, b) {
                        continue;
                    }
                    // P3a fails; P3b must hold.
                    let rest = q2.intersection(q).difference(b);
                    if c1.is_empty() {
                        return Err(RqsViolation::Property3 { q2, q, b, q1: None });
                    }
                    if let Some(&bad_q1) = c1.iter().find(|&&q1| !q1.intersects(rest)) {
                        return Err(RqsViolation::Property3 {
                            q2,
                            q,
                            b,
                            q1: Some(bad_q1),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies all three RQS properties, returning the first violation.
    ///
    /// Note: when `QC1 = QC2`, Property 2 implies Property 3, and when
    /// `B = {∅}`, Property 1 implies Property 3 (paper, §2.1) — the checks
    /// simply pass trivially in those cases.
    pub fn verify(&self) -> Result<(), RqsViolation> {
        self.check_property1()?;
        self.check_property2()?;
        self.check_property3()?;
        Ok(())
    }

    /// Ids of all quorums fully contained in `responded` — "acks received
    /// from some quorum" in the protocols means this list is non-empty.
    pub fn quorums_within(&self, responded: ProcessSet) -> Vec<QuorumId> {
        (0..self.quorums.len())
            .map(QuorumId)
            .filter(|&id| self.quorum(id).is_subset_of(responded))
            .collect()
    }

    /// `true` iff some quorum is fully contained in `responded`.
    pub fn any_quorum_within(&self, responded: ProcessSet) -> bool {
        self.quorums.iter().any(|q| q.is_subset_of(responded))
    }

    /// First class-1 quorum fully contained in `responded`, if any.
    pub fn class1_within(&self, responded: ProcessSet) -> Option<QuorumId> {
        self.class1_ids()
            .into_iter()
            .find(|&id| self.quorum(id).is_subset_of(responded))
    }

    /// All class-2 quorums fully contained in `responded` (the writer's
    /// `QC'2` computation, Fig. 5 lines 4–5).
    pub fn class2_within(&self, responded: ProcessSet) -> Vec<QuorumId> {
        self.class2_ids()
            .into_iter()
            .filter(|&id| self.quorum(id).is_subset_of(responded))
            .collect()
    }

    /// Quorums that are entirely correct under the given fault sets
    /// (Byzantine ∪ crashed removed).
    pub fn correct_quorums(&self, faulty: ProcessSet) -> Vec<QuorumId> {
        (0..self.quorums.len())
            .map(QuorumId)
            .filter(|&id| self.quorum(id).is_disjoint(faulty))
            .collect()
    }

    /// The strongest class among quorums fully correct under `faulty`, if
    /// any quorum survives. This determines the best-case latency an
    /// operation can achieve in that execution.
    pub fn best_available_class(&self, faulty: ProcessSet) -> Option<QuorumClass> {
        self.correct_quorums(faulty)
            .into_iter()
            .map(|id| self.class_of(id))
            .min()
    }

    /// `true` iff at least one quorum contains only correct processes —
    /// the paper's liveness precondition.
    pub fn has_correct_quorum(&self, faulty: ProcessSet) -> bool {
        self.best_available_class(faulty).is_some()
    }
}

impl fmt::Display for Rqs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RQS over {} ({} quorums)",
            self.adversary,
            self.quorums.len()
        )?;
        for (i, q) in self.quorums.iter().enumerate() {
            let id = QuorumId(i);
            writeln!(f, "  {id} = {q} [{}]", self.class_of(id))?;
        }
        Ok(())
    }
}

/// Constructs a witness `B ∈ B_k` for a threshold Property-3 violation on
/// intersection `inter = Q2 ∩ Q`: `B` covers `core = Q1 ∩ inter` and leaves
/// `inter \ B` of size ≤ k, so neither `P3a` nor `P3b` holds.
fn threshold_p3_witness(inter: ProcessSet, core: ProcessSet, k: usize) -> ProcessSet {
    let mut b = core;
    for p in inter.difference(core).iter() {
        if b.len() >= k || inter.difference(b).len() <= k {
            break;
        }
        b.insert(p);
    }
    b
}

/// Finds `(b1, b2)` among `maximal` whose union covers `set`; used only to
/// report Property 2 witnesses, so falls back to the first two elements if
/// (unexpectedly) no cover exists.
fn find_covering_pair(maximal: &[ProcessSet], set: ProcessSet) -> (ProcessSet, ProcessSet) {
    for (i, &b1) in maximal.iter().enumerate() {
        for &b2 in &maximal[i..] {
            if set.is_subset_of(b1.union(b2)) {
                return (b1, b2);
            }
        }
    }
    let first = maximal.first().copied().unwrap_or_else(ProcessSet::empty);
    (first, first)
}

/// Incremental builder for a [`Rqs`].
///
/// # Examples
///
/// ```
/// use rqs_core::{Adversary, ProcessSet, RqsBuilder, QuorumClass};
/// let rqs = RqsBuilder::new(Adversary::threshold(4, 1))
///     .quorum_with_class(ProcessSet::universe(4), QuorumClass::Class1)
///     .quorum(ProcessSet::from_indices([0, 1, 2]))
///     .quorum(ProcessSet::from_indices([0, 1, 3]))
///     .quorum(ProcessSet::from_indices([0, 2, 3]))
///     .quorum(ProcessSet::from_indices([1, 2, 3]))
///     .build()
///     .unwrap();
/// assert_eq!(rqs.len(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct RqsBuilder {
    adversary: Adversary,
    quorums: Vec<ProcessSet>,
    class1: Vec<usize>,
    class2: Vec<usize>,
}

impl RqsBuilder {
    /// Starts a builder for the given adversary.
    pub fn new(adversary: Adversary) -> Self {
        RqsBuilder {
            adversary,
            quorums: Vec::new(),
            class1: Vec::new(),
            class2: Vec::new(),
        }
    }

    /// Adds a plain (class-3) quorum.
    pub fn quorum(mut self, q: ProcessSet) -> Self {
        self.quorums.push(q);
        self
    }

    /// Adds a quorum with an explicit class.
    pub fn quorum_with_class(mut self, q: ProcessSet, class: QuorumClass) -> Self {
        let idx = self.quorums.len();
        self.quorums.push(q);
        match class {
            QuorumClass::Class1 => {
                self.class1.push(idx);
                self.class2.push(idx);
            }
            QuorumClass::Class2 => self.class2.push(idx),
            QuorumClass::Class3 => {}
        }
        self
    }

    /// Builds and verifies the system.
    ///
    /// # Errors
    ///
    /// Returns the first [`RqsViolation`] found.
    pub fn build(self) -> Result<Rqs, RqsViolation> {
        Rqs::new(self.adversary, self.quorums, self.class1, self.class2)
    }

    /// Builds without verifying Properties 1–3 (structural checks only).
    ///
    /// # Errors
    ///
    /// Returns [`RqsViolation::Structural`] for malformed inputs.
    pub fn build_unchecked(self) -> Result<Rqs, RqsViolation> {
        Rqs::new_unchecked(self.adversary, self.quorums, self.class1, self.class2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 3 refined quorum system (0-based indices).
    ///
    /// `Q'`, `Q2` and `Q1` are as printed in the paper; `Q` is
    /// reconstructed as `{1,5,6,8}` so that all the caption's cardinality
    /// claims hold (`|Q2∩Q'| = |Q2∩Q1| = 2k+1`, `|Q2∩Q∩Q1| = k+1`,
    /// and `Q1` meets every quorum in ≥ 2k+1 elements for Property 2).
    fn figure3() -> Rqs {
        let b = Adversary::threshold(8, 1);
        let q = ProcessSet::from_indices([0, 4, 5, 7]);
        let qp = ProcessSet::from_indices([0, 1, 2, 3, 6, 7]);
        let q2 = ProcessSet::from_indices([2, 3, 4, 5, 6]);
        let q1 = ProcessSet::from_indices([0, 1, 2, 4, 5]);
        Rqs::new(b, vec![q, qp, q2, q1], vec![3], vec![2, 3]).expect("figure 3 is a valid RQS")
    }

    #[test]
    fn figure3_is_valid_rqs() {
        let rqs = figure3();
        assert!(rqs.verify().is_ok());
        assert_eq!(rqs.class1_ids(), vec![QuorumId(3)]);
        assert_eq!(rqs.class2_ids(), vec![QuorumId(2), QuorumId(3)]);
        // "the cardinality of a quorum is not always a good indication of
        // its class": Q' has 6 elements but is class 3; Q1 has 5 and is
        // class 1.
        assert_eq!(rqs.class_of(QuorumId(1)), QuorumClass::Class3);
        assert_eq!(rqs.quorum(QuorumId(1)).len(), 6);
        assert_eq!(rqs.class_of(QuorumId(3)), QuorumClass::Class1);
        assert_eq!(rqs.quorum(QuorumId(3)).len(), 5);
    }

    #[test]
    fn figure3_pairwise_intersections_at_least_k_plus_1() {
        let rqs = figure3();
        for &a in rqs.quorums() {
            for &b in rqs.quorums() {
                assert!(a.intersection(b).len() >= 2, "{a} ∩ {b}");
            }
        }
    }

    #[test]
    fn property1_violation_detected() {
        let b = Adversary::threshold(4, 1);
        // Two quorums intersecting in a single element: in B_1.
        let err = Rqs::new(
            b,
            vec![
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([1, 2]),
            ],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, RqsViolation::Property1 { .. }));
        assert!(err.to_string().contains("Property 1"));
    }

    #[test]
    fn property1_self_intersection() {
        // A quorum must intersect *itself* outside B: a quorum that is an
        // adversary element is invalid.
        let b = Adversary::threshold(4, 2);
        let err = Rqs::new(b, vec![ProcessSet::from_indices([0, 1])], vec![], vec![]).unwrap_err();
        assert!(matches!(err, RqsViolation::Property1 { .. }));
    }

    #[test]
    fn property2_violation_detected() {
        // n=5, k=1: quorums {0,1,2} and {1,2,3} intersect in {1,2} — basic
        // (Property 1 holds) but not large, so a class-1 upgrade of {0,1,2}
        // violates Property 2.
        let b = Adversary::threshold(5, 1);
        let q1 = ProcessSet::from_indices([0, 1, 2]);
        let q = ProcessSet::from_indices([1, 2, 3]);
        let err = Rqs::new(b, vec![q1, q], vec![0], vec![0]).unwrap_err();
        match err {
            RqsViolation::Property2 { .. } => {}
            other => panic!("expected Property2 violation, got {other:?}"),
        }
    }

    #[test]
    fn property3_violation_detected_general_adversary() {
        // Negation of Property 3 requires Q2 ∩ Q \ B1 = B2 ∈ B and
        // Q1 ∩ Q2 ∩ Q \ B1 = ∅. Build such a configuration directly.
        // Universe {0..5}; B maximal: {0,1}, {2,3}.
        let b = Adversary::general(
            6,
            [
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([2, 3]),
            ],
        )
        .unwrap();
        // Q2 = {0,1,2,3,4}, Q = {0,1,2,3,5}, Q1 = {4,5} ∪ ... must satisfy
        // Property 1 though. Use Q1 = {0,2,4,5}:
        //  Q2 ∩ Q = {0,1,2,3}; with B = {0,1}: rest = {2,3} ∈ B → P3a fails.
        //  Q1 ∩ rest = {2} ≠ ∅ → P3b would hold for this Q1.
        // Use instead Q1' = {0,1,4,5}: Q1' ∩ {2,3} = ∅ → P3b fails.
        let q2 = ProcessSet::from_indices([0, 1, 2, 3, 4]);
        let q = ProcessSet::from_indices([0, 1, 2, 3, 5]);
        let q1 = ProcessSet::from_indices([0, 1, 4, 5]);
        let err = Rqs::new(b, vec![q2, q, q1], vec![2], vec![0]).unwrap_err();
        match &err {
            RqsViolation::Property3 { q1: Some(w), .. } => assert_eq!(*w, q1),
            other => panic!("expected Property3 violation, got {other:?}"),
        }
    }

    #[test]
    fn example7_rqs_is_valid() {
        // Paper Example 7: S = {s1..s6},
        // B maximal = {s1,s2}, {s3,s4}, {s2,s4};
        // RQS = {Q1,Q2,Q2'} with Q1 = {s2,s4,s5,s6} (class 1),
        // Q2 = {s1..s5}, Q2' = {s1..s4,s6} (class 2).
        let b = Adversary::general(
            6,
            [
                ProcessSet::from_indices([0, 1]),
                ProcessSet::from_indices([2, 3]),
                ProcessSet::from_indices([1, 3]),
            ],
        )
        .unwrap();
        let q1 = ProcessSet::from_indices([1, 3, 4, 5]);
        let q2 = ProcessSet::from_indices([0, 1, 2, 3, 4]);
        let q2p = ProcessSet::from_indices([0, 1, 2, 3, 5]);
        let rqs =
            Rqs::new(b, vec![q1, q2, q2p], vec![0], vec![0, 1, 2]).expect("example 7 must verify");
        assert_eq!(rqs.class_of_set(q1), Some(QuorumClass::Class1));
        assert_eq!(rqs.class_of_set(q2), Some(QuorumClass::Class2));
        assert_eq!(rqs.class_of_set(q2p), Some(QuorumClass::Class2));
    }

    #[test]
    fn p3a_p3b_predicates() {
        let rqs = figure3();
        let q2 = ProcessSet::from_indices([2, 3, 4, 5, 6]);
        let qp = ProcessSet::from_indices([0, 1, 2, 3, 6, 7]);
        let q1 = ProcessSet::from_indices([0, 1, 2, 4, 5]);
        let q = ProcessSet::from_indices([0, 4, 5, 7]);
        // From the paper's Figure 3 caption: |Q2 ∩ Q'| = 3 = 2k+1 so
        // P3a(Q2, Q', B) holds for every B ∈ B_1; similarly for Q1.
        for b in rqs.adversary().maximal_elements() {
            assert!(rqs.p3a(q2, qp, b), "P3a(Q2,Q',{b})");
            assert!(rqs.p3a(q2, q1, b), "P3a(Q2,Q1,{b})");
        }
        // And P3b(Q2, Q, B) holds since |Q2 ∩ Q ∩ Q1| = k+1 = 2.
        for b in rqs.adversary().maximal_elements() {
            assert!(rqs.p3b(q2, q, b), "P3b(Q2,Q,{b})");
        }
    }

    #[test]
    fn structural_errors() {
        let b = Adversary::threshold(4, 0);
        let err = Rqs::new(b.clone(), vec![], vec![], vec![]).unwrap_err();
        assert!(matches!(
            err,
            RqsViolation::Structural(StructuralIssue::NoQuorums)
        ));
        let err = Rqs::new(
            b.clone(),
            vec![ProcessSet::from_indices([9])],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RqsViolation::Structural(StructuralIssue::OutOfUniverse { .. })
        ));
        let err = Rqs::new(b, vec![ProcessSet::universe(4)], vec![3], vec![]).unwrap_err();
        assert!(matches!(
            err,
            RqsViolation::Structural(StructuralIssue::BadIndex { .. })
        ));
    }

    #[test]
    fn class1_implies_class2() {
        let b = Adversary::threshold(4, 0);
        let rqs = Rqs::new(
            b,
            vec![ProcessSet::universe(4), ProcessSet::from_indices([0, 1, 2])],
            vec![0],
            vec![],
        )
        .unwrap();
        assert!(rqs.is_class2(QuorumId(0)), "class-1 must imply class-2");
        assert_eq!(rqs.class_of(QuorumId(0)), QuorumClass::Class1);
        assert_eq!(rqs.class_of(QuorumId(1)), QuorumClass::Class3);
    }

    #[test]
    fn best_available_class() {
        let rqs = figure3();
        // No faults: class 1 available.
        assert_eq!(
            rqs.best_available_class(ProcessSet::empty()),
            Some(QuorumClass::Class1)
        );
        // Fail 0 and 1: Q1 = {0,1,2,4,5} dies, Q2 = {2,3,4,5,6} (class 2)
        // survives.
        let faulty = ProcessSet::from_indices([0, 1]);
        assert_eq!(rqs.best_available_class(faulty), Some(QuorumClass::Class2));
        // Fail 1 and 2: Q1 and Q2 die; Q = {0,4,5,7} (class 3) survives.
        let faulty = ProcessSet::from_indices([1, 2]);
        assert_eq!(rqs.best_available_class(faulty), Some(QuorumClass::Class3));
        // Remove everything: nothing survives.
        assert_eq!(rqs.best_available_class(ProcessSet::universe(8)), None);
        assert!(!rqs.has_correct_quorum(ProcessSet::universe(8)));
        assert!(rqs.has_correct_quorum(ProcessSet::empty()));
    }

    #[test]
    fn quorum_class_latencies() {
        assert_eq!(QuorumClass::Class1.storage_rounds(), 1);
        assert_eq!(QuorumClass::Class2.storage_rounds(), 2);
        assert_eq!(QuorumClass::Class3.storage_rounds(), 3);
        assert_eq!(QuorumClass::Class1.consensus_delays(), 2);
        assert_eq!(QuorumClass::Class2.consensus_delays(), 3);
        assert_eq!(QuorumClass::Class3.consensus_delays(), 4);
        assert!(QuorumClass::Class1 < QuorumClass::Class2);
        assert_eq!(QuorumClass::Class2.to_string(), "class 2");
    }

    #[test]
    fn builder_roundtrip() {
        let rqs = RqsBuilder::new(Adversary::threshold(4, 1))
            .quorum_with_class(ProcessSet::universe(4), QuorumClass::Class1)
            .quorum_with_class(ProcessSet::from_indices([0, 1, 2]), QuorumClass::Class2)
            .quorum(ProcessSet::from_indices([0, 1, 3]))
            .build();
        // Q2={0,1,2} vs Q={0,1,3}: intersection {0,1} with B={0} leaves {1} ∈ B
        // → needs P3b: Q1 ∩ {1} ≠ ∅ — universe contains 1, ok.
        let rqs = rqs.expect("valid");
        assert_eq!(rqs.class_of(QuorumId(1)), QuorumClass::Class2);
        assert_eq!(
            rqs.id_of(ProcessSet::from_indices([0, 1, 3])),
            Some(QuorumId(2))
        );
        assert_eq!(rqs.id_of(ProcessSet::from_indices([9])), None);
    }

    #[test]
    fn display_output() {
        let rqs = figure3();
        let s = rqs.to_string();
        assert!(s.contains("RQS over B_1"));
        assert!(s.contains("class 1"));
    }

    #[test]
    fn quorums_within_responded_sets() {
        let rqs = figure3();
        let all = ProcessSet::universe(8);
        assert_eq!(rqs.quorums_within(all).len(), 4);
        assert!(rqs.any_quorum_within(all));
        assert!(rqs.class1_within(all).is_some());
        assert_eq!(rqs.class2_within(all).len(), 2);
        // Exactly Q2 = {2,3,4,5,6} responded:
        let just_q2 = ProcessSet::from_indices([2, 3, 4, 5, 6]);
        assert_eq!(rqs.quorums_within(just_q2), vec![QuorumId(2)]);
        assert!(rqs.class1_within(just_q2).is_none());
        assert_eq!(rqs.class2_within(just_q2), vec![QuorumId(2)]);
        // Nobody responded:
        assert!(!rqs.any_quorum_within(ProcessSet::empty()));
    }

    #[test]
    fn correct_quorums_listing() {
        let rqs = figure3();
        let all = rqs.correct_quorums(ProcessSet::empty());
        assert_eq!(all.len(), 4);
        let none = rqs.correct_quorums(ProcessSet::universe(8));
        assert!(none.is_empty());
    }
}
