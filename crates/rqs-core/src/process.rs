//! Process identifiers and compact process sets.
//!
//! A refined quorum system is defined over a finite universe `S` of
//! processes (the paper's servers/acceptors). We represent subsets of `S`
//! as bitsets over up to [`MAX_PROCESSES`] processes, which is far beyond
//! the sizes for which explicit quorum-system manipulation is tractable.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Maximum number of processes in a universe.
///
/// [`ProcessSet`] packs membership into a `u128`, so process indices must
/// be in `0..128`. Quorum-system enumeration is exponential in the universe
/// size, so this bound is never the practical limit.
pub const MAX_PROCESSES: usize = 128;

/// Identifier of a process in the universe `S`.
///
/// Process ids are small dense indices (`0..n` for a universe of size `n`),
/// mirroring the paper's `s_1 .. s_n` naming (our `ProcessId(0)` is the
/// paper's `s_1`).
///
/// # Examples
///
/// ```
/// use rqs_core::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "s4"); // 1-based display, like the paper
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Zero-based index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper numbers servers from 1 (`s1`, `s2`, ...).
        write!(f, "s{}", self.0 + 1)
    }
}

impl From<usize> for ProcessId {
    fn from(value: usize) -> Self {
        ProcessId(value)
    }
}

/// A subset of the process universe, stored as a 128-bit bitset.
///
/// `ProcessSet` is the workhorse of the crate: quorums, adversary elements,
/// intersections (`Q ∩ Q'`), unions (`B1 ∪ B2`) and differences
/// (`Q2 ∩ Q \ B`) from the paper's Properties 1–3 are all `ProcessSet`
/// operations.
///
/// # Examples
///
/// ```
/// use rqs_core::ProcessSet;
/// let q = ProcessSet::from_indices([0, 1, 2]);
/// let q2 = ProcessSet::from_indices([1, 2, 3]);
/// assert_eq!(q.intersection(q2), ProcessSet::from_indices([1, 2]));
/// assert_eq!(q.union(q2).len(), 4);
/// assert!(q.intersection(q2).is_subset_of(q));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ProcessSet {
    bits: u128,
}

impl ProcessSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        ProcessSet { bits: 0 }
    }

    /// The full universe `{0, .., n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES`.
    #[inline]
    pub fn universe(n: usize) -> Self {
        assert!(
            n <= MAX_PROCESSES,
            "universe size {n} exceeds {MAX_PROCESSES}"
        );
        if n == MAX_PROCESSES {
            ProcessSet { bits: u128::MAX }
        } else {
            ProcessSet {
                bits: (1u128 << n) - 1,
            }
        }
    }

    /// A singleton set.
    #[inline]
    pub fn singleton(p: ProcessId) -> Self {
        assert!(p.0 < MAX_PROCESSES, "process index {} out of range", p.0);
        ProcessSet { bits: 1u128 << p.0 }
    }

    /// Builds a set from zero-based indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= MAX_PROCESSES`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut s = ProcessSet::empty();
        for i in indices {
            assert!(i < MAX_PROCESSES, "process index {i} out of range");
            s.bits |= 1u128 << i;
        }
        s
    }

    /// Raw bit representation (bit `i` set iff process `i` is a member).
    #[inline]
    pub const fn bits(self) -> u128 {
        self.bits
    }

    /// Builds a set directly from raw bits.
    #[inline]
    pub const fn from_bits(bits: u128) -> Self {
        ProcessSet { bits }
    }

    /// Number of members.
    #[inline]
    pub const fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// `true` iff the set has no members.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, p: ProcessId) -> bool {
        p.0 < MAX_PROCESSES && (self.bits >> p.0) & 1 == 1
    }

    /// Adds a process (idempotent).
    #[inline]
    pub fn insert(&mut self, p: ProcessId) {
        assert!(p.0 < MAX_PROCESSES, "process index {} out of range", p.0);
        self.bits |= 1u128 << p.0;
    }

    /// Removes a process (idempotent).
    #[inline]
    pub fn remove(&mut self, p: ProcessId) {
        if p.0 < MAX_PROCESSES {
            self.bits &= !(1u128 << p.0);
        }
    }

    /// Returns `self ∩ other`.
    #[inline]
    pub const fn intersection(self, other: ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits & other.bits,
        }
    }

    /// Returns `self ∪ other`.
    #[inline]
    pub const fn union(self, other: ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits | other.bits,
        }
    }

    /// Returns `self \ other`.
    #[inline]
    pub const fn difference(self, other: ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits & !other.bits,
        }
    }

    /// The complement of `self` with respect to the universe `{0..n}`
    /// (the paper writes this `X̄ = S \ X`).
    #[inline]
    pub fn complement(self, n: usize) -> ProcessSet {
        ProcessSet::universe(n).difference(self)
    }

    /// `true` iff `self ⊆ other`.
    #[inline]
    pub const fn is_subset_of(self, other: ProcessSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// `true` iff `self ⊇ other`.
    #[inline]
    pub const fn is_superset_of(self, other: ProcessSet) -> bool {
        other.bits & !self.bits == 0
    }

    /// `true` iff the two sets share no member.
    #[inline]
    pub const fn is_disjoint(self, other: ProcessSet) -> bool {
        self.bits & other.bits == 0
    }

    /// `true` iff `self` and `other` have at least one common member.
    #[inline]
    pub const fn intersects(self, other: ProcessSet) -> bool {
        self.bits & other.bits != 0
    }

    /// Iterates over members in increasing index order.
    pub fn iter(self) -> Iter {
        Iter { bits: self.bits }
    }

    /// Smallest member, if any.
    #[inline]
    pub fn min(self) -> Option<ProcessId> {
        if self.bits == 0 {
            None
        } else {
            Some(ProcessId(self.bits.trailing_zeros() as usize))
        }
    }

    /// Members collected into a vector (ascending).
    pub fn to_vec(self) -> Vec<ProcessId> {
        self.iter().collect()
    }

    /// All subsets of `{0..n}` of exactly `k` elements, in lexicographic
    /// (Gosper's-hack) order.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCESSES` or `k > n`.
    pub fn subsets_of_size(n: usize, k: usize) -> SubsetsOfSize {
        assert!(
            n <= MAX_PROCESSES,
            "universe size {n} exceeds {MAX_PROCESSES}"
        );
        assert!(k <= n, "subset size {k} exceeds universe size {n}");
        SubsetsOfSize {
            n,
            current: if k == 0 { None } else { Some((1u128 << k) - 1) },
            emitted_empty: k != 0,
        }
    }

    /// All subsets of `base` (including the empty set and `base` itself).
    ///
    /// The number of subsets is `2^|base|`; callers should keep `|base|`
    /// small (≤ ~20).
    pub fn subsets(self) -> Subsets {
        Subsets {
            base: self.bits,
            current: Some(0),
        }
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<T: IntoIterator<Item = ProcessId>>(iter: T) -> Self {
        let mut s = ProcessSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl FromIterator<usize> for ProcessSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        ProcessSet::from_indices(iter)
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<T: IntoIterator<Item = ProcessId>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`], ascending.
#[derive(Clone, Debug)]
pub struct Iter {
    bits: u128,
}

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.bits == 0 {
            None
        } else {
            let i = self.bits.trailing_zeros() as usize;
            self.bits &= self.bits - 1;
            Some(ProcessId(i))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

/// Iterator over all `k`-subsets of `{0..n}` (see
/// [`ProcessSet::subsets_of_size`]).
#[derive(Clone, Debug)]
pub struct SubsetsOfSize {
    n: usize,
    current: Option<u128>,
    emitted_empty: bool,
}

impl Iterator for SubsetsOfSize {
    type Item = ProcessSet;

    fn next(&mut self) -> Option<ProcessSet> {
        if !self.emitted_empty {
            // k == 0: the single empty subset.
            self.emitted_empty = true;
            return Some(ProcessSet::empty());
        }
        let v = self.current?;
        let limit = if self.n == MAX_PROCESSES {
            u128::MAX
        } else {
            (1u128 << self.n) - 1
        };
        if v & !limit != 0 {
            self.current = None;
            return None;
        }
        self.current = gosper_next(v);
        Some(ProcessSet::from_bits(v))
    }
}

/// Gosper's hack: smallest integer greater than `v` with the same popcount,
/// or `None` if it would overflow `u128`.
fn gosper_next(v: u128) -> Option<u128> {
    let t = v | v.wrapping_sub(1);
    if t == u128::MAX {
        return None;
    }
    let shift = v.trailing_zeros() + 1;
    let low = (!t & t.wrapping_add(1)).wrapping_sub(1);
    let shifted = if shift >= 128 { 0 } else { low >> shift };
    Some(t.wrapping_add(1) | shifted)
}

/// Iterator over all subsets of a base set (see [`ProcessSet::subsets`]).
#[derive(Clone, Debug)]
pub struct Subsets {
    base: u128,
    current: Option<u128>,
}

impl Iterator for Subsets {
    type Item = ProcessSet;

    fn next(&mut self) -> Option<ProcessSet> {
        let cur = self.current?;
        // Standard subset-enumeration trick: next = (cur - base) & base
        // walks all submasks of `base` starting from 0.
        let next = (cur.wrapping_sub(self.base)) & self.base;
        self.current = if cur == self.base { None } else { Some(next) };
        Some(ProcessSet::from_bits(cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_universe() {
        assert!(ProcessSet::empty().is_empty());
        assert_eq!(ProcessSet::universe(5).len(), 5);
        assert_eq!(ProcessSet::universe(0), ProcessSet::empty());
        assert_eq!(ProcessSet::universe(128).len(), 128);
    }

    #[test]
    #[should_panic(expected = "universe size")]
    fn universe_too_big_panics() {
        let _ = ProcessSet::universe(129);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::empty();
        s.insert(ProcessId(3));
        s.insert(ProcessId(3));
        assert!(s.contains(ProcessId(3)));
        assert_eq!(s.len(), 1);
        s.remove(ProcessId(3));
        assert!(!s.contains(ProcessId(3)));
        assert!(s.is_empty());
        // removing a non-member is a no-op
        s.remove(ProcessId(7));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ProcessSet::from_indices([0, 1, 2, 3]);
        let b = ProcessSet::from_indices([2, 3, 4, 5]);
        assert_eq!(a.intersection(b), ProcessSet::from_indices([2, 3]));
        assert_eq!(a.union(b), ProcessSet::from_indices([0, 1, 2, 3, 4, 5]));
        assert_eq!(a.difference(b), ProcessSet::from_indices([0, 1]));
        assert!(a.intersects(b));
        assert!(!a.is_disjoint(b));
        assert!(ProcessSet::from_indices([2, 3]).is_subset_of(a));
        assert!(a.is_superset_of(ProcessSet::from_indices([0])));
    }

    #[test]
    fn complement_wrt_universe() {
        let a = ProcessSet::from_indices([0, 2]);
        assert_eq!(a.complement(4), ProcessSet::from_indices([1, 3]));
        assert_eq!(a.complement(4).complement(4), a);
    }

    #[test]
    fn iteration_order_ascending() {
        let s = ProcessSet::from_indices([5, 1, 9]);
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![1, 5, 9]);
        assert_eq!(s.iter().len(), 3);
        assert_eq!(s.min(), Some(ProcessId(1)));
        assert_eq!(ProcessSet::empty().min(), None);
    }

    #[test]
    fn display_matches_paper_numbering() {
        let s = ProcessSet::from_indices([0, 2]);
        assert_eq!(s.to_string(), "{s1,s3}");
        assert_eq!(ProcessSet::empty().to_string(), "{}");
    }

    #[test]
    fn subsets_of_size_counts() {
        // C(5, k) for k = 0..=5
        let expect = [1usize, 5, 10, 10, 5, 1];
        for (k, &e) in expect.iter().enumerate() {
            let got = ProcessSet::subsets_of_size(5, k).count();
            assert_eq!(got, e, "C(5,{k})");
        }
        for s in ProcessSet::subsets_of_size(6, 3) {
            assert_eq!(s.len(), 3);
            assert!(s.is_subset_of(ProcessSet::universe(6)));
        }
    }

    #[test]
    fn subsets_of_size_full_range() {
        // no overflow at the top of the range
        let got = ProcessSet::subsets_of_size(10, 10).count();
        assert_eq!(got, 1);
        let got = ProcessSet::subsets_of_size(1, 1).collect::<Vec<_>>();
        assert_eq!(got, vec![ProcessSet::from_indices([0])]);
    }

    #[test]
    fn all_subsets_of_base() {
        let base = ProcessSet::from_indices([1, 4, 7]);
        let subs: Vec<ProcessSet> = base.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&ProcessSet::empty()));
        assert!(subs.contains(&base));
        for s in &subs {
            assert!(s.is_subset_of(base));
        }
        // all distinct
        let mut sorted = subs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn from_iterators() {
        let s: ProcessSet = [ProcessId(1), ProcessId(2)].into_iter().collect();
        assert_eq!(s, ProcessSet::from_indices([1, 2]));
        let s2: ProcessSet = [3usize, 4].into_iter().collect();
        assert_eq!(s2, ProcessSet::from_indices([3, 4]));
        let mut s3 = ProcessSet::empty();
        s3.extend([ProcessId(0)]);
        assert!(s3.contains(ProcessId(0)));
    }

    #[test]
    fn into_iterator_for_loop() {
        let s = ProcessSet::from_indices([2, 4]);
        let mut total = 0;
        for p in s {
            total += p.index();
        }
        assert_eq!(total, 6);
    }
}
