//! # Refined quorum systems (RQS)
//!
//! A faithful, production-quality implementation of the quorum-system
//! abstraction from:
//!
//! > Rachid Guerraoui and Marko Vukolić. *Refined Quorum Systems.*
//! > PODC 2007; full version EPFL LPD-REPORT-2007-002.
//!
//! A refined quorum system of a set `S` is a set of three classes of
//! subsets (quorums) of `S`: first-class quorums are also second-class
//! quorums, themselves being third-class quorums. First-class quorums have
//! large intersections with all other quorums; second-class quorums
//! typically have smaller intersections with those of the third class; the
//! latter correspond to traditional quorums. A distributed object
//! implementation expedites an operation when a first-class quorum of
//! correct processes is accessed, then degrades gracefully through the
//! second and third classes.
//!
//! ## Modules
//!
//! - [`process`] — process ids and compact process sets;
//! - [`adversary`] — general and threshold adversary structures
//!   (Definition 1), basic/large subsets (Definition 5);
//! - [`rqs`] — the RQS definition itself: quorum classes, Properties 1–3,
//!   verification with violation witnesses (Definition 2);
//! - [`threshold`] — the canonical threshold constructions of Examples
//!   2–6 with their closed-form feasibility inequalities;
//! - [`analysis`] — load, availability and class-assignment counting
//!   (the §6 open questions);
//! - [`classic`] — dissemination and masking quorum systems (Example 4)
//!   with the Q3/Q4 existence conditions.
//!
//! ## Quick start
//!
//! ```
//! use rqs_core::{Adversary, ProcessSet, Rqs, QuorumClass};
//! use rqs_core::threshold::ThresholdConfig;
//!
//! // The paper's "important instantiation": n = 3t+1 = 4 servers, one of
//! // which may be Byzantine; all quorums class 2, the full set class 1.
//! let rqs = ThresholdConfig::byzantine_fast(1).build()?;
//! assert_eq!(rqs.class_of_set(ProcessSet::universe(4)), Some(QuorumClass::Class1));
//!
//! // Best-case storage latency when all servers are correct: 1 round.
//! let class = rqs.best_available_class(ProcessSet::empty()).unwrap();
//! assert_eq!(class.storage_rounds(), 1);
//!
//! // If one server fails, only class-2 quorums remain: 2 rounds.
//! let class = rqs.best_available_class(ProcessSet::from_indices([0])).unwrap();
//! assert_eq!(class.storage_rounds(), 2);
//! # Ok::<(), rqs_core::RqsViolation>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod analysis;
pub mod classic;
pub mod process;
pub mod rqs;
pub mod threshold;

pub use adversary::{Adversary, AdversaryError, FaultAssignment};
pub use process::{ProcessId, ProcessSet, MAX_PROCESSES};
pub use rqs::{QuorumClass, QuorumId, Rqs, RqsBuilder, RqsViolation, StructuralIssue};
pub use threshold::ThresholdConfig;
